// The IsApplicable algorithm (paper Section 4.1): given a source type T and a
// projection list, determine which methods applicable to T remain applicable
// to the derived type T̃ = Π_list T.
//
// A method survives unless it (transitively) accesses an attribute outside
// the projection list, or calls a generic function for which no method
// survives at the substituted argument types. The algorithm analyzes method
// call graphs with three global structures:
//   - MethodStack: the recursion stack; each entry carries a dependencyList
//     of methods whose verdicts optimistically assumed this entry applicable;
//   - Applicable: optimistically grown — when a cycle is met, the on-stack
//     method is assumed applicable; if it later fails, its dependents are
//     evicted back to unknown and re-examined;
//   - NotApplicable: monotone (a method enters at most once), which bounds
//     the driver's re-examination passes.

#ifndef TYDER_CORE_IS_APPLICABLE_H_
#define TYDER_CORE_IS_APPLICABLE_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "methods/schema.h"

namespace tyder {

struct ApplicabilityResult {
  // Verdicts over every method applicable to the source type (paper Sec 4's
  // input set), in method-id order.
  std::vector<MethodId> applicable;
  std::vector<MethodId> not_applicable;
  // Human-readable algorithm trace (populated when requested); used by the
  // Example 1 reproduction.
  std::vector<std::string> trace;

  bool IsApplicable(MethodId m) const {
    return std::binary_search(applicable.begin(), applicable.end(), m);
  }
};

// Runs the algorithm. `projection` is the set of projected attributes; every
// attribute must be available at `source` (validated by the projection
// driver, re-checked here).
Result<ApplicabilityResult> ComputeApplicableMethods(
    const Schema& schema, TypeId source, const std::set<AttrId>& projection,
    bool record_trace = false);

}  // namespace tyder

#endif  // TYDER_CORE_IS_APPLICABLE_H_
