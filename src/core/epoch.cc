#include "core/epoch.h"

#include <limits>
#include <set>
#include <vector>

#include "obs/obs.h"

namespace tyder {

namespace epoch_internal {

namespace {

// One announce slot per cache line (the obs/sharded_counter.h layout): a
// pinned reader writes only its own line, so the wait-free path never
// bounces a line between cores. 0 means "not pinned".
constexpr size_t kAnnounceSlots = 256;
struct alignas(64) AnnounceSlotCell {
  std::atomic<uint64_t> announced{0};
};
AnnounceSlotCell g_slots[kAnnounceSlots];

// Epoch 0 is reserved as the "not pinned" sentinel, so the counter starts
// at 1 and the first retire tag is >= 1.
std::atomic<uint64_t> g_epoch{1};

// Slot leasing. Unlike obs::internal::AssignShardSlot (monotonic ordinals,
// never reused — fine for counters, where an abandoned slot just holds a
// stale partial sum), announce slots MUST be recycled: a leaked slot holding
// a stale announce would block reclamation forever, and the stress suites
// churn hundreds of short-lived reader threads. A thread leases a slot on
// its first pin and its thread-exit destructor returns it to the free list.
std::mutex g_slot_mu;
std::vector<size_t> g_free_slots;
size_t g_next_unleased_slot = 0;

// Overflow pins (pool exhausted): a mutex-guarded multiset of announces
// whose minimum is mirrored into an atomic the reclaim scan reads. The
// mirror store is seq_cst, so it takes the announce's place in the safety
// argument of the header comment.
std::mutex g_overflow_mu;
std::multiset<uint64_t> g_overflow_announces;
std::atomic<uint64_t> g_overflow_min{0};

struct SlotLease {
  size_t index = kOverflowSlot;

  SlotLease() {
    std::lock_guard<std::mutex> lock(g_slot_mu);
    if (!g_free_slots.empty()) {
      index = g_free_slots.back();
      g_free_slots.pop_back();
    } else if (g_next_unleased_slot < kAnnounceSlots) {
      index = g_next_unleased_slot++;
    }
  }

  ~SlotLease() {
    if (index == kOverflowSlot) return;
    // The owning thread is exiting, so no pin of this thread is live and
    // the slot's announce is already 0.
    std::lock_guard<std::mutex> lock(g_slot_mu);
    g_free_slots.push_back(index);
  }
};

}  // namespace

size_t ThisThreadAnnounceSlot() {
  thread_local SlotLease lease;
  return lease.index;
}

// seq_cst, not relaxed: the safety argument needs the epoch read to precede
// the bump in the single total order whenever the subsequent pointer load
// precedes the publish — only then is the announce guaranteed <= the retire
// tag of any snapshot the pin can actually hold. (A seq_cst load is free on
// x86 and the pin path is still wait-free.)
uint64_t CurrentEpoch() { return g_epoch.load(std::memory_order_seq_cst); }

uint64_t BumpEpoch() { return g_epoch.fetch_add(1, std::memory_order_seq_cst); }

bool AnnounceSlot(size_t slot, uint64_t e) {
  std::atomic<uint64_t>& cell = g_slots[slot].announced;
  // A non-zero announce belongs to an enclosing pin on this same thread and
  // is <= e (the epoch counter is monotone), i.e. strictly more
  // conservative — keep it.
  if (cell.load(std::memory_order_relaxed) != 0) return false;
  cell.store(e, std::memory_order_seq_cst);
  return true;
}

void ClearSlot(size_t slot) {
  g_slots[slot].announced.store(0, std::memory_order_release);
}

void AnnounceOverflow(uint64_t e) {
  std::lock_guard<std::mutex> lock(g_overflow_mu);
  g_overflow_announces.insert(e);
  g_overflow_min.store(*g_overflow_announces.begin(),
                       std::memory_order_seq_cst);
}

void ClearOverflow(uint64_t e) {
  std::lock_guard<std::mutex> lock(g_overflow_mu);
  g_overflow_announces.erase(g_overflow_announces.find(e));
  g_overflow_min.store(
      g_overflow_announces.empty() ? 0 : *g_overflow_announces.begin(),
      std::memory_order_release);
}

uint64_t MinAnnounce() {
  uint64_t min = std::numeric_limits<uint64_t>::max();
  for (const AnnounceSlotCell& cell : g_slots) {
    uint64_t a = cell.announced.load(std::memory_order_seq_cst);
    if (a != 0 && a < min) min = a;
  }
  uint64_t ovf = g_overflow_min.load(std::memory_order_seq_cst);
  if (ovf != 0 && ovf < min) min = ovf;
  return min == std::numeric_limits<uint64_t>::max() ? 0 : min;
}

}  // namespace epoch_internal

EpochCatalog::Pin::Pin(const EpochCatalog& epochs) {
  uint64_t e = epoch_internal::CurrentEpoch();
  slot_ = epoch_internal::ThisThreadAnnounceSlot();
  if (slot_ != epoch_internal::kOverflowSlot) {
    owns_slot_ = epoch_internal::AnnounceSlot(slot_, e);
  } else {
    epoch_internal::AnnounceOverflow(e);
    announced_ = e;
  }
  // The announce above is seq_cst, so this load cannot return a snapshot a
  // writer scan already considered reclaimable (header comment).
  node_ = epochs.current_.load(std::memory_order_seq_cst);
}

EpochCatalog::Pin::~Pin() {
  if (slot_ != epoch_internal::kOverflowSlot) {
    if (owns_slot_) epoch_internal::ClearSlot(slot_);
  } else {
    epoch_internal::ClearOverflow(announced_);
  }
}

EpochCatalog::~EpochCatalog() {
  Node* node = current_.load(std::memory_order_relaxed);
  delete node;
  node = retired_head_;
  while (node != nullptr) {
    Node* next = node->retire_next;
    delete node;
    node = next;
  }
}

void EpochCatalog::Publish(Catalog snapshot, uint64_t version) {
  TYDER_SPAN("Epoch.Publish");
  std::lock_guard<std::mutex> lock(writer_mu_);
  Node* old = current_.load(std::memory_order_relaxed);
  // Drop only strictly-stale publishes. Same-version republish replaces:
  // Seed publishes the seeded catalog at the same (zero) version the empty
  // recovered catalog was published at.
  if (old != nullptr && version < old->version) return;  // stale publish
  Node* node = new Node(std::move(snapshot), version);
  current_.store(node, std::memory_order_seq_cst);
  uint64_t tag = epoch_internal::BumpEpoch();
  TYDER_COUNT("epoch.publishes");
  if (old != nullptr) {
    old->retire_tag = tag;
    old->retire_next = retired_head_;
    retired_head_ = old;
    TYDER_COUNT("epoch.retires");
  }
  ReclaimLocked();
}

size_t EpochCatalog::retired_pending() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  size_t n = 0;
  for (const Node* node = retired_head_; node != nullptr;
       node = node->retire_next) {
    ++n;
  }
  return n;
}

size_t EpochCatalog::TryReclaim() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return ReclaimLocked();
}

size_t EpochCatalog::ReclaimLocked() {
  if (retired_head_ == nullptr) return 0;
  uint64_t min = epoch_internal::MinAnnounce();
  size_t freed = 0;
  Node** link = &retired_head_;
  while (*link != nullptr) {
    Node* node = *link;
    // Safe once every live announce exceeds the tag (no announce at all
    // means no reader holds anything).
    if (min == 0 || node->retire_tag < min) {
      *link = node->retire_next;
      delete node;
      ++freed;
    } else {
      link = &node->retire_next;
    }
  }
  if (freed > 0) {
    reclaimed_.fetch_add(freed, std::memory_order_relaxed);
    TYDER_COUNT_N("epoch.reclaims", freed);
  }
  return freed;
}

}  // namespace tyder
