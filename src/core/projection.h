// The projection operation over types — tyder's primary public API.
// DeriveProjection runs the paper's full pipeline:
//
//   1. IsApplicable (Section 4.1): infer which methods survive on T̃.
//   2. FactorState (Section 5.1): refactor the hierarchy with surrogates;
//      the top surrogate is the derived type.
//   3. Augment set computation + Augment (Sections 6.3–6.4): state-less
//      surrogates needed by method-body retyping.
//   4. FactorMethods (Section 6.1): re-home applicable method signatures and
//      retype bodies.
//   5. (optional) verification that existing types kept exactly their state
//      and behavior, and that the result type-checks.

#ifndef TYDER_CORE_PROJECTION_H_
#define TYDER_CORE_PROJECTION_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/factor_methods.h"
#include "core/factor_state.h"
#include "core/is_applicable.h"
#include "methods/schema.h"
#include "obs/tracer.h"

namespace tyder {

struct ProjectionSpec {
  TypeId source = kInvalidType;
  std::vector<AttrId> attributes;  // the projection list
  std::string view_name;           // name of the derived type
};

struct ProjectionOptions {
  // Capture the derivation as a structured trace: when no obs::Tracer is
  // installed on the thread, DeriveProjection installs a local one for the
  // duration of the call and fills DerivationResult::events (one span per
  // paper phase, narration as instant events) plus the rendered
  // DerivationResult::trace lines. When a tracer is already installed (e.g.
  // tyderc --trace), events flow to it and are copied into the result.
  bool record_trace = false;
  // Run the behavior-preservation verifier against a pre-derivation snapshot
  // and fail the derivation on any violation. Failure contract: a verifier
  // rejection returns Status::Internal carrying the VerifyReport, and — like
  // every other failure in the pipeline — the schema is rolled back to its
  // pre-call state first (see the all-or-nothing guarantee below), so a
  // rejected derivation never leaves the half-refactored hierarchy live.
  bool verify = true;
};

struct DerivationResult {
  TypeId derived = kInvalidType;
  ProjectionSpec spec;  // the request that produced this derivation
  ApplicabilityResult applicability;
  SurrogateSet surrogates;
  std::set<TypeId> augment_z;            // the paper's Z
  std::vector<MethodRewrite> rewrites;
  // Structured trace (record_trace only): spans for DeriveProjection and the
  // IsApplicable / FactorState / Augment / FactorMethods / Verify phases,
  // with the per-step narration as instant events. Export with obs/export.h.
  std::vector<obs::TraceEvent> events;
  // Back-compat rendering of `events`: the IsApplicable + FactorState +
  // Augment + FactorMethods narration lines, in emission order.
  std::vector<std::string> trace;
};

// Derives Π_attributes(source) in place on `schema`.
//
// All-or-nothing guarantee: the pipeline runs inside a SchemaTransaction
// (core/transaction.h). On any non-OK return — invalid spec, a failure in any
// phase, or a verifier rejection — `schema` is rolled back to its pre-call
// state and serializes byte-identically to it; on OK the mutations commit.
Result<DerivationResult> DeriveProjection(Schema& schema,
                                          const ProjectionSpec& spec,
                                          const ProjectionOptions& options = {});

// Name-based convenience wrapper.
Result<DerivationResult> DeriveProjectionByName(
    Schema& schema, std::string_view source_type,
    const std::vector<std::string>& attribute_names, std::string_view view_name,
    const ProjectionOptions& options = {});

}  // namespace tyder

#endif  // TYDER_CORE_PROJECTION_H_
