#include "core/augment.h"

#include "common/failpoint.h"
#include "mir/dataflow.h"
#include "obs/tracer.h"

namespace tyder {

Result<std::set<TypeId>> ComputeAugmentSet(
    const Schema& schema, TypeId source,
    const std::vector<MethodId>& applicable_methods,
    const SurrogateSet& surrogates) {
  std::set<TypeId> x = surrogates.XSources();
  TYDER_ASSIGN_OR_RETURN(std::set<TypeId> y,
                         TypesAssignedFrom(schema, applicable_methods, x));
  // Beyond the paper's Y: an applicable method can have a source-related
  // formal S (source ≼ S) that carries no projected state, so FactorState
  // made no surrogate for it. The derived type must still inherit the method
  // through S̃ — add such formals so Augment creates state-less surrogates
  // for them (the paper's example has no such formal; the general case does).
  TypeId view = surrogates.Of(source);
  for (MethodId m : applicable_methods) {
    for (TypeId formal : schema.method(m).sig.params) {
      if (schema.types().IsSubtype(source, formal) &&
          !surrogates.Has(formal)) {
        // When FactorState reused an earlier factoring, the derived type
        // already sits below such formals (they are surrogates from the
        // prior derivation) — the method reaches it without a fresh
        // state-less surrogate, and surrogating them again would strand
        // their attributes below the retyped signatures.
        if (view != kInvalidType && schema.types().IsSubtype(view, formal)) {
          continue;
        }
        y.insert(formal);
      }
    }
  }
  // Result types of methods returning a parameter-reached value participate
  // in Y as well (Section 6.3: "The result type of the method is processed in
  // the same way").
  for (MethodId m : applicable_methods) {
    const Method& method = schema.method(m);
    if (method.body == nullptr) continue;
    TYDER_ASSIGN_OR_RETURN(FlowInfo flow, AnalyzeFlow(schema, m));
    for (int p : flow.return_reached_by) {
      if (x.count(method.sig.params[p]) > 0) {
        y.insert(method.sig.result);
        break;
      }
    }
  }
  std::set<TypeId> z;
  for (TypeId t : y) {
    if (x.count(t) == 0) z.insert(t);
  }
  return z;
}

namespace {

class Augmenter {
 public:
  Augmenter(Schema& schema, const std::set<TypeId>& z,
            SurrogateSet* surrogates, std::vector<std::string>* trace)
      : schema_(schema), z_(z), surrogates_(surrogates), trace_(trace) {}

  Status Run(TypeId t) {
    if (visited_.count(t) > 0) return Status::OK();
    visited_.insert(t);
    if (!GuardHolds(t)) return Status::OK();

    TypeId t_surrogate = surrogates_->Of(t);
    if (t_surrogate == kInvalidType) {
      return Status::Internal("Augment visited '" +
                              schema_.types().TypeName(t) +
                              "' before its surrogate exists");
    }
    Trace("Augment(" + schema_.types().TypeName(t) + ")");
    // Mid-phase failure site: stateless surrogates and edges partially added.
    TYDER_FAULT_POINT("augment.mid");

    // Copy: the loop body mutates supertype lists of *other* types, but the
    // surrogate prepend below edits s's list, and `t`'s own list stays fixed;
    // copy anyway for safety.
    std::vector<TypeId> supers = schema_.types().type(t).supertypes();
    for (size_t i = 0; i < supers.size(); ++i) {
      TypeId s = supers[i];
      if (s == t_surrogate) continue;
      if (!surrogates_->Has(s)) {
        TYDER_RETURN_IF_ERROR(CreateStatelessSurrogate(s));
      }
      TypeId s_surrogate = surrogates_->Of(s);
      if (!schema_.types().IsSubtype(t_surrogate, s_surrogate)) {
        InsertSupertypeRanked(schema_, surrogates_, t_surrogate, s_surrogate,
                              static_cast<int>(i));
        Trace("make " + schema_.types().TypeName(s_surrogate) +
              " a supertype of " + schema_.types().TypeName(t_surrogate) +
              " with precedence " + std::to_string(i));
      }
      TYDER_RETURN_IF_ERROR(Run(s));
    }
    return Status::OK();
  }

 private:
  // The paper's guard is "T has a supertype that is a subtype of one of the
  // types in Z". We additionally walk through supertypes that already carry a
  // surrogate, so that fresh state-less surrogates get connected upward to
  // the existing surrogate chains (needed when Z includes method formals that
  // sit between factored types).
  bool GuardHolds(TypeId t) const {
    for (TypeId s : schema_.types().SupertypeClosure(t)) {
      if (s == t) continue;
      if (surrogates_->Has(s)) return true;
      for (TypeId z : z_) {
        if (schema_.types().IsSubtype(s, z)) return true;
      }
    }
    return false;
  }

  Status CreateStatelessSurrogate(TypeId s) {
    std::string name =
        UniqueSurrogateName(schema_.types(), schema_.types().TypeName(s));
    TYDER_ASSIGN_OR_RETURN(TypeId surrogate,
                           schema_.types().DeclareSurrogate(name, s));
    schema_.types().mutable_type(s).PrependSupertype(surrogate);
    surrogates_->of.emplace(s, surrogate);
    surrogates_->created.push_back(surrogate);
    surrogates_->augment_created.insert(surrogate);
    Trace("create " + name + " [stateless surrogate of " +
          schema_.types().TypeName(s) + "]");
    return Status::OK();
  }

  void Trace(std::string line) { obs::Narrate(trace_, std::move(line)); }

  Schema& schema_;
  const std::set<TypeId>& z_;
  SurrogateSet* surrogates_;
  std::vector<std::string>* trace_;
  std::set<TypeId> visited_;
};

}  // namespace

Status Augment(Schema& schema, TypeId source, const std::set<TypeId>& z,
               SurrogateSet* surrogates, std::vector<std::string>* trace) {
  TYDER_FAULT_POINT("augment.before");
  if (z.empty()) return Status::OK();
  return Augmenter(schema, z, surrogates, trace).Run(source);
}

}  // namespace tyder
