#include "core/is_applicable.h"

#include <algorithm>
#include <unordered_map>

#include "common/failpoint.h"
#include "methods/applicability.h"
#include "mir/call_graph.h"
#include "obs/obs.h"

namespace tyder {

namespace {

enum class Verdict { kApplicable, kNotApplicable };

class Analyzer {
 public:
  Analyzer(const Schema& schema, TypeId source,
           const std::set<AttrId>& projection, bool record_trace)
      : schema_(schema),
        source_(source),
        projection_(projection),
        record_trace_(record_trace),
        state_(schema.NumMethods(), kUnknown) {}

  Result<ApplicabilityResult> Run() {
    TYDER_COUNT("applicability.runs");
    TYDER_FAULT_POINT("is_applicable.before");
    std::vector<MethodId> candidates =
        MethodsApplicableToType(schema_, source_);
    // The optimistic scheme can evict a settled method back to unknown when a
    // cycle partner fails; re-examine until a pass settles everything.
    // NotApplicable grows monotonically and evictions require a new
    // NotApplicable entry, so the number of passes is bounded by the number
    // of methods.
    bool unsettled = true;
    while (unsettled) {
      unsettled = false;
      for (MethodId m : candidates) {
        if (state_[m] != kUnknown) continue;
        TYDER_RETURN_IF_ERROR(Check(m).status());
        unsettled = true;
      }
    }
    ApplicabilityResult result;
    for (MethodId m : candidates) {
      if (state_[m] == kApplicable) {
        result.applicable.push_back(m);
      } else {
        result.not_applicable.push_back(m);
      }
    }
    result.trace = std::move(trace_);
    return result;
  }

 private:
  struct StackEntry {
    MethodId method;
    std::set<MethodId> dependency_list;
  };

  // Narration goes to the result's trace vector when requested and is
  // mirrored to the thread's tracer (the structured channel) when one is
  // installed.
  void Trace(const std::string& line) {
    obs::Narrate(record_trace_ ? &trace_ : nullptr, line);
  }
  std::string Label(MethodId m) const { return schema_.method(m).label.str(); }

  // The paper's IsApplicable(m, T, projection-list).
  Result<Verdict> Check(MethodId m) {
    TYDER_COUNT("applicability.method_checks");
    TYDER_FAULT_POINT("is_applicable.mid");
    if (state_[m] == kApplicable) return Verdict::kApplicable;
    if (state_[m] == kNotApplicable) return Verdict::kNotApplicable;

    const Method& method = schema_.method(m);
    if (method.kind != MethodKind::kGeneral) {
      return CheckAccessor(m);
    }

    // Cycle: optimistically assume applicable and remember every method
    // above m on the stack as contingent on m.
    for (StackEntry& entry : stack_) {
      if (entry.method != m) continue;
      bool found = false;
      for (const StackEntry& above : stack_) {
        if (found) entry.dependency_list.insert(above.method);
        if (above.method == m) found = true;
      }
      Trace("cycle: assume " + Label(m) + " applicable");
      return Verdict::kApplicable;
    }

    stack_.push_back(StackEntry{m, {}});
    Trace("check " + Label(m));

    TYDER_ASSIGN_OR_RETURN(std::vector<RelevantCall> calls,
                           ExtractRelevantCalls(schema_, m, source_));
    for (const RelevantCall& call : calls) {
      TYDER_ASSIGN_OR_RETURN(bool satisfied, CheckCall(call));
      if (!satisfied) return Fail(m, call);
    }

    // Success: dependents that assumed m applicable were right; nothing to
    // repair.
    stack_.pop_back();
    state_[m] = kApplicable;
    Trace(Label(m) + " -> Applicable");
    return Verdict::kApplicable;
  }

  Result<Verdict> CheckAccessor(MethodId m) {
    const Method& method = schema_.method(m);
    AttrId attr = method.attr;
    if (projection_.count(attr) > 0) {
      state_[m] = kApplicable;
      Trace("accessor " + Label(m) + " reads " +
            schema_.types().attribute(attr).name.str() +
            " (projected) -> Applicable");
      return Verdict::kApplicable;
    }
    state_[m] = kNotApplicable;
    Trace("accessor " + Label(m) + " reads " +
          schema_.types().attribute(attr).name.str() +
          " (not projected) -> NotApplicable");
    return Verdict::kNotApplicable;
  }

  // One generic-function call in the body: succeeds iff some candidate method
  // is applicable. Candidate set per the paper's two cases: with exactly one
  // source-related argument, substitute the source type T at that position;
  // with several, keep the original static types (a method must survive all
  // combinations of non-null T̃ substitutions, which the original-type
  // applicability set over-approximates exactly as the paper prescribes).
  Result<bool> CheckCall(const RelevantCall& call) {
    std::vector<TypeId> probe = call.arg_static_types;
    if (call.NumSourceRelated() == 1) {
      for (size_t j = 0; j < probe.size(); ++j) {
        if (call.arg_source_related[j]) probe[j] = source_;
      }
    }
    std::vector<MethodId> candidates =
        ApplicableMethods(schema_, call.gf, probe);
    for (MethodId candidate : candidates) {
      TYDER_ASSIGN_OR_RETURN(Verdict v, Check(candidate));
      if (v == Verdict::kApplicable) return true;
    }
    Trace("no applicable method for call to " +
          schema_.gf(call.gf).name.str());
    return false;
  }

  // Failure path: evict dependents (their status reverts to unknown — they
  // are *not* marked NotApplicable), mark m NotApplicable, pop the stack.
  Verdict Fail(MethodId m, const RelevantCall& call) {
    (void)call;
    for (MethodId d : stack_.back().dependency_list) {
      if (state_[d] == kApplicable) {
        state_[d] = kUnknown;
        Trace("evict " + Label(d) + " (assumed " + Label(m) +
              " applicable)");
      }
    }
    stack_.pop_back();
    state_[m] = kNotApplicable;
    Trace(Label(m) + " -> NotApplicable");
    return Verdict::kNotApplicable;
  }

  const Schema& schema_;
  TypeId source_;
  const std::set<AttrId>& projection_;
  bool record_trace_;

  // Per-method verdicts as a flat array (the hot loops probe these
  // constantly; method ids are dense).
  enum State : uint8_t { kUnknown = 0, kApplicable = 1, kNotApplicable = 2 };

  std::vector<StackEntry> stack_;
  std::vector<uint8_t> state_;
  std::vector<std::string> trace_;
};

}  // namespace

Result<ApplicabilityResult> ComputeApplicableMethods(
    const Schema& schema, TypeId source, const std::set<AttrId>& projection,
    bool record_trace) {
  if (source >= schema.types().NumTypes()) {
    return Status::InvalidArgument("source type id out of range");
  }
  for (AttrId a : projection) {
    if (a >= schema.types().NumAttributes() ||
        !schema.types().AttributeAvailableAt(source, a)) {
      return Status::InvalidArgument(
          "projection attribute not available at source type");
    }
  }
  return Analyzer(schema, source, projection, record_trace).Run();
}

}  // namespace tyder
