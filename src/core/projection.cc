#include "core/projection.h"

#include <optional>

#include "common/failpoint.h"
#include "core/augment.h"
#include "core/transaction.h"
#include "core/verify.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace tyder {

namespace {

Status ValidateSpec(const Schema& schema, const ProjectionSpec& spec) {
  const TypeGraph& graph = schema.types();
  if (spec.source >= graph.NumTypes()) {
    return Status::InvalidArgument("projection source type out of range");
  }
  if (graph.type(spec.source).kind() == TypeKind::kBuiltin) {
    return Status::InvalidArgument("cannot project over builtin type '" +
                                   graph.TypeName(spec.source) + "'");
  }
  if (graph.type(spec.source).detached()) {
    return Status::FailedPrecondition("source type was collapsed");
  }
  if (spec.attributes.empty()) {
    return Status::InvalidArgument("projection list must be non-empty");
  }
  std::set<AttrId> seen;
  for (AttrId a : spec.attributes) {
    if (a >= graph.NumAttributes()) {
      return Status::InvalidArgument("projection attribute id out of range");
    }
    if (!seen.insert(a).second) {
      return Status::InvalidArgument("duplicate projection attribute '" +
                                     graph.attribute(a).name.str() + "'");
    }
    if (!graph.AttributeAvailableAt(spec.source, a)) {
      return Status::InvalidArgument(
          "attribute '" + graph.attribute(a).name.str() +
          "' is not available at '" + graph.TypeName(spec.source) + "'");
    }
  }
  if (spec.view_name.empty()) {
    return Status::InvalidArgument("view name must be non-empty");
  }
  if (graph.FindType(spec.view_name).ok()) {
    return Status::AlreadyExists("a type named '" + spec.view_name +
                                 "' already exists");
  }
  return Status::OK();
}

}  // namespace

namespace {

// `snapshot` is the enclosing transaction's pre-derivation copy; the verifier
// compares against it, so the pipeline itself never copies the schema.
Result<DerivationResult> RunPipeline(Schema& schema, const Schema& snapshot,
                                     const ProjectionSpec& spec,
                                     const ProjectionOptions& options) {
  std::set<AttrId> projection(spec.attributes.begin(), spec.attributes.end());

  DerivationResult result;
  result.spec = spec;

  obs::ScopedSpan pipeline("DeriveProjection");
  pipeline.Attr("source", schema.types().TypeName(spec.source));
  pipeline.Attr("view", spec.view_name);
  pipeline.Attr("attributes", std::to_string(spec.attributes.size()));

  // 1. Method applicability (Section 4.1) — on the unmodified schema. The
  //    narration reaches the tracer; the structured channel supersedes
  //    ApplicabilityResult::trace here.
  {
    obs::ScopedSpan span("IsApplicable");
    TYDER_ASSIGN_OR_RETURN(
        result.applicability,
        ComputeApplicableMethods(schema, spec.source, projection,
                                 /*record_trace=*/false));
    span.Attr("applicable",
              std::to_string(result.applicability.applicable.size()));
    span.Attr("not_applicable",
              std::to_string(result.applicability.not_applicable.size()));
  }

  // 2. State factorization (Section 5.1).
  {
    obs::ScopedSpan span("FactorState");
    TYDER_ASSIGN_OR_RETURN(
        result.derived,
        FactorState(schema, spec.source, projection, spec.view_name,
                    &result.surrogates, nullptr));
    span.Attr("surrogates", std::to_string(result.surrogates.created.size()));
  }

  // 3. Hierarchy augmentation (Sections 6.3–6.4) — Z from def-use analysis
  //    of the original bodies.
  {
    obs::ScopedSpan span("Augment");
    TYDER_ASSIGN_OR_RETURN(
        result.augment_z,
        ComputeAugmentSet(schema, spec.source, result.applicability.applicable,
                          result.surrogates));
    TYDER_FAULT_POINT("augment.after_compute");
    TYDER_RETURN_IF_ERROR(Augment(schema, spec.source, result.augment_z,
                                  &result.surrogates, nullptr));
    span.Attr("z", std::to_string(result.augment_z.size()));
  }

  // 4. Method factorization (Section 6.1) with body retyping (Section 6.3).
  {
    obs::ScopedSpan span("FactorMethods");
    TYDER_ASSIGN_OR_RETURN(
        result.rewrites,
        FactorMethods(schema, spec.source, result.applicability.applicable,
                      result.surrogates, nullptr));
    span.Attr("rewrites", std::to_string(result.rewrites.size()));
  }

  // 5. Behavior preservation. A rejection here (or any earlier failure) is
  //    rolled back by the caller's SchemaTransaction.
  if (options.verify) {
    obs::ScopedSpan span("Verify");
    TYDER_FAULT_POINT("verify.before");
    VerifyReport report = VerifyDerivation(snapshot, schema, result);
    if (!report.ok()) {
      return Status::Internal("derivation broke an invariant:\n" +
                              report.ToString());
    }
  }
  return result;
}

}  // namespace

Result<DerivationResult> DeriveProjection(Schema& schema,
                                          const ProjectionSpec& spec,
                                          const ProjectionOptions& options) {
  TYDER_RETURN_IF_ERROR(ValidateSpec(schema, spec));
  TYDER_COUNT("projection.derivations");
  TYDER_TIMED("projection.derive_ns");

  // record_trace maps onto the tracer: install a thread-local one unless the
  // caller already did, run the pipeline under it, then render the legacy
  // string narration from the structured events.
  obs::Tracer local_tracer;
  std::optional<obs::ScopedTracer> install;
  if (options.record_trace && !obs::TracingActive()) {
    install.emplace(&local_tracer);
  }
  obs::Tracer* tracer = obs::CurrentTracer();
  size_t first_event = tracer != nullptr ? tracer->NumEvents() : 0;

  // All-or-nothing: any pipeline failure (including a verify rejection) rolls
  // the schema back to the transaction's snapshot before returning. The same
  // snapshot doubles as the verifier's pre-derivation reference.
  SchemaTransaction txn(schema);
  Result<DerivationResult> result =
      RunPipeline(schema, txn.snapshot(), spec, options);
  if (!result.ok()) return result;
  TYDER_RETURN_IF_ERROR(txn.Commit());
  if (options.record_trace && tracer != nullptr) {
    result->events.assign(tracer->events().begin() + first_event,
                          tracer->events().end());
    result->trace = obs::RenderNarration(result->events);
  }
  return result;
}

Result<DerivationResult> DeriveProjectionByName(
    Schema& schema, std::string_view source_type,
    const std::vector<std::string>& attribute_names, std::string_view view_name,
    const ProjectionOptions& options) {
  ProjectionSpec spec;
  TYDER_ASSIGN_OR_RETURN(spec.source, schema.types().FindType(source_type));
  for (const std::string& name : attribute_names) {
    TYDER_ASSIGN_OR_RETURN(AttrId a, schema.types().FindAttribute(name));
    spec.attributes.push_back(a);
  }
  spec.view_name = std::string(view_name);
  return DeriveProjection(schema, spec, options);
}

}  // namespace tyder
