// The other algebraic operations over types (paper Section 7 lists applying
// the methodology to the remaining operations as future work; these are the
// straightforward ones):
//
//   - Selection (σ): the derived type has the same attributes and behavior as
//     the source, so it is simply a direct subtype of the source — every
//     method remains applicable by inheritance, and no refactoring is needed.
//     (The selection predicate restricts the *extent*, handled in
//     instances/view_materialize.h.)
//
//   - Generalization (upward inheritance, ref [17]): the common projection of
//     two types — Π over the attributes available at both — reusing the full
//     projection machinery.

#ifndef TYDER_CORE_ALGEBRA_H_
#define TYDER_CORE_ALGEBRA_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/projection.h"
#include "methods/schema.h"

namespace tyder {

// Creates the selection view type as a direct subtype of `source`.
Result<TypeId> DeriveSelection(Schema& schema, TypeId source,
                               std::string_view view_name);

// Attributes available at both `a` and `b` (by attribute identity, which
// under globally-unique attribute names equals by-name matching).
std::vector<AttrId> CommonAttributes(const Schema& schema, TypeId a, TypeId b);

// Derives the generalization of `a` and `b`: Π_{CommonAttributes}(a). Fails
// if the common attribute set is empty.
Result<DerivationResult> DeriveGeneralization(
    Schema& schema, TypeId a, TypeId b, std::string_view view_name,
    const ProjectionOptions& options = {});

// Rename (ρ): a view over the full state of `source` whose listed attributes
// are additionally exposed under alias accessors (`get_<alias>` /
// `set_<alias>` read and write the *same* slots; the original accessors keep
// working). Attribute identity is untouched — renaming is an interface-level
// operation in a behavioral type system.
struct AttributeRename {
  std::string attribute;  // existing attribute name
  std::string alias;      // new public name
};
Result<DerivationResult> DeriveRenameView(
    Schema& schema, TypeId source, const std::vector<AttributeRename>& renames,
    std::string_view view_name, const ProjectionOptions& options = {});

}  // namespace tyder

#endif  // TYDER_CORE_ALGEBRA_H_
