#include "core/algebra.h"

#include "methods/accessor_gen.h"

namespace tyder {

Result<TypeId> DeriveSelection(Schema& schema, TypeId source,
                               std::string_view view_name) {
  if (source >= schema.types().NumTypes()) {
    return Status::InvalidArgument("source type id out of range");
  }
  // A selection view is an ordinary subtype (the catalog records its
  // provenance); kUser keeps it out of surrogate-specific machinery.
  TYDER_ASSIGN_OR_RETURN(TypeId view,
                         schema.types().DeclareType(view_name, TypeKind::kUser));
  TYDER_RETURN_IF_ERROR(schema.types().AddSupertype(view, source));
  return view;
}

std::vector<AttrId> CommonAttributes(const Schema& schema, TypeId a, TypeId b) {
  std::vector<AttrId> out;
  for (AttrId attr : schema.types().CumulativeAttributes(a)) {
    if (schema.types().AttributeAvailableAt(b, attr)) out.push_back(attr);
  }
  return out;
}

Result<DerivationResult> DeriveGeneralization(Schema& schema, TypeId a,
                                              TypeId b,
                                              std::string_view view_name,
                                              const ProjectionOptions& options) {
  std::vector<AttrId> common = CommonAttributes(schema, a, b);
  if (common.empty()) {
    return Status::FailedPrecondition(
        "types '" + schema.types().TypeName(a) + "' and '" +
        schema.types().TypeName(b) + "' share no attributes");
  }
  ProjectionSpec spec;
  spec.source = a;
  spec.attributes = common;
  spec.view_name = std::string(view_name);
  return DeriveProjection(schema, spec, options);
}

Result<DerivationResult> DeriveRenameView(
    Schema& schema, TypeId source, const std::vector<AttributeRename>& renames,
    std::string_view view_name, const ProjectionOptions& options) {
  if (renames.empty()) {
    return Status::InvalidArgument("rename view needs at least one alias");
  }
  // Resolve and validate the aliases up front, before mutating anything.
  std::vector<std::pair<AttrId, std::string>> resolved;
  std::set<std::string> used;
  for (const AttributeRename& r : renames) {
    TYDER_ASSIGN_OR_RETURN(AttrId attr,
                           schema.types().FindAttribute(r.attribute));
    if (!schema.types().AttributeAvailableAt(source, attr)) {
      return Status::InvalidArgument("attribute '" + r.attribute +
                                     "' is not available at the source type");
    }
    if (r.alias.empty() || !used.insert(r.alias).second) {
      return Status::InvalidArgument("alias '" + r.alias +
                                     "' is empty or duplicated");
    }
    if (schema.types().FindAttribute(r.alias).ok()) {
      return Status::AlreadyExists("alias '" + r.alias +
                                   "' collides with an existing attribute");
    }
    resolved.emplace_back(attr, r.alias);
  }
  // The view keeps the full state; projection machinery does the factoring.
  ProjectionSpec spec;
  spec.source = source;
  spec.attributes = schema.types().CumulativeAttributes(source);
  spec.view_name = std::string(view_name);
  TYDER_ASSIGN_OR_RETURN(DerivationResult result,
                         DeriveProjection(schema, spec, options));
  for (const auto& [attr, alias] : resolved) {
    TYDER_RETURN_IF_ERROR(
        GenerateAliasReader(schema, attr, alias, result.derived).status());
    TYDER_RETURN_IF_ERROR(
        GenerateAliasMutator(schema, attr, alias, result.derived).status());
  }
  return result;
}

}  // namespace tyder
