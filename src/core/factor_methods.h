// FactorMethods (paper Sections 6.1–6.3): re-homes each applicable method
// onto the surrogate types. Because a surrogate is the highest-precedence
// direct supertype of its source, a method m(…, Tᵢ, …) applicable to the
// derived type can be treated as m(…, T̃ᵢ, …) — the original types keep the
// method through inheritance, and the derived type gains it.
//
// Signature rewriting alone can introduce type errors in bodies (assignments
// from a now-surrogate-typed parameter into a local of the original type);
// the declarations of every local in the reachability set of a converted
// parameter are therefore retyped to the corresponding surrogate (created by
// FactorState or Augment), and result types are processed the same way.

#ifndef TYDER_CORE_FACTOR_METHODS_H_
#define TYDER_CORE_FACTOR_METHODS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/factor_state.h"
#include "methods/schema.h"

namespace tyder {

struct MethodRewrite {
  MethodId method = kInvalidMethod;
  Signature old_sig;
  Signature new_sig;
  bool body_changed = false;
  // The pre-rewrite body (shared, immutable); lets RevertDerivation restore
  // the method exactly.
  ExprPtr old_body;
};

// Rewrites every method in `applicable_methods` in place (signature + body).
// Must run after FactorState and Augment so all needed surrogates exist.
// A formal type Tᵢ is substituted by its surrogate when it has a FactorState
// (X) surrogate — the paper's rule — or when it is source-related
// (source ≼ Tᵢ) with an Augment surrogate, which is what lets the derived
// type inherit methods whose formals carry no projected state. Local
// declarations and result types reached by converted parameters are retyped
// with X or Augment surrogates as available (Section 6.3).
Result<std::vector<MethodRewrite>> FactorMethods(
    Schema& schema, TypeId source,
    const std::vector<MethodId>& applicable_methods,
    const SurrogateSet& surrogates, std::vector<std::string>* trace);

}  // namespace tyder

#endif  // TYDER_CORE_FACTOR_METHODS_H_
