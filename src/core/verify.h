// Behavior-preservation verification. The paper's central guarantee
// (Sections 1, 5): after a derivation, "existing types are not affected:
// they must have both the same state and the same behavior as before". This
// module checks that guarantee mechanically against a pre-derivation
// snapshot:
//
//   - structural validity of the refactored schema;
//   - static type-correctness of every (rewritten) method body;
//   - cumulative state of every pre-existing type unchanged;
//   - dispatch unchanged: every generic-function call over pre-existing
//     argument types selects the same method as before;
//   - the derived type's state is exactly the projection list, and its
//     behavior is exactly the Applicable set.

#ifndef TYDER_CORE_VERIFY_H_
#define TYDER_CORE_VERIFY_H_

#include <string>
#include <vector>

#include "core/projection.h"
#include "methods/schema.h"

namespace tyder {

struct VerifyReport {
  std::vector<std::string> issues;

  bool ok() const { return issues.empty(); }
  std::string ToString() const;
};

// `before` is a snapshot taken just before DeriveProjection mutated `after`.
VerifyReport VerifyDerivation(const Schema& before, const Schema& after,
                              const DerivationResult& result);

// The dispatch-preservation check alone (also used by benches): every call
// m(t1, …, tn) over types that exist in `before` dispatches identically in
// `after`. Exhaustive for arities ≤ 2 over all pre-existing types.
void CheckDispatchPreserved(const Schema& before, const Schema& after,
                            std::vector<std::string>* issues);

}  // namespace tyder

#endif  // TYDER_CORE_VERIFY_H_
