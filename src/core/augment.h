// Augment (paper Sections 6.3–6.4): after FactorState, converting method
// signatures to surrogate types can break assignments inside method bodies
// (`g: G = c` type-checks only if the retyped c's surrogate is a subtype of
// g's type). The fix is to retype the declarations of every local reached by
// a converted parameter — which may require surrogates for types FactorState
// never visited. Augment computes that set and extends the hierarchy with
// *state-less* surrogates.

#ifndef TYDER_CORE_AUGMENT_H_
#define TYDER_CORE_AUGMENT_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/factor_state.h"
#include "methods/schema.h"

namespace tyder {

// The paper's sets:
//   X = source types factored by FactorState (surrogates.XSources()),
//   Y = types transitively assigned a value of a type in X by an applicable
//       method (declared types of parameter-reached locals, plus result types
//       of methods returning parameter-reached values), plus — beyond the
//       paper — source-related method formals that carry no projected state
//       (the derived type must inherit those methods through a state-less
//       surrogate too),
//   Z = Y − X.
// Computed by definition-use flow analysis over the *original* bodies.
Result<std::set<TypeId>> ComputeAugmentSet(
    const Schema& schema, TypeId source,
    const std::vector<MethodId>& applicable_methods,
    const SurrogateSet& surrogates);

// The paper's Augment(T, Z): walks the supertype structure above `source`,
// creating state-less surrogates and mirroring precedence edges so that every
// type in Z has a surrogate correctly positioned above the derived type.
// New surrogates are recorded in `surrogates` (flagged augment_created).
Status Augment(Schema& schema, TypeId source, const std::set<TypeId>& z,
               SurrogateSet* surrogates, std::vector<std::string>* trace);

}  // namespace tyder

#endif  // TYDER_CORE_AUGMENT_H_
