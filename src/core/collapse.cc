#include "core/collapse.h"

#include <algorithm>

#include "common/failpoint.h"
#include "core/transaction.h"
#include "mir/expr.h"

namespace tyder {

namespace {

// Types mentioned by any method signature or body declaration.
std::set<TypeId> ReferencedTypes(const Schema& schema) {
  std::set<TypeId> out;
  for (MethodId m = 0; m < schema.NumMethods(); ++m) {
    const Method& method = schema.method(m);
    for (TypeId t : method.sig.params) out.insert(t);
    out.insert(method.sig.result);
    if (method.body != nullptr) {
      VisitPreorder(method.body, [&out](const Expr& e) {
        if (e.kind == ExprKind::kDecl) out.insert(e.decl_type);
      });
    }
  }
  // Attribute value types are observable too.
  for (AttrId a = 0; a < schema.types().NumAttributes(); ++a) {
    out.insert(schema.types().attribute(a).value_type);
  }
  return out;
}

bool CollapsibleWith(const Schema& schema, TypeId t,
                     const std::set<TypeId>& keep,
                     const std::set<TypeId>& referenced) {
  const Type& type = schema.types().type(t);
  return type.kind() == TypeKind::kSurrogate && !type.detached() &&
         type.local_attributes().empty() && keep.count(t) == 0 &&
         referenced.count(t) == 0;
}

// Splices `t` out: every direct subtype replaces its edge to `t` with `t`'s
// supertypes (in order, at the same precedence position, skipping ones it
// already has), then `t` is detached.
void Splice(Schema& schema, TypeId t) {
  std::vector<TypeId> supers = schema.types().type(t).supertypes();
  for (TypeId sub = 0; sub < schema.types().NumTypes(); ++sub) {
    if (sub == t) continue;
    Type& sub_type = schema.types().mutable_type(sub);
    if (!sub_type.HasDirectSupertype(t)) continue;
    // Find t's precedence position, remove it, insert t's supers there.
    const std::vector<TypeId>& list = sub_type.supertypes();
    size_t pos = static_cast<size_t>(
        std::find(list.begin(), list.end(), t) - list.begin());
    sub_type.RemoveSupertype(t);
    size_t insert_at = pos;
    for (TypeId s : supers) {
      if (sub_type.HasDirectSupertype(s)) continue;
      sub_type.InsertSupertypeAt(insert_at, s);
      ++insert_at;
    }
  }
  Type& type = schema.types().mutable_type(t);
  while (!type.supertypes().empty()) {
    type.RemoveSupertype(type.supertypes().front());
  }
  type.set_detached(true);
}

}  // namespace

bool IsCollapsible(const Schema& schema, TypeId t,
                   const std::set<TypeId>& keep) {
  return CollapsibleWith(schema, t, keep, ReferencedTypes(schema));
}

Result<CollapseReport> CollapseEmptySurrogates(Schema& schema,
                                               const std::set<TypeId>& keep) {
  // All-or-nothing: a failure mid-fixpoint (or a final validation failure)
  // rolls the schema back to its pre-call state.
  SchemaTransaction txn(schema);
  TYDER_FAULT_POINT("collapse.before");
  CollapseReport report;
  // Referenced-type set is collapse-invariant (collapse edits only edges),
  // so one computation serves the whole fixpoint loop.
  std::set<TypeId> referenced = ReferencedTypes(schema);
  bool changed = true;
  while (changed) {
    changed = false;
    for (TypeId t = 0; t < schema.types().NumTypes(); ++t) {
      if (!CollapsibleWith(schema, t, keep, referenced)) continue;
      Splice(schema, t);
      report.collapsed.push_back(t);
      changed = true;
      // Mid-phase failure site: this surrogate already spliced out.
      TYDER_FAULT_POINT("collapse.mid");
    }
  }
  TYDER_RETURN_IF_ERROR(schema.Validate());
  TYDER_RETURN_IF_ERROR(txn.Commit());
  return report;
}

}  // namespace tyder
