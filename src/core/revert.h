// RevertDerivation: the inverse of DeriveProjection — drop a derived view
// type and restore the schema to its pre-derivation shape. Possible because
// the derivation records everything it did: the surrogate set (attribute
// moves are recoverable from surrogate-local attributes) and every method
// rewrite (old signature and body).
//
// Reverting is refused when anything outside the derivation observes its
// surrogates: a type added later that inherits from one, or a method (not in
// the rewrite set) whose signature or body mentions one. Surrogate nodes are
// detached, not erased, so ids stay stable.

#ifndef TYDER_CORE_REVERT_H_
#define TYDER_CORE_REVERT_H_

#include "common/status.h"
#include "core/projection.h"
#include "methods/schema.h"

namespace tyder {

// All-or-nothing guarantee: runs inside a SchemaTransaction — on any non-OK
// return (refused revert or mid-unwind failure) the schema is rolled back to
// its pre-call state and serializes byte-identically to it.
Status RevertDerivation(Schema& schema, const DerivationResult& derivation);

}  // namespace tyder

#endif  // TYDER_CORE_REVERT_H_
