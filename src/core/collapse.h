// Empty-surrogate collapse — the paper's Section 7 open problem: "it needs to
// be investigated how the number of surrogate types with empty states can be
// reduced in the refactored type hierarchy, particularly when views are
// defined over views."
//
// A surrogate is collapsible when nothing observes it: it carries no local
// attributes, no method signature or body declaration mentions it, and the
// caller has not marked it protected (derived view types stay). Collapsing
// splices the surrogate out — each direct subtype inherits the surrogate's
// supertypes at the surrogate's precedence position — and detaches the node.
// Because nothing references a collapsed type, cumulative state and dispatch
// over all remaining types are unchanged (re-checked by tests and the
// views-over-views ablation bench).

#ifndef TYDER_CORE_COLLAPSE_H_
#define TYDER_CORE_COLLAPSE_H_

#include <set>
#include <vector>

#include "common/result.h"
#include "methods/schema.h"

namespace tyder {

struct CollapseReport {
  std::vector<TypeId> collapsed;  // in collapse order
};

// Collapses every collapsible surrogate, iterating to fixpoint. Types in
// `keep` are never collapsed (pass the derived view types the catalog still
// exposes).
//
// All-or-nothing guarantee: runs inside a SchemaTransaction — on any non-OK
// return the schema is rolled back to its pre-call state (no surrogate stays
// half-spliced) and serializes byte-identically to it.
Result<CollapseReport> CollapseEmptySurrogates(Schema& schema,
                                               const std::set<TypeId>& keep);

// True iff `t` could be collapsed right now (exposed for tests/benches).
bool IsCollapsible(const Schema& schema, TypeId t,
                   const std::set<TypeId>& keep);

}  // namespace tyder

#endif  // TYDER_CORE_COLLAPSE_H_
