// DeriveBatch: analyze many projections of one schema concurrently, then
// commit serially. The expensive half of a derivation — IsApplicable over the
// method set — only reads the schema, so a batch fans those analyses out to a
// worker pool over the shared, structurally frozen schema (the subtype
// closure, dispatch tables, and relevant-call cache are all safe for
// concurrent readers). Mutation stays single-threaded: the apply phase runs
// each passing projection through DeriveProjection, whose SchemaTransaction
// already serializes commit-or-rollback.

#ifndef TYDER_CORE_DERIVE_BATCH_H_
#define TYDER_CORE_DERIVE_BATCH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/projection.h"
#include "methods/schema.h"

namespace tyder {

struct BatchDeriveOptions {
  // Worker threads for the analysis phase. Values < 1 are treated as 1;
  // jobs == 1 analyzes on the calling thread with no pool.
  int jobs = 1;
  // Commit each projection whose analysis succeeded (phase 2, serial, in
  // input order). When false the batch is analysis-only: the schema is left
  // untouched and each item reports its applicability partition.
  bool apply = true;
  // Forwarded to DeriveProjection when applying.
  bool verify = true;
};

struct BatchItemResult {
  ProjectionSpec spec;
  // First failure for this item (analysis or apply); other items are
  // unaffected — batch errors are isolated per projection.
  Status status;
  // Phase-1 output: the applicable / not-applicable method partition for the
  // projection, computed against the pre-batch schema.
  ApplicabilityResult applicability;
  // The derived type, when the projection was applied successfully.
  TypeId derived = kInvalidType;
  bool applied = false;
};

struct BatchDeriveReport {
  std::vector<BatchItemResult> items;  // one per spec, in input order
  int analyzed_ok = 0;
  int applied = 0;
  int failed = 0;
};

// Runs the batch. Never fails as a whole: per-item failures are recorded in
// the corresponding BatchItemResult and the schema keeps every successfully
// applied projection (each item commits independently).
BatchDeriveReport DeriveBatch(Schema& schema,
                              const std::vector<ProjectionSpec>& specs,
                              const BatchDeriveOptions& options = {});

// Resolves a name-based projection request ("Person", {"name","age"}, "V")
// against the schema. Fails with NotFound on unknown names.
Result<ProjectionSpec> ResolveProjectionSpec(
    const Schema& schema, std::string_view source_type,
    const std::vector<std::string>& attribute_names,
    std::string_view view_name);

}  // namespace tyder

#endif  // TYDER_CORE_DERIVE_BATCH_H_
