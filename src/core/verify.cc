#include "core/verify.h"

#include <algorithm>
#include <set>

#include "common/failpoint.h"
#include "methods/applicability.h"
#include "methods/precedence.h"
#include "mir/type_check.h"
#include "obs/obs.h"

namespace tyder {

namespace {

std::set<Symbol> CumulativeAttrNames(const Schema& schema, TypeId t) {
  std::set<Symbol> names;
  for (AttrId a : schema.types().CumulativeAttributes(t)) {
    names.insert(schema.types().attribute(a).name);
  }
  return names;
}

void CheckStatePreserved(const Schema& before, const Schema& after,
                         std::vector<std::string>* issues) {
  for (TypeId t = 0; t < before.types().NumTypes(); ++t) {
    std::set<Symbol> pre = CumulativeAttrNames(before, t);
    std::set<Symbol> post = CumulativeAttrNames(after, t);
    if (pre != post) {
      issues->push_back("cumulative state of '" + before.types().TypeName(t) +
                        "' changed");
    }
  }
}

void CheckDerivedType(const Schema& after, const DerivationResult& result,
                      std::vector<std::string>* issues) {
  TypeId derived = result.derived;
  if (derived >= after.types().NumTypes()) {
    issues->push_back("derived type id out of range");
    return;
  }
  // State: the derived type's cumulative attributes are exactly the
  // projection list.
  std::set<AttrId> expected(result.spec.attributes.begin(),
                            result.spec.attributes.end());
  std::vector<AttrId> actual_list = after.types().CumulativeAttributes(derived);
  std::set<AttrId> actual(actual_list.begin(), actual_list.end());
  if (!expected.empty() &&
      (expected != actual || actual_list.size() != actual.size())) {
    issues->push_back(
        "derived type state differs from the projection list");
  }
  for (MethodId m : result.applicability.applicable) {
    if (!ApplicableToType(after, m, derived)) {
      issues->push_back("method '" + after.method(m).label.str() +
                        "' was inferred applicable but is not applicable to "
                        "the derived type after factoring");
    }
  }
  for (MethodId m : result.applicability.not_applicable) {
    if (ApplicableToType(after, m, derived)) {
      issues->push_back("method '" + after.method(m).label.str() +
                        "' was inferred not applicable but is applicable to "
                        "the derived type after factoring");
    }
  }
}

}  // namespace

void CheckDispatchPreserved(const Schema& before, const Schema& after,
                            std::vector<std::string>* issues) {
  size_t n = before.types().NumTypes();
  for (GfId g = 0; g < before.NumGenericFunctions(); ++g) {
    const GenericFunction& gf = before.gf(g);
    auto compare = [&](const std::vector<TypeId>& args) {
      // An exhaustive sweep over (gf, type tuple) space: every probe is a
      // distinct call site, so going through Dispatch() would pay the
      // call-site cache (lookup + insert) and NotFound-string machinery
      // ~types^arity times for zero reuse. Compare the specificity order
      // directly — the dispatch outcome is its front (or NotFound if empty).
      TYDER_COUNT("verify.dispatch_probes");
      std::vector<MethodId> pre = SortBySpecificity(before, g, args);
      std::vector<MethodId> post = SortBySpecificity(after, g, args);
      bool same = pre.empty() == post.empty() &&
                  (pre.empty() || pre.front() == post.front());
      if (!same) {
        std::string call = gf.name.str() + "(";
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) call += ", ";
          call += before.types().TypeName(args[i]);
        }
        call += ")";
        issues->push_back("dispatch of " + call + " changed");
      }
    };
    if (gf.arity == 1) {
      for (TypeId t = 0; t < n; ++t) compare({t});
    } else if (gf.arity == 2) {
      for (TypeId t1 = 0; t1 < n; ++t1) {
        for (TypeId t2 = 0; t2 < n; ++t2) compare({t1, t2});
      }
    } else {
      // Higher arities: diagonal plus pairwise-with-first-type sample.
      for (TypeId t = 0; t < n; ++t) {
        compare(std::vector<TypeId>(static_cast<size_t>(gf.arity), t));
      }
    }
  }
}

std::string VerifyReport::ToString() const {
  if (ok()) return "OK";
  std::string out;
  for (const std::string& issue : issues) {
    out += issue;
    out += "\n";
  }
  return out;
}

VerifyReport VerifyDerivation(const Schema& before, const Schema& after,
                              const DerivationResult& result) {
  VerifyReport report;
  // Fault point driving the genuine report-rejection path (the pipeline turns
  // a non-empty report into Status::Internal and rolls the schema back).
  if (TYDER_FAULT_CONSUME("verify.force_failure")) {
    report.issues.push_back("fault injected at 'verify.force_failure'");
  }
  Status valid = after.Validate();
  if (!valid.ok()) {
    report.issues.push_back("schema invalid after derivation: " +
                            valid.ToString());
  }
  Status typed = TypeCheckSchema(after);
  if (!typed.ok()) {
    report.issues.push_back("schema fails static type checking: " +
                            typed.ToString());
  }
  CheckStatePreserved(before, after, &report.issues);
  CheckDispatchPreserved(before, after, &report.issues);
  CheckDerivedType(after, result, &report.issues);
  return report;
}

}  // namespace tyder
