// SchemaEpoch layer: copy-on-write catalog snapshots with epoch-based
// reclamation, so IsSubtype / dispatch / query run lock-free against a
// frozen schema while writers commit.
//
// Model. Every committed transaction publishes an immutable Catalog snapshot
// via a single atomic pointer swap (EpochCatalog::Publish). Readers pin the
// current snapshot with a wait-free guard (EpochCatalog::Pin): one epoch
// load, one store into the thread's own cache-line-sized announce slot
// (modeled on obs/sharded_counter.h's per-thread-slot design), one pointer
// load — no CAS loop, no retry, no lock. A retired snapshot is reclaimed
// only when no reader can still observe it.
//
// Safety argument (all announce/pointer accesses are seq_cst; E is the value
// of the global epoch counter after the bump that follows a publish):
//
//   reader:  e = epoch.load;  slot.store(e);  p = current.load;
//   writer:  current.store(new);  tag = epoch.fetch_add(1);  retire(old,tag);
//
// If the reader's pointer load returned `old`, that load preceded the
// writer's `current.store(new)` in the seq_cst total order, so the reader's
// epoch load preceded the bump and e <= tag. Contrapositive: a slot
// announcing a value > tag cannot hold the retired snapshot — so `old` is
// reclaimed once every non-zero announce slot exceeds its tag. A writer scan
// that misses an in-flight announce is equally safe: the scan then precedes
// the announce in the total order, so the reader's subsequent pointer load
// follows `current.store(new)` and returns the new snapshot, never the
// reclaimed one. Stale-low announces only ever delay reclamation.
//
// Nested pins on one thread share the slot: the outermost pin owns it and
// inner pins never overwrite the (older, therefore more conservative)
// announce. Announce slots live in a process-wide pool with free-list reuse
// at thread exit, so stress suites that churn hundreds of short-lived
// threads keep the wait-free path; threads beyond the pool share a
// mutex-guarded overflow set whose minimum is exported to the scan.
//
// Writers (Publish / TryReclaim) serialize on an internal mutex; the storage
// layer calls Publish from the group-commit leader (storage/wal.h) after the
// batch fsync, so an epoch is observable only once its records are durable.
// Destruction requires external quiescence: no live Pin may outlive its
// EpochCatalog.

#ifndef TYDER_CORE_EPOCH_H_
#define TYDER_CORE_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "catalog/catalog.h"

namespace tyder {

namespace epoch_internal {
// The calling thread's announce slot, leased from the process-wide pool
// (free-listed back at thread exit). Returns kOverflowSlot when the pool is
// exhausted; the pin then takes the mutex-guarded overflow path.
inline constexpr size_t kOverflowSlot = static_cast<size_t>(-1);
size_t ThisThreadAnnounceSlot();

// Announce / overflow primitives shared by every EpochCatalog (the epoch
// counter is process-wide, so one slot pool serves all instances; a foreign
// instance's reader merely delays reclamation, never unblocks it wrongly).
uint64_t CurrentEpoch();
uint64_t BumpEpoch();  // returns the pre-bump value (the retire tag)
// Announces `e` in `slot` if the slot is free; returns true when this call
// now owns the slot (and must clear it on unpin).
bool AnnounceSlot(size_t slot, uint64_t e);
void ClearSlot(size_t slot);
void AnnounceOverflow(uint64_t e);
void ClearOverflow(uint64_t e);
// The smallest live announce across slots and overflow; 0 when none.
uint64_t MinAnnounce();
}  // namespace epoch_internal

// An immutable published Catalog snapshot plus the version (WAL lsn) it
// corresponds to. Readers access it only through EpochCatalog::Pin.
class EpochCatalog {
  struct Node;  // defined below; forward-declared so Pin can hold one

 public:
  EpochCatalog() = default;
  // Requires quiescence: no concurrent Pin/Publish. Frees every snapshot.
  ~EpochCatalog();

  EpochCatalog(const EpochCatalog&) = delete;
  EpochCatalog& operator=(const EpochCatalog&) = delete;

  // Publishes `snapshot` as the new current epoch iff `version` advances
  // past the published version (stale publishes are dropped — the group
  // commit leader publishes batches in order, but a Compact republish may
  // race a later batch). Retires the previous snapshot and opportunistically
  // reclaims whatever no reader can still observe.
  void Publish(Catalog snapshot, uint64_t version);

  // Version of the current published snapshot; 0 before the first Publish.
  uint64_t published_version() const {
    const Node* node = current_.load(std::memory_order_acquire);
    return node != nullptr ? node->version : 0;
  }

  // Snapshots freed so far / retired but still pinned (reclamation tests).
  uint64_t reclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }
  size_t retired_pending() const;
  // Scans the announce slots and frees every retired snapshot no reader can
  // observe; returns how many were freed. Publish does this implicitly.
  size_t TryReclaim();

  // Wait-free reader guard. The pinned snapshot (and every cache hanging off
  // its Schema — ancestor bitsets, PIC mask tables) stays valid and
  // internally consistent for the guard's lifetime, no matter how many
  // epochs writers publish and retire meanwhile.
  class Pin {
   public:
    explicit Pin(const EpochCatalog& epochs);
    ~Pin();

    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    // nullptr iff nothing has been published yet.
    const Catalog* get() const {
      return node_ != nullptr ? &node_->snapshot : nullptr;
    }
    const Catalog& operator*() const { return node_->snapshot; }
    const Catalog* operator->() const { return &node_->snapshot; }
    uint64_t version() const { return node_ != nullptr ? node_->version : 0; }

   private:
    const Node* node_;
    size_t slot_;
    bool owns_slot_ = false;
    uint64_t announced_ = 0;  // overflow path only
  };

 private:
  struct Node {
    Catalog snapshot;
    uint64_t version = 0;
    uint64_t retire_tag = 0;  // epoch at retirement; 0 while current
    Node* retire_next = nullptr;
    Node(Catalog s, uint64_t v) : snapshot(std::move(s)), version(v) {}
  };

  size_t ReclaimLocked();  // requires writer_mu_

  std::atomic<Node*> current_{nullptr};
  mutable std::mutex writer_mu_;  // serializes Publish / reclaim scans
  Node* retired_head_ = nullptr;  // guarded by writer_mu_
  std::atomic<uint64_t> reclaimed_{0};
};

}  // namespace tyder

#endif  // TYDER_CORE_EPOCH_H_
