#include "core/factor_methods.h"

#include "common/failpoint.h"
#include "mir/dataflow.h"
#include "obs/tracer.h"

namespace tyder {

namespace {

// True iff `surrogate` is a FactorState (state-carrying) surrogate.
bool IsXSurrogate(const SurrogateSet& surrogates, TypeId surrogate) {
  return surrogates.augment_created.count(surrogate) == 0;
}

}  // namespace

Result<std::vector<MethodRewrite>> FactorMethods(
    Schema& schema, TypeId source,
    const std::vector<MethodId>& applicable_methods,
    const SurrogateSet& surrogates, std::vector<std::string>* trace) {
  TYDER_FAULT_POINT("factor_methods.before");
  std::vector<MethodRewrite> rewrites;
  for (MethodId m : applicable_methods) {
    const Method& method = schema.method(m);
    MethodRewrite rw;
    rw.method = m;
    rw.old_sig = method.sig;
    rw.new_sig = method.sig;
    rw.old_body = method.body;

    // Signature: Tᵢ → T̃ᵢ for every formal with an X surrogate. Track which
    // parameter positions were converted — they seed the body retyping.
    std::set<int> converted_params;
    for (size_t i = 0; i < rw.new_sig.params.size(); ++i) {
      TypeId formal = rw.new_sig.params[i];
      TypeId surrogate = surrogates.Of(formal);
      if (surrogate == kInvalidType) continue;
      bool substitute = IsXSurrogate(surrogates, surrogate) ||
                        schema.types().IsSubtype(source, formal);
      if (substitute) {
        rw.new_sig.params[i] = surrogate;
        converted_params.insert(static_cast<int>(i));
      }
    }

    // Body: retype declarations of locals reached by a converted parameter.
    // The flow analysis must run against the *old* signature (it only uses
    // parameter indices, so running it before the signature swap is safe).
    if (method.body != nullptr && !converted_params.empty()) {
      TYDER_ASSIGN_OR_RETURN(FlowInfo flow, AnalyzeFlow(schema, m));
      std::set<Symbol> retype;
      for (const auto& [var, reached_by] : flow.var_reached_by) {
        for (int p : reached_by) {
          if (converted_params.count(p) > 0) {
            retype.insert(var);
            break;
          }
        }
      }
      Status failure = Status::OK();
      ExprPtr new_body = RewriteBottomUp(
          method.body, [&](const ExprPtr& node) -> ExprPtr {
            if (node->kind != ExprKind::kDecl || retype.count(node->var) == 0) {
              return node;
            }
            TypeId surrogate = surrogates.Of(node->decl_type);
            if (surrogate == kInvalidType) {
              failure = Status::Internal(
                  "no surrogate for retyped local '" + node->var.str() +
                  ": " + schema.types().TypeName(node->decl_type) +
                  "' (Augment should have created it)");
              return node;
            }
            auto copy = std::make_shared<Expr>(*node);
            copy->decl_type = surrogate;
            return copy;
          });
      TYDER_RETURN_IF_ERROR(failure);
      if (new_body != method.body) {
        schema.SetMethodBody(m, new_body);
        rw.body_changed = true;
      }

      // Result type: processed the same way — retyped when a converted
      // parameter reaches a returned value.
      bool result_reached = false;
      for (int p : flow.return_reached_by) {
        if (converted_params.count(p) > 0) {
          result_reached = true;
          break;
        }
      }
      if (result_reached) {
        TypeId surrogate = surrogates.Of(rw.new_sig.result);
        if (surrogate != kInvalidType) rw.new_sig.result = surrogate;
      }
    }

    if (!(rw.new_sig == rw.old_sig)) {
      if (obs::NarrationRequested(trace)) {
        obs::Narrate(
            trace,
            method.label.str() + ": " +
                SignatureToString(schema.types(),
                                  schema.gf(method.gf).name.view(),
                                  rw.old_sig) +
                "  =>  " +
                SignatureToString(schema.types(),
                                  schema.gf(method.gf).name.view(),
                                  rw.new_sig));
      }
      schema.SetMethodSignature(m, rw.new_sig);
    }
    rewrites.push_back(std::move(rw));
    // Mid-phase failure site: this method's signature/body already rewritten
    // in place, later methods not yet visited.
    TYDER_FAULT_POINT("factor_methods.mid");
  }
  return rewrites;
}

}  // namespace tyder
