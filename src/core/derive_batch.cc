#include "core/derive_batch.h"

#include <atomic>
#include <set>
#include <thread>
#include <utility>

#include "core/is_applicable.h"
#include "obs/obs.h"

namespace tyder {

namespace {

// Phase 1 worker body: items are claimed through a shared atomic counter
// (cheap work stealing — every worker pulls the next unclaimed index), so an
// expensive projection does not stall the rest of the batch behind a static
// partition.
void AnalyzeItems(const Schema& schema, const std::vector<ProjectionSpec>& specs,
                  std::atomic<size_t>& next, std::vector<BatchItemResult>& out) {
  for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
       i < specs.size(); i = next.fetch_add(1, std::memory_order_relaxed)) {
    BatchItemResult& item = out[i];
    std::set<AttrId> projection(item.spec.attributes.begin(),
                                item.spec.attributes.end());
    Result<ApplicabilityResult> applicability = ComputeApplicableMethods(
        schema, item.spec.source, projection, /*record_trace=*/false);
    if (applicability.ok()) {
      item.applicability = std::move(*applicability);
    } else {
      item.status = applicability.status().WithContext(
          "analysis of '" + item.spec.view_name + "'");
    }
  }
}

}  // namespace

BatchDeriveReport DeriveBatch(Schema& schema,
                              const std::vector<ProjectionSpec>& specs,
                              const BatchDeriveOptions& options) {
  TYDER_COUNT("batch.runs");
  obs::ScopedSpan span("DeriveBatch");

  BatchDeriveReport report;
  report.items.resize(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) report.items[i].spec = specs[i];

  int jobs = options.jobs < 1 ? 1 : options.jobs;
  if (static_cast<size_t>(jobs) > specs.size() && !specs.empty()) {
    jobs = static_cast<int>(specs.size());
  }

  // --- phase 1: concurrent read-only analysis ------------------------------
  // Build every lazily derived structure before the fan-out so workers only
  // ever read published state (they would still be safe without this — the
  // caches publish under their own locks — but a prewarmed closure keeps the
  // hot loops lock-free from the first query).
  schema.types().PrewarmClosure();
  {
    obs::ScopedSpan analysis("DeriveBatch.analyze");
    analysis.Attr("jobs", std::to_string(jobs));
    analysis.Attr("items", std::to_string(specs.size()));
    std::atomic<size_t> next{0};
    {
      // The calling thread is worker #0; jthreads join on scope exit.
      std::vector<std::jthread> pool;
      pool.reserve(jobs - 1);
      for (int w = 1; w < jobs; ++w) {
        pool.emplace_back([&] {
          AnalyzeItems(schema, specs, next, report.items);
        });
      }
      AnalyzeItems(schema, specs, next, report.items);
    }
  }

  // --- phase 2: serial apply ----------------------------------------------
  // Each projection commits (or rolls back) through its own
  // SchemaTransaction inside DeriveProjection. Applying mutates the schema,
  // which invalidates the shared caches; later items recompute against the
  // updated hierarchy, which is exactly the sequential left-to-right
  // semantics of repeated --project ops.
  ProjectionOptions projection_options;
  projection_options.record_trace = false;
  projection_options.verify = options.verify;
  for (BatchItemResult& item : report.items) {
    if (!item.status.ok()) {
      ++report.failed;
      TYDER_COUNT("batch.item_failures");
      continue;
    }
    ++report.analyzed_ok;
    if (!options.apply) continue;
    Result<DerivationResult> derived =
        DeriveProjection(schema, item.spec, projection_options);
    if (!derived.ok()) {
      item.status =
          derived.status().WithContext("apply of '" + item.spec.view_name + "'");
      ++report.failed;
      TYDER_COUNT("batch.item_failures");
      TYDER_RECORD_V(kOp, "batch.item_failure",
                     static_cast<int64_t>(report.failed));
      continue;
    }
    item.derived = derived->derived;
    item.applied = true;
    ++report.applied;
    TYDER_COUNT("batch.items_applied");
  }
  return report;
}

Result<ProjectionSpec> ResolveProjectionSpec(
    const Schema& schema, std::string_view source_type,
    const std::vector<std::string>& attribute_names,
    std::string_view view_name) {
  ProjectionSpec spec;
  TYDER_ASSIGN_OR_RETURN(spec.source, schema.types().FindType(source_type));
  for (const std::string& name : attribute_names) {
    TYDER_ASSIGN_OR_RETURN(AttrId attr, schema.types().FindAttribute(name));
    spec.attributes.push_back(attr);
  }
  spec.view_name = std::string(view_name);
  return spec;
}

}  // namespace tyder
