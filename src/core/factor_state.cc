#include "core/factor_state.h"

#include <algorithm>
#include <limits>

#include "common/failpoint.h"
#include "obs/tracer.h"

namespace tyder {

namespace {

std::string AttrSetToString(const Schema& schema, const std::set<AttrId>& a) {
  std::vector<std::string> names;
  for (AttrId id : a) names.push_back(schema.types().attribute(id).name.str());
  std::sort(names.begin(), names.end());
  std::string out = "{";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ",";
    out += names[i];
  }
  out += "}";
  return out;
}

class Factorizer {
 public:
  Factorizer(Schema& schema, std::string_view view_name,
             SurrogateSet* surrogates, std::vector<std::string>* trace)
      : schema_(schema),
        view_name_(view_name),
        surrogates_(surrogates),
        trace_(trace) {}

  // The paper's FactorState(A, T, h, P). `h` is the caller's surrogate
  // (kInvalidType at top level), `rank` its precedence for the new edge.
  Result<TypeId> Run(const std::set<AttrId>& attrs, TypeId t, TypeId h,
                     int rank) {
    Trace("FactorState(" + AttrSetToString(schema_, attrs) + ", " +
          schema_.types().TypeName(t) + ", " +
          (h == kInvalidType ? std::string("-")
                             : schema_.types().TypeName(h)) +
          ", " + std::to_string(rank) + ")");

    // Idempotent re-factoring: an earlier projection of the same attribute
    // set left a surrogate directly above t whose cumulative state is exactly
    // `attrs`. Hang this derivation off that structure instead of factoring a
    // fresh copy — re-surrogating the already-factored region doubles the
    // type graph on every repetition of the same projection.
    if (surrogates_->Of(t) == kInvalidType) {
      TypeId reusable = ExactSurrogateAbove(t, attrs);
      if (reusable != kInvalidType) {
        if (h == kInvalidType) {
          // The top level still owes the caller a named view type.
          TYDER_ASSIGN_OR_RETURN(TypeId view, CreateSurrogate(t));
          InsertSupertypeRanked(schema_, surrogates_, view, reusable, 0);
          Trace("reuse " + schema_.types().TypeName(reusable) +
                " [already factors " + AttrSetToString(schema_, attrs) + "]");
          return view;
        }
        if (!schema_.types().type(h).HasDirectSupertype(reusable)) {
          InsertSupertypeRanked(schema_, surrogates_, h, reusable, rank);
        }
        Trace("reuse " + schema_.types().TypeName(reusable) +
              " [already factors " + AttrSetToString(schema_, attrs) + "]");
        return reusable;
      }
    }

    bool created = false;
    TypeId surrogate = surrogates_->Of(t);
    if (surrogate == kInvalidType) {
      TYDER_ASSIGN_OR_RETURN(surrogate, CreateSurrogate(t));
      created = true;
    }
    // Mid-recursion failure site: surrogates partially created, attributes
    // partially moved — the worst possible place to abandon the schema.
    TYDER_FAULT_POINT("factor_state.mid");
    if (h != kInvalidType &&
        !schema_.types().type(h).HasDirectSupertype(surrogate)) {
      InsertSupertypeRanked(schema_, surrogates_, h, surrogate, rank);
      Trace("make " + schema_.types().TypeName(surrogate) +
            " a supertype of " + schema_.types().TypeName(h) +
            " with precedence " + std::to_string(rank));
    }
    if (!created) return surrogate;

    // Move the projected local attributes of t onto the surrogate.
    std::vector<AttrId> local = schema_.types().type(t).local_attributes();
    for (AttrId a : local) {
      if (attrs.count(a) == 0) continue;
      TYDER_RETURN_IF_ERROR(schema_.types().MoveAttribute(a, surrogate));
      Trace("move " + schema_.types().attribute(a).name.str() + " to " +
            schema_.types().TypeName(surrogate));
    }

    // Recurse into the supertypes (other than the fresh surrogate, which sits
    // at rank 0) that still hold projected attributes, in precedence order.
    // The rank passed down is the supertype's position in t's current list,
    // which matches the paper's numbering (surrogate = 0, originals 1, 2, …).
    std::vector<TypeId> supers = schema_.types().type(t).supertypes();
    for (size_t i = 0; i < supers.size(); ++i) {
      TypeId s = supers[i];
      if (s == surrogate) continue;
      std::set<AttrId> available;
      for (AttrId a : attrs) {
        if (schema_.types().AttributeAvailableAt(s, a)) available.insert(a);
      }
      if (available.empty()) continue;
      TYDER_RETURN_IF_ERROR(
          Run(available, s, surrogate, static_cast<int>(i)).status());
    }
    return surrogate;
  }

 private:
  void Trace(std::string line) { obs::Narrate(trace_, std::move(line)); }

  // A direct supertype of t (from an earlier factoring) whose cumulative
  // attributes are exactly `attrs`, or kInvalidType. Only surrogate-kind
  // types qualify so first-time factorings over author-declared hierarchies
  // are never rerouted.
  TypeId ExactSurrogateAbove(TypeId t, const std::set<AttrId>& attrs) const {
    for (TypeId s : schema_.types().type(t).supertypes()) {
      if (schema_.types().type(s).kind() != TypeKind::kSurrogate) continue;
      if (schema_.types().type(s).detached()) continue;
      std::vector<AttrId> cumulative = schema_.types().CumulativeAttributes(s);
      if (cumulative.size() != attrs.size()) continue;
      if (std::set<AttrId>(cumulative.begin(), cumulative.end()) == attrs) {
        return s;
      }
    }
    return kInvalidType;
  }

  Result<TypeId> CreateSurrogate(TypeId t) {
    std::string name;
    if (surrogates_->created.empty() && !view_name_.empty()) {
      name = std::string(view_name_);  // the derived type itself
    } else {
      name = UniqueSurrogateName(schema_.types(), schema_.types().TypeName(t));
    }
    TYDER_ASSIGN_OR_RETURN(TypeId surrogate,
                           schema_.types().DeclareSurrogate(name, t));
    // The source becomes a direct subtype of its surrogate at highest
    // precedence — this is what makes the split transparent.
    schema_.types().mutable_type(t).PrependSupertype(surrogate);
    surrogates_->of.emplace(t, surrogate);
    surrogates_->created.push_back(surrogate);
    Trace("create " + name + " [surrogate of " + schema_.types().TypeName(t) +
          "]");
    return surrogate;
  }

  Schema& schema_;
  std::string_view view_name_;
  SurrogateSet* surrogates_;
  std::vector<std::string>* trace_;
};

}  // namespace

void InsertSupertypeRanked(Schema& schema, SurrogateSet* surrogates,
                           TypeId sub_surrogate, TypeId super_surrogate,
                           int rank) {
  Type& sub = schema.types().mutable_type(sub_surrogate);
  const std::vector<TypeId>& supers = sub.supertypes();
  size_t pos = 0;
  while (pos < supers.size()) {
    auto it = surrogates->edge_rank.find({sub_surrogate, supers[pos]});
    int existing = it == surrogates->edge_rank.end()
                       ? std::numeric_limits<int>::max()
                       : it->second;
    if (existing > rank) break;
    ++pos;
  }
  sub.InsertSupertypeAt(pos, super_surrogate);
  surrogates->edge_rank[{sub_surrogate, super_surrogate}] = rank;
}

std::string UniqueSurrogateName(const TypeGraph& graph, std::string_view base) {
  std::string name = "~" + std::string(base);
  if (!graph.FindType(name).ok()) return name;
  for (int i = 2;; ++i) {
    std::string candidate = name + "#" + std::to_string(i);
    if (!graph.FindType(candidate).ok()) return candidate;
  }
}

Result<TypeId> FactorState(Schema& schema, TypeId source,
                           const std::set<AttrId>& projection,
                           std::string_view view_name, SurrogateSet* surrogates,
                           std::vector<std::string>* trace) {
  TYDER_FAULT_POINT("factor_state.before");
  if (source >= schema.types().NumTypes()) {
    return Status::InvalidArgument("source type id out of range");
  }
  if (projection.empty()) {
    return Status::InvalidArgument("projection list must be non-empty");
  }
  for (AttrId a : projection) {
    if (a >= schema.types().NumAttributes() ||
        !schema.types().AttributeAvailableAt(source, a)) {
      return Status::InvalidArgument(
          "projection attribute not available at source type");
    }
  }
  return Factorizer(schema, view_name, surrogates, trace)
      .Run(projection, source, kInvalidType, 0);
}

}  // namespace tyder
