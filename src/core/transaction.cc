#include "core/transaction.h"

#include <chrono>

#include "obs/obs.h"

namespace tyder {

namespace {

// Per-thread transaction nesting depth and armed durability hook. Plain
// thread_locals: transactions are strictly scope-nested, so a stack is
// implicit in the SchemaTransaction/ScopedCommitHook objects themselves.
thread_local int g_txn_depth = 0;
thread_local ScopedCommitHook* g_commit_hook = nullptr;

}  // namespace

SchemaTransaction::SchemaTransaction(Schema& schema)
    : schema_(schema), snapshot_(schema), depth_(++g_txn_depth) {
  TYDER_COUNT("transaction.begins");
}

SchemaTransaction::~SchemaTransaction() {
  if (!committed_) Rollback();
  --g_txn_depth;
}

Status SchemaTransaction::Commit() {
  if (committed_) return Status::OK();
  if (depth_ == 1 && g_commit_hook != nullptr && !g_commit_hook->fired_) {
    g_commit_hook->fired_ = true;
    TYDER_RETURN_IF_ERROR(g_commit_hook->fn_());
  }
  committed_ = true;
  return Status::OK();
}

void SchemaTransaction::Rollback() {
  TYDER_COUNT("projection.rollbacks");
  TYDER_TIMED("projection.rollback_ns");
  TYDER_RECORD_V(kOp, "txn.rollback", depth_);
  obs::Narrate(nullptr, "transaction rollback");
  schema_ = snapshot_;
}

ScopedCommitHook::ScopedCommitHook(Fn fn)
    : prev_(g_commit_hook), fn_(std::move(fn)) {
  g_commit_hook = this;
}

ScopedCommitHook::~ScopedCommitHook() { g_commit_hook = prev_; }

}  // namespace tyder
