#include "core/transaction.h"

#include <chrono>

#include "obs/obs.h"

namespace tyder {

namespace {

// Per-thread transaction nesting depth. A plain thread_local: transactions
// are strictly scope-nested, so a stack is implicit in the
// SchemaTransaction objects themselves.
thread_local int g_txn_depth = 0;

}  // namespace

SchemaTransaction::SchemaTransaction(Schema& schema)
    : schema_(schema), snapshot_(schema), depth_(++g_txn_depth) {
  TYDER_COUNT("transaction.begins");
}

SchemaTransaction::~SchemaTransaction() {
  if (!committed_) Rollback();
  --g_txn_depth;
}

Status SchemaTransaction::Commit() {
  if (committed_) return Status::OK();
  committed_ = true;
  return Status::OK();
}

void SchemaTransaction::Rollback() {
  TYDER_COUNT("projection.rollbacks");
  TYDER_TIMED("projection.rollback_ns");
  TYDER_RECORD_V(kOp, "txn.rollback", depth_);
  obs::Narrate(nullptr, "transaction rollback");
  schema_ = snapshot_;
}

}  // namespace tyder
