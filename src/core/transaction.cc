#include "core/transaction.h"

#include <chrono>

#include "obs/obs.h"

namespace tyder {

SchemaTransaction::SchemaTransaction(Schema& schema)
    : schema_(schema), snapshot_(schema) {
  TYDER_COUNT("transaction.begins");
}

SchemaTransaction::~SchemaTransaction() {
  if (!committed_) Rollback();
}

void SchemaTransaction::Rollback() {
  TYDER_COUNT("projection.rollbacks");
  TYDER_TIMED("projection.rollback_ns");
  obs::Narrate(nullptr, "transaction rollback");
  schema_ = snapshot_;
}

}  // namespace tyder
