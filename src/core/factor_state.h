// FactorState (paper Section 5.1): refactors the type hierarchy to
// accommodate the derived type of a projection. Each type through which the
// derived type inherits projected attributes is split into a *surrogate*
// (carrying exactly the projected local attributes) and the modified source
// type (which becomes a direct subtype of its surrogate at highest
// precedence, making the split behaviorally transparent). The derived type
// itself is the surrogate of the projection's source type.

#ifndef TYDER_CORE_FACTOR_STATE_H_
#define TYDER_CORE_FACTOR_STATE_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "methods/schema.h"

namespace tyder {

// Surrogates created during one derivation, shared between FactorState (the
// state-carrying surrogates, the paper's set X) and Augment (the state-less
// ones). `edge_rank` remembers the original precedence rank carried by each
// surrogate → surrogate inheritance edge so later insertions (surrogate
// reuse, Augment) keep the source hierarchy's relative precedence order.
struct SurrogateSet {
  std::map<TypeId, TypeId> of;    // source type -> its surrogate
  std::vector<TypeId> created;    // creation order
  std::map<std::pair<TypeId, TypeId>, int> edge_rank;
  // Surrogates created by Augment (state-less; the complement of the paper's
  // set X). FactorMethods substitutes only X surrogates into signatures.
  std::set<TypeId> augment_created;

  // Source types with a FactorState surrogate — the paper's X.
  std::set<TypeId> XSources() const {
    std::set<TypeId> out;
    for (const auto& [src, surr] : of) {
      if (augment_created.count(surr) == 0) out.insert(src);
    }
    return out;
  }

  bool Has(TypeId source) const { return of.count(source) > 0; }
  TypeId Of(TypeId source) const {
    auto it = of.find(source);
    return it == of.end() ? kInvalidType : it->second;
  }
};

// Runs the recursive factorization for projection `projection` over `source`.
// The top surrogate (the derived type) is named `view_name`; inner surrogates
// are auto-named "~X" (uniquified). Appends per-step lines to `trace` when
// non-null ("FactorState({e2,h2}, C, ~A, 1)", "move a2 to ~A", ...), matching
// the paper's Example 2 narration.
Result<TypeId> FactorState(Schema& schema, TypeId source,
                           const std::set<AttrId>& projection,
                           std::string_view view_name, SurrogateSet* surrogates,
                           std::vector<std::string>* trace);

// Inserts `super_surrogate` into `sub_surrogate`'s supertype list at the
// position implied by original precedence `rank` (exposed for Augment).
void InsertSupertypeRanked(Schema& schema, SurrogateSet* surrogates,
                           TypeId sub_surrogate, TypeId super_surrogate,
                           int rank);

// "~Name", "~Name#2", ... — first variant not yet declared.
std::string UniqueSurrogateName(const TypeGraph& graph, std::string_view base);

}  // namespace tyder

#endif  // TYDER_CORE_FACTOR_STATE_H_
