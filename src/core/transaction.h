// SchemaTransaction: all-or-nothing schema mutation. The derivation pipeline
// (FactorState → Augment → FactorMethods) is a multi-phase refactoring of the
// shared type hierarchy, and the paper's guarantee — existing types keep
// exactly their original state and behavior — is only meaningful if a failed
// derivation leaves the schema untouched. A SchemaTransaction snapshots the
// schema on construction (cheap: method bodies are shared shared_ptrs, so a
// snapshot is a structure-only copy), and unless Commit() is called, its
// destructor rolls the schema back to that snapshot — so every early return
// on an error path restores the pre-call schema byte-for-byte (the rolled
// back schema serializes identically to the snapshot).
//
// Used by DeriveProjection, CollapseEmptySurrogates, RevertDerivation, and
// every Catalog view operation; each documents the strong guarantee in its
// header. Rollbacks are observable through the `projection.rollbacks` counter
// and the `projection.rollback_ns` histogram (docs/ROBUSTNESS.md).
//
// Transactions nest naturally: an outer transaction (e.g. a Catalog view
// definition) simply restores over whatever an inner one (DeriveProjection)
// already rolled back.
//
// Durability (src/storage/): a SchemaTransaction is purely in-memory — it
// commits the writer TIP. The durable catalog sequences the committed op's
// WAL record into the group-commit queue (storage/wal.h) afterwards, and
// only a durable batch fsync publishes the state as a reader-visible schema
// epoch (core/epoch.h). A commit whose record fails to persist is rolled
// back wholesale by resetting the tip to the last durable epoch — the
// transaction layer never needs to know. (Earlier revisions fired a
// per-thread commit hook from the outermost Commit() so the WAL fsync
// preceded the in-memory publish; the epoch layer made that inversion
// unnecessary, since "published" now means the epoch pointer swap, which
// already happens strictly after the fsync.)

#ifndef TYDER_CORE_TRANSACTION_H_
#define TYDER_CORE_TRANSACTION_H_

#include "common/status.h"
#include "methods/schema.h"

namespace tyder {

class SchemaTransaction {
 public:
  explicit SchemaTransaction(Schema& schema);
  // Rolls back unless Commit() succeeded.
  ~SchemaTransaction();

  SchemaTransaction(const SchemaTransaction&) = delete;
  SchemaTransaction& operator=(const SchemaTransaction&) = delete;

  // Keeps the mutations made since construction; the destructor becomes a
  // no-op. Commit is in-memory only (see the file comment on how the
  // storage layer sequences durability after it).
  [[nodiscard]] Status Commit();
  bool committed() const { return committed_; }

  // The pre-transaction state. Stable for the transaction's lifetime — the
  // verifier compares the mutated schema against exactly this snapshot, so
  // the pipeline does not need a second copy.
  const Schema& snapshot() const { return snapshot_; }

 private:
  void Rollback();

  Schema& schema_;
  Schema snapshot_;
  // 1 for the outermost live transaction on this thread, 2 for one nested
  // inside it, ... An inner transaction (e.g. DeriveProjection inside a
  // Catalog view definition) is an implementation detail of an operation
  // that commits — and becomes durable — as a whole.
  int depth_;
  bool committed_ = false;
};

}  // namespace tyder

#endif  // TYDER_CORE_TRANSACTION_H_
