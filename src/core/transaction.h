// SchemaTransaction: all-or-nothing schema mutation. The derivation pipeline
// (FactorState → Augment → FactorMethods) is a multi-phase refactoring of the
// shared type hierarchy, and the paper's guarantee — existing types keep
// exactly their original state and behavior — is only meaningful if a failed
// derivation leaves the schema untouched. A SchemaTransaction snapshots the
// schema on construction (cheap: method bodies are shared shared_ptrs, so a
// snapshot is a structure-only copy), and unless Commit() is called, its
// destructor rolls the schema back to that snapshot — so every early return
// on an error path restores the pre-call schema byte-for-byte (the rolled
// back schema serializes identically to the snapshot).
//
// Used by DeriveProjection, CollapseEmptySurrogates, RevertDerivation, and
// every Catalog view operation; each documents the strong guarantee in its
// header. Rollbacks are observable through the `projection.rollbacks` counter
// and the `projection.rollback_ns` histogram (docs/ROBUSTNESS.md).
//
// Transactions nest naturally: an outer transaction (e.g. a Catalog view
// definition) simply restores over whatever an inner one (DeriveProjection)
// already rolled back.
//
// Durability (src/storage/): a ScopedCommitHook armed on the thread is
// invoked by the *outermost* live transaction's Commit() before the commit
// takes effect — the durable catalog uses this to fsync a write-ahead-log
// record before the in-memory state is published. A failing hook leaves the
// transaction uncommitted, so the destructor rolls back and the operation
// fails exactly like any mid-pipeline error.

#ifndef TYDER_CORE_TRANSACTION_H_
#define TYDER_CORE_TRANSACTION_H_

#include <functional>

#include "common/status.h"
#include "methods/schema.h"

namespace tyder {

class SchemaTransaction {
 public:
  explicit SchemaTransaction(Schema& schema);
  // Rolls back unless Commit() succeeded.
  ~SchemaTransaction();

  SchemaTransaction(const SchemaTransaction&) = delete;
  SchemaTransaction& operator=(const SchemaTransaction&) = delete;

  // Keeps the mutations made since construction; the destructor becomes a
  // no-op. If this is the outermost live transaction on the thread and a
  // ScopedCommitHook is armed, the hook runs first; a non-OK hook result is
  // returned, the transaction stays uncommitted, and the destructor rolls
  // back — the mutation is never published without its durability record.
  [[nodiscard]] Status Commit();
  bool committed() const { return committed_; }

  // The pre-transaction state. Stable for the transaction's lifetime — the
  // verifier compares the mutated schema against exactly this snapshot, so
  // the pipeline does not need a second copy.
  const Schema& snapshot() const { return snapshot_; }

 private:
  void Rollback();

  Schema& schema_;
  Schema snapshot_;
  // 1 for the outermost live transaction on this thread, 2 for one nested
  // inside it, ... Only the outermost fires the commit hook: an inner
  // transaction (e.g. DeriveProjection inside a Catalog view definition) is
  // an implementation detail of an operation that is durable as a whole.
  int depth_;
  bool committed_ = false;
};

// Arms `fn` as the thread's durability hook for the enclosing scope. The
// next outermost SchemaTransaction::Commit() on this thread invokes it
// (one-shot: a second top-level commit in the same scope is not hooked) and
// refuses to commit if it fails. Scopes nest; the previous hook is restored
// on destruction.
//
// Used by storage::DurableCatalog to append + fsync the WAL record for a
// logged operation at the exact point the operation's mutations become
// visible.
class ScopedCommitHook {
 public:
  using Fn = std::function<Status()>;
  explicit ScopedCommitHook(Fn fn);
  ~ScopedCommitHook();

  ScopedCommitHook(const ScopedCommitHook&) = delete;
  ScopedCommitHook& operator=(const ScopedCommitHook&) = delete;

  // True once a commit has (successfully or not) invoked the hook.
  bool fired() const { return fired_; }

 private:
  friend class SchemaTransaction;

  ScopedCommitHook* prev_;
  Fn fn_;
  bool fired_ = false;
};

}  // namespace tyder

#endif  // TYDER_CORE_TRANSACTION_H_
