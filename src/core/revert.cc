#include "core/revert.h"

#include <set>

#include "common/failpoint.h"
#include "core/transaction.h"
#include "mir/expr.h"

namespace tyder {

namespace {

// Types outside `surrogates` that would dangle if the surrogates vanished.
Status CheckNoExternalObservers(const Schema& schema,
                                const DerivationResult& derivation) {
  std::set<TypeId> surrogate_ids;
  for (TypeId t : derivation.surrogates.created) surrogate_ids.insert(t);
  std::set<MethodId> rewritten;
  for (const MethodRewrite& rw : derivation.rewrites) {
    rewritten.insert(rw.method);
  }

  // Our surrogates' supertypes must all lie inside the derivation: a later
  // derivation that factors one of our surrogates (or re-homes its
  // attributes) announces itself by prepending *its* surrogate here.
  for (TypeId t : derivation.surrogates.created) {
    for (TypeId s : schema.types().type(t).supertypes()) {
      if (surrogate_ids.count(s) == 0) {
        return Status::FailedPrecondition(
            "surrogate '" + schema.types().TypeName(t) +
            "' was itself factored by a later derivation ('" +
            schema.types().TypeName(s) + "'); revert that one first");
      }
    }
  }

  // Edges: only the recorded source types (and the surrogates themselves)
  // may have a derivation surrogate as a direct supertype.
  for (TypeId t = 0; t < schema.types().NumTypes(); ++t) {
    if (surrogate_ids.count(t) > 0) continue;
    bool is_source = derivation.surrogates.Of(t) != kInvalidType;
    for (TypeId s : schema.types().type(t).supertypes()) {
      if (surrogate_ids.count(s) == 0) continue;
      if (!is_source || s != derivation.surrogates.Of(t)) {
        return Status::FailedPrecondition(
            "type '" + schema.types().TypeName(t) +
            "' inherits from this derivation's surrogate '" +
            schema.types().TypeName(s) + "'");
      }
    }
  }

  // Methods: only the recorded rewrites may mention a surrogate.
  for (MethodId m = 0; m < schema.NumMethods(); ++m) {
    if (rewritten.count(m) > 0) continue;
    const Method& method = schema.method(m);
    for (TypeId t : method.sig.params) {
      if (surrogate_ids.count(t) > 0) {
        return Status::FailedPrecondition(
            "method '" + method.label.str() +
            "' (outside the derivation) references surrogate '" +
            schema.types().TypeName(t) + "'");
      }
    }
    if (surrogate_ids.count(method.sig.result) > 0) {
      return Status::FailedPrecondition(
          "method '" + method.label.str() +
          "' (outside the derivation) returns a surrogate type");
    }
    bool bad_body = false;
    if (method.body != nullptr) {
      VisitPreorder(method.body, [&](const Expr& e) {
        if (e.kind == ExprKind::kDecl && surrogate_ids.count(e.decl_type) > 0) {
          bad_body = true;
        }
      });
    }
    if (bad_body) {
      return Status::FailedPrecondition(
          "method '" + method.label.str() +
          "' (outside the derivation) declares a surrogate-typed local");
    }
  }
  return Status::OK();
}

}  // namespace

Status RevertDerivation(Schema& schema, const DerivationResult& derivation) {
  if (derivation.derived >= schema.types().NumTypes() ||
      schema.types().type(derivation.derived).detached()) {
    return Status::FailedPrecondition(
        "derivation is not active on this schema");
  }
  TYDER_RETURN_IF_ERROR(CheckNoExternalObservers(schema, derivation));

  // All-or-nothing: a failure below (mid-unwind or in the final validation)
  // rolls the schema back, so a refused or failed revert leaves the
  // derivation fully intact rather than half-unwound.
  SchemaTransaction txn(schema);
  TYDER_FAULT_POINT("revert.before");

  // 1. Restore method signatures and bodies.
  for (const MethodRewrite& rw : derivation.rewrites) {
    schema.SetMethodSignature(rw.method, rw.old_sig);
    if (rw.body_changed) schema.SetMethodBody(rw.method, rw.old_body);
  }

  // Mid-phase failure site: signatures restored, attributes still re-homed.
  TYDER_FAULT_POINT("revert.mid");

  // 2. Move attributes back to their sources and unhook the edges.
  for (const auto& [source, surrogate] : derivation.surrogates.of) {
    std::vector<AttrId> moved =
        schema.types().type(surrogate).local_attributes();
    for (AttrId a : moved) {
      TYDER_RETURN_IF_ERROR(schema.types().MoveAttribute(a, source));
    }
    Type& source_node = schema.types().mutable_type(source);
    source_node.RemoveSupertype(surrogate);
    source_node.SortLocalAttributes();  // back to declaration order
  }

  // 3. Detach the surrogate nodes.
  for (TypeId surrogate : derivation.surrogates.created) {
    Type& node = schema.types().mutable_type(surrogate);
    while (!node.supertypes().empty()) {
      node.RemoveSupertype(node.supertypes().front());
    }
    node.set_detached(true);
  }

  TYDER_RETURN_IF_ERROR(schema.Validate());
  TYDER_RETURN_IF_ERROR(txn.Commit());
  return Status::OK();
}

}  // namespace tyder
