#include "instances/store.h"

namespace tyder {

Value DefaultValueFor(const Schema& schema, TypeId type) {
  const BuiltinTypes& b = schema.builtins();
  if (type == b.int_type || type == b.date_type) return Value::Int(0);
  if (type == b.float_type) return Value::Float(0.0);
  if (type == b.bool_type) return Value::Bool(false);
  if (type == b.string_type) return Value::String("");
  return Value::Void();
}

Result<ObjectId> ObjectStore::CreateObject(const Schema& schema, TypeId type) {
  if (type >= schema.types().NumTypes()) {
    return Status::InvalidArgument("type id out of range");
  }
  if (schema.types().type(type).detached()) {
    return Status::FailedPrecondition("cannot instantiate a collapsed type");
  }
  Object obj;
  obj.type = type;
  for (AttrId a : schema.types().CumulativeAttributes(type)) {
    obj.slots.emplace(a,
                      DefaultValueFor(schema, schema.types().attribute(a).value_type));
  }
  ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.push_back(std::move(obj));
  return id;
}

Result<ObjectId> ObjectStore::CreateDelegatingObject(const Schema& schema,
                                                     TypeId type,
                                                     ObjectId base) {
  if (type >= schema.types().NumTypes()) {
    return Status::InvalidArgument("type id out of range");
  }
  if (base >= objects_.size()) {
    return Status::InvalidArgument("base object id out of range");
  }
  // Every attribute of the view type must resolve on the base chain.
  for (AttrId a : schema.types().CumulativeAttributes(type)) {
    if (!GetSlot(base, a).ok()) {
      return Status::FailedPrecondition(
          "base object cannot answer attribute '" +
          schema.types().attribute(a).name.str() + "' of the view type");
    }
  }
  Object obj;
  obj.type = type;
  obj.base = base;
  ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.push_back(std::move(obj));
  return id;
}

Result<Value> ObjectStore::GetSlot(ObjectId id, AttrId attr) const {
  while (id < objects_.size()) {
    auto it = objects_[id].slots.find(attr);
    if (it != objects_[id].slots.end()) return it->second;
    if (objects_[id].base == kInvalidObject) break;
    id = objects_[id].base;
  }
  if (id >= objects_.size()) {
    return Status::InvalidArgument("object id out of range");
  }
  return Status::NotFound("object has no slot for the requested attribute");
}

Status ObjectStore::SetSlot(ObjectId id, AttrId attr, Value value) {
  while (id < objects_.size()) {
    auto it = objects_[id].slots.find(attr);
    if (it != objects_[id].slots.end()) {
      it->second = std::move(value);
      return Status::OK();
    }
    if (objects_[id].base == kInvalidObject) break;
    id = objects_[id].base;
  }
  if (id >= objects_.size()) {
    return Status::InvalidArgument("object id out of range");
  }
  return Status::NotFound("object has no slot for the requested attribute");
}

std::vector<ObjectId> ObjectStore::DirectExtent(TypeId type) const {
  std::vector<ObjectId> out;
  for (ObjectId id = 0; id < objects_.size(); ++id) {
    if (objects_[id].type == type) out.push_back(id);
  }
  return out;
}

std::vector<ObjectId> ObjectStore::Extent(const Schema& schema,
                                          TypeId type) const {
  std::vector<ObjectId> out;
  for (ObjectId id = 0; id < objects_.size(); ++id) {
    if (schema.types().IsSubtype(objects_[id].type, type)) out.push_back(id);
  }
  return out;
}

}  // namespace tyder
