#include "instances/interp.h"

#include <cmath>
#include <optional>
#include <unordered_map>

#include "methods/dispatch.h"

namespace tyder {

namespace {

// Evaluation of one method activation.
class Frame {
 public:
  Frame(const Schema& schema, ObjectStore* store, Interpreter* interp,
        const ExprPtr& body, const std::vector<Value>& args)
      : schema_(schema),
        store_(store),
        interp_(interp),
        body_(body),
        args_(args) {}

  Result<Value> Run() {
    // Statements may return; an off-the-end body yields Void.
    TYDER_ASSIGN_OR_RETURN(std::optional<Value> returned, ExecStmt(body_));
    return returned.has_value() ? *returned : Value::Void();
  }

 private:
  // Executes a statement; a populated optional means "return was hit".
  Result<std::optional<Value>> ExecStmt(const ExprPtr& node) {
    const Expr& e = *node;
    switch (e.kind) {
      case ExprKind::kSeq: {
        for (const ExprPtr& stmt : e.children) {
          TYDER_ASSIGN_OR_RETURN(std::optional<Value> r, ExecStmt(stmt));
          if (r.has_value()) return r;
        }
        return std::optional<Value>{};
      }
      case ExprKind::kDecl: {
        Value init = Value::Void();
        if (!e.children.empty()) {
          TYDER_ASSIGN_OR_RETURN(init, Eval(e.children[0]));
        }
        locals_[e.var] = std::move(init);
        return std::optional<Value>{};
      }
      case ExprKind::kAssign: {
        TYDER_ASSIGN_OR_RETURN(Value v, Eval(e.children[0]));
        locals_[e.var] = std::move(v);
        return std::optional<Value>{};
      }
      case ExprKind::kReturn: {
        if (e.children.empty()) return std::optional<Value>{Value::Void()};
        TYDER_ASSIGN_OR_RETURN(Value v, Eval(e.children[0]));
        return std::optional<Value>{std::move(v)};
      }
      case ExprKind::kIf: {
        TYDER_ASSIGN_OR_RETURN(Value cond, Eval(e.children[0]));
        if (!cond.is_bool()) {
          return Status::Internal("if condition did not evaluate to Bool");
        }
        if (cond.AsBool()) return ExecStmt(e.children[1]);
        if (e.children.size() > 2) return ExecStmt(e.children[2]);
        return std::optional<Value>{};
      }
      case ExprKind::kExprStmt: {
        TYDER_RETURN_IF_ERROR(Eval(e.children[0]).status());
        return std::optional<Value>{};
      }
      default:
        return Status::Internal("expression used as statement");
    }
  }

  Result<Value> Eval(const ExprPtr& node) {
    const Expr& e = *node;
    switch (e.kind) {
      case ExprKind::kParamRef:
        if (e.param_index < 0 ||
            e.param_index >= static_cast<int>(args_.size())) {
          return Status::Internal("parameter index out of range at runtime");
        }
        return args_[e.param_index];
      case ExprKind::kVarRef: {
        auto it = locals_.find(e.var);
        if (it == locals_.end()) {
          return Status::Internal("local '" + e.var.str() +
                                  "' read before declaration");
        }
        return it->second;
      }
      case ExprKind::kIntLit:
        return Value::Int(e.int_val);
      case ExprKind::kFloatLit:
        return Value::Float(e.float_val);
      case ExprKind::kBoolLit:
        return Value::Bool(e.bool_val);
      case ExprKind::kStringLit:
        return Value::String(e.str_val);
      case ExprKind::kCall: {
        std::vector<Value> args;
        args.reserve(e.children.size());
        for (const ExprPtr& arg : e.children) {
          TYDER_ASSIGN_OR_RETURN(Value v, Eval(arg));
          args.push_back(std::move(v));
        }
        return interp_->Call(e.callee, args);
      }
      case ExprKind::kBinOp:
        return EvalBinOp(e);
      default:
        return Status::Internal("statement used as expression");
    }
  }

  Result<Value> EvalBinOp(const Expr& e) {
    TYDER_ASSIGN_OR_RETURN(Value lhs, Eval(e.children[0]));
    TYDER_ASSIGN_OR_RETURN(Value rhs, Eval(e.children[1]));
    auto arith = [&](auto op) -> Result<Value> {
      if (!lhs.is_numeric() || !rhs.is_numeric()) {
        return Status::Internal("arithmetic on non-numeric values");
      }
      if (lhs.is_int() && rhs.is_int()) {
        return Value::Int(op(lhs.AsInt(), rhs.AsInt()));
      }
      return Value::Float(op(lhs.AsDouble(), rhs.AsDouble()));
    };
    auto compare = [&](auto op) -> Result<Value> {
      if (!lhs.is_numeric() || !rhs.is_numeric()) {
        return Status::Internal("comparison on non-numeric values");
      }
      return Value::Bool(op(lhs.AsDouble(), rhs.AsDouble()));
    };
    switch (e.op) {
      case BinOpKind::kAdd:
        return arith([](auto a, auto b) { return a + b; });
      case BinOpKind::kSub:
        return arith([](auto a, auto b) { return a - b; });
      case BinOpKind::kMul:
        return arith([](auto a, auto b) { return a * b; });
      case BinOpKind::kDiv: {
        if (rhs.is_numeric() && rhs.AsDouble() == 0.0) {
          return Status::InvalidArgument("division by zero");
        }
        return arith([](auto a, auto b) { return a / b; });
      }
      case BinOpKind::kLt:
        return compare([](double a, double b) { return a < b; });
      case BinOpKind::kLe:
        return compare([](double a, double b) { return a <= b; });
      case BinOpKind::kEq:
        return Value::Bool(lhs == rhs);
      case BinOpKind::kAnd:
        if (!lhs.is_bool() || !rhs.is_bool()) {
          return Status::Internal("and on non-Bool values");
        }
        return Value::Bool(lhs.AsBool() && rhs.AsBool());
      case BinOpKind::kOr:
        if (!lhs.is_bool() || !rhs.is_bool()) {
          return Status::Internal("or on non-Bool values");
        }
        return Value::Bool(lhs.AsBool() || rhs.AsBool());
    }
    return Status::Internal("unhandled binary operator");
  }

  const Schema& schema_;
  ObjectStore* store_;
  Interpreter* interp_;
  const ExprPtr& body_;
  const std::vector<Value>& args_;
  std::unordered_map<Symbol, Value, SymbolHash> locals_;
};

}  // namespace

TypeId Interpreter::RuntimeTypeOf(const Value& v) const {
  const BuiltinTypes& b = schema_.builtins();
  if (v.is_int()) return b.int_type;
  if (v.is_float()) return b.float_type;
  if (v.is_bool()) return b.bool_type;
  if (v.is_string()) return b.string_type;
  if (v.is_object()) return store_->object(v.AsObject()).type;
  return kInvalidType;
}

Result<Value> Interpreter::Call(GfId gf, const std::vector<Value>& args) {
  if (gf >= schema_.NumGenericFunctions()) {
    return Status::InvalidArgument("generic function id out of range");
  }
  std::vector<TypeId> arg_types;
  arg_types.reserve(args.size());
  for (const Value& v : args) {
    TypeId t = RuntimeTypeOf(v);
    if (t == kInvalidType) {
      return Status::InvalidArgument("cannot dispatch on a void argument");
    }
    arg_types.push_back(t);
  }
  TYDER_ASSIGN_OR_RETURN(MethodId target, Dispatch(schema_, gf, arg_types));
  return Invoke(target, args);
}

Result<Value> Interpreter::CallByName(std::string_view gf_name,
                                      const std::vector<Value>& args) {
  TYDER_ASSIGN_OR_RETURN(GfId gf, schema_.FindGenericFunction(gf_name));
  return Call(gf, args);
}

Result<Value> Interpreter::Invoke(MethodId m, const std::vector<Value>& args) {
  const Method& method = schema_.method(m);
  if (args.size() != method.sig.params.size()) {
    return Status::InvalidArgument("wrong argument count for method '" +
                                   method.label.str() + "'");
  }
  switch (method.kind) {
    case MethodKind::kReader: {
      if (!args[0].is_object()) {
        return Status::InvalidArgument("reader applied to a non-object");
      }
      return store_->GetSlot(args[0].AsObject(), method.attr);
    }
    case MethodKind::kMutator: {
      if (!args[0].is_object()) {
        return Status::InvalidArgument("mutator applied to a non-object");
      }
      TYDER_RETURN_IF_ERROR(
          store_->SetSlot(args[0].AsObject(), method.attr, args[1]));
      return Value::Void();
    }
    case MethodKind::kGeneral: {
      if (method.body == nullptr) {
        return Status::Internal("general method '" + method.label.str() +
                                "' has no body");
      }
      if (depth_ >= kMaxDepth) {
        return Status::FailedPrecondition("call depth limit exceeded in '" +
                                          method.label.str() + "'");
      }
      ++depth_;
      Result<Value> out =
          Frame(schema_, store_, this, method.body, args).Run();
      --depth_;
      return out;
    }
  }
  return Status::Internal("unhandled method kind");
}

Result<Value> Interpreter::EvalBody(const ExprPtr& body,
                                    const std::vector<Value>& args) {
  if (body == nullptr) {
    return Status::InvalidArgument("cannot evaluate a null body");
  }
  if (depth_ >= kMaxDepth) {
    return Status::FailedPrecondition("call depth limit exceeded");
  }
  ++depth_;
  Result<Value> out = Frame(schema_, store_, this, body, args).Run();
  --depth_;
  return out;
}

}  // namespace tyder
