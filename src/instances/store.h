// ObjectStore: instances and per-type extents. The paper decouples types from
// extents (Section 1, ref [3]); the store keeps an explicit extent per type —
// the set of objects created with that type — and membership queries follow
// subtype semantics (an instance of A is an instance of every supertype).

#ifndef TYDER_INSTANCES_STORE_H_
#define TYDER_INSTANCES_STORE_H_

#include <vector>

#include "common/result.h"
#include "instances/object.h"
#include "methods/schema.h"

namespace tyder {

class ObjectStore {
 public:
  // Creates an instance of `type` with every cumulative attribute initialized
  // to a type-appropriate zero value.
  Result<ObjectId> CreateObject(const Schema& schema, TypeId type);

  // Creates an object-preserving view instance: an object of `type` with no
  // slots of its own that resolves every attribute against `base`
  // (transitively). Updates through the view are visible in the base and
  // vice versa. Every cumulative attribute of `type` must be resolvable on
  // the base chain.
  Result<ObjectId> CreateDelegatingObject(const Schema& schema, TypeId type,
                                          ObjectId base);

  size_t NumObjects() const { return objects_.size(); }
  const Object& object(ObjectId id) const { return objects_[id]; }

  // Appends a fully formed object as-is (deserialization); the caller owns
  // slot consistency. Returns the assigned id (always NumObjects()-1).
  ObjectId RestoreObject(Object obj) {
    objects_.push_back(std::move(obj));
    return static_cast<ObjectId>(objects_.size() - 1);
  }

  // Inserts a slot directly on `id` (no base-chain walk, creates the slot if
  // absent) — deserialization only; SetSlot is the behavioral write path.
  Status RestoreSlot(ObjectId id, AttrId attr, Value value) {
    if (id >= objects_.size()) {
      return Status::InvalidArgument("object id out of range");
    }
    objects_[id].slots[attr] = std::move(value);
    return Status::OK();
  }

  Result<Value> GetSlot(ObjectId id, AttrId attr) const;
  Status SetSlot(ObjectId id, AttrId attr, Value value);

  // Objects whose creation type is exactly `type`.
  std::vector<ObjectId> DirectExtent(TypeId type) const;
  // Objects whose creation type is `type` or a subtype (the paper's notion of
  // instance-of under inclusion polymorphism).
  std::vector<ObjectId> Extent(const Schema& schema, TypeId type) const;

 private:
  std::vector<Object> objects_;
};

// Zero value for a builtin value type; objects/unknowns default to Void.
Value DefaultValueFor(const Schema& schema, TypeId type);

}  // namespace tyder

#endif  // TYDER_INSTANCES_STORE_H_
