#include "instances/object.h"

// Object is a plain aggregate; behavior lives in store.cc and interp.cc.
