// View materialization — the paper's companion "type instantiation problem"
// (Section 1): producing the instances of a derived type from instances of
// its source types. tyder materializes with object-*generating* semantics:
// each source instance yields a fresh instance of the view type carrying the
// projected (or, for selections, all) slots.

#ifndef TYDER_INSTANCES_VIEW_MATERIALIZE_H_
#define TYDER_INSTANCES_VIEW_MATERIALIZE_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "instances/interp.h"
#include "instances/store.h"
#include "methods/schema.h"

namespace tyder {

// Materializes the projection view `derived` from every instance of its
// source type (the surrogate's source). Returns the new ObjectIds, parallel
// to the source extent.
Result<std::vector<ObjectId>> MaterializeProjection(const Schema& schema,
                                                    ObjectStore& store,
                                                    TypeId derived);

// Object-*preserving* variant (updatable views, cf. Scholl/Laasch/Tresch,
// the paper's ref [16]): each view instance delegates to its source object,
// so reads see later source updates and writes through the view update the
// source. The projected interface is still enforced by method applicability
// (only accessors of projected attributes apply to the view type).
Result<std::vector<ObjectId>> MaterializeProjectionPreserving(
    const Schema& schema, ObjectStore& store, TypeId derived);

// Materializes a selection view: instances of `source` satisfying `predicate`
// are copied as instances of `view`. The predicate sees the source object.
Result<std::vector<ObjectId>> MaterializeSelection(
    const Schema& schema, ObjectStore& store, TypeId view, TypeId source,
    const std::function<Result<bool>(ObjectId)>& predicate);

// Re-synchronizes object-*generating* view instances with their sources
// after source updates: `mapping[i]` is refreshed from `sources[i]`
// (projected slots recopied). Pair with MaterializeProjection's parallel
// return; object-preserving views never need refreshing.
Status RefreshProjection(const Schema& schema, ObjectStore& store,
                         TypeId derived, const std::vector<ObjectId>& sources,
                         const std::vector<ObjectId>& views);

}  // namespace tyder

#endif  // TYDER_INSTANCES_VIEW_MATERIALIZE_H_
