#include "instances/view_materialize.h"

namespace tyder {

Result<std::vector<ObjectId>> MaterializeProjection(const Schema& schema,
                                                    ObjectStore& store,
                                                    TypeId derived) {
  if (derived >= schema.types().NumTypes() ||
      !schema.types().type(derived).is_surrogate()) {
    return Status::InvalidArgument(
        "materialization target must be a derived (surrogate) type");
  }
  TypeId source = schema.types().type(derived).surrogate_source();
  if (source == kInvalidType) {
    return Status::InvalidArgument("derived type has no recorded source");
  }
  std::vector<AttrId> view_attrs = schema.types().CumulativeAttributes(derived);
  std::vector<ObjectId> out;
  for (ObjectId src : store.Extent(schema, source)) {
    TYDER_ASSIGN_OR_RETURN(ObjectId copy, store.CreateObject(schema, derived));
    for (AttrId a : view_attrs) {
      TYDER_ASSIGN_OR_RETURN(Value v, store.GetSlot(src, a));
      TYDER_RETURN_IF_ERROR(store.SetSlot(copy, a, std::move(v)));
    }
    out.push_back(copy);
  }
  return out;
}

Status RefreshProjection(const Schema& schema, ObjectStore& store,
                         TypeId derived, const std::vector<ObjectId>& sources,
                         const std::vector<ObjectId>& views) {
  if (sources.size() != views.size()) {
    return Status::InvalidArgument("sources/views must be parallel vectors");
  }
  std::vector<AttrId> attrs = schema.types().CumulativeAttributes(derived);
  for (size_t i = 0; i < sources.size(); ++i) {
    if (views[i] >= store.NumObjects() ||
        store.object(views[i]).type != derived) {
      return Status::InvalidArgument(
          "view object does not belong to the derived type");
    }
    for (AttrId a : attrs) {
      TYDER_ASSIGN_OR_RETURN(Value v, store.GetSlot(sources[i], a));
      TYDER_RETURN_IF_ERROR(store.SetSlot(views[i], a, std::move(v)));
    }
  }
  return Status::OK();
}

Result<std::vector<ObjectId>> MaterializeProjectionPreserving(
    const Schema& schema, ObjectStore& store, TypeId derived) {
  if (derived >= schema.types().NumTypes() ||
      !schema.types().type(derived).is_surrogate()) {
    return Status::InvalidArgument(
        "materialization target must be a derived (surrogate) type");
  }
  TypeId source = schema.types().type(derived).surrogate_source();
  if (source == kInvalidType) {
    return Status::InvalidArgument("derived type has no recorded source");
  }
  std::vector<ObjectId> out;
  for (ObjectId src : store.Extent(schema, source)) {
    TYDER_ASSIGN_OR_RETURN(ObjectId view,
                           store.CreateDelegatingObject(schema, derived, src));
    out.push_back(view);
  }
  return out;
}

Result<std::vector<ObjectId>> MaterializeSelection(
    const Schema& schema, ObjectStore& store, TypeId view, TypeId source,
    const std::function<Result<bool>(ObjectId)>& predicate) {
  if (view >= schema.types().NumTypes() ||
      !schema.types().type(view).HasDirectSupertype(source)) {
    return Status::InvalidArgument(
        "selection view must be a direct subtype of its source");
  }
  std::vector<AttrId> attrs = schema.types().CumulativeAttributes(source);
  std::vector<ObjectId> out;
  for (ObjectId src : store.Extent(schema, source)) {
    TYDER_ASSIGN_OR_RETURN(bool keep, predicate(src));
    if (!keep) continue;
    TYDER_ASSIGN_OR_RETURN(ObjectId copy, store.CreateObject(schema, view));
    for (AttrId a : attrs) {
      TYDER_ASSIGN_OR_RETURN(Value v, store.GetSlot(src, a));
      TYDER_RETURN_IF_ERROR(store.SetSlot(copy, a, std::move(v)));
    }
    out.push_back(copy);
  }
  return out;
}

}  // namespace tyder
