#include "instances/store_serialize.h"

#include <cstdio>
#include <sstream>

#include "common/string_util.h"

namespace tyder {

namespace {

std::string EncodeValue(const Value& v) {
  if (v.is_void()) return "v";
  if (v.is_int()) return "i:" + std::to_string(v.AsInt());
  if (v.is_float()) {
    // Hexfloat: exact binary round trip.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "f:%a", v.AsFloat());
    return buf;
  }
  if (v.is_bool()) return v.AsBool() ? "b:1" : "b:0";
  if (v.is_object()) return "o:" + std::to_string(v.AsObject());
  std::string out = "s:\"";
  for (char c : v.AsString()) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

Result<Value> DecodeValue(std::string_view text) {
  if (text == "v") return Value::Void();
  if (text.size() < 2 || text[1] != ':') {
    return Status::ParseError("malformed value '" + std::string(text) + "'");
  }
  std::string payload(text.substr(2));
  switch (text[0]) {
    case 'i':
      return Value::Int(std::stoll(payload));
    case 'f':
      return Value::Float(std::strtod(payload.c_str(), nullptr));
    case 'b':
      return Value::Bool(payload == "1");
    case 'o':
      return Value::Object(static_cast<ObjectId>(std::stoul(payload)));
    case 's': {
      if (payload.size() < 2 || payload.front() != '"' ||
          payload.back() != '"') {
        return Status::ParseError("malformed string value");
      }
      std::string out;
      for (size_t i = 1; i + 1 < payload.size(); ++i) {
        if (payload[i] == '\\' && i + 2 < payload.size()) {
          ++i;
          out += payload[i] == 'n' ? '\n' : payload[i];
        } else {
          out += payload[i];
        }
      }
      return Value::String(std::move(out));
    }
    default:
      return Status::ParseError("unknown value tag '" +
                                std::string(text.substr(0, 1)) + "'");
  }
}

}  // namespace

std::string SerializeStore(const Schema& schema, const ObjectStore& store) {
  std::ostringstream out;
  out << "tyder-store v1\n";
  for (ObjectId id = 0; id < store.NumObjects(); ++id) {
    const Object& obj = store.object(id);
    out << "obj " << schema.types().TypeName(obj.type);
    if (obj.base != kInvalidObject) out << " base=" << obj.base;
    out << "\n";
  }
  for (ObjectId id = 0; id < store.NumObjects(); ++id) {
    const Object& obj = store.object(id);
    // Deterministic order: cumulative attribute order of the object's type.
    for (AttrId a : schema.types().CumulativeAttributes(obj.type)) {
      auto it = obj.slots.find(a);
      if (it == obj.slots.end()) continue;
      out << "slot " << id << " " << schema.types().attribute(a).name.view()
          << " " << EncodeValue(it->second) << "\n";
    }
  }
  return out.str();
}

Result<ObjectStore> DeserializeStore(const Schema& schema,
                                     std::string_view text) {
  ObjectStore store;
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || Trim(line) != "tyder-store v1") {
    return Status::ParseError("missing tyder-store header");
  }
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string cmd;
    ls >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;
    if (cmd == "obj") {
      std::string type_name;
      ls >> type_name;
      TYDER_ASSIGN_OR_RETURN(TypeId type, schema.types().FindType(type_name));
      Object obj;
      obj.type = type;
      std::string extra;
      if (ls >> extra && extra.rfind("base=", 0) == 0) {
        obj.base = static_cast<ObjectId>(std::stoul(extra.substr(5)));
      }
      store.RestoreObject(std::move(obj));
    } else if (cmd == "slot") {
      ObjectId id = 0;
      std::string attr_name;
      ls >> id >> attr_name;
      std::string rest;
      std::getline(ls, rest);
      TYDER_ASSIGN_OR_RETURN(AttrId attr,
                             schema.types().FindAttribute(attr_name));
      TYDER_ASSIGN_OR_RETURN(Value value, DecodeValue(Trim(rest)));
      TYDER_RETURN_IF_ERROR(store.RestoreSlot(id, attr, std::move(value)));
    } else {
      return Status::ParseError("unknown directive '" + cmd + "'");
    }
  }
  return store;
}

}  // namespace tyder
