// Runtime values for the instance substrate. A Value is void, a primitive
// (Int/Float/Bool/String — Date is carried as an Int day number), or a
// reference to an object in an ObjectStore.

#ifndef TYDER_INSTANCES_VALUE_H_
#define TYDER_INSTANCES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/ids.h"

namespace tyder {

using ObjectId = uint32_t;
inline constexpr ObjectId kInvalidObject = kInvalidId;

struct ObjectRef {
  ObjectId id = kInvalidObject;
  friend bool operator==(ObjectRef a, ObjectRef b) { return a.id == b.id; }
};

class Value {
 public:
  Value() : v_(std::monostate{}) {}  // void
  static Value Void() { return Value(); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Float(double v) { return Value(Repr(v)); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }
  static Value Object(ObjectId id) { return Value(Repr(ObjectRef{id})); }

  bool is_void() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_float() const { return std::holds_alternative<double>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_object() const { return std::holds_alternative<ObjectRef>(v_); }
  bool is_numeric() const { return is_int() || is_float(); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsFloat() const { return std::get<double>(v_); }
  // Numeric widening for arithmetic.
  double AsDouble() const { return is_int() ? static_cast<double>(AsInt()) : AsFloat(); }
  bool AsBool() const { return std::get<bool>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  ObjectId AsObject() const { return std::get<ObjectRef>(v_).id; }

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }

  std::string ToString() const;

 private:
  using Repr =
      std::variant<std::monostate, int64_t, double, bool, std::string, ObjectRef>;
  explicit Value(Repr v) : v_(std::move(v)) {}
  Repr v_;
};

}  // namespace tyder

#endif  // TYDER_INSTANCES_VALUE_H_
