// MIR interpreter with multi-method dispatch. Executes generic-function
// calls against an ObjectStore: dispatch selects the most specific applicable
// method for the *runtime* types of the arguments, accessor methods read or
// write slots, and general methods evaluate their bodies.
//
// Behavior preservation is observable here: the integration tests run the
// same calls on the same objects before and after a derivation and require
// identical results.

#ifndef TYDER_INSTANCES_INTERP_H_
#define TYDER_INSTANCES_INTERP_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "instances/store.h"
#include "methods/schema.h"
#include "mir/expr.h"

namespace tyder {

class Interpreter {
 public:
  Interpreter(const Schema& schema, ObjectStore* store)
      : schema_(schema), store_(store) {}

  // Calls generic function `gf` with `args`, dispatching on runtime types.
  Result<Value> Call(GfId gf, const std::vector<Value>& args);
  Result<Value> CallByName(std::string_view gf_name,
                           const std::vector<Value>& args);

  // Invokes a specific method, bypassing dispatch (used by tests).
  Result<Value> Invoke(MethodId m, const std::vector<Value>& args);

  // Evaluates a free-standing statement tree (e.g. a query predicate) with
  // the given parameter values; a hit `return` yields its value, otherwise
  // Void. The body must have passed TypeCheckBody.
  Result<Value> EvalBody(const ExprPtr& body, const std::vector<Value>& args);

  // Runtime type of a value under this schema (objects: their creation type;
  // primitives: the builtin type; Void: invalid).
  TypeId RuntimeTypeOf(const Value& v) const;

  // Maximum call depth before giving up (guards the paper's possibly-cyclic
  // call graphs, e.g. Example 1's x1/y1).
  static constexpr int kMaxDepth = 256;

 private:
  const Schema& schema_;
  ObjectStore* store_;
  int depth_ = 0;
};

}  // namespace tyder

#endif  // TYDER_INSTANCES_INTERP_H_
