// Object instances. An object belongs to a type and carries one slot per
// attribute of that type's cumulative state, keyed by AttrId. Because
// FactorState *moves* attributes (ids are stable) and preserves cumulative
// state, objects created before a derivation remain valid afterwards — the
// mechanical counterpart of the paper's behavior-preservation claim.

#ifndef TYDER_INSTANCES_OBJECT_H_
#define TYDER_INSTANCES_OBJECT_H_

#include <unordered_map>

#include "common/ids.h"
#include "instances/value.h"

namespace tyder {

struct Object {
  TypeId type = kInvalidType;
  std::unordered_map<AttrId, Value> slots;
  // Object-preserving views: a delegating instance holds no slots of its own
  // and resolves every access against `base` (transitively). kInvalidObject
  // for ordinary objects.
  ObjectId base = kInvalidObject;
};

}  // namespace tyder

#endif  // TYDER_INSTANCES_OBJECT_H_
