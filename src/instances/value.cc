#include "instances/value.h"

namespace tyder {

std::string Value::ToString() const {
  if (is_void()) return "void";
  if (is_int()) return std::to_string(AsInt());
  if (is_float()) return std::to_string(AsFloat());
  if (is_bool()) return AsBool() ? "true" : "false";
  if (is_string()) return "\"" + AsString() + "\"";
  return "#" + std::to_string(AsObject());
}

}  // namespace tyder
