// ObjectStore persistence: a line-oriented text format for instances,
// companion to catalog/serialize.h's schema format. Object ids are stable
// across a round trip (delegating views keep their base links), so saved
// stores can be reloaded against a schema restored from the same snapshot.
//
//   tyder-store v1
//   obj <Type> [base=<id>]          # objects in id order
//   slot <obj-id> <attr-name> <value>
//
// Values: i:<int>  f:<float-hex>  b:0|1  s:"escaped"  o:<object-id>  v (void)

#ifndef TYDER_INSTANCES_STORE_SERIALIZE_H_
#define TYDER_INSTANCES_STORE_SERIALIZE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "instances/store.h"
#include "methods/schema.h"

namespace tyder {

std::string SerializeStore(const Schema& schema, const ObjectStore& store);

// Rebuilds a store against `schema` (attribute names must resolve — use the
// schema the store was saved with, or a serialize round trip of it).
Result<ObjectStore> DeserializeStore(const Schema& schema,
                                     std::string_view text);

}  // namespace tyder

#endif  // TYDER_INSTANCES_STORE_SERIALIZE_H_
