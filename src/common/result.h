// Result<T>: a Status or a value, in the style of arrow::Result. Used as the
// return type of fallible operations that produce a value.

#ifndef TYDER_COMMON_RESULT_H_
#define TYDER_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

namespace tyder {

namespace internal {
// Prints the carried status (or the misuse description) to stderr and aborts.
// Always on — an `assert` would compile out under NDEBUG and turn release-mode
// misuse of Result into silent undefined behavior.
[[noreturn]] void DieOnBadResult(const char* what, const Status& status);
}  // namespace internal

template <typename T>
class Result {
 public:
  // Implicit construction from a value or from a non-OK Status keeps call
  // sites natural: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}         // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      internal::DieOnBadResult("Result constructed from OK status without a value",
                               status_);
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      internal::DieOnBadResult("Result::value() called on an error Result",
                               status_);
    }
  }

  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define TYDER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define TYDER_ASSIGN_OR_RETURN(lhs, expr)                                  \
  TYDER_ASSIGN_OR_RETURN_IMPL(TYDER_CONCAT_(_res_, __LINE__), lhs, expr)

#define TYDER_CONCAT_(a, b) TYDER_CONCAT_IMPL_(a, b)
#define TYDER_CONCAT_IMPL_(a, b) a##b

}  // namespace tyder

#endif  // TYDER_COMMON_RESULT_H_
