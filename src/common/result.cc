#include "common/result.h"

#include <cstdio>
#include <cstdlib>

#include "obs/obs.h"

namespace tyder::internal {

void DieOnBadResult(const char* what, const Status& status) {
  std::fprintf(stderr, "tyder: fatal: %s (status: %s)\n", what,
               status.ToString().c_str());
#if TYDER_OBS_ENABLED
  // Ship the black box with the abort: a file dump when $TYDER_FLIGHT_DIR is
  // set, the last events per thread on stderr otherwise.
  obs::FlightRecorder::Record(obs::FlightEventKind::kAbort, what);
  obs::FlightRecorder::MaybeDumpForCrash("result_abort");
#endif
  std::fflush(stderr);
  std::abort();
}

}  // namespace tyder::internal
