#include "common/result.h"

#include <cstdio>
#include <cstdlib>

namespace tyder::internal {

void DieOnBadResult(const char* what, const Status& status) {
  std::fprintf(stderr, "tyder: fatal: %s (status: %s)\n", what,
               status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace tyder::internal
