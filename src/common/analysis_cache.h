// AnalysisCacheSlot: a version-tagged holder for one lazily derived analysis
// structure (dispatch tables, call-site caches, relevant-call extractions).
//
// A slot stores an opaque shared_ptr plus the schema version it was built
// for. GetOrBuild() returns the cached structure while the version matches
// and rebuilds it otherwise, so invalidation is automatic: any schema
// mutation bumps the version and the next reader rebuilds.
//
// Slots are embedded `mutable` in value types (Schema) that are copied for
// snapshots, so copy/move semantics deliberately do NOT transfer the cache:
// a copy starts cold, and assigning over a slot drops whatever it held
// (the content it described has just been replaced). This is what makes
// SchemaTransaction rollback — a whole-schema copy-assign — implicitly
// invalidate every derived structure.
//
// Thread-safety: the slot itself is mutex-guarded, so concurrent readers of
// a structurally frozen schema may GetOrBuild() from many threads; the first
// one builds, the rest wait and share the result. The *built* structure is
// shared across threads and must handle its own interior synchronization.

#ifndef TYDER_COMMON_ANALYSIS_CACHE_H_
#define TYDER_COMMON_ANALYSIS_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace tyder {

class AnalysisCacheSlot {
 public:
  AnalysisCacheSlot() = default;
  AnalysisCacheSlot(const AnalysisCacheSlot&) {}
  AnalysisCacheSlot& operator=(const AnalysisCacheSlot&) {
    Invalidate();
    return *this;
  }
  AnalysisCacheSlot(AnalysisCacheSlot&&) noexcept {}
  AnalysisCacheSlot& operator=(AnalysisCacheSlot&&) noexcept {
    Invalidate();
    return *this;
  }

  // Returns the structure cached for `version`, building it with `build()`
  // (-> std::shared_ptr<T>) if the slot is empty or stale. The build runs
  // under the slot lock: concurrent first readers block instead of building
  // duplicates.
  template <typename T, typename BuildFn>
  std::shared_ptr<T> GetOrBuild(uint64_t version, BuildFn&& build) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (data_ == nullptr || version_ != version) {
      data_ = std::forward<BuildFn>(build)();
      version_ = version;
    }
    return std::static_pointer_cast<T>(data_);
  }

  void Invalidate() const {
    std::lock_guard<std::mutex> lock(mu_);
    data_.reset();
    version_ = kNoVersion;
  }

 private:
  static constexpr uint64_t kNoVersion = UINT64_MAX;

  mutable std::mutex mu_;
  mutable uint64_t version_ = kNoVersion;
  mutable std::shared_ptr<void> data_;
};

}  // namespace tyder

#endif  // TYDER_COMMON_ANALYSIS_CACHE_H_
