// Status: lightweight error propagation without exceptions, in the style of
// Arrow/RocksDB. Every fallible operation in tyder returns a Status or a
// Result<T> (see common/result.h). A Status is cheap to copy when OK (no
// allocation) and carries a code plus message otherwise.

#ifndef TYDER_COMMON_STATUS_H_
#define TYDER_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tyder {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // named entity absent from schema/catalog
  kAlreadyExists,     // duplicate registration
  kFailedPrecondition,// schema in a state that forbids the operation
  kTypeError,         // static type checking failure
  kParseError,        // TDL front-end failure
  kInternal,          // invariant violation inside tyder itself
};

// Human-readable name of a status code ("InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  // An OK status. Status() is also OK.
  Status() = default;
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string* const kEmpty = new std::string();
    return rep_ ? rep_->message : *kEmpty;
  }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  // Returns a copy of this status with `context + ": "` prepended to the
  // message; OK statuses are returned unchanged.
  Status WithContext(std::string_view context) const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  Status(StatusCode code, std::string msg)
      : rep_(std::make_unique<Rep>(Rep{code, std::move(msg)})) {}

  std::unique_ptr<Rep> rep_;  // null means OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Propagates a non-OK Status to the caller of the enclosing function.
#define TYDER_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::tyder::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace tyder

#endif  // TYDER_COMMON_STATUS_H_
