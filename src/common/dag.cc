#include "common/dag.h"

#include <algorithm>
#include <deque>

namespace tyder {

uint32_t Digraph::AddNode() {
  succ_.emplace_back();
  pred_.emplace_back();
  return static_cast<uint32_t>(succ_.size() - 1);
}

void Digraph::AddEdge(uint32_t from, uint32_t to) {
  succ_[from].push_back(to);
  pred_[to].push_back(from);
}

bool Digraph::Reaches(uint32_t from, uint32_t to) const {
  if (from == to) return true;
  std::vector<bool> seen(NumNodes(), false);
  std::deque<uint32_t> queue{from};
  seen[from] = true;
  while (!queue.empty()) {
    uint32_t n = queue.front();
    queue.pop_front();
    for (uint32_t s : succ_[n]) {
      if (s == to) return true;
      if (!seen[s]) {
        seen[s] = true;
        queue.push_back(s);
      }
    }
  }
  return false;
}

std::vector<uint32_t> Digraph::ReachableFrom(uint32_t start) const {
  std::vector<bool> seen(NumNodes(), false);
  std::vector<uint32_t> order;
  std::deque<uint32_t> queue{start};
  seen[start] = true;
  while (!queue.empty()) {
    uint32_t n = queue.front();
    queue.pop_front();
    order.push_back(n);
    for (uint32_t s : succ_[n]) {
      if (!seen[s]) {
        seen[s] = true;
        queue.push_back(s);
      }
    }
  }
  return order;
}

bool Digraph::HasCycle() const {
  return TopologicalOrder().size() != NumNodes();
}

std::vector<uint32_t> Digraph::TopologicalOrder() const {
  std::vector<uint32_t> indegree(NumNodes(), 0);
  for (uint32_t n = 0; n < NumNodes(); ++n) {
    for (uint32_t s : succ_[n]) ++indegree[s];
  }
  std::deque<uint32_t> ready;
  for (uint32_t n = 0; n < NumNodes(); ++n) {
    if (indegree[n] == 0) ready.push_back(n);
  }
  std::vector<uint32_t> order;
  order.reserve(NumNodes());
  while (!ready.empty()) {
    uint32_t n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (uint32_t s : succ_[n]) {
      if (--indegree[s] == 0) ready.push_back(s);
    }
  }
  return order;
}

std::vector<std::vector<bool>> Digraph::TransitiveClosure() const {
  uint32_t n = NumNodes();
  std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
  // Process in reverse topological order so each node's row is the union of
  // its successors' completed rows.
  std::vector<uint32_t> topo = TopologicalOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    uint32_t v = *it;
    closure[v][v] = true;
    for (uint32_t s : succ_[v]) {
      for (uint32_t w = 0; w < n; ++w) {
        if (closure[s][w]) closure[v][w] = true;
      }
    }
  }
  return closure;
}

}  // namespace tyder
