#include "common/status.h"

namespace tyder {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  Status s;
  s.rep_ = std::make_unique<Rep>(Rep{code(), std::move(msg)});
  return s;
}

}  // namespace tyder
