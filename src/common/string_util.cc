#include "common/string_util.h"

#include <cctype>

namespace tyder {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) pos = s.size();
    std::string_view piece = Trim(s.substr(start, pos - start));
    if (!piece.empty()) out.emplace_back(piece);
    start = pos + 1;
  }
  return out;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  auto head = static_cast<unsigned char>(s[0]);
  if (!std::isalpha(head) && s[0] != '_') return false;
  for (char c : s.substr(1)) {
    auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_') return false;
  }
  return true;
}

}  // namespace tyder
