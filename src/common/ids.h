// Dense integer ids used across tyder. All are indices into the owning
// Schema's tables; kInvalid* is the universal sentinel.

#ifndef TYDER_COMMON_IDS_H_
#define TYDER_COMMON_IDS_H_

#include <cstdint>

namespace tyder {

using TypeId = uint32_t;    // index into TypeGraph::types_
using AttrId = uint32_t;    // index into TypeGraph::attrs_
using GfId = uint32_t;      // index into Schema's generic-function table
using MethodId = uint32_t;  // index into Schema's method table

inline constexpr uint32_t kInvalidId = UINT32_MAX;
inline constexpr TypeId kInvalidType = kInvalidId;
inline constexpr AttrId kInvalidAttr = kInvalidId;
inline constexpr GfId kInvalidGf = kInvalidId;
inline constexpr MethodId kInvalidMethod = kInvalidId;

}  // namespace tyder

#endif  // TYDER_COMMON_IDS_H_
