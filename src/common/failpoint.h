// Named fault points for failure-path testing, in the style of the RocksDB /
// TiKV fail-point facilities. Library code marks each interesting failure
// site with TYDER_FAULT_POINT("phase.site"); the macro is inert unless that
// point has been activated, in which case it makes the enclosing function
// return Status::Internal — letting tests force a failure at every phase
// boundary (and mid-phase) of the derivation pipeline and prove the schema
// transaction rolls every one of them back cleanly.
//
// Activation:
//   - from tests:      failpoint::Activate("augment.mid");          // always
//                      failpoint::Activate("factor_state.mid", 1);  // 1 shot
//                      failpoint::DeactivateAll();
//   - from the env:    TYDER_FAULTS=factor_methods.mid=1,verify.before
//                      (comma-separated name[=count]; no count means fire on
//                      every hit; parsed once at first use)
//
// Cost: an inactive point is one function-local-static pointer load plus one
// relaxed atomic load — unmeasurable next to any schema operation (see
// bench_transaction). With -DTYDER_FAILPOINTS=OFF the macro compiles to
// nothing and the registry stays empty.
//
// Every point name must appear in the canonical registry list in
// failpoint.cc (AllFaultPointNames); hitting an unregistered name aborts, so
// a typo at a call site fails loudly the first time the site executes.

#ifndef TYDER_COMMON_FAILPOINT_H_
#define TYDER_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

#ifndef TYDER_FAILPOINTS_ENABLED
#define TYDER_FAILPOINTS_ENABLED 1
#endif

namespace tyder::failpoint {

struct FailPoint {
  // 0: inactive. N>0: fire on the next N hits. -1: fire on every hit.
  std::atomic<int> remaining{0};
  // Total failures this point has injected (never reset by Deactivate).
  std::atomic<uint64_t> fires{0};
};

// The canonical, sorted list of every fault point wired into the codebase.
// Tests iterate this to prove each failure path leaves the schema untouched.
const std::vector<std::string>& AllFaultPointNames();

// Looks up a registered point; aborts on an unknown name.
FailPoint* GetPoint(std::string_view name);

// Arms `name`: the next `count` hits fail (count < 0: every hit fails).
void Activate(std::string_view name, int count = -1);
void Deactivate(std::string_view name);
void DeactivateAll();

// Total failures `name` has injected so far.
uint64_t FireCount(std::string_view name);

// Internal: slow path taken only when the point is armed.
Status Fire(FailPoint* point, const char* name);

// True iff `name` is armed (consuming one shot and counting a fire). For
// failure sites that do not propagate a Status, e.g. the verifier's report.
// Looks the point up in the registry on every call; prefer
// TYDER_FAULT_CONSUME at fixed call sites.
bool Consume(const char* name);

}  // namespace tyder::failpoint

#if TYDER_FAILPOINTS_ENABLED

// Makes the enclosing function (returning Status or Result<T>) fail with
// Status::Internal when fault point `name` is armed. `name` must be a string
// literal present in the registry list in failpoint.cc.
#define TYDER_FAULT_POINT(name)                                            \
  do {                                                                     \
    static ::tyder::failpoint::FailPoint* tyder_failpoint_ =               \
        ::tyder::failpoint::GetPoint(name);                                \
    if (tyder_failpoint_->remaining.load(std::memory_order_relaxed) != 0)  \
      TYDER_RETURN_IF_ERROR(                                               \
          ::tyder::failpoint::Fire(tyder_failpoint_, name));               \
  } while (0)

// Expression form of TYDER_FAULT_POINT for failure sites that cannot simply
// return Status: evaluates to true iff `name` is armed (consuming one shot
// and counting the fire). The registry lookup is cached per call site — each
// expansion gets its own static, so distinct names stay independent.
#define TYDER_FAULT_CONSUME(name)                                          \
  ([]() -> bool {                                                          \
    static ::tyder::failpoint::FailPoint* tyder_failpoint_ =               \
        ::tyder::failpoint::GetPoint(name);                                \
    if (tyder_failpoint_->remaining.load(std::memory_order_relaxed) == 0)  \
      return false;                                                        \
    return !::tyder::failpoint::Fire(tyder_failpoint_, name).ok();         \
  }())

#else  // !TYDER_FAILPOINTS_ENABLED

#define TYDER_FAULT_POINT(name) \
  do {                          \
  } while (0)

#define TYDER_FAULT_CONSUME(name) (false)

#endif  // TYDER_FAILPOINTS_ENABLED

#endif  // TYDER_COMMON_FAILPOINT_H_
