#include "common/symbol.h"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace tyder {

namespace {

struct Interner {
  std::mutex mu;
  // Deque gives pointer stability for the string storage.
  std::deque<std::string> names;
  std::unordered_map<std::string_view, uint32_t> index;

  Interner() {
    names.emplace_back("");  // id 0: the empty symbol
    index.emplace(names.back(), 0);
  }
};

Interner& GlobalInterner() {
  // Leaked on purpose: interned names must outlive all Symbols, and symbols
  // may be used during static destruction.
  static Interner* const interner = new Interner();
  return *interner;
}

}  // namespace

Symbol Symbol::Intern(std::string_view name) {
  Interner& in = GlobalInterner();
  std::lock_guard<std::mutex> lock(in.mu);
  auto it = in.index.find(name);
  if (it != in.index.end()) return Symbol(it->second);
  in.names.emplace_back(name);
  uint32_t id = static_cast<uint32_t>(in.names.size() - 1);
  in.index.emplace(in.names.back(), id);
  return Symbol(id);
}

std::string_view Symbol::view() const {
  Interner& in = GlobalInterner();
  std::lock_guard<std::mutex> lock(in.mu);
  return in.names[id_];
}

}  // namespace tyder
