// Symbol: interned identifier. Names of types, attributes, generic functions
// and methods are interned once and compared / hashed as 32-bit ids
// thereafter. The interner is process-global and append-only.
//
// Thread-safety: interning takes a mutex; resolved Symbols are immutable and
// freely shareable.

#ifndef TYDER_COMMON_SYMBOL_H_
#define TYDER_COMMON_SYMBOL_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>

namespace tyder {

class Symbol {
 public:
  // The empty symbol; compares less than all interned symbols.
  Symbol() : id_(0) {}

  // Interns `name` (or finds the existing entry) and returns its symbol.
  static Symbol Intern(std::string_view name);

  // The interned text. The returned view lives for the program's duration.
  std::string_view view() const;
  std::string str() const { return std::string(view()); }

  bool empty() const { return id_ == 0; }
  uint32_t id() const { return id_; }

  friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  // Orders by intern id: stable within a process run, not lexicographic.
  friend bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  explicit Symbol(uint32_t id) : id_(id) {}
  uint32_t id_;
};

inline std::ostream& operator<<(std::ostream& os, Symbol s) {
  return os << s.view();
}

struct SymbolHash {
  size_t operator()(Symbol s) const { return std::hash<uint32_t>()(s.id()); }
};

}  // namespace tyder

#endif  // TYDER_COMMON_SYMBOL_H_
