#include "common/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/string_util.h"
#include "obs/obs.h"

namespace tyder::failpoint {

namespace {

// The registry of every fault point wired into the codebase. Adding a
// TYDER_FAULT_POINT call site requires adding its name here (GetPoint aborts
// on unknown names); tests iterate AllFaultPointNames to cover each one.
const char* const kFaultPointNames[] = {
    "augment.after_compute",     // pipeline: after ComputeAugmentSet, pre-Augment
    "augment.before",            // Augment entry (schema already factored)
    "augment.mid",               // inside Augmenter recursion, partial edges
    "catalog.define.after_derive",  // view derived but not yet recorded
    "catalog.drop.mid",          // view reverted/detached but not yet erased
    "chaos.skip_closure_invalidation",  // behavior perturbation, not a
                                 // failure: AddSupertype keeps the stale
                                 // subtype closure (tests/fuzz known-bad run)
    "collapse.before",           // CollapseEmptySurrogates entry
    "collapse.mid",              // after a surrogate was spliced out
    "factor_methods.before",     // FactorMethods entry
    "factor_methods.mid",        // after some signatures already rewritten
    "factor_state.before",       // FactorState entry
    "factor_state.mid",          // mid-recursion, surrogates partially created
    "is_applicable.before",      // ComputeApplicableMethods entry
    "is_applicable.mid",         // inside the per-method applicability check
    "net.accept",                // accepted socket dies before service
    "net.conn.drop_mid_request", // connection killed post-read, pre-execute
    "net.read.eintr",            // one synthetic EINTR on the read path
    "net.read.short",            // peer closes mid-frame
    "net.write.response",        // response write fails AFTER the commit
    "revert.before",             // RevertDerivation after preconditions
    "revert.mid",                // signatures restored, attributes not yet
    "storage.compact.after_rename",   // snapshot live, WAL not yet truncated
    "storage.compact.before_rename",  // temp snapshot written, not renamed
    "storage.env.append",        // write(2) fails, nothing persisted
    "storage.env.rename",        // rename(2) fails
    "storage.env.short_write",   // a prefix persists, then the write fails
    "storage.env.sync",          // fsync(fd) fails -> handle poisoned
    "storage.env.sync_dir",      // directory fsync fails
    "storage.env.truncate",      // ftruncate/truncate fails
    "storage.wal.after_append",  // record bytes written, before fsync
    "storage.wal.after_sync",    // record durable, commit not yet published
    "storage.wal.mid_fsync",     // the record's fsync itself fails
    "storage.wal.torn_write",    // only a prefix of the record reaches disk
    "verify.before",             // pre-verification, schema fully mutated
    "verify.force_failure",      // makes VerifyDerivation report an issue
};

class Registry {
 public:
  static Registry& Global() {
    static Registry* instance = new Registry();
    return *instance;
  }

  FailPoint* Find(std::string_view name) {
    auto it = points_.find(name);
    return it == points_.end() ? nullptr : &it->second;
  }

  const std::vector<std::string>& names() const { return names_; }

  void DeactivateAll() {
    for (auto& [name, point] : points_) {
      point.remaining.store(0, std::memory_order_relaxed);
    }
  }

 private:
  Registry() {
    for (const char* name : kFaultPointNames) {
      names_.emplace_back(name);
      points_.try_emplace(name);  // atomics: must construct in place
    }
    ActivateFromEnv();
  }

  // TYDER_FAULTS=name[=count],name[=count],...
  void ActivateFromEnv() {
    const char* env = std::getenv("TYDER_FAULTS");
    if (env == nullptr || *env == '\0') return;
    for (const std::string& entry : SplitAndTrim(env, ',')) {
      if (entry.empty()) continue;
      std::string name = entry;
      int count = -1;
      size_t eq = entry.find('=');
      if (eq != std::string::npos) {
        name = entry.substr(0, eq);
        count = std::atoi(entry.c_str() + eq + 1);
      }
      FailPoint* point = Find(name);
      if (point == nullptr) {
        std::fprintf(stderr,
                     "tyder: TYDER_FAULTS names unknown fault point '%s' "
                     "(ignored)\n",
                     name.c_str());
        continue;
      }
      point->remaining.store(count, std::memory_order_relaxed);
    }
  }

  std::map<std::string, FailPoint, std::less<>> points_;
  std::vector<std::string> names_;
};

}  // namespace

const std::vector<std::string>& AllFaultPointNames() {
  return Registry::Global().names();
}

FailPoint* GetPoint(std::string_view name) {
  FailPoint* point = Registry::Global().Find(name);
  if (point == nullptr) {
    std::fprintf(stderr,
                 "tyder: fault point '%.*s' is not in the registry list in "
                 "failpoint.cc\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return point;
}

void Activate(std::string_view name, int count) {
  GetPoint(name)->remaining.store(count, std::memory_order_relaxed);
}

void Deactivate(std::string_view name) {
  GetPoint(name)->remaining.store(0, std::memory_order_relaxed);
}

void DeactivateAll() { Registry::Global().DeactivateAll(); }

uint64_t FireCount(std::string_view name) {
  return GetPoint(name)->fires.load(std::memory_order_relaxed);
}

Status Fire(FailPoint* point, const char* name) {
  int remaining = point->remaining.load(std::memory_order_relaxed);
  if (remaining == 0) return Status::OK();
  if (remaining > 0) {
    point->remaining.fetch_sub(1, std::memory_order_relaxed);
  }
  point->fires.fetch_add(1, std::memory_order_relaxed);
  // Black-box the injection: the event lands in the thread's ring, and if a
  // dump directory is configured (the crash matrix arms one) the full
  // flight dump ships alongside the injected failure.
  TYDER_RECORD_V(kFailpoint, name,
                 static_cast<int64_t>(
                     point->fires.load(std::memory_order_relaxed)));
  TYDER_FLIGHT_DUMP(std::string("failpoint:") + name);
  return Status::Internal("fault injected at '" + std::string(name) + "'");
}

bool Consume(const char* name) {
#if TYDER_FAILPOINTS_ENABLED
  FailPoint* point = GetPoint(name);
  if (point->remaining.load(std::memory_order_relaxed) == 0) return false;
  return !Fire(point, name).ok();
#else
  (void)name;
  return false;
#endif
}

}  // namespace tyder::failpoint
