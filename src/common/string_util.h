// Small string helpers shared across tyder.

#ifndef TYDER_COMMON_STRING_UTIL_H_
#define TYDER_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tyder {

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits `s` on `sep`, trimming ASCII whitespace from each piece and dropping
// empty pieces. "a, b ,c" -> {"a","b","c"}.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// True iff `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool IsIdentifier(std::string_view s);

}  // namespace tyder

#endif  // TYDER_COMMON_STRING_UTIL_H_
