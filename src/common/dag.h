// Digraph: a small adjacency-list directed graph over dense uint32 node ids,
// with the graph algorithms the rest of tyder needs: cycle detection,
// reachability, topological order, and transitive closure. The type DAG
// (objmodel) and the method call graph (mir) are both built on this.

#ifndef TYDER_COMMON_DAG_H_
#define TYDER_COMMON_DAG_H_

#include <cstdint>
#include <vector>

namespace tyder {

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(uint32_t num_nodes) : succ_(num_nodes), pred_(num_nodes) {}

  // Adds a fresh node and returns its id.
  uint32_t AddNode();

  // Adds edge from -> to. Both ids must be < NumNodes(). Parallel edges are
  // kept (callers that care dedupe themselves).
  void AddEdge(uint32_t from, uint32_t to);

  uint32_t NumNodes() const { return static_cast<uint32_t>(succ_.size()); }

  const std::vector<uint32_t>& Successors(uint32_t n) const { return succ_[n]; }
  const std::vector<uint32_t>& Predecessors(uint32_t n) const { return pred_[n]; }

  // True iff there is a directed path from `from` to `to` (a node reaches
  // itself trivially).
  bool Reaches(uint32_t from, uint32_t to) const;

  // All nodes reachable from `start` (including `start`), in BFS order.
  std::vector<uint32_t> ReachableFrom(uint32_t start) const;

  // True iff the graph contains a directed cycle.
  bool HasCycle() const;

  // Topological order (sources first). Empty when NumNodes()==0; when the
  // graph has a cycle the order is partial (cyclic nodes are omitted) —
  // callers should check HasCycle() first when that matters.
  std::vector<uint32_t> TopologicalOrder() const;

  // Bit-matrix transitive closure. closure[a][b] == true iff a reaches b.
  // O(V^2/64 * E); fine for the schema sizes tyder handles.
  std::vector<std::vector<bool>> TransitiveClosure() const;

 private:
  std::vector<std::vector<uint32_t>> succ_;
  std::vector<std::vector<uint32_t>> pred_;
};

}  // namespace tyder

#endif  // TYDER_COMMON_DAG_H_
