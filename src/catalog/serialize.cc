#include "catalog/serialize.h"

#include <cstdint>
#include <sstream>

#include "common/string_util.h"
#include "mir/builder.h"
#include "storage/crc32c.h"

namespace tyder {

namespace {

const char* KindToken(TypeKind kind) {
  switch (kind) {
    case TypeKind::kBuiltin: return "builtin";
    case TypeKind::kUser: return "user";
    case TypeKind::kSurrogate: return "surrogate";
  }
  return "?";
}

const char* MethodKindToken(MethodKind kind) {
  switch (kind) {
    case MethodKind::kGeneral: return "general";
    case MethodKind::kReader: return "reader";
    case MethodKind::kMutator: return "mutator";
  }
  return "?";
}

std::string EscapeString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

void WriteBody(const Schema& schema, const ExprPtr& node,
               std::ostringstream& out) {
  const Expr& e = *node;
  switch (e.kind) {
    case ExprKind::kParamRef:
      out << "(param " << e.param_index << ")";
      return;
    case ExprKind::kVarRef:
      out << "(var " << e.var.view() << ")";
      return;
    case ExprKind::kIntLit:
      out << "(int " << e.int_val << ")";
      return;
    case ExprKind::kFloatLit:
      out << "(float " << e.float_val << ")";
      return;
    case ExprKind::kBoolLit:
      out << "(bool " << (e.bool_val ? "true" : "false") << ")";
      return;
    case ExprKind::kStringLit:
      out << "(str " << EscapeString(e.str_val) << ")";
      return;
    case ExprKind::kCall: {
      out << "(call " << schema.gf(e.callee).name.view();
      for (const ExprPtr& c : e.children) {
        out << " ";
        WriteBody(schema, c, out);
      }
      out << ")";
      return;
    }
    case ExprKind::kBinOp: {
      out << "(bin " << BinOpName(e.op) << " ";
      WriteBody(schema, e.children[0], out);
      out << " ";
      WriteBody(schema, e.children[1], out);
      out << ")";
      return;
    }
    case ExprKind::kSeq: {
      out << "(seq";
      for (const ExprPtr& c : e.children) {
        out << " ";
        WriteBody(schema, c, out);
      }
      out << ")";
      return;
    }
    case ExprKind::kDecl: {
      out << "(decl " << e.var.view() << " "
          << schema.types().TypeName(e.decl_type);
      if (!e.children.empty()) {
        out << " ";
        WriteBody(schema, e.children[0], out);
      }
      out << ")";
      return;
    }
    case ExprKind::kAssign: {
      out << "(assign " << e.var.view() << " ";
      WriteBody(schema, e.children[0], out);
      out << ")";
      return;
    }
    case ExprKind::kReturn: {
      out << "(return";
      if (!e.children.empty()) {
        out << " ";
        WriteBody(schema, e.children[0], out);
      }
      out << ")";
      return;
    }
    case ExprKind::kIf: {
      out << "(if";
      for (const ExprPtr& c : e.children) {
        out << " ";
        WriteBody(schema, c, out);
      }
      out << ")";
      return;
    }
    case ExprKind::kExprStmt: {
      out << "(stmt ";
      WriteBody(schema, e.children[0], out);
      out << ")";
      return;
    }
  }
}

// --- s-expression reader ----------------------------------------------------

struct SexprToken {
  enum Kind { kLParen, kRParen, kAtom, kString, kEnd } kind;
  std::string text;
};

class SexprLexer {
 public:
  explicit SexprLexer(std::string_view text) : text_(text) {}

  Result<SexprToken> Next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return SexprToken{SexprToken::kEnd, ""};
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      return SexprToken{SexprToken::kLParen, "("};
    }
    if (c == ')') {
      ++pos_;
      return SexprToken{SexprToken::kRParen, ")"};
    }
    if (c == '"') {
      ++pos_;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
          ++pos_;
          out += text_[pos_] == 'n' ? '\n' : text_[pos_];
        } else {
          out += text_[pos_];
        }
        ++pos_;
      }
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated string in body");
      }
      ++pos_;  // closing quote
      return SexprToken{SexprToken::kString, out};
    }
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '(' && text_[pos_] != ')' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return SexprToken{SexprToken::kAtom,
                      std::string(text_.substr(start, pos_ - start))};
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

class BodyReader {
 public:
  BodyReader(const Schema& schema, std::string_view text)
      : schema_(schema), lexer_(text) {}

  Result<ExprPtr> Read() {
    TYDER_ASSIGN_OR_RETURN(SexprToken tok, lexer_.Next());
    return ReadNode(tok);
  }

 private:
  Result<ExprPtr> ReadNode(const SexprToken& tok) {
    if (tok.kind != SexprToken::kLParen) {
      return Status::ParseError("expected '(' in body expression");
    }
    TYDER_ASSIGN_OR_RETURN(SexprToken head, lexer_.Next());
    if (head.kind != SexprToken::kAtom) {
      return Status::ParseError("expected node tag after '('");
    }
    const std::string& tag = head.text;
    if (tag == "param") {
      TYDER_ASSIGN_OR_RETURN(std::string idx, Atom());
      TYDER_RETURN_IF_ERROR(Close());
      return mir::Param(std::stoi(idx));
    }
    if (tag == "var") {
      TYDER_ASSIGN_OR_RETURN(std::string name, Atom());
      TYDER_RETURN_IF_ERROR(Close());
      return mir::Var(name);
    }
    if (tag == "int") {
      TYDER_ASSIGN_OR_RETURN(std::string v, Atom());
      TYDER_RETURN_IF_ERROR(Close());
      return mir::IntLit(std::stoll(v));
    }
    if (tag == "float") {
      TYDER_ASSIGN_OR_RETURN(std::string v, Atom());
      TYDER_RETURN_IF_ERROR(Close());
      return mir::FloatLit(std::stod(v));
    }
    if (tag == "bool") {
      TYDER_ASSIGN_OR_RETURN(std::string v, Atom());
      TYDER_RETURN_IF_ERROR(Close());
      return mir::BoolLit(v == "true");
    }
    if (tag == "str") {
      TYDER_ASSIGN_OR_RETURN(SexprToken v, lexer_.Next());
      if (v.kind != SexprToken::kString) {
        return Status::ParseError("expected string literal");
      }
      TYDER_RETURN_IF_ERROR(Close());
      return mir::StringLit(v.text);
    }
    if (tag == "call") {
      TYDER_ASSIGN_OR_RETURN(std::string gf_name, Atom());
      TYDER_ASSIGN_OR_RETURN(GfId gf, schema_.FindGenericFunction(gf_name));
      TYDER_ASSIGN_OR_RETURN(std::vector<ExprPtr> args, Children());
      return mir::Call(gf, std::move(args));
    }
    if (tag == "bin") {
      TYDER_ASSIGN_OR_RETURN(std::string op_name, Atom());
      TYDER_ASSIGN_OR_RETURN(BinOpKind op, ParseOp(op_name));
      TYDER_ASSIGN_OR_RETURN(std::vector<ExprPtr> kids, Children());
      if (kids.size() != 2) {
        return Status::ParseError("bin expects two operands");
      }
      return mir::BinOp(op, kids[0], kids[1]);
    }
    if (tag == "seq") {
      TYDER_ASSIGN_OR_RETURN(std::vector<ExprPtr> kids, Children());
      return mir::Seq(std::move(kids));
    }
    if (tag == "decl") {
      TYDER_ASSIGN_OR_RETURN(std::string var, Atom());
      TYDER_ASSIGN_OR_RETURN(std::string type_name, Atom());
      TYDER_ASSIGN_OR_RETURN(TypeId type, schema_.types().FindType(type_name));
      TYDER_ASSIGN_OR_RETURN(std::vector<ExprPtr> kids, Children());
      if (kids.size() > 1) return Status::ParseError("decl takes <= 1 init");
      return mir::Decl(var, type, kids.empty() ? nullptr : kids[0]);
    }
    if (tag == "assign") {
      TYDER_ASSIGN_OR_RETURN(std::string var, Atom());
      TYDER_ASSIGN_OR_RETURN(std::vector<ExprPtr> kids, Children());
      if (kids.size() != 1) return Status::ParseError("assign takes 1 value");
      return mir::Assign(var, kids[0]);
    }
    if (tag == "return") {
      TYDER_ASSIGN_OR_RETURN(std::vector<ExprPtr> kids, Children());
      if (kids.size() > 1) return Status::ParseError("return takes <= 1 value");
      return mir::Return(kids.empty() ? nullptr : kids[0]);
    }
    if (tag == "if") {
      TYDER_ASSIGN_OR_RETURN(std::vector<ExprPtr> kids, Children());
      if (kids.size() != 2 && kids.size() != 3) {
        return Status::ParseError("if takes 2 or 3 children");
      }
      return mir::If(kids[0], kids[1], kids.size() == 3 ? kids[2] : nullptr);
    }
    if (tag == "stmt") {
      TYDER_ASSIGN_OR_RETURN(std::vector<ExprPtr> kids, Children());
      if (kids.size() != 1) return Status::ParseError("stmt takes 1 child");
      return mir::ExprStmt(kids[0]);
    }
    return Status::ParseError("unknown body node tag '" + tag + "'");
  }

  Result<std::string> Atom() {
    TYDER_ASSIGN_OR_RETURN(SexprToken tok, lexer_.Next());
    if (tok.kind != SexprToken::kAtom) {
      return Status::ParseError("expected atom in body expression");
    }
    return tok.text;
  }

  Status Close() {
    TYDER_ASSIGN_OR_RETURN(SexprToken tok, lexer_.Next());
    if (tok.kind != SexprToken::kRParen) {
      return Status::ParseError("expected ')' in body expression");
    }
    return Status::OK();
  }

  // Reads child nodes until the matching ')'.
  Result<std::vector<ExprPtr>> Children() {
    std::vector<ExprPtr> out;
    for (;;) {
      TYDER_ASSIGN_OR_RETURN(SexprToken tok, lexer_.Next());
      if (tok.kind == SexprToken::kRParen) return out;
      TYDER_ASSIGN_OR_RETURN(ExprPtr node, ReadNode(tok));
      out.push_back(std::move(node));
    }
  }

  Result<BinOpKind> ParseOp(const std::string& name) {
    for (BinOpKind op :
         {BinOpKind::kAdd, BinOpKind::kSub, BinOpKind::kMul, BinOpKind::kDiv,
          BinOpKind::kLt, BinOpKind::kLe, BinOpKind::kEq, BinOpKind::kAnd,
          BinOpKind::kOr}) {
      if (name == BinOpName(op)) return op;
    }
    return Status::ParseError("unknown operator '" + name + "'");
  }

  const Schema& schema_;
  SexprLexer lexer_;
};

// Parses the remainder of a "method" line:
//   <label> <gf> <kind> (<T>...) -> <R> [attr=<name>] [params=<p>,...]
Status ParseMethodLine(Schema& schema, std::istringstream& ls) {
  std::string label, gf_name, kind_tok;
  ls >> label >> gf_name >> kind_tok;
  std::string rest;
  std::getline(ls, rest);

  size_t open = rest.find('(');
  size_t close = rest.find(')');
  size_t arrow = rest.find("->");
  if (open == std::string::npos || close == std::string::npos ||
      arrow == std::string::npos || close < open || arrow < close) {
    return Status::ParseError("malformed method line for '" + label + "'");
  }

  Method m;
  m.label = Symbol::Intern(label);
  TYDER_ASSIGN_OR_RETURN(m.gf, schema.FindGenericFunction(gf_name));
  if (kind_tok == "reader") {
    m.kind = MethodKind::kReader;
  } else if (kind_tok == "mutator") {
    m.kind = MethodKind::kMutator;
  } else {
    m.kind = MethodKind::kGeneral;
  }

  for (const std::string& param :
       SplitAndTrim(rest.substr(open + 1, close - open - 1), ' ')) {
    TYDER_ASSIGN_OR_RETURN(TypeId t, schema.types().FindType(param));
    m.sig.params.push_back(t);
  }

  std::istringstream tail(rest.substr(arrow + 2));
  std::string result_name;
  tail >> result_name;
  TYDER_ASSIGN_OR_RETURN(m.sig.result, schema.types().FindType(result_name));

  std::string extra;
  while (tail >> extra) {
    if (extra.rfind("attr=", 0) == 0) {
      TYDER_ASSIGN_OR_RETURN(m.attr,
                             schema.types().FindAttribute(extra.substr(5)));
    } else if (extra.rfind("params=", 0) == 0) {
      for (const std::string& p : SplitAndTrim(extra.substr(7), ',')) {
        m.param_names.push_back(Symbol::Intern(p));
      }
    }
  }
  return schema.AddMethod(std::move(m)).status();
}

}  // namespace

std::string SerializeBody(const Schema& schema, const ExprPtr& body) {
  std::ostringstream out;
  WriteBody(schema, body, out);
  return out.str();
}

Result<ExprPtr> DeserializeBody(const Schema& schema, std::string_view text) {
  return BodyReader(schema, text).Read();
}

std::string SerializeSchema(const Schema& schema) {
  std::ostringstream out;
  out << "tyder-schema v1\n";
  const TypeGraph& graph = schema.types();
  for (TypeId t = 0; t < graph.NumTypes(); ++t) {
    const Type& type = graph.type(t);
    out << "type " << type.name().view() << " " << KindToken(type.kind());
    if (type.surrogate_source() != kInvalidType) {
      out << " source=" << graph.TypeName(type.surrogate_source());
    }
    if (type.detached()) out << " detached";
    out << "\n";
  }
  for (TypeId t = 0; t < graph.NumTypes(); ++t) {
    for (TypeId s : graph.type(t).supertypes()) {
      out << "super " << graph.TypeName(t) << " " << graph.TypeName(s) << "\n";
    }
  }
  for (AttrId a = 0; a < graph.NumAttributes(); ++a) {
    const AttributeDef& attr = graph.attribute(a);
    out << "attr " << attr.name.view() << " " << graph.TypeName(attr.value_type)
        << " " << graph.TypeName(attr.owner) << "\n";
  }
  for (GfId g = 0; g < schema.NumGenericFunctions(); ++g) {
    out << "gf " << schema.gf(g).name.view() << " " << schema.gf(g).arity
        << "\n";
  }
  for (MethodId m = 0; m < schema.NumMethods(); ++m) {
    const Method& method = schema.method(m);
    out << "method " << method.label.view() << " "
        << schema.gf(method.gf).name.view() << " "
        << MethodKindToken(method.kind) << " (";
    for (size_t i = 0; i < method.sig.params.size(); ++i) {
      if (i > 0) out << " ";
      out << graph.TypeName(method.sig.params[i]);
    }
    out << ") -> " << graph.TypeName(method.sig.result);
    if (method.attr != kInvalidAttr) {
      out << " attr=" << graph.attribute(method.attr).name.view();
    }
    if (!method.param_names.empty()) {
      out << " params=";
      for (size_t i = 0; i < method.param_names.size(); ++i) {
        if (i > 0) out << ",";
        out << method.param_names[i].view();
      }
    }
    out << "\n";
  }
  for (MethodId m = 0; m < schema.NumMethods(); ++m) {
    const Method& method = schema.method(m);
    if (method.body == nullptr) continue;
    out << "body " << method.label.view() << " "
        << SerializeBody(schema, method.body) << "\n";
  }
  return out.str();
}

Result<Schema> DeserializeSchema(std::string_view text) {
  TYDER_ASSIGN_OR_RETURN(Schema schema, Schema::Create());
  size_t builtin_types = schema.types().NumTypes();

  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || Trim(line) != "tyder-schema v1") {
    return Status::ParseError("missing tyder-schema header");
  }
  size_t type_count = 0;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string cmd;
    ls >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;
    if (cmd == "type") {
      std::string name, kind;
      ls >> name >> kind;
      ++type_count;
      if (type_count <= builtin_types) continue;  // builtins pre-installed
      TypeKind k = kind == "surrogate" ? TypeKind::kSurrogate : TypeKind::kUser;
      TYDER_ASSIGN_OR_RETURN(TypeId id, schema.types().DeclareType(name, k));
      std::string extra;
      while (ls >> extra) {
        if (extra.rfind("source=", 0) == 0) {
          TYDER_ASSIGN_OR_RETURN(TypeId src,
                                 schema.types().FindType(extra.substr(7)));
          schema.types().mutable_type(id).set_surrogate_source(src);
        } else if (extra == "detached") {
          schema.types().mutable_type(id).set_detached(true);
        }
      }
    } else if (cmd == "super") {
      std::string sub, super;
      ls >> sub >> super;
      TYDER_ASSIGN_OR_RETURN(TypeId sub_id, schema.types().FindType(sub));
      TYDER_ASSIGN_OR_RETURN(TypeId super_id, schema.types().FindType(super));
      if (sub_id >= builtin_types || super_id >= builtin_types) {
        TYDER_RETURN_IF_ERROR(schema.types().AddSupertype(sub_id, super_id));
      }
    } else if (cmd == "attr") {
      std::string name, value_type, owner;
      ls >> name >> value_type >> owner;
      TYDER_ASSIGN_OR_RETURN(TypeId vt, schema.types().FindType(value_type));
      TYDER_ASSIGN_OR_RETURN(TypeId ow, schema.types().FindType(owner));
      TYDER_RETURN_IF_ERROR(
          schema.types().DeclareAttribute(ow, name, vt).status());
    } else if (cmd == "gf") {
      std::string name;
      int arity = 0;
      ls >> name >> arity;
      TYDER_RETURN_IF_ERROR(
          schema.DeclareGenericFunction(name, arity).status());
    } else if (cmd == "method") {
      TYDER_RETURN_IF_ERROR(ParseMethodLine(schema, ls));
    } else if (cmd == "body") {
      std::string label;
      ls >> label;
      std::string rest;
      std::getline(ls, rest);
      TYDER_ASSIGN_OR_RETURN(MethodId m, schema.FindMethod(label));
      TYDER_ASSIGN_OR_RETURN(ExprPtr body, DeserializeBody(schema, rest));
      schema.SetMethodBody(m, std::move(body));
    } else {
      return Status::ParseError("unknown directive '" + cmd + "'");
    }
  }
  TYDER_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

// --- checksummed snapshot envelope ------------------------------------------

namespace {

constexpr char kSnapshotMagic[8] = {'t', 'y', 'd', 'r', 's', 'n', 'a', 'p'};
constexpr uint32_t kSnapshotVersion = 1;
constexpr size_t kSnapshotHeaderSize = 16;  // magic + version + payload length

void AppendLe32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t ReadLe32(std::string_view bytes, size_t offset) {
  return static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset])) |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 1]))
             << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 2]))
             << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 3]))
             << 24;
}

}  // namespace

std::string EncodeSnapshotEnvelope(std::string_view payload) {
  std::string out;
  out.reserve(kSnapshotHeaderSize + payload.size() + 4);
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendLe32(out, kSnapshotVersion);
  AppendLe32(out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  AppendLe32(out, storage::Crc32c(payload));
  return out;
}

Result<std::string> DecodeSnapshotEnvelope(std::string_view bytes) {
  if (bytes.size() < kSnapshotHeaderSize) {
    return Status::ParseError(
        "truncated snapshot: " + std::to_string(bytes.size()) +
        " bytes is shorter than the " + std::to_string(kSnapshotHeaderSize) +
        "-byte header");
  }
  if (bytes.substr(0, sizeof(kSnapshotMagic)) !=
      std::string_view(kSnapshotMagic, sizeof(kSnapshotMagic))) {
    return Status::ParseError("not a tyder snapshot (bad magic)");
  }
  uint32_t version = ReadLe32(bytes, 8);
  if (version == 0 || version > kSnapshotVersion) {
    return Status::ParseError(
        "snapshot format version " + std::to_string(version) +
        " is not supported by this build (newest supported: " +
        std::to_string(kSnapshotVersion) + ")");
  }
  uint64_t payload_len = ReadLe32(bytes, 12);
  uint64_t expected = kSnapshotHeaderSize + payload_len + 4;
  if (bytes.size() < expected) {
    return Status::ParseError(
        "truncated snapshot: header declares a " +
        std::to_string(payload_len) + "-byte payload but only " +
        std::to_string(bytes.size()) + " of " + std::to_string(expected) +
        " bytes are present");
  }
  if (bytes.size() > expected) {
    return Status::ParseError("snapshot has " +
                              std::to_string(bytes.size() - expected) +
                              " bytes of trailing garbage");
  }
  std::string_view payload = bytes.substr(kSnapshotHeaderSize, payload_len);
  uint32_t stored = ReadLe32(bytes, kSnapshotHeaderSize + payload_len);
  uint32_t actual = storage::Crc32c(payload);
  if (stored != actual) {
    std::ostringstream msg;
    msg << "snapshot checksum mismatch: stored 0x" << std::hex << stored
        << ", computed 0x" << actual;
    return Status::ParseError(msg.str());
  }
  return std::string(payload);
}

std::string SaveSchemaSnapshot(const Schema& schema) {
  return EncodeSnapshotEnvelope(SerializeSchema(schema));
}

Result<Schema> LoadSchemaSnapshot(std::string_view bytes) {
  TYDER_ASSIGN_OR_RETURN(std::string payload, DecodeSnapshotEnvelope(bytes));
  return DeserializeSchema(payload);
}

}  // namespace tyder
