// TDL export: renders a schema (plus its catalog views) back into TDL
// source, closing the loop with lang/analyzer.h's loader. Only *unfactored*
// schemas can be exported — TDL has no syntax for surrogate types, and a
// factored hierarchy is an output of the derivation machinery, not an input
// (use catalog/serialize.h for full-fidelity persistence of factored
// schemas).
//
// Accessors are exported as the `accessors;` directive when they are exactly
// the standard owner-homed reader+mutator set; schemas with bespoke accessor
// formals are rejected (TDL cannot express them).

#ifndef TYDER_CATALOG_EXPORT_TDL_H_
#define TYDER_CATALOG_EXPORT_TDL_H_

#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "methods/schema.h"

namespace tyder {

// Schema only (no view statements).
Result<std::string> ExportTdl(const Schema& schema);

// Schema + the catalog's view definitions, emitted in definition order so a
// reload replays the derivations.
Result<std::string> ExportTdl(const Catalog& catalog);

}  // namespace tyder

#endif  // TYDER_CATALOG_EXPORT_TDL_H_
