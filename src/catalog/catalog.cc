#include "catalog/catalog.h"

#include "common/failpoint.h"
#include "core/algebra.h"
#include "core/revert.h"
#include "core/transaction.h"

namespace tyder {

Result<Catalog> Catalog::Create() {
  Catalog catalog;
  TYDER_ASSIGN_OR_RETURN(catalog.schema_, Schema::Create());
  return catalog;
}

Result<const ViewDef*> Catalog::DefineProjectionView(
    std::string_view name, std::string_view source_type,
    const std::vector<std::string>& attribute_names,
    const ProjectionOptions& options) {
  if (FindView(name).ok()) {
    return Status::AlreadyExists("view '" + std::string(name) +
                                 "' already defined");
  }
  TYDER_ASSIGN_OR_RETURN(TypeId source, schema_.types().FindType(source_type));
  SchemaTransaction txn(schema_);
  TYDER_ASSIGN_OR_RETURN(
      DerivationResult derivation,
      DeriveProjectionByName(schema_, source_type, attribute_names, name,
                             options));
  TYDER_FAULT_POINT("catalog.define.after_derive");
  ViewDef def;
  def.name = std::string(name);
  def.op = ViewOpKind::kProjection;
  def.derived = derivation.derived;
  def.source = source;
  def.derivation = derivation;
  for (const std::string& attr : attribute_names) {
    TYDER_ASSIGN_OR_RETURN(AttrId a, schema_.types().FindAttribute(attr));
    def.attributes.push_back(a);
  }
  TYDER_RETURN_IF_ERROR(txn.Commit());
  views_.push_back(std::move(def));
  return &views_.back();
}

Result<const ViewDef*> Catalog::DefineSelectionView(
    std::string_view name, std::string_view source_type) {
  if (FindView(name).ok()) {
    return Status::AlreadyExists("view '" + std::string(name) +
                                 "' already defined");
  }
  TYDER_ASSIGN_OR_RETURN(TypeId source, schema_.types().FindType(source_type));
  SchemaTransaction txn(schema_);
  TYDER_ASSIGN_OR_RETURN(TypeId derived,
                         DeriveSelection(schema_, source, name));
  TYDER_FAULT_POINT("catalog.define.after_derive");
  ViewDef def;
  def.name = std::string(name);
  def.op = ViewOpKind::kSelection;
  def.derived = derived;
  def.source = source;
  TYDER_RETURN_IF_ERROR(txn.Commit());
  views_.push_back(std::move(def));
  return &views_.back();
}

Result<const ViewDef*> Catalog::DefineGeneralizationView(
    std::string_view name, std::string_view type_a, std::string_view type_b,
    const ProjectionOptions& options) {
  if (FindView(name).ok()) {
    return Status::AlreadyExists("view '" + std::string(name) +
                                 "' already defined");
  }
  TYDER_ASSIGN_OR_RETURN(TypeId a, schema_.types().FindType(type_a));
  TYDER_ASSIGN_OR_RETURN(TypeId b, schema_.types().FindType(type_b));
  SchemaTransaction txn(schema_);
  TYDER_ASSIGN_OR_RETURN(DerivationResult derivation,
                         DeriveGeneralization(schema_, a, b, name, options));
  TYDER_FAULT_POINT("catalog.define.after_derive");
  ViewDef def;
  def.name = std::string(name);
  def.op = ViewOpKind::kGeneralization;
  def.derived = derivation.derived;
  def.source = a;
  def.source2 = b;
  def.derivation = derivation;
  TYDER_RETURN_IF_ERROR(txn.Commit());
  views_.push_back(std::move(def));
  return &views_.back();
}

Result<const ViewDef*> Catalog::DefineRenameView(
    std::string_view name, std::string_view source_type,
    const std::vector<AttributeRename>& renames,
    const ProjectionOptions& options) {
  if (FindView(name).ok()) {
    return Status::AlreadyExists("view '" + std::string(name) +
                                 "' already defined");
  }
  TYDER_ASSIGN_OR_RETURN(TypeId source, schema_.types().FindType(source_type));
  // The transaction covers the alias-accessor generation that DeriveRenameView
  // performs after its inner (already-committed) projection: a failed alias
  // must unwind the whole view, not leave a projected-but-unaliased type.
  SchemaTransaction txn(schema_);
  TYDER_ASSIGN_OR_RETURN(
      DerivationResult derivation,
      DeriveRenameView(schema_, source, renames, name, options));
  TYDER_FAULT_POINT("catalog.define.after_derive");
  ViewDef def;
  def.name = std::string(name);
  def.op = ViewOpKind::kRename;
  def.derived = derivation.derived;
  def.source = source;
  def.renames = renames;
  def.derivation = derivation;
  TYDER_RETURN_IF_ERROR(txn.Commit());
  views_.push_back(std::move(def));
  return &views_.back();
}

Result<const ViewDef*> Catalog::FindView(std::string_view name) const {
  for (const ViewDef& def : views_) {
    if (def.name == name) return &def;
  }
  return Status::NotFound("no view named '" + std::string(name) + "'");
}

Status Catalog::DropView(std::string_view name) {
  auto it = views_.begin();
  for (; it != views_.end(); ++it) {
    if (it->name == name) break;
  }
  if (it == views_.end()) {
    return Status::NotFound("no view named '" + std::string(name) + "'");
  }
  SchemaTransaction txn(schema_);
  switch (it->op) {
    case ViewOpKind::kProjection:
    case ViewOpKind::kGeneralization:
      TYDER_RETURN_IF_ERROR(RevertDerivation(schema_, it->derivation));
      break;
    case ViewOpKind::kRename:
      return Status::FailedPrecondition(
          "rename view '" + std::string(name) +
          "' cannot be dropped: its alias accessors are part of the schema");
    case ViewOpKind::kSelection: {
      // A selection view is a leaf subtype; detach it if nothing observes it.
      TypeId view = it->derived;
      for (TypeId t = 0; t < schema_.types().NumTypes(); ++t) {
        if (t != view && schema_.types().type(t).HasDirectSupertype(view)) {
          return Status::FailedPrecondition(
              "selection view '" + std::string(name) + "' has subtypes");
        }
      }
      for (MethodId m = 0; m < schema_.NumMethods(); ++m) {
        for (TypeId t : schema_.method(m).sig.params) {
          if (t == view) {
            return Status::FailedPrecondition(
                "selection view '" + std::string(name) +
                "' is referenced by method '" +
                schema_.method(m).label.str() + "'");
          }
        }
      }
      Type& node = schema_.types().mutable_type(view);
      while (!node.supertypes().empty()) {
        node.RemoveSupertype(node.supertypes().front());
      }
      node.set_detached(true);
      break;
    }
  }
  // Schema mutations done but the registry entry still present: a failure
  // here must restore the schema and keep the view listed.
  TYDER_FAULT_POINT("catalog.drop.mid");
  TYDER_RETURN_IF_ERROR(txn.Commit());
  views_.erase(it);
  return Status::OK();
}

Result<CollapseReport> Catalog::Collapse() {
  std::set<TypeId> keep;
  for (const ViewDef& def : views_) keep.insert(def.derived);
  return CollapseEmptySurrogates(schema_, keep);
}

Catalog Catalog::Restore(Schema schema, std::vector<ViewDef> views) {
  Catalog catalog(std::move(schema));
  catalog.views_ = std::move(views);
  return catalog;
}

size_t Catalog::LiveSurrogateCount() const {
  size_t n = 0;
  for (TypeId t = 0; t < schema_.types().NumTypes(); ++t) {
    const Type& type = schema_.types().type(t);
    if (type.kind() == TypeKind::kSurrogate && !type.detached()) ++n;
  }
  return n;
}

}  // namespace tyder
