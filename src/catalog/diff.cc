#include "catalog/diff.h"

#include <sstream>

namespace tyder {

namespace {

std::string TypeListToString(const Schema& schema,
                             const std::vector<TypeId>& types) {
  std::string out = "[";
  for (size_t i = 0; i < types.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.types().TypeName(types[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::vector<SchemaDiffEntry> DiffSchemas(const Schema& before,
                                         const Schema& after) {
  std::vector<SchemaDiffEntry> diff;

  for (TypeId t = before.types().NumTypes(); t < after.types().NumTypes();
       ++t) {
    diff.push_back(
        {DiffKind::kTypeAdded, "+ type " + after.types().TypeName(t)});
  }
  for (TypeId t = 0; t < before.types().NumTypes(); ++t) {
    const auto& pre = before.types().type(t).supertypes();
    const auto& post = after.types().type(t).supertypes();
    if (pre != post) {
      diff.push_back({DiffKind::kSupertypesChanged,
                      "~ supertypes of " + before.types().TypeName(t) + ": " +
                          TypeListToString(before, pre) + " => " +
                          TypeListToString(after, post)});
    }
  }
  for (AttrId a = 0; a < before.types().NumAttributes(); ++a) {
    TypeId pre = before.types().attribute(a).owner;
    TypeId post = after.types().attribute(a).owner;
    if (pre != post) {
      diff.push_back({DiffKind::kAttributeMoved,
                      "~ attribute " +
                          before.types().attribute(a).name.str() + ": " +
                          before.types().TypeName(pre) + " => " +
                          after.types().TypeName(post)});
    }
  }
  for (GfId g = before.NumGenericFunctions(); g < after.NumGenericFunctions();
       ++g) {
    diff.push_back({DiffKind::kGenericFunctionAdded,
                    "+ generic function " + after.gf(g).name.str()});
  }
  for (MethodId m = 0; m < before.NumMethods(); ++m) {
    const Method& pre = before.method(m);
    const Method& post = after.method(m);
    if (!(pre.sig == post.sig)) {
      std::string gf_name = before.gf(pre.gf).name.str();
      diff.push_back(
          {DiffKind::kMethodSignatureChanged,
           "~ method " + pre.label.str() + ": " +
               SignatureToString(before.types(), gf_name, pre.sig) + " => " +
               SignatureToString(after.types(), gf_name, post.sig)});
    }
    if (pre.body != post.body) {
      diff.push_back({DiffKind::kMethodBodyChanged,
                      "~ body of " + pre.label.str()});
    }
  }
  return diff;
}

std::string DiffToString(const std::vector<SchemaDiffEntry>& diff) {
  std::ostringstream out;
  for (const SchemaDiffEntry& entry : diff) {
    out << entry.description << "\n";
  }
  return out.str();
}

}  // namespace tyder
