// Structural schema diffing. Because ids are stable under derivation (types
// are only appended, attributes only re-homed, methods only rewritten), two
// snapshots of the same schema can be compared id-by-id. Used by examples to
// display what a derivation changed and by tests to assert that a derivation
// touched nothing it should not have.

#ifndef TYDER_CATALOG_DIFF_H_
#define TYDER_CATALOG_DIFF_H_

#include <string>
#include <vector>

#include "methods/schema.h"

namespace tyder {

enum class DiffKind {
  kTypeAdded,
  kSupertypesChanged,
  kAttributeMoved,
  kMethodSignatureChanged,
  kMethodBodyChanged,
  kGenericFunctionAdded,
};

struct SchemaDiffEntry {
  DiffKind kind;
  std::string description;  // human-readable, deterministic
};

// Differences from `before` to `after`. `before` must be a prefix snapshot
// (every id in `before` exists in `after`).
std::vector<SchemaDiffEntry> DiffSchemas(const Schema& before,
                                         const Schema& after);

std::string DiffToString(const std::vector<SchemaDiffEntry>& diff);

}  // namespace tyder

#endif  // TYDER_CATALOG_DIFF_H_
