// Schema (de)serialization: a deterministic, line-oriented text format that
// round-trips everything — types (including surrogates and detached nodes),
// precedence-ordered supertype edges, attributes, generic functions, methods,
// and method bodies (as s-expressions). Ids are stable across a round trip,
// so serialized schemas can be diffed structurally (catalog/diff.h).
//
//   tyder-schema v1
//   type <name> builtin|user|surrogate [source=<type>] [detached]
//   super <sub> <super>              # one line per edge, precedence order
//   attr <name> <value-type> <owner>
//   gf <name> <arity>
//   method <label> <gf> general|reader|mutator (<T>...) -> <R>
//          [attr=<name>] [params=<p>...]    (one line)
//   body <label> <s-expression>

#ifndef TYDER_CATALOG_SERIALIZE_H_
#define TYDER_CATALOG_SERIALIZE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "methods/schema.h"

namespace tyder {

std::string SerializeSchema(const Schema& schema);

// Parses text produced by SerializeSchema into a fresh schema (builtins are
// re-installed, then user content replayed) and validates the result.
Result<Schema> DeserializeSchema(std::string_view text);

// --- checksummed snapshot envelope ------------------------------------------
//
// The text formats above are self-describing but defenseless on disk: a
// truncated or bit-flipped file can still parse. Snapshots written by the
// durable catalog (src/storage/) are therefore framed in a binary envelope:
//
//   offset  size  field
//   0       8     magic "tydrsnap"
//   8       4     format version (little-endian u32, currently 1)
//   12      4     payload length (little-endian u32)
//   16      n     payload (e.g. SerializeSchema / ExportTdl text)
//   16+n    4     CRC32C of the payload (little-endian u32 trailer)
//
// DecodeSnapshotEnvelope fails with a precise Status — never UB or silent
// partial state — on truncated input (any strict prefix of a valid
// envelope), wrong magic, a format version newer than this build supports,
// trailing garbage, or a checksum mismatch.

std::string EncodeSnapshotEnvelope(std::string_view payload);
Result<std::string> DecodeSnapshotEnvelope(std::string_view bytes);

// Schema-level convenience: SerializeSchema / DeserializeSchema through the
// envelope.
std::string SaveSchemaSnapshot(const Schema& schema);
Result<Schema> LoadSchemaSnapshot(std::string_view bytes);

// Body tree <-> s-expression (exposed for tests).
std::string SerializeBody(const Schema& schema, const ExprPtr& body);
Result<ExprPtr> DeserializeBody(const Schema& schema, std::string_view text);

}  // namespace tyder

#endif  // TYDER_CATALOG_SERIALIZE_H_
