// Schema (de)serialization: a deterministic, line-oriented text format that
// round-trips everything — types (including surrogates and detached nodes),
// precedence-ordered supertype edges, attributes, generic functions, methods,
// and method bodies (as s-expressions). Ids are stable across a round trip,
// so serialized schemas can be diffed structurally (catalog/diff.h).
//
//   tyder-schema v1
//   type <name> builtin|user|surrogate [source=<type>] [detached]
//   super <sub> <super>              # one line per edge, precedence order
//   attr <name> <value-type> <owner>
//   gf <name> <arity>
//   method <label> <gf> general|reader|mutator (<T>...) -> <R>
//          [attr=<name>] [params=<p>...]    (one line)
//   body <label> <s-expression>

#ifndef TYDER_CATALOG_SERIALIZE_H_
#define TYDER_CATALOG_SERIALIZE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "methods/schema.h"

namespace tyder {

std::string SerializeSchema(const Schema& schema);

// Parses text produced by SerializeSchema into a fresh schema (builtins are
// re-installed, then user content replayed) and validates the result.
Result<Schema> DeserializeSchema(std::string_view text);

// Body tree <-> s-expression (exposed for tests).
std::string SerializeBody(const Schema& schema, const ExprPtr& body);
Result<ExprPtr> DeserializeBody(const Schema& schema, std::string_view text);

}  // namespace tyder

#endif  // TYDER_CATALOG_SERIALIZE_H_
