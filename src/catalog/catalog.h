// Catalog: the top-level container a database would expose — a Schema plus
// the registry of derived views over it (views are "simply added to the list
// of existing relations", paper Section 1). Views may be defined over views;
// the catalog tracks provenance, making the Section-7 views-over-views
// surrogate-growth experiment and the collapse ablation possible.

#ifndef TYDER_CATALOG_CATALOG_H_
#define TYDER_CATALOG_CATALOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/algebra.h"
#include "core/collapse.h"
#include "core/projection.h"
#include "methods/schema.h"

namespace tyder {

enum class ViewOpKind { kProjection, kSelection, kGeneralization, kRename };

struct ViewDef {
  std::string name;
  ViewOpKind op = ViewOpKind::kProjection;
  TypeId derived = kInvalidType;
  TypeId source = kInvalidType;          // primary source
  TypeId source2 = kInvalidType;         // generalization only
  std::vector<AttrId> attributes;        // projection list (if any)
  std::vector<AttributeRename> renames;  // rename views only
  // Full derivation record for projection-family views; lets DropView revert.
  DerivationResult derivation;
};

// All-or-nothing guarantee: every mutating Catalog operation (the four
// Define*View methods, DropView, and Collapse) runs inside a
// SchemaTransaction (core/transaction.h). On any non-OK return the schema is
// rolled back to its pre-call state — serializing byte-identically to it —
// and `views()` is untouched; on OK the schema mutation and the registry
// update land together.
class Catalog {
 public:
  static Result<Catalog> Create();
  // Wraps an already-built schema.
  explicit Catalog(Schema schema) : schema_(std::move(schema)) {}

  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }

  // Defines Π_attribute_names(source_type) as view `name` and records it.
  Result<const ViewDef*> DefineProjectionView(
      std::string_view name, std::string_view source_type,
      const std::vector<std::string>& attribute_names,
      const ProjectionOptions& options = {});

  // Defines a selection view (type-level part; the predicate applies at
  // materialization time).
  Result<const ViewDef*> DefineSelectionView(std::string_view name,
                                             std::string_view source_type);

  // Defines the generalization of two types over their common attributes.
  Result<const ViewDef*> DefineGeneralizationView(
      std::string_view name, std::string_view type_a, std::string_view type_b,
      const ProjectionOptions& options = {});

  // Defines a rename view: full-state projection plus alias accessors.
  Result<const ViewDef*> DefineRenameView(
      std::string_view name, std::string_view source_type,
      const std::vector<AttributeRename>& renames,
      const ProjectionOptions& options = {});

  const std::vector<ViewDef>& views() const { return views_; }
  Result<const ViewDef*> FindView(std::string_view name) const;

  // Reconstructs a catalog from an already-deserialized schema plus view
  // registry (storage/catalog_snapshot.h recovery path). Trusts its inputs;
  // the snapshot decoder has already validated both.
  static Catalog Restore(Schema schema, std::vector<ViewDef> views);

  // Drops a view, reverting its derivation (projection/generalization) or
  // detaching its type (selection). Refused when anything still observes the
  // view's types — including rename views, whose alias accessors cannot be
  // removed from the schema. A refused drop leaves both the schema and the
  // view registry exactly as they were (all-or-nothing, see class comment).
  Status DropView(std::string_view name);

  // Collapses empty surrogates, keeping every registered view type.
  Result<CollapseReport> Collapse();

  // Count of live (non-detached) surrogate types — the metric of the
  // views-over-views experiment.
  size_t LiveSurrogateCount() const;

 private:
  Catalog() = default;

  Schema schema_;
  std::vector<ViewDef> views_;
};

}  // namespace tyder

#endif  // TYDER_CATALOG_CATALOG_H_
