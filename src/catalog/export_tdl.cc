#include "catalog/export_tdl.h"

#include <map>
#include <sstream>

#include "common/string_util.h"
#include "mir/expr.h"

namespace tyder {

namespace {

// Follows surrogate_source links to the original (non-surrogate) type.
TypeId UnwindSurrogate(const TypeGraph& graph, TypeId t) {
  while (graph.type(t).is_surrogate() &&
         graph.type(t).surrogate_source() != kInvalidType) {
    t = graph.type(t).surrogate_source();
  }
  return t;
}

// The pre-derivation signature/body of each method: the old_sig/old_body of
// the *first* derivation that rewrote it, else the current one.
struct BaseMethod {
  Signature sig;
  ExprPtr body;
  bool ever_rewritten = false;
};

std::map<MethodId, BaseMethod> BaseMethods(const Schema& schema,
                                           const Catalog* catalog) {
  std::map<MethodId, BaseMethod> base;
  for (MethodId m = 0; m < schema.NumMethods(); ++m) {
    base[m] = BaseMethod{schema.method(m).sig, schema.method(m).body, false};
  }
  if (catalog != nullptr) {
    // Views in definition order; keep the earliest old state per method.
    for (const ViewDef& def : catalog->views()) {
      for (const MethodRewrite& rw : def.derivation.rewrites) {
        BaseMethod& entry = base[rw.method];
        if (!entry.ever_rewritten) {
          entry.sig = rw.old_sig;
          entry.body = rw.old_body != nullptr ? rw.old_body
                                              : schema.method(rw.method).body;
          entry.ever_rewritten = true;
        }
      }
    }
  }
  return base;
}

class TdlEmitter {
 public:
  TdlEmitter(const Schema& schema, const Catalog* catalog)
      : schema_(schema), catalog_(catalog) {}

  Result<std::string> Run() {
    TYDER_RETURN_IF_ERROR(CheckExportable());
    base_methods_ = BaseMethods(schema_, catalog_);
    EmitTypes();
    TYDER_RETURN_IF_ERROR(EmitAccessorsDirective());
    EmitGenerics();
    TYDER_RETURN_IF_ERROR(EmitMethods());
    EmitViews();
    return out_.str();
  }

 private:
  bool IsBaseType(TypeId t) const {
    const Type& type = schema_.types().type(t);
    return type.kind() == TypeKind::kUser && !type.detached() &&
           !type.is_surrogate();
  }

  Status CheckExportable() {
    for (TypeId t = 0; t < schema_.types().NumTypes(); ++t) {
      const Type& type = schema_.types().type(t);
      if (!type.is_surrogate() || type.detached()) continue;
      // Surrogates are fine only when a catalog view accounts for them: the
      // view statements replay the derivation on load.
      bool accounted = false;
      if (catalog_ != nullptr) {
        for (const ViewDef& def : catalog_->views()) {
          if (def.derived == t) accounted = true;
          for (TypeId s : def.derivation.surrogates.created) {
            if (s == t) accounted = true;
          }
        }
      }
      if (!accounted) {
        return Status::FailedPrecondition(
            "schema contains surrogate '" + schema_.types().TypeName(t) +
            "' not traceable to a catalog view; TDL cannot express it");
      }
    }
    return Status::OK();
  }

  void EmitTypes() {
    const TypeGraph& graph = schema_.types();
    for (TypeId t = 0; t < graph.NumTypes(); ++t) {
      if (!IsBaseType(t)) continue;
      out_ << "type " << graph.TypeName(t);
      bool first = true;
      for (TypeId s : graph.type(t).supertypes()) {
        if (!IsBaseType(s)) continue;  // skip surrogate links
        out_ << (first ? " : " : ", ") << graph.TypeName(s);
        first = false;
      }
      out_ << " {";
      // Local attributes, including ones currently re-homed onto surrogates.
      bool any = false;
      for (AttrId a = 0; a < graph.NumAttributes(); ++a) {
        const AttributeDef& attr = graph.attribute(a);
        if (UnwindSurrogate(graph, attr.owner) != t) continue;
        out_ << "\n  " << attr.name.view() << ": "
             << graph.TypeName(attr.value_type) << ";";
        any = true;
      }
      out_ << (any ? "\n}\n" : " }\n");
    }
  }

  // True when `m` is a standard owner-homed accessor of its attribute under
  // its base signature.
  bool IsStandardAccessor(MethodId m) const {
    const Method& method = schema_.method(m);
    if (method.kind == MethodKind::kGeneral) return false;
    const BaseMethod& base = base_methods_.at(m);
    TypeId owner =
        UnwindSurrogate(schema_.types(), schema_.types().attribute(method.attr).owner);
    std::string attr_name = schema_.types().attribute(method.attr).name.str();
    std::string gf_name = schema_.gf(method.gf).name.str();
    std::string expect =
        (method.kind == MethodKind::kReader ? "get_" : "set_") + attr_name;
    return gf_name == expect && !base.sig.params.empty() &&
           UnwindSurrogate(schema_.types(), base.sig.params[0]) == owner;
  }

  // View-created alias accessors: accessor methods never rewritten whose
  // formal is a surrogate — they reappear when the view statement replays.
  bool IsViewAlias(MethodId m) const {
    const Method& method = schema_.method(m);
    if (method.kind == MethodKind::kGeneral) return false;
    return !base_methods_.at(m).ever_rewritten &&
           !method.sig.params.empty() &&
           schema_.types().type(method.sig.params[0]).is_surrogate();
  }

  Status EmitAccessorsDirective() {
    bool any_accessor = false;
    for (MethodId m = 0; m < schema_.NumMethods(); ++m) {
      if (schema_.method(m).kind == MethodKind::kGeneral) continue;
      if (IsViewAlias(m)) continue;
      if (!IsStandardAccessor(m)) {
        return Status::FailedPrecondition(
            "accessor '" + schema_.method(m).label.str() +
            "' is not the standard owner-homed form; TDL cannot express it");
      }
      any_accessor = true;
    }
    if (!any_accessor) return Status::OK();
    // The directive regenerates reader+mutator for every attribute; require
    // completeness so the reload matches.
    for (AttrId a = 0; a < schema_.types().NumAttributes(); ++a) {
      if (schema_.ReaderOf(a) == kInvalidMethod ||
          schema_.MutatorOf(a) == kInvalidMethod) {
        return Status::FailedPrecondition(
            "attribute '" + schema_.types().attribute(a).name.str() +
            "' lacks a standard reader/mutator pair; TDL's 'accessors;' "
            "directive cannot reproduce a partial set");
      }
    }
    out_ << "accessors;\n";
    return Status::OK();
  }

  void EmitGenerics() {
    // Explicit declarations for generic functions with no general methods to
    // imply them (and which are not accessor functions).
    for (GfId g = 0; g < schema_.NumGenericFunctions(); ++g) {
      const GenericFunction& gf = schema_.gf(g);
      bool has_general = false;
      bool has_accessor = false;
      for (MethodId m : gf.methods) {
        (schema_.method(m).kind == MethodKind::kGeneral ? has_general
                                                        : has_accessor) = true;
      }
      if (!has_general && !has_accessor) {
        out_ << "generic " << gf.name.view() << "/" << gf.arity << ";\n";
      }
    }
  }

  Status EmitMethods() {
    for (MethodId m = 0; m < schema_.NumMethods(); ++m) {
      const Method& method = schema_.method(m);
      if (method.kind != MethodKind::kGeneral) continue;
      const BaseMethod& base = base_methods_.at(m);
      std::string label = method.label.str();
      std::string gf_name = schema_.gf(method.gf).name.str();
      if (!IsIdentifier(label)) {
        return Status::FailedPrecondition("method label '" + label +
                                          "' is not a TDL identifier");
      }
      out_ << "method " << label;
      if (label != gf_name) out_ << " for " << gf_name;
      out_ << " (";
      for (size_t i = 0; i < base.sig.params.size(); ++i) {
        if (i > 0) out_ << ", ";
        out_ << ParamName(method, i) << ": "
             << schema_.types().TypeName(
                    UnwindSurrogate(schema_.types(), base.sig.params[i]));
      }
      out_ << ")";
      TypeId result = UnwindSurrogate(schema_.types(), base.sig.result);
      if (result != schema_.builtins().void_type) {
        out_ << " -> " << schema_.types().TypeName(result);
      }
      out_ << " ";
      TYDER_RETURN_IF_ERROR(EmitBlock(method, base.body, 0));
      out_ << "\n";
    }
    return Status::OK();
  }

  std::string ParamName(const Method& method, size_t i) const {
    if (i < method.param_names.size()) return method.param_names[i].str();
    return "p" + std::to_string(i);
  }

  Status EmitBlock(const Method& method, const ExprPtr& seq, int depth) {
    out_ << "{";
    for (const ExprPtr& stmt : seq->children) {
      out_ << "\n" << std::string(2 * (depth + 1), ' ');
      TYDER_RETURN_IF_ERROR(EmitStmt(method, stmt, depth + 1));
    }
    out_ << "\n" << std::string(2 * depth, ' ') << "}";
    return Status::OK();
  }

  Status EmitStmt(const Method& method, const ExprPtr& node, int depth) {
    const Expr& e = *node;
    switch (e.kind) {
      case ExprKind::kDecl:
        out_ << e.var.view() << ": "
             << schema_.types().TypeName(
                    UnwindSurrogate(schema_.types(), e.decl_type));
        if (!e.children.empty()) {
          out_ << " = ";
          TYDER_RETURN_IF_ERROR(EmitExpr(method, e.children[0]));
        }
        out_ << ";";
        return Status::OK();
      case ExprKind::kAssign:
        out_ << e.var.view() << " = ";
        TYDER_RETURN_IF_ERROR(EmitExpr(method, e.children[0]));
        out_ << ";";
        return Status::OK();
      case ExprKind::kReturn:
        out_ << "return";
        if (!e.children.empty()) {
          out_ << " ";
          TYDER_RETURN_IF_ERROR(EmitExpr(method, e.children[0]));
        }
        out_ << ";";
        return Status::OK();
      case ExprKind::kIf:
        out_ << "if (";
        TYDER_RETURN_IF_ERROR(EmitExpr(method, e.children[0]));
        out_ << ") ";
        TYDER_RETURN_IF_ERROR(EmitBlock(method, e.children[1], depth));
        if (e.children.size() > 2) {
          out_ << " else ";
          TYDER_RETURN_IF_ERROR(EmitBlock(method, e.children[2], depth));
        }
        return Status::OK();
      case ExprKind::kExprStmt:
        TYDER_RETURN_IF_ERROR(EmitExpr(method, e.children[0]));
        out_ << ";";
        return Status::OK();
      default:
        return Status::Internal("expression used as TDL statement");
    }
  }

  Status EmitExpr(const Method& method, const ExprPtr& node) {
    const Expr& e = *node;
    switch (e.kind) {
      case ExprKind::kParamRef:
        out_ << ParamName(method, static_cast<size_t>(e.param_index));
        return Status::OK();
      case ExprKind::kVarRef:
        out_ << e.var.view();
        return Status::OK();
      case ExprKind::kIntLit:
        out_ << e.int_val;
        return Status::OK();
      case ExprKind::kFloatLit: {
        std::ostringstream f;
        f << e.float_val;
        std::string text = f.str();
        // TDL float literals need a decimal point.
        if (text.find('.') == std::string::npos &&
            text.find('e') == std::string::npos) {
          text += ".0";
        }
        out_ << text;
        return Status::OK();
      }
      case ExprKind::kBoolLit:
        out_ << (e.bool_val ? "true" : "false");
        return Status::OK();
      case ExprKind::kStringLit: {
        out_ << '"';
        for (char c : e.str_val) {
          if (c == '"' || c == '\\') out_ << '\\';
          if (c == '\n') {
            out_ << "\\n";
            continue;
          }
          out_ << c;
        }
        out_ << '"';
        return Status::OK();
      }
      case ExprKind::kCall: {
        out_ << schema_.gf(e.callee).name.view() << "(";
        for (size_t i = 0; i < e.children.size(); ++i) {
          if (i > 0) out_ << ", ";
          TYDER_RETURN_IF_ERROR(EmitExpr(method, e.children[i]));
        }
        out_ << ")";
        return Status::OK();
      }
      case ExprKind::kBinOp: {
        out_ << "(";
        TYDER_RETURN_IF_ERROR(EmitExpr(method, e.children[0]));
        out_ << " " << BinOpName(e.op) << " ";
        TYDER_RETURN_IF_ERROR(EmitExpr(method, e.children[1]));
        out_ << ")";
        return Status::OK();
      }
      default:
        return Status::Internal("statement used as TDL expression");
    }
  }

  void EmitViews() {
    if (catalog_ == nullptr) return;
    const TypeGraph& graph = schema_.types();
    for (const ViewDef& def : catalog_->views()) {
      out_ << "view " << def.name << " = ";
      switch (def.op) {
        case ViewOpKind::kProjection: {
          out_ << "project " << graph.TypeName(def.source) << " on (";
          for (size_t i = 0; i < def.attributes.size(); ++i) {
            if (i > 0) out_ << ", ";
            out_ << graph.attribute(def.attributes[i]).name.view();
          }
          out_ << ")";
          break;
        }
        case ViewOpKind::kSelection:
          out_ << "select " << graph.TypeName(def.source);
          break;
        case ViewOpKind::kGeneralization:
          out_ << "generalize " << graph.TypeName(def.source) << ", "
               << graph.TypeName(def.source2);
          break;
        case ViewOpKind::kRename: {
          out_ << "rename " << graph.TypeName(def.source) << " (";
          for (size_t i = 0; i < def.renames.size(); ++i) {
            if (i > 0) out_ << ", ";
            out_ << def.renames[i].attribute << " as " << def.renames[i].alias;
          }
          out_ << ")";
          break;
        }
      }
      out_ << ";\n";
    }
  }

  const Schema& schema_;
  const Catalog* catalog_;
  std::map<MethodId, BaseMethod> base_methods_;
  std::ostringstream out_;
};

}  // namespace

Result<std::string> ExportTdl(const Schema& schema) {
  return TdlEmitter(schema, nullptr).Run();
}

Result<std::string> ExportTdl(const Catalog& catalog) {
  return TdlEmitter(catalog.schema(), &catalog).Run();
}

}  // namespace tyder
