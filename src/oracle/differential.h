// Differential checking: cross-checks the optimized engine (bitset subtype
// closure, mask-table dispatch, PIC call-site cache, rank-table specificity
// sort) against the naive reference implementations in oracle/reference.h on
// an arbitrary schema. Every check returns OK or a Status::Internal whose
// message pinpoints the first divergence (the relation, the operands by name,
// and both answers) — the fuzzer (tests/fuzz/) treats any non-OK as a failing
// trace and shrinks it.
//
// CheckSubtypeOracle and CheckCumulativeStateOracle are exhaustive (all
// pairs / all types): at fuzzing scale (tens of types) that is cheap, and an
// exhaustive subtype sweep doubles as a forced build of every closure row,
// which is what makes missed-invalidation bugs deterministic to catch.
// CheckDispatchOracle enumerates all argument tuples per generic function
// when the tuple space is small, and falls back to a seeded sample otherwise.

#ifndef TYDER_ORACLE_DIFFERENTIAL_H_
#define TYDER_ORACLE_DIFFERENTIAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "methods/schema.h"

namespace tyder::oracle {

struct DifferentialOptions {
  // Seed for the sampled-tuple fallback of the dispatch check.
  uint32_t seed = 1;
  // Sampled argument tuples per generic function (fallback mode).
  int tuples_per_gf = 8;
  // Enumerate all |types|^arity tuples of a gf when that count is at most
  // this bound; sample otherwise.
  size_t exhaustive_tuple_limit = 2048;
  // Repeat table-path queries so each gf crosses DispatchTables'
  // kBuildThreshold and is checked through both the cold direct-scan path
  // and the hot mask-table path.
  bool heat_dispatch_tables = true;
};

// Exhaustive all-pairs IsSubtype vs RefIsSubtype.
Status CheckSubtypeOracle(const Schema& schema);

// CumulativeAttributes-as-a-set vs RefCumulativeState, for every type.
Status CheckCumulativeStateOracle(const Schema& schema);

// For each generic function and each (enumerated or sampled) argument tuple:
// ApplicableMethods, ApplicableMethodsFromTables, DispatchOrder, and
// Dispatch each vs their reference counterpart.
Status CheckDispatchOracle(const Schema& schema,
                           const DifferentialOptions& options = {});

// Section 5's guarantee, from first principles: the cumulative state of a
// derived type is exactly the projected attribute set.
Status CheckDerivedState(const Schema& schema, TypeId derived,
                         const std::vector<AttrId>& projected);

// All of the above (minus CheckDerivedState, which needs a derivation).
Status CheckSchemaAgainstOracle(const Schema& schema,
                                const DifferentialOptions& options = {});

}  // namespace tyder::oracle

#endif  // TYDER_ORACLE_DIFFERENTIAL_H_
