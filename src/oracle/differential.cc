#include "oracle/differential.h"

#include <algorithm>
#include <random>
#include <string>

#include "methods/applicability.h"
#include "methods/dispatch.h"
#include "methods/dispatch_table.h"
#include "obs/obs.h"
#include "oracle/reference.h"

namespace tyder::oracle {

namespace {

std::string TypeListNames(const Schema& schema,
                          const std::vector<TypeId>& types) {
  std::string out = "(";
  for (size_t i = 0; i < types.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.types().TypeName(types[i]);
  }
  return out + ")";
}

std::string MethodListNames(const Schema& schema,
                            const std::vector<MethodId>& methods) {
  std::string out = "[";
  for (size_t i = 0; i < methods.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.method(methods[i]).label.str();
  }
  return out + "]";
}

std::string AttrListNames(const Schema& schema,
                          const std::vector<AttrId>& attrs) {
  std::string out = "{";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.types().attribute(attrs[i]).name.str();
  }
  return out + "}";
}

Status Mismatch(std::string message) {
  TYDER_COUNT("oracle.mismatches");
  return Status::Internal("oracle mismatch: " + std::move(message));
}

// Checks every engine path that answers "applicable methods / dispatch order
// for this call" against the reference for one argument tuple.
Status CheckOneCall(const Schema& schema, GfId gf,
                    const std::vector<TypeId>& args) {
  TYDER_COUNT("oracle.dispatch_checks");
  const std::string gf_name = schema.gf(gf).name.str();

  std::vector<MethodId> ref_applicable = RefApplicableMethods(schema, gf, args);
  std::vector<MethodId> direct = ApplicableMethods(schema, gf, args);
  if (direct != ref_applicable) {
    return Mismatch("ApplicableMethods(" + gf_name + TypeListNames(schema, args) +
                    ") = " + MethodListNames(schema, direct) + ", oracle says " +
                    MethodListNames(schema, ref_applicable));
  }
  std::vector<MethodId> tabled =
      ApplicableMethodsFromTables(schema, gf, args);
  if (tabled != ref_applicable) {
    return Mismatch("ApplicableMethodsFromTables(" + gf_name +
                    TypeListNames(schema, args) + ") = " +
                    MethodListNames(schema, tabled) + ", oracle says " +
                    MethodListNames(schema, ref_applicable));
  }

  std::vector<MethodId> ref_order = RefDispatchOrder(schema, gf, args);
  std::vector<MethodId> order = DispatchOrder(schema, gf, args);
  if (order != ref_order) {
    return Mismatch("DispatchOrder(" + gf_name + TypeListNames(schema, args) +
                    ") = " + MethodListNames(schema, order) + ", oracle says " +
                    MethodListNames(schema, ref_order));
  }

  Result<MethodId> ref_target = RefDispatch(schema, gf, args);
  Result<MethodId> target = Dispatch(schema, gf, args);
  if (target.ok() != ref_target.ok() ||
      (target.ok() && *target != *ref_target)) {
    auto name = [&](const Result<MethodId>& r) {
      return r.ok() ? schema.method(*r).label.str() : std::string("<none>");
    };
    return Mismatch("Dispatch(" + gf_name + TypeListNames(schema, args) +
                    ") = " + name(target) + ", oracle says " + name(ref_target));
  }
  return Status::OK();
}

}  // namespace

Status CheckSubtypeOracle(const Schema& schema) {
  const TypeGraph& graph = schema.types();
  const size_t n = graph.NumTypes();
  TYDER_COUNT_N("oracle.subtype_checks", static_cast<int64_t>(n * n));
  for (TypeId a = 0; a < n; ++a) {
    std::vector<bool> row = RefReachableSet(graph, a);
    for (TypeId b = 0; b < n; ++b) {
      bool engine = graph.IsSubtype(a, b);
      bool ref = row[b];
      if (engine != ref) {
        return Mismatch("IsSubtype(" + graph.TypeName(a) + ", " +
                        graph.TypeName(b) + ") = " +
                        (engine ? "true" : "false") + ", oracle says " +
                        (ref ? "true" : "false"));
      }
    }
  }
  return Status::OK();
}

Status CheckCumulativeStateOracle(const Schema& schema) {
  const TypeGraph& graph = schema.types();
  for (TypeId t = 0; t < graph.NumTypes(); ++t) {
    TYDER_COUNT("oracle.cumulative_checks");
    std::vector<AttrId> engine = graph.CumulativeAttributes(t);
    std::sort(engine.begin(), engine.end());
    std::vector<AttrId> ref = RefCumulativeState(graph, t);
    if (engine != ref) {
      return Mismatch("CumulativeAttributes(" + graph.TypeName(t) + ") = " +
                      AttrListNames(schema, engine) + ", oracle says " +
                      AttrListNames(schema, ref));
    }
  }
  return Status::OK();
}

Status CheckDispatchOracle(const Schema& schema,
                           const DifferentialOptions& options) {
  const size_t num_types = schema.types().NumTypes();
  if (num_types == 0) return Status::OK();
  std::mt19937 rng(options.seed);
  for (GfId gf = 0; gf < schema.NumGenericFunctions(); ++gf) {
    const int arity = schema.gf(gf).arity;
    // Crossing kBuildThreshold uses on at least one tuple forces the
    // mask-table path, so both the cold scan and the hot tables get compared
    // for this gf within one sweep.
    const int heat_rounds =
        options.heat_dispatch_tables
            ? static_cast<int>(DispatchTables::kBuildThreshold) + 1
            : 1;

    size_t tuple_count = 1;
    for (int i = 0; i < arity && tuple_count <= options.exhaustive_tuple_limit;
         ++i) {
      tuple_count *= num_types;
    }
    if (tuple_count <= options.exhaustive_tuple_limit) {
      std::vector<TypeId> args(static_cast<size_t>(arity), 0);
      for (size_t k = 0; k < tuple_count; ++k) {
        size_t rem = k;
        for (int i = 0; i < arity; ++i) {
          args[static_cast<size_t>(i)] = static_cast<TypeId>(rem % num_types);
          rem /= num_types;
        }
        const int rounds = k == 0 ? heat_rounds : 1;
        for (int r = 0; r < rounds; ++r) {
          TYDER_RETURN_IF_ERROR(CheckOneCall(schema, gf, args));
        }
      }
    } else {
      std::uniform_int_distribution<size_t> pick(0, num_types - 1);
      for (int s = 0; s < options.tuples_per_gf; ++s) {
        std::vector<TypeId> args;
        for (int i = 0; i < arity; ++i) {
          args.push_back(static_cast<TypeId>(pick(rng)));
        }
        const int rounds = s == 0 ? heat_rounds : 1;
        for (int r = 0; r < rounds; ++r) {
          TYDER_RETURN_IF_ERROR(CheckOneCall(schema, gf, args));
        }
      }
    }
  }
  return Status::OK();
}

Status CheckDerivedState(const Schema& schema, TypeId derived,
                         const std::vector<AttrId>& projected) {
  TYDER_COUNT("oracle.derived_state_checks");
  std::vector<AttrId> expected = projected;
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  std::vector<AttrId> actual = RefCumulativeState(schema.types(), derived);
  if (actual != expected) {
    return Mismatch("cumulative state of derived type '" +
                    schema.types().TypeName(derived) + "' is " +
                    AttrListNames(schema, actual) +
                    ", projected attribute set is " +
                    AttrListNames(schema, expected));
  }
  // The engine's own cumulative query must agree as well (checked via the
  // general sweep too, but a derivation-time caller gets the direct answer).
  std::vector<AttrId> engine = schema.types().CumulativeAttributes(derived);
  std::sort(engine.begin(), engine.end());
  if (engine != expected) {
    return Mismatch("engine cumulative state of derived type '" +
                    schema.types().TypeName(derived) + "' is " +
                    AttrListNames(schema, engine) +
                    ", projected attribute set is " +
                    AttrListNames(schema, expected));
  }
  return Status::OK();
}

Status CheckSchemaAgainstOracle(const Schema& schema,
                                const DifferentialOptions& options) {
  TYDER_TIMED("oracle.check_schema_ns");
  TYDER_RETURN_IF_ERROR(CheckSubtypeOracle(schema));
  TYDER_RETURN_IF_ERROR(CheckCumulativeStateOracle(schema));
  TYDER_RETURN_IF_ERROR(CheckDispatchOracle(schema, options));
  return Status::OK();
}

}  // namespace tyder::oracle
