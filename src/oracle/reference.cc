#include "oracle/reference.h"

#include <algorithm>
#include <deque>

#include "objmodel/linearize.h"

namespace tyder::oracle {

bool RefIsSubtype(const TypeGraph& graph, TypeId a, TypeId b) {
  if (a >= graph.NumTypes() || b >= graph.NumTypes()) return false;
  if (a == b) return true;
  std::vector<bool> seen(graph.NumTypes(), false);
  std::deque<TypeId> queue{a};
  seen[a] = true;
  while (!queue.empty()) {
    TypeId t = queue.front();
    queue.pop_front();
    for (TypeId super : graph.type(t).supertypes()) {
      if (super == b) return true;
      if (!seen[super]) {
        seen[super] = true;
        queue.push_back(super);
      }
    }
  }
  return false;
}

std::vector<bool> RefReachableSet(const TypeGraph& graph, TypeId a) {
  std::vector<bool> seen(graph.NumTypes(), false);
  if (a >= graph.NumTypes()) return seen;
  std::deque<TypeId> queue{a};
  seen[a] = true;
  while (!queue.empty()) {
    TypeId t = queue.front();
    queue.pop_front();
    for (TypeId super : graph.type(t).supertypes()) {
      if (!seen[super]) {
        seen[super] = true;
        queue.push_back(super);
      }
    }
  }
  return seen;
}

std::vector<AttrId> RefCumulativeState(const TypeGraph& graph, TypeId t) {
  std::vector<AttrId> attrs;
  if (t >= graph.NumTypes()) return attrs;
  std::vector<bool> seen(graph.NumTypes(), false);
  std::deque<TypeId> queue{t};
  seen[t] = true;
  while (!queue.empty()) {
    TypeId cur = queue.front();
    queue.pop_front();
    for (AttrId a : graph.type(cur).local_attributes()) attrs.push_back(a);
    for (TypeId super : graph.type(cur).supertypes()) {
      if (!seen[super]) {
        seen[super] = true;
        queue.push_back(super);
      }
    }
  }
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

bool RefApplicableToCall(const Schema& schema, MethodId m,
                         const std::vector<TypeId>& arg_types) {
  const Method& method = schema.method(m);
  if (method.sig.params.size() != arg_types.size()) return false;
  for (size_t i = 0; i < arg_types.size(); ++i) {
    if (!RefIsSubtype(schema.types(), arg_types[i], method.sig.params[i])) {
      return false;
    }
  }
  return true;
}

std::vector<MethodId> RefApplicableMethods(
    const Schema& schema, GfId gf, const std::vector<TypeId>& arg_types) {
  std::vector<MethodId> applicable;
  if (gf >= schema.NumGenericFunctions()) return applicable;
  for (MethodId m : schema.gf(gf).methods) {
    if (RefApplicableToCall(schema, m, arg_types)) applicable.push_back(m);
  }
  return applicable;
}

namespace {

// Rank of `formal` in the CPL of `actual`, recomputed from scratch:
// ClassPrecedenceList runs the full C3 merge (or its BFS fallback) and the
// rank is a linear scan of the result.
size_t NaiveCplRank(const TypeGraph& graph, TypeId actual, TypeId formal) {
  std::vector<TypeId> cpl = ClassPrecedenceList(graph, actual);
  auto it = std::find(cpl.begin(), cpl.end(), formal);
  return static_cast<size_t>(it - cpl.begin());  // == cpl.size() if absent
}

}  // namespace

bool RefMoreSpecific(const Schema& schema, MethodId a, MethodId b,
                     const std::vector<TypeId>& arg_types) {
  const Method& ma = schema.method(a);
  const Method& mb = schema.method(b);
  for (size_t i = 0; i < arg_types.size(); ++i) {
    TypeId fa = ma.sig.params[i];
    TypeId fb = mb.sig.params[i];
    if (fa == fb) continue;
    size_t rank_a = NaiveCplRank(schema.types(), arg_types[i], fa);
    size_t rank_b = NaiveCplRank(schema.types(), arg_types[i], fb);
    return rank_a < rank_b;
  }
  return false;  // identical formals: a tie
}

std::vector<MethodId> RefDispatchOrder(const Schema& schema, GfId gf,
                                       const std::vector<TypeId>& arg_types) {
  std::vector<MethodId> order = RefApplicableMethods(schema, gf, arg_types);
  std::stable_sort(order.begin(), order.end(),
                   [&](MethodId a, MethodId b) {
                     return RefMoreSpecific(schema, a, b, arg_types);
                   });
  return order;
}

Result<MethodId> RefDispatch(const Schema& schema, GfId gf,
                             const std::vector<TypeId>& arg_types) {
  std::vector<MethodId> order = RefDispatchOrder(schema, gf, arg_types);
  if (order.empty()) {
    return Status::NotFound("oracle: no applicable method for call");
  }
  return order.front();
}

}  // namespace tyder::oracle
