// Deliberately-naive reference implementations of every relation the
// optimized engine answers through a cache or precomputed structure. Each
// function here recomputes its answer from the primary schema data (direct
// supertype edges, local attribute lists, method registration order) on
// every call — no bitsets, no rank tables, no memoization — so the fast
// paths in objmodel/ and methods/ have an independent implementation to be
// differentially tested against (oracle/differential.h, tests/fuzz/).
//
// The price of that independence is asymptotics: RefIsSubtype is a full BFS
// per query where the engine does one word-test, and RefDispatchOrder
// re-linearizes precedence lists inside every comparison. That is the point;
// keep these slow and obvious.

#ifndef TYDER_ORACLE_REFERENCE_H_
#define TYDER_ORACLE_REFERENCE_H_

#include <vector>

#include "common/result.h"
#include "methods/schema.h"
#include "objmodel/type_graph.h"

namespace tyder::oracle {

// a ≼ b by breadth-first search over the direct supertype edges. Mirrors the
// paper's definition of the reflexive-transitive subtype relation directly;
// never touches the ancestor-bitset closure.
bool RefIsSubtype(const TypeGraph& graph, TypeId a, TypeId b);

// One row of the subtype relation from a single BFS: result[b] == a ≼ b.
// Same walk as RefIsSubtype; lets the exhaustive all-pairs sweep in
// differential.cc stay naive without paying n² full traversals per schema.
std::vector<bool> RefReachableSet(const TypeGraph& graph, TypeId a);

// The cumulative state of `t` from first principles: walk every supertype
// reachable from `t` (each visited once, so diamonds contribute once) and
// collect its local attributes. Returned sorted by AttrId — callers compare
// state as a set; the engine's closure-order guarantee is checked elsewhere.
std::vector<AttrId> RefCumulativeState(const TypeGraph& graph, TypeId t);

// Section 4's call-applicability rule, checked per-position with
// RefIsSubtype: m(T₁…Tₙ) is applicable to the call iff ∀i argᵢ ≼ Tᵢ.
bool RefApplicableToCall(const Schema& schema, MethodId m,
                         const std::vector<TypeId>& arg_types);

// Linear scan of the gf's methods in registration order — the exact contract
// ApplicableMethods and ApplicableMethodsFromTables must both honor.
std::vector<MethodId> RefApplicableMethods(const Schema& schema, GfId gf,
                                           const std::vector<TypeId>& arg_types);

// Method specificity by the paper's rule, with the CPL rank looked up by a
// linear std::find in ClassPrecedenceList on every comparison (no rank
// tables): at the first argument position whose formals differ, the method
// whose formal appears earlier in the CPL of the actual argument type wins.
// Ties (identical formals) are not ordered either way.
bool RefMoreSpecific(const Schema& schema, MethodId a, MethodId b,
                     const std::vector<TypeId>& arg_types);

// Applicable methods most-specific-first: the linear scan above followed by
// a stable sort on RefMoreSpecific, so ties stay in registration order —
// exactly the contract of SortBySpecificity / DispatchOrder.
std::vector<MethodId> RefDispatchOrder(const Schema& schema, GfId gf,
                                       const std::vector<TypeId>& arg_types);

// The method the call dispatches to; NotFound when no method applies.
Result<MethodId> RefDispatch(const Schema& schema, GfId gf,
                             const std::vector<TypeId>& arg_types);

}  // namespace tyder::oracle

#endif  // TYDER_ORACLE_REFERENCE_H_
