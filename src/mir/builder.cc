#include "mir/builder.h"

namespace tyder::mir {

namespace {
std::shared_ptr<Expr> Node(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}
}  // namespace

ExprPtr Param(int index) {
  auto e = Node(ExprKind::kParamRef);
  e->param_index = index;
  return e;
}

ExprPtr Var(std::string_view name) {
  auto e = Node(ExprKind::kVarRef);
  e->var = Symbol::Intern(name);
  return e;
}

ExprPtr IntLit(int64_t v) {
  auto e = Node(ExprKind::kIntLit);
  e->int_val = v;
  return e;
}

ExprPtr FloatLit(double v) {
  auto e = Node(ExprKind::kFloatLit);
  e->float_val = v;
  return e;
}

ExprPtr BoolLit(bool v) {
  auto e = Node(ExprKind::kBoolLit);
  e->bool_val = v;
  return e;
}

ExprPtr StringLit(std::string v) {
  auto e = Node(ExprKind::kStringLit);
  e->str_val = std::move(v);
  return e;
}

ExprPtr Call(GfId callee, std::vector<ExprPtr> args) {
  auto e = Node(ExprKind::kCall);
  e->callee = callee;
  e->children = std::move(args);
  return e;
}

ExprPtr BinOp(BinOpKind op, ExprPtr lhs, ExprPtr rhs) {
  auto e = Node(ExprKind::kBinOp);
  e->op = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Seq(std::vector<ExprPtr> stmts) {
  auto e = Node(ExprKind::kSeq);
  e->children = std::move(stmts);
  return e;
}

ExprPtr Decl(std::string_view name, TypeId type, ExprPtr init) {
  auto e = Node(ExprKind::kDecl);
  e->var = Symbol::Intern(name);
  e->decl_type = type;
  if (init != nullptr) e->children.push_back(std::move(init));
  return e;
}

ExprPtr Assign(std::string_view name, ExprPtr value) {
  auto e = Node(ExprKind::kAssign);
  e->var = Symbol::Intern(name);
  e->children.push_back(std::move(value));
  return e;
}

ExprPtr Return(ExprPtr value) {
  auto e = Node(ExprKind::kReturn);
  if (value != nullptr) e->children.push_back(std::move(value));
  return e;
}

ExprPtr If(ExprPtr cond, ExprPtr then_seq, ExprPtr else_seq) {
  auto e = Node(ExprKind::kIf);
  e->children = {std::move(cond), std::move(then_seq)};
  if (else_seq != nullptr) e->children.push_back(std::move(else_seq));
  return e;
}

ExprPtr ExprStmt(ExprPtr expr) {
  auto e = Node(ExprKind::kExprStmt);
  e->children.push_back(std::move(expr));
  return e;
}

}  // namespace tyder::mir
