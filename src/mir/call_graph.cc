#include "mir/call_graph.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "mir/dataflow.h"
#include "mir/type_check.h"
#include "obs/obs.h"

namespace tyder {

namespace {

// Relevant-call extraction is a pure function of (schema, method, source) —
// it runs the type checker and the def-use flow analysis over the method
// body — and IsApplicable re-derives it for every projection over the same
// schema. Memoize per (method, source), keyed on the schema version through
// the analysis-cache slot so any mutation (signature rewrite, body retyping,
// hierarchy edit) drops the whole map. Shared-locked for the parallel batch
// driver's concurrent analyzers.
struct RelevantCallCache {
  std::shared_mutex mu;
  std::unordered_map<uint64_t,
                     std::shared_ptr<const std::vector<RelevantCall>>>
      map;
};

uint64_t CacheKey(MethodId m, TypeId source) {
  return (static_cast<uint64_t>(m) << 32) | source;
}

Result<std::vector<RelevantCall>> ExtractRelevantCallsUncached(
    const Schema& schema, MethodId m, TypeId source) {
  std::vector<RelevantCall> out;
  const Method& method = schema.method(m);
  if (method.body == nullptr) return out;

  TYDER_ASSIGN_OR_RETURN(TypeAnnotations types, TypeCheckMethod(schema, m));
  TYDER_ASSIGN_OR_RETURN(FlowInfo flow, AnalyzeFlow(schema, m));

  const TypeGraph& graph = schema.types();
  Status failure = Status::OK();
  VisitPreorder(method.body, [&](const Expr& e) {
    if (!failure.ok() || e.kind != ExprKind::kCall) return;
    RelevantCall call;
    call.gf = e.callee;
    bool any_related = false;
    for (const ExprPtr& arg : e.children) {
      auto it = types.find(arg.get());
      if (it == types.end()) {
        failure = Status::Internal("call argument missing type annotation");
        return;
      }
      TypeId static_type = it->second;
      call.arg_static_types.push_back(static_type);
      // (b) the argument's static type admits instances of the source type.
      bool related = graph.IsSubtype(source, static_type);
      if (related) {
        // (a) the argument corresponds to a formal of m whose type admits T.
        related = false;
        for (int p : ReachingParams(flow, *arg)) {
          if (graph.IsSubtype(source, method.sig.params[p])) {
            related = true;
            break;
          }
        }
      }
      call.arg_source_related.push_back(related);
      any_related = any_related || related;
    }
    if (any_related) out.push_back(std::move(call));
  });
  if (!failure.ok()) return failure;
  return out;
}

}  // namespace

Result<std::vector<RelevantCall>> ExtractRelevantCalls(const Schema& schema,
                                                       MethodId m,
                                                       TypeId source) {
  std::shared_ptr<RelevantCallCache> cache =
      schema.relevant_calls_slot().GetOrBuild<RelevantCallCache>(
          schema.version(), [] { return std::make_shared<RelevantCallCache>(); });
  uint64_t key = CacheKey(m, source);
  {
    std::shared_lock<std::shared_mutex> lock(cache->mu);
    auto it = cache->map.find(key);
    if (it != cache->map.end()) {
      TYDER_COUNT("callgraph.cache_hit");
      return *it->second;
    }
  }
  TYDER_COUNT("callgraph.cache_miss");
  TYDER_ASSIGN_OR_RETURN(std::vector<RelevantCall> calls,
                         ExtractRelevantCallsUncached(schema, m, source));
  // Failures are not cached: they surface schema bugs the caller reports.
  auto shared =
      std::make_shared<const std::vector<RelevantCall>>(std::move(calls));
  {
    std::unique_lock<std::shared_mutex> lock(cache->mu);
    cache->map.emplace(key, shared);
  }
  return *shared;
}

std::vector<GfId> CalledGenericFunctions(const Method& m) {
  std::vector<GfId> out;
  VisitPreorder(m.body, [&out](const Expr& e) {
    if (e.kind == ExprKind::kCall) out.push_back(e.callee);
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace tyder
