#include "mir/call_graph.h"

#include <algorithm>

#include "mir/dataflow.h"
#include "mir/type_check.h"

namespace tyder {

Result<std::vector<RelevantCall>> ExtractRelevantCalls(const Schema& schema,
                                                       MethodId m,
                                                       TypeId source) {
  std::vector<RelevantCall> out;
  const Method& method = schema.method(m);
  if (method.body == nullptr) return out;

  TYDER_ASSIGN_OR_RETURN(TypeAnnotations types, TypeCheckMethod(schema, m));
  TYDER_ASSIGN_OR_RETURN(FlowInfo flow, AnalyzeFlow(schema, m));

  const TypeGraph& graph = schema.types();
  Status failure = Status::OK();
  VisitPreorder(method.body, [&](const Expr& e) {
    if (!failure.ok() || e.kind != ExprKind::kCall) return;
    RelevantCall call;
    call.gf = e.callee;
    bool any_related = false;
    for (const ExprPtr& arg : e.children) {
      auto it = types.find(arg.get());
      if (it == types.end()) {
        failure = Status::Internal("call argument missing type annotation");
        return;
      }
      TypeId static_type = it->second;
      call.arg_static_types.push_back(static_type);
      // (b) the argument's static type admits instances of the source type.
      bool related = graph.IsSubtype(source, static_type);
      if (related) {
        // (a) the argument corresponds to a formal of m whose type admits T.
        related = false;
        for (int p : ReachingParams(flow, *arg)) {
          if (graph.IsSubtype(source, method.sig.params[p])) {
            related = true;
            break;
          }
        }
      }
      call.arg_source_related.push_back(related);
      any_related = any_related || related;
    }
    if (any_related) out.push_back(std::move(call));
  });
  if (!failure.ok()) return failure;
  return out;
}

std::vector<GfId> CalledGenericFunctions(const Method& m) {
  std::vector<GfId> out;
  VisitPreorder(m.body, [&out](const Expr& e) {
    if (e.kind == ExprKind::kCall) out.push_back(e.callee);
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace tyder
