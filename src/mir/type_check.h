// Static typing of method bodies. Computes the static type of every MIR node
// and enforces the model's typing rules:
//   - locals are declared once, before use;
//   - assignment/initialization requires rhs ≼ declared type (this is exactly
//     the `g ← c` rule whose preservation forces Section 6.3's retyping);
//   - generic-function calls must have a statically applicable method; the
//     call's static type is the result type of the most specific one;
//   - `return e` requires static(e) ≼ declared result type;
//   - `if` conditions are Bool; arithmetic is over Int/Float, comparisons
//     yield Bool.

#ifndef TYDER_MIR_TYPE_CHECK_H_
#define TYDER_MIR_TYPE_CHECK_H_

#include <unordered_map>

#include "common/result.h"
#include "methods/schema.h"
#include "mir/expr.h"

namespace tyder {

// Static type of each node (statements are Void).
using TypeAnnotations = std::unordered_map<const Expr*, TypeId>;

// Checks one general method; accessors trivially pass (empty annotations).
Result<TypeAnnotations> TypeCheckMethod(const Schema& schema, MethodId m);

// Checks a free-standing body (e.g. a query predicate) against the given
// signature and parameter names — the same rules as a method body.
Result<TypeAnnotations> TypeCheckBody(const Schema& schema,
                                      const Signature& sig,
                                      const std::vector<Symbol>& param_names,
                                      const ExprPtr& body);

// Checks every method in the schema; first failure wins, with the method
// label prepended for context.
Status TypeCheckSchema(const Schema& schema);

}  // namespace tyder

#endif  // TYDER_MIR_TYPE_CHECK_H_
