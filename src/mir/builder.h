// Fluent constructors for MIR trees. Method bodies in tests, examples, and
// the TDL analyzer are all assembled through these helpers.

#ifndef TYDER_MIR_BUILDER_H_
#define TYDER_MIR_BUILDER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mir/expr.h"

namespace tyder::mir {

ExprPtr Param(int index);
ExprPtr Var(std::string_view name);
ExprPtr IntLit(int64_t v);
ExprPtr FloatLit(double v);
ExprPtr BoolLit(bool v);
ExprPtr StringLit(std::string v);
ExprPtr Call(GfId callee, std::vector<ExprPtr> args);
ExprPtr BinOp(BinOpKind op, ExprPtr lhs, ExprPtr rhs);

ExprPtr Seq(std::vector<ExprPtr> stmts);
// var : type;  /  var : type = init;
ExprPtr Decl(std::string_view name, TypeId type, ExprPtr init = nullptr);
ExprPtr Assign(std::string_view name, ExprPtr value);
ExprPtr Return(ExprPtr value = nullptr);
ExprPtr If(ExprPtr cond, ExprPtr then_seq, ExprPtr else_seq = nullptr);
ExprPtr ExprStmt(ExprPtr expr);

}  // namespace tyder::mir

#endif  // TYDER_MIR_BUILDER_H_
