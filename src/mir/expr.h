// MIR: the method intermediate representation. General method bodies are
// immutable expression trees over a small statement/expression language rich
// enough for everything the paper needs: generic-function calls (including
// accessor calls — accessors are ordinary generic functions), local variable
// declarations and assignments (Section 6.3's retyping problem), returns,
// conditionals, and arithmetic so that methods like `income` actually compute.
//
// Trees are immutable and shared via shared_ptr<const Expr>; rewriting (e.g.
// FactorMethods' retyping of local declarations) produces new trees.

#ifndef TYDER_MIR_EXPR_H_
#define TYDER_MIR_EXPR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/symbol.h"

namespace tyder {

enum class ExprKind {
  // Expressions
  kParamRef,   // formal parameter, by index
  kVarRef,     // local variable, by name
  kIntLit,
  kFloatLit,
  kBoolLit,
  kStringLit,
  kCall,       // generic function call: children = arguments
  kBinOp,      // children = {lhs, rhs}
  // Statements (evaluate to Void unless noted)
  kSeq,        // children = statements, in order
  kDecl,       // declare local `var : decl_type`; children = {init} or {}
  kAssign,     // children = {value}; assigns to `var`
  kReturn,     // children = {value} or {} for bare return
  kIf,         // children = {cond, then_seq} or {cond, then_seq, else_seq}
  kExprStmt,   // children = {expr}; evaluate and discard
};

enum class BinOpKind { kAdd, kSub, kMul, kDiv, kLt, kLe, kEq, kAnd, kOr };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  ExprKind kind;

  // kParamRef
  int param_index = -1;
  // kVarRef / kDecl / kAssign
  Symbol var;
  // kDecl: declared static type of the local
  TypeId decl_type = kInvalidType;
  // literals
  int64_t int_val = 0;
  double float_val = 0.0;
  bool bool_val = false;
  std::string str_val;
  // kCall
  GfId callee = kInvalidGf;
  // kBinOp
  BinOpKind op = BinOpKind::kAdd;

  std::vector<ExprPtr> children;
};

// True for the statement kinds (kSeq..kExprStmt).
bool IsStatement(ExprKind kind);

// Structural deep-rewrite: applies `fn` bottom-up; `fn` receives a node whose
// children have already been rewritten and returns either the node unchanged
// or a replacement. Used by FactorMethods to retype declarations.
ExprPtr RewriteBottomUp(const ExprPtr& root,
                        const std::function<ExprPtr(const ExprPtr&)>& fn);

// Preorder visit of every node.
void VisitPreorder(const ExprPtr& root,
                   const std::function<void(const Expr&)>& fn);

const char* BinOpName(BinOpKind op);

}  // namespace tyder

#endif  // TYDER_MIR_EXPR_H_
