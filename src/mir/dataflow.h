// Definition-use flow analysis over method bodies (paper Sections 4.1, 6.3,
// 6.4). Flow-insensitive and conservative: a local is "reached by" a formal
// parameter if any chain of declarations-with-init / assignments can carry
// the parameter's value into it. Call results and arithmetic do not carry
// reachability (a call returns a fresh value, not the parameter object).
//
// This one analysis backs three consumers:
//   - call_graph.h: which call arguments correspond to formals of the method
//     (IsApplicable's "relevant" generic-function calls);
//   - FactorMethods: which local declarations must be retyped to surrogate
//     types (Section 6.3's reachability set);
//   - Augment: the set Y of types transitively assigned values of types in X
//     (Section 6.4).

#ifndef TYDER_MIR_DATAFLOW_H_
#define TYDER_MIR_DATAFLOW_H_

#include <set>
#include <unordered_map>

#include "common/result.h"
#include "methods/schema.h"
#include "mir/expr.h"

namespace tyder {

struct FlowInfo {
  // For each local variable: the set of formal-parameter indices whose value
  // can reach it.
  std::unordered_map<Symbol, std::set<int>, SymbolHash> var_reached_by;
  // For each local variable: its declared type.
  std::unordered_map<Symbol, TypeId, SymbolHash> var_types;
  // Formal indices whose value can reach a returned expression.
  std::set<int> return_reached_by;
};

// Runs the fixpoint analysis on `m`'s body (empty FlowInfo for accessors).
Result<FlowInfo> AnalyzeFlow(const Schema& schema, MethodId m);

// Formal indices that can reach the value of `e` within a body already
// analyzed into `info` (ParamRef -> itself, VarRef -> var_reached_by, all
// else empty).
std::set<int> ReachingParams(const FlowInfo& info, const Expr& e);

// Section 6.4's set Y: declared types of locals (plus result types) that are
// transitively assigned a value of one of the types in `x_types`, across all
// of `methods`. A local participates when it is reached by a formal whose
// type is in `x_types`.
Result<std::set<TypeId>> TypesAssignedFrom(const Schema& schema,
                                           const std::vector<MethodId>& methods,
                                           const std::set<TypeId>& x_types);

}  // namespace tyder

#endif  // TYDER_MIR_DATAFLOW_H_
