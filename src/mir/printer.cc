#include "mir/printer.h"

#include <sstream>

namespace tyder {

namespace {

void Render(const Schema& schema, const Method& method, const ExprPtr& node,
            std::ostringstream& out) {
  const Expr& e = *node;
  switch (e.kind) {
    case ExprKind::kParamRef: {
      if (e.param_index >= 0 &&
          e.param_index < static_cast<int>(method.param_names.size())) {
        out << method.param_names[e.param_index].view();
      } else {
        out << "$" << e.param_index;
      }
      return;
    }
    case ExprKind::kVarRef:
      out << e.var.view();
      return;
    case ExprKind::kIntLit:
      out << e.int_val;
      return;
    case ExprKind::kFloatLit:
      out << e.float_val;
      return;
    case ExprKind::kBoolLit:
      out << (e.bool_val ? "true" : "false");
      return;
    case ExprKind::kStringLit:
      out << '"' << e.str_val << '"';
      return;
    case ExprKind::kCall: {
      out << schema.gf(e.callee).name.view() << "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) out << ", ";
        Render(schema, method, e.children[i], out);
      }
      out << ")";
      return;
    }
    case ExprKind::kBinOp: {
      out << "(";
      Render(schema, method, e.children[0], out);
      out << " " << BinOpName(e.op) << " ";
      Render(schema, method, e.children[1], out);
      out << ")";
      return;
    }
    case ExprKind::kSeq: {
      out << "{ ";
      for (const ExprPtr& stmt : e.children) {
        Render(schema, method, stmt, out);
        out << " ";
      }
      out << "}";
      return;
    }
    case ExprKind::kDecl: {
      out << e.var.view() << ": " << schema.types().TypeName(e.decl_type);
      if (!e.children.empty()) {
        out << " = ";
        Render(schema, method, e.children[0], out);
      }
      out << ";";
      return;
    }
    case ExprKind::kAssign: {
      out << e.var.view() << " = ";
      Render(schema, method, e.children[0], out);
      out << ";";
      return;
    }
    case ExprKind::kReturn: {
      out << "return";
      if (!e.children.empty()) {
        out << " ";
        Render(schema, method, e.children[0], out);
      }
      out << ";";
      return;
    }
    case ExprKind::kIf: {
      out << "if (";
      Render(schema, method, e.children[0], out);
      out << ") ";
      Render(schema, method, e.children[1], out);
      if (e.children.size() > 2) {
        out << " else ";
        Render(schema, method, e.children[2], out);
      }
      return;
    }
    case ExprKind::kExprStmt: {
      Render(schema, method, e.children[0], out);
      out << ";";
      return;
    }
  }
}

}  // namespace

std::string PrintExpr(const Schema& schema, const Method& method,
                      const ExprPtr& expr) {
  std::ostringstream out;
  Render(schema, method, expr, out);
  return out.str();
}

std::string PrintMethod(const Schema& schema, MethodId m) {
  const Method& method = schema.method(m);
  std::ostringstream out;
  out << method.label.view() << ": ";
  std::string gf_name = schema.gf(method.gf).name.str();
  out << SignatureToString(schema.types(), gf_name, method.sig);
  switch (method.kind) {
    case MethodKind::kReader:
      out << " [reader of "
          << schema.types().attribute(method.attr).name.view() << "]";
      break;
    case MethodKind::kMutator:
      out << " [mutator of "
          << schema.types().attribute(method.attr).name.view() << "]";
      break;
    case MethodKind::kGeneral:
      out << " = " << PrintExpr(schema, method, method.body);
      break;
  }
  return out.str();
}

std::string PrintAllMethods(const Schema& schema) {
  std::string out;
  for (MethodId m = 0; m < schema.NumMethods(); ++m) {
    out += PrintMethod(schema, m);
    out += "\n";
  }
  return out;
}

}  // namespace tyder
