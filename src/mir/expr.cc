#include "mir/expr.h"

namespace tyder {

bool IsStatement(ExprKind kind) {
  switch (kind) {
    case ExprKind::kSeq:
    case ExprKind::kDecl:
    case ExprKind::kAssign:
    case ExprKind::kReturn:
    case ExprKind::kIf:
    case ExprKind::kExprStmt:
      return true;
    default:
      return false;
  }
}

ExprPtr RewriteBottomUp(const ExprPtr& root,
                        const std::function<ExprPtr(const ExprPtr&)>& fn) {
  if (root == nullptr) return root;
  bool changed = false;
  std::vector<ExprPtr> new_children;
  new_children.reserve(root->children.size());
  for (const ExprPtr& child : root->children) {
    ExprPtr rewritten = RewriteBottomUp(child, fn);
    changed = changed || rewritten != child;
    new_children.push_back(std::move(rewritten));
  }
  ExprPtr node = root;
  if (changed) {
    auto copy = std::make_shared<Expr>(*root);
    copy->children = std::move(new_children);
    node = std::move(copy);
  }
  return fn(node);
}

void VisitPreorder(const ExprPtr& root,
                   const std::function<void(const Expr&)>& fn) {
  if (root == nullptr) return;
  fn(*root);
  for (const ExprPtr& child : root->children) VisitPreorder(child, fn);
}

const char* BinOpName(BinOpKind op) {
  switch (op) {
    case BinOpKind::kAdd: return "+";
    case BinOpKind::kSub: return "-";
    case BinOpKind::kMul: return "*";
    case BinOpKind::kDiv: return "/";
    case BinOpKind::kLt: return "<";
    case BinOpKind::kLe: return "<=";
    case BinOpKind::kEq: return "==";
    case BinOpKind::kAnd: return "and";
    case BinOpKind::kOr: return "or";
  }
  return "?";
}

}  // namespace tyder
