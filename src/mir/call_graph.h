// Extraction of the generic-function calls IsApplicable must check
// (paper Section 4.1): for a method m_k under test against source type T,
// the calls in m_k's body "that are relevant to the arguments of m_k" — i.e.
// calls with at least one argument that (a) receives, by def-use flow, the
// value of a formal of m_k whose type is T or a supertype of T, and (b) has
// static type T or a supertype of T (so an instance of the derived type T̃
// could appear there at run time).

#ifndef TYDER_MIR_CALL_GRAPH_H_
#define TYDER_MIR_CALL_GRAPH_H_

#include <vector>

#include "common/result.h"
#include "methods/schema.h"
#include "mir/expr.h"

namespace tyder {

struct RelevantCall {
  GfId gf = kInvalidGf;
  // Static type of each actual argument, under the original schema.
  std::vector<TypeId> arg_static_types;
  // arg_source_related[j]: argument j satisfies (a) and (b) above — the
  // positions where T̃ may stand in for T. IsApplicable's single- vs
  // multiple-argument substitution cases (Section 4) key off how many are set.
  std::vector<bool> arg_source_related;

  size_t NumSourceRelated() const {
    size_t n = 0;
    for (bool b : arg_source_related) n += b ? 1 : 0;
    return n;
  }
};

// All relevant calls in m's body with respect to source type `source`, in
// body order (the order IsApplicable checks them). Accessors return empty.
Result<std::vector<RelevantCall>> ExtractRelevantCalls(const Schema& schema,
                                                       MethodId m,
                                                       TypeId source);

// The static call graph edge set: for each general method, the generic
// functions its body calls (used by scalability benches and diagnostics).
std::vector<GfId> CalledGenericFunctions(const Method& m);

}  // namespace tyder

#endif  // TYDER_MIR_CALL_GRAPH_H_
