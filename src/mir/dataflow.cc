#include "mir/dataflow.h"

#include "obs/obs.h"

namespace tyder {

namespace {

// One pass over the body, merging reaching-params facts; returns whether any
// fact changed. Repeated to fixpoint to handle use-before-def chains in the
// flow-insensitive model.
bool Propagate(const ExprPtr& body, FlowInfo* info) {
  bool changed = false;
  auto merge = [&changed](std::set<int>& into, const std::set<int>& from) {
    for (int i : from) {
      if (into.insert(i).second) changed = true;
    }
  };
  VisitPreorder(body, [&](const Expr& e) {
    switch (e.kind) {
      case ExprKind::kDecl:
        if (!e.children.empty()) {
          merge(info->var_reached_by[e.var],
                ReachingParams(*info, *e.children[0]));
        }
        break;
      case ExprKind::kAssign:
        merge(info->var_reached_by[e.var],
              ReachingParams(*info, *e.children[0]));
        break;
      case ExprKind::kReturn:
        if (!e.children.empty()) {
          merge(info->return_reached_by, ReachingParams(*info, *e.children[0]));
        }
        break;
      default:
        break;
    }
  });
  return changed;
}

}  // namespace

std::set<int> ReachingParams(const FlowInfo& info, const Expr& e) {
  switch (e.kind) {
    case ExprKind::kParamRef:
      return {e.param_index};
    case ExprKind::kVarRef: {
      auto it = info.var_reached_by.find(e.var);
      return it == info.var_reached_by.end() ? std::set<int>{} : it->second;
    }
    default:
      // Calls and arithmetic produce fresh values; literals carry nothing.
      return {};
  }
}

Result<FlowInfo> AnalyzeFlow(const Schema& schema, MethodId m) {
  FlowInfo info;
  const Method& method = schema.method(m);
  if (method.body == nullptr) return info;
  VisitPreorder(method.body, [&info](const Expr& e) {
    if (e.kind == ExprKind::kDecl) {
      info.var_types[e.var] = e.decl_type;
      info.var_reached_by.emplace(e.var, std::set<int>{});
    }
  });
  TYDER_COUNT("dataflow.analyses");
  uint64_t iterations = 1;  // the final (no-change) pass counts too
  while (Propagate(method.body, &info)) {
    ++iterations;
  }
  TYDER_COUNT_N("dataflow.fixpoint_iterations", iterations);
  return info;
}

Result<std::set<TypeId>> TypesAssignedFrom(const Schema& schema,
                                           const std::vector<MethodId>& methods,
                                           const std::set<TypeId>& x_types) {
  std::set<TypeId> y;
  for (MethodId m : methods) {
    const Method& method = schema.method(m);
    if (method.body == nullptr) continue;
    TYDER_ASSIGN_OR_RETURN(FlowInfo info, AnalyzeFlow(schema, m));
    for (const auto& [var, reached_by] : info.var_reached_by) {
      for (int param : reached_by) {
        TypeId formal = method.sig.params[param];
        if (x_types.count(formal) > 0) {
          y.insert(info.var_types.at(var));
          break;
        }
      }
    }
  }
  return y;
}

}  // namespace tyder
