#include "mir/type_check.h"

#include "methods/precedence.h"

namespace tyder {

namespace {

class Checker {
 public:
  Checker(const Schema& schema, const Signature& sig,
          const std::vector<Symbol>& param_names, const ExprPtr& body)
      : schema_(schema), sig_(sig), param_names_(param_names), body_(body) {}

  Result<TypeAnnotations> Run() {
    if (body_ == nullptr) return TypeAnnotations{};
    TYDER_RETURN_IF_ERROR(CollectDecls(body_));
    TYDER_RETURN_IF_ERROR(Check(body_));
    return std::move(annotations_);
  }

 private:
  // Locals are scoped to the whole body and may not shadow parameters or be
  // declared twice (keeps the reachability analysis of Section 6.3 simple,
  // matching the paper's flat method bodies).
  Status CollectDecls(const ExprPtr& node) {
    Status status = Status::OK();
    VisitPreorder(node, [this, &status](const Expr& e) {
      if (!status.ok() || e.kind != ExprKind::kDecl) return;
      if (locals_.count(e.var) > 0) {
        status = Status::TypeError("local '" + e.var.str() +
                                   "' declared more than once");
        return;
      }
      for (Symbol p : param_names_) {
        if (p == e.var) {
          status = Status::TypeError("local '" + e.var.str() +
                                     "' shadows a parameter");
          return;
        }
      }
      if (e.decl_type >= schema_.types().NumTypes()) {
        status = Status::TypeError("local '" + e.var.str() +
                                   "' has an unknown declared type");
        return;
      }
      locals_.emplace(e.var, e.decl_type);
    });
    return status;
  }

  Status Check(const ExprPtr& node) {
    TYDER_ASSIGN_OR_RETURN(TypeId t, TypeOf(node));
    annotations_[node.get()] = t;
    return Status::OK();
  }

  Result<TypeId> TypeOf(const ExprPtr& node) {
    const Expr& e = *node;
    const BuiltinTypes& b = schema_.builtins();
    switch (e.kind) {
      case ExprKind::kParamRef: {
        if (e.param_index < 0 ||
            e.param_index >= static_cast<int>(sig_.params.size())) {
          return Status::TypeError("parameter index out of range");
        }
        return sig_.params[e.param_index];
      }
      case ExprKind::kVarRef: {
        auto it = locals_.find(e.var);
        if (it == locals_.end()) {
          return Status::TypeError("use of undeclared local '" + e.var.str() +
                                   "'");
        }
        return it->second;
      }
      case ExprKind::kIntLit:
        return b.int_type;
      case ExprKind::kFloatLit:
        return b.float_type;
      case ExprKind::kBoolLit:
        return b.bool_type;
      case ExprKind::kStringLit:
        return b.string_type;
      case ExprKind::kCall:
        return TypeOfCall(node);
      case ExprKind::kBinOp:
        return TypeOfBinOp(node);
      case ExprKind::kSeq: {
        for (const ExprPtr& stmt : e.children) {
          TYDER_RETURN_IF_ERROR(Check(stmt));
        }
        return b.void_type;
      }
      case ExprKind::kDecl: {
        if (!e.children.empty()) {
          TYDER_RETURN_IF_ERROR(Check(e.children[0]));
          TypeId init = annotations_[e.children[0].get()];
          if (!schema_.types().IsSubtype(init, e.decl_type)) {
            return Status::TypeError(
                "initializer of '" + e.var.str() + "' has type '" +
                schema_.types().TypeName(init) + "', not a subtype of '" +
                schema_.types().TypeName(e.decl_type) + "'");
          }
        }
        return b.void_type;
      }
      case ExprKind::kAssign: {
        auto it = locals_.find(e.var);
        if (it == locals_.end()) {
          return Status::TypeError("assignment to undeclared local '" +
                                   e.var.str() + "'");
        }
        TYDER_RETURN_IF_ERROR(Check(e.children[0]));
        TypeId rhs = annotations_[e.children[0].get()];
        if (!schema_.types().IsSubtype(rhs, it->second)) {
          return Status::TypeError(
              "cannot assign '" + schema_.types().TypeName(rhs) + "' to '" +
              e.var.str() + ": " + schema_.types().TypeName(it->second) + "'");
        }
        return b.void_type;
      }
      case ExprKind::kReturn: {
        if (e.children.empty()) {
          if (sig_.result != b.void_type) {
            return Status::TypeError("bare return in non-Void method");
          }
          return b.void_type;
        }
        TYDER_RETURN_IF_ERROR(Check(e.children[0]));
        TypeId val = annotations_[e.children[0].get()];
        if (!schema_.types().IsSubtype(val, sig_.result)) {
          return Status::TypeError(
              "return value of type '" + schema_.types().TypeName(val) +
              "' is not a subtype of declared result '" +
              schema_.types().TypeName(sig_.result) + "'");
        }
        return b.void_type;
      }
      case ExprKind::kIf: {
        TYDER_RETURN_IF_ERROR(Check(e.children[0]));
        if (annotations_[e.children[0].get()] != b.bool_type) {
          return Status::TypeError("if condition must be Bool");
        }
        for (size_t i = 1; i < e.children.size(); ++i) {
          TYDER_RETURN_IF_ERROR(Check(e.children[i]));
        }
        return b.void_type;
      }
      case ExprKind::kExprStmt: {
        TYDER_RETURN_IF_ERROR(Check(e.children[0]));
        return b.void_type;
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  Result<TypeId> TypeOfCall(const ExprPtr& node) {
    const Expr& e = *node;
    if (e.callee >= schema_.NumGenericFunctions()) {
      return Status::TypeError("call to unknown generic function");
    }
    const GenericFunction& gf = schema_.gf(e.callee);
    if (static_cast<int>(e.children.size()) != gf.arity) {
      return Status::TypeError("call to '" + gf.name.str() +
                               "' with wrong argument count");
    }
    std::vector<TypeId> arg_types;
    for (const ExprPtr& arg : e.children) {
      TYDER_RETURN_IF_ERROR(Check(arg));
      arg_types.push_back(annotations_[arg.get()]);
    }
    Result<MethodId> target =
        MostSpecificApplicable(schema_, e.callee, arg_types);
    if (target.ok()) return schema_.method(*target).sig.result;
    // No statically applicable method. Multi-method systems still allow the
    // call when a method could apply at run time (the paper's w2(C) = {u(c)}
    // where u's methods take subtypes of C): accept any method where, at
    // every position, the formal and the static argument type share a common
    // subtype — a run-time value could then satisfy both. (Sharing through a
    // common subtype, not mere pairwise ≼-relatedness, matters after
    // FactorMethods lifts formals to surrogates: formal ~F and static type T
    // relate only through their common subtype F.)
    for (MethodId m : schema_.gf(e.callee).methods) {
      const Signature& sig = schema_.method(m).sig;
      bool plausible = true;
      for (size_t i = 0; i < arg_types.size(); ++i) {
        if (!ShareSubtype(arg_types[i], sig.params[i])) {
          plausible = false;
          break;
        }
      }
      if (plausible) return sig.result;
    }
    return Status::TypeError(target.status().message());
  }

  // True iff some type is a subtype of both `a` and `b` (always true when
  // they are ≼-related in either direction).
  bool ShareSubtype(TypeId a, TypeId b) const {
    if (schema_.types().IsSubtype(a, b) || schema_.types().IsSubtype(b, a)) {
      return true;
    }
    for (TypeId u = 0; u < schema_.types().NumTypes(); ++u) {
      if (schema_.types().IsSubtype(u, a) && schema_.types().IsSubtype(u, b)) {
        return true;
      }
    }
    return false;
  }

  Result<TypeId> TypeOfBinOp(const ExprPtr& node) {
    const Expr& e = *node;
    const BuiltinTypes& b = schema_.builtins();
    TYDER_RETURN_IF_ERROR(Check(e.children[0]));
    TYDER_RETURN_IF_ERROR(Check(e.children[1]));
    TypeId lhs = annotations_[e.children[0].get()];
    TypeId rhs = annotations_[e.children[1].get()];
    // Date participates in arithmetic as an integer day/year number.
    auto numeric = [&](TypeId t) {
      return t == b.int_type || t == b.float_type || t == b.date_type;
    };
    switch (e.op) {
      case BinOpKind::kAdd:
      case BinOpKind::kSub:
      case BinOpKind::kMul:
      case BinOpKind::kDiv:
        if (!numeric(lhs) || !numeric(rhs)) {
          return Status::TypeError("arithmetic requires Int/Float operands");
        }
        return (lhs == b.float_type || rhs == b.float_type) ? b.float_type
                                                            : b.int_type;
      case BinOpKind::kLt:
      case BinOpKind::kLe:
        if (!numeric(lhs) || !numeric(rhs)) {
          return Status::TypeError("comparison requires Int/Float operands");
        }
        return b.bool_type;
      case BinOpKind::kEq:
        return b.bool_type;
      case BinOpKind::kAnd:
      case BinOpKind::kOr:
        if (lhs != b.bool_type || rhs != b.bool_type) {
          return Status::TypeError("and/or require Bool operands");
        }
        return b.bool_type;
    }
    return Status::Internal("unhandled binary operator");
  }

  const Schema& schema_;
  const Signature& sig_;
  const std::vector<Symbol>& param_names_;
  const ExprPtr& body_;
  std::unordered_map<Symbol, TypeId, SymbolHash> locals_;
  TypeAnnotations annotations_;
};

}  // namespace

Result<TypeAnnotations> TypeCheckMethod(const Schema& schema, MethodId m) {
  const Method& method = schema.method(m);
  return Checker(schema, method.sig, method.param_names, method.body).Run();
}

Result<TypeAnnotations> TypeCheckBody(const Schema& schema,
                                      const Signature& sig,
                                      const std::vector<Symbol>& param_names,
                                      const ExprPtr& body) {
  return Checker(schema, sig, param_names, body).Run();
}

Status TypeCheckSchema(const Schema& schema) {
  for (MethodId m = 0; m < schema.NumMethods(); ++m) {
    Result<TypeAnnotations> result = TypeCheckMethod(schema, m);
    if (!result.ok()) {
      return result.status().WithContext("method '" +
                                         schema.method(m).label.str() + "'");
    }
  }
  return Status::OK();
}

}  // namespace tyder
