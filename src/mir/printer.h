// Textual rendering of method bodies and whole methods, in the paper's style:
//   v1(a: A, c: C) -> Void = { u(a); w(c); }

#ifndef TYDER_MIR_PRINTER_H_
#define TYDER_MIR_PRINTER_H_

#include <string>

#include "methods/schema.h"
#include "mir/expr.h"

namespace tyder {

// Renders one expression/statement (no trailing newline for expressions).
std::string PrintExpr(const Schema& schema, const Method& method,
                      const ExprPtr& expr);

// "label(gf): sig = { body }" for general methods; accessors render as
// "label(gf): sig [reader of attr]" etc.
std::string PrintMethod(const Schema& schema, MethodId m);

// Every method in the schema, one per line.
std::string PrintAllMethods(const Schema& schema);

}  // namespace tyder

#endif  // TYDER_MIR_PRINTER_H_
