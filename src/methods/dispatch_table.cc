#include "methods/dispatch_table.h"

#include <algorithm>

#include "methods/applicability.h"
#include "obs/obs.h"

namespace tyder {

namespace {

std::shared_ptr<const GfDispatchData> BuildGfData(const Schema& schema,
                                                  GfId gf) {
  TYDER_COUNT("dispatch.table_builds");
  auto data = std::make_shared<GfDispatchData>();
  const GenericFunction& g = schema.gf(gf);
  data->arity = g.arity;
  data->num_types = schema.types().NumTypes();
  data->methods = g.methods;
  data->words = (g.methods.size() + 63) / 64;
  data->masks.assign(
      static_cast<size_t>(g.arity) * data->num_types * data->words, 0);
  const TypeGraph& graph = schema.types();
  for (size_t j = 0; j < g.methods.size(); ++j) {
    const Signature& sig = schema.method(g.methods[j]).sig;
    for (int pos = 0; pos < g.arity; ++pos) {
      TypeId formal = sig.params[pos];
      // Set bit j in mask(pos, t) for every t ≼ formal.
      for (TypeId t = 0; t < data->num_types; ++t) {
        if (graph.IsSubtype(t, formal)) {
          uint64_t* mask =
              data->masks.data() +
              (static_cast<size_t>(pos) * data->num_types + t) * data->words;
          mask[j >> 6] |= uint64_t{1} << (j & 63);
        }
      }
    }
  }
  return data;
}

}  // namespace

std::shared_ptr<DispatchTables> DispatchTables::ForSchema(
    const Schema& schema) {
  return schema.dispatch_tables_slot().GetOrBuild<DispatchTables>(
      schema.version(), [&schema] {
        auto t = std::make_shared<DispatchTables>();
        size_t n = schema.NumGenericFunctions();
        t->per_gf_.resize(n);
        t->uses_ = std::make_unique<std::atomic<uint32_t>[]>(n);
        return t;
      });
}

std::shared_ptr<const GfDispatchData> DispatchTables::TryGet(GfId gf) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (gf < per_gf_.size()) return per_gf_[gf];
  return nullptr;
}

bool DispatchTables::NoteUse(GfId gf) {
  if (gf >= per_gf_.size()) return false;  // stale-slot race guard
  return uses_[gf].fetch_add(1, std::memory_order_relaxed) + 1 >=
         kBuildThreshold;
}

std::shared_ptr<const GfDispatchData> DispatchTables::Build(
    const Schema& schema, GfId gf) {
  // Build outside any lock (the build itself only reads the schema), then
  // publish; a racing builder's identical result simply wins.
  std::shared_ptr<const GfDispatchData> built = BuildGfData(schema, gf);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (gf >= per_gf_.size()) return built;  // stale-slot race guard
  if (per_gf_[gf] == nullptr) per_gf_[gf] = std::move(built);
  return per_gf_[gf];
}

namespace {

std::vector<MethodId> DirectScan(const Schema& schema, GfId gf,
                                 const std::vector<TypeId>& arg_types) {
  std::vector<MethodId> out;
  for (MethodId m : schema.gf(gf).methods) {
    if (ApplicableToCall(schema, m, arg_types)) out.push_back(m);
  }
  return out;
}

}  // namespace

std::vector<MethodId> ApplicableMethodsFromTables(
    const Schema& schema, GfId gf, const std::vector<TypeId>& arg_types) {
  // Tiny gfs never pay for the table machinery, however hot they run: the
  // scan itself beats a warm table lookup (see kDirectScanMax).
  if (schema.gf(gf).methods.size() <= DispatchTables::kDirectScanMax) {
    return DirectScan(schema, gf, arg_types);
  }
  std::shared_ptr<DispatchTables> tables = DispatchTables::ForSchema(schema);
  std::shared_ptr<const GfDispatchData> data = tables->TryGet(gf);
  if (data == nullptr) {
    if (!tables->NoteUse(gf)) {
      // Cold gf: the masks would cost O(types × arity) subtype tests to
      // build — more than this one answer is worth. Scan directly.
      return DirectScan(schema, gf, arg_types);
    }
    data = tables->Build(schema, gf);
  }
  std::vector<MethodId> out;
  if (static_cast<int>(arg_types.size()) != data->arity ||
      data->methods.empty()) {
    return out;
  }
  // AND the per-position masks into a small stack buffer (method counts per
  // gf are tiny; fall back to heap only beyond 512 methods).
  uint64_t stack_acc[8];
  std::vector<uint64_t> heap_acc;
  uint64_t* acc = stack_acc;
  if (data->words > 8) {
    heap_acc.resize(data->words);
    acc = heap_acc.data();
  }
  const uint64_t* first = data->Mask(0, arg_types[0]);
  for (size_t w = 0; w < data->words; ++w) acc[w] = first[w];
  for (int pos = 1; pos < data->arity; ++pos) {
    const uint64_t* mask = data->Mask(pos, arg_types[pos]);
    for (size_t w = 0; w < data->words; ++w) acc[w] &= mask[w];
  }
  for (size_t w = 0; w < data->words; ++w) {
    uint64_t bits = acc[w];
    while (bits != 0) {
      unsigned j = static_cast<unsigned>(__builtin_ctzll(bits));
      out.push_back(data->methods[(w << 6) + j]);
      bits &= bits - 1;
    }
  }
  return out;
}

std::shared_ptr<DispatchCache> DispatchCache::ForSchema(const Schema& schema) {
  return schema.dispatch_cache_slot().GetOrBuild<DispatchCache>(
      schema.version(), [] { return std::make_shared<DispatchCache>(); });
}

size_t DispatchCache::IndexOf(GfId gf, const std::vector<TypeId>& arg_types) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(gf);
  mix(arg_types.size());
  for (TypeId t : arg_types) mix(t);
  return static_cast<size_t>(h) & (kLines - 1);
}

bool DispatchCache::Lookup(GfId gf, const std::vector<TypeId>& arg_types,
                           CachedOrder* out) const {
  if (arg_types.size() > kMaxArity) {
    TYDER_COUNT("dispatch.cache_miss");
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const Line& line = lines_[IndexOf(gf, arg_types)];
  bool hit = line.valid && line.gf == gf &&
             line.nargs == arg_types.size();
  for (size_t i = 0; hit && i < arg_types.size(); ++i) {
    hit = line.args[i] == arg_types[i];
  }
  if (!hit) {
    TYDER_COUNT("dispatch.cache_miss");
    return false;
  }
  TYDER_COUNT("dispatch.cache_hit");
  *out = line.cached;
  return true;
}

void DispatchCache::Insert(GfId gf, const std::vector<TypeId>& arg_types,
                           const std::vector<MethodId>& sorted_applicable) {
  if (arg_types.size() > kMaxArity) return;
  std::lock_guard<std::mutex> lock(mu_);
  Line& line = lines_[IndexOf(gf, arg_types)];
  line.valid = true;
  line.gf = gf;
  line.nargs = static_cast<uint8_t>(arg_types.size());
  for (size_t i = 0; i < arg_types.size(); ++i) line.args[i] = arg_types[i];
  line.cached.full_len = static_cast<uint16_t>(sorted_applicable.size());
  size_t keep = std::min(sorted_applicable.size(), kMaxOrder);
  for (size_t i = 0; i < keep; ++i) line.cached.order[i] = sorted_applicable[i];
}

}  // namespace tyder
