// Method: one implementation of a generic function (paper Section 2).
// Methods are either accessors — readers return an attribute's value,
// mutators overwrite it; they are the only access path to state — or
// general methods with a MIR body that may invoke other generic functions.

#ifndef TYDER_METHODS_METHOD_H_
#define TYDER_METHODS_METHOD_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/symbol.h"
#include "methods/signature.h"
#include "mir/expr.h"

namespace tyder {

enum class MethodKind {
  kGeneral,
  kReader,   // unary: (T) -> value type of the attribute
  kMutator,  // binary: (T, V) -> Void
};

struct Method {
  // Display label, unique within a schema ("v1", "get_SSN", ...). The paper
  // names methods with subscripts on the generic-function name.
  Symbol label;
  GfId gf = kInvalidGf;
  MethodKind kind = MethodKind::kGeneral;
  Signature sig;
  // Accessors: the attribute accessed. kInvalidAttr for general methods.
  AttrId attr = kInvalidAttr;
  // General methods: the body; accessors have builtin behavior and no body.
  ExprPtr body;
  // Formal parameter names, parallel to sig.params (used by bodies & printing).
  std::vector<Symbol> param_names;
};

const char* MethodKindName(MethodKind kind);

}  // namespace tyder

#endif  // TYDER_METHODS_METHOD_H_
