// Method signatures: formal parameter types and result type. The paper
// writes a method of an n-ary generic function m as m_k(T₁ᵏ, …, Tₙᵏ).

#ifndef TYDER_METHODS_SIGNATURE_H_
#define TYDER_METHODS_SIGNATURE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "objmodel/type_graph.h"

namespace tyder {

struct Signature {
  std::vector<TypeId> params;
  TypeId result = kInvalidType;

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.params == b.params && a.result == b.result;
  }
};

// "name(T1, T2) -> R"
std::string SignatureToString(const TypeGraph& graph, std::string_view name,
                              const Signature& sig);

}  // namespace tyder

#endif  // TYDER_METHODS_SIGNATURE_H_
