#include "methods/signature.h"

namespace tyder {

std::string SignatureToString(const TypeGraph& graph, std::string_view name,
                              const Signature& sig) {
  std::string out(name);
  out += "(";
  for (size_t i = 0; i < sig.params.size(); ++i) {
    if (i > 0) out += ", ";
    out += graph.TypeName(sig.params[i]);
  }
  out += ")";
  if (sig.result != kInvalidType) {
    out += " -> ";
    out += graph.TypeName(sig.result);
  }
  return out;
}

}  // namespace tyder
