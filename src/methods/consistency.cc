#include "methods/consistency.h"

#include <sstream>

namespace tyder {

namespace {

// True iff some type is a subtype of both `a` and `b`, i.e. a run-time value
// could appear at a position typed `a` in one method and `b` in another.
bool SharesSubtype(const TypeGraph& graph, TypeId a, TypeId b) {
  if (graph.IsSubtype(a, b) || graph.IsSubtype(b, a)) return true;
  for (TypeId u = 0; u < graph.NumTypes(); ++u) {
    if (graph.IsSubtype(u, a) && graph.IsSubtype(u, b)) return true;
  }
  return false;
}

// True iff the two methods can be applicable to a common call.
bool ShareCalls(const TypeGraph& graph, const Signature& a,
                const Signature& b) {
  for (size_t i = 0; i < a.params.size(); ++i) {
    if (!SharesSubtype(graph, a.params[i], b.params[i])) return false;
  }
  return true;
}

// a pointwise-≼ b.
bool Dominates(const TypeGraph& graph, const Signature& a,
               const Signature& b) {
  for (size_t i = 0; i < a.params.size(); ++i) {
    if (!graph.IsSubtype(a.params[i], b.params[i])) return false;
  }
  return true;
}

std::string PairLabel(const Schema& schema, MethodId a, MethodId b) {
  return schema.method(a).label.str() + " / " + schema.method(b).label.str();
}

}  // namespace

std::vector<ConsistencyIssue> CheckMethodConsistency(const Schema& schema) {
  std::vector<ConsistencyIssue> issues;
  const TypeGraph& graph = schema.types();
  for (GfId g = 0; g < schema.NumGenericFunctions(); ++g) {
    const std::vector<MethodId>& methods = schema.gf(g).methods;
    for (size_t i = 0; i < methods.size(); ++i) {
      for (size_t j = i + 1; j < methods.size(); ++j) {
        MethodId m1 = methods[i];
        MethodId m2 = methods[j];
        const Signature& s1 = schema.method(m1).sig;
        const Signature& s2 = schema.method(m2).sig;
        if (!ShareCalls(graph, s1, s2)) continue;
        bool d12 = Dominates(graph, s1, s2);
        bool d21 = Dominates(graph, s2, s1);
        if (d12 && d21) {
          issues.push_back(
              {ConsistencyIssueKind::kAmbiguity, g, m1, m2,
               "methods " + PairLabel(schema, m1, m2) +
                   " have identical formal types; dispatch is resolved only "
                   "by registration order"});
        } else if (!d12 && !d21) {
          issues.push_back(
              {ConsistencyIssueKind::kAmbiguity, g, m1, m2,
               "methods " + PairLabel(schema, m1, m2) +
                   " cross without domination; the dispatched method flips "
                   "with the argument types"});
        }
        // Covariance: whichever direction(s) of overriding exist, the more
        // specific method's result must refine the less specific one's.
        if (d12 && !d21 && !graph.IsSubtype(s1.result, s2.result)) {
          issues.push_back(
              {ConsistencyIssueKind::kResultCovariance, g, m1, m2,
               "method " + schema.method(m1).label.str() +
                   " overrides " + schema.method(m2).label.str() +
                   " but its result type does not refine the overridden "
                   "result"});
        }
        if (d21 && !d12 && !graph.IsSubtype(s2.result, s1.result)) {
          issues.push_back(
              {ConsistencyIssueKind::kResultCovariance, g, m2, m1,
               "method " + schema.method(m2).label.str() +
                   " overrides " + schema.method(m1).label.str() +
                   " but its result type does not refine the overridden "
                   "result"});
        }
      }
    }
  }
  return issues;
}

std::string ConsistencyReport(const Schema& schema,
                              const std::vector<ConsistencyIssue>& issues) {
  std::ostringstream out;
  for (const ConsistencyIssue& issue : issues) {
    out << schema.gf(issue.gf).name.view() << ": " << issue.description
        << "\n";
  }
  return out.str();
}

}  // namespace tyder
