// Static consistency checking of multi-methods, after Agrawal, DeMichiel &
// Lindsay, "Static Type Checking of Multi-Methods" (OOPSLA '91) — the
// paper's ref [2], which it leans on for "it must be determined that the
// methods selected are indeed type-correct and mutually consistent".
//
// Two families of findings over each generic function:
//
//   - kAmbiguity: two methods are applicable to some common call and neither
//     is uniquely more specific under the precedence mechanism at every
//     argument tuple that reaches both — for tyder's left-to-right CPL
//     ordering this reduces to methods with identical formal tuples (ties
//     broken only by registration order, which ref [2] treats as a
//     user-acknowledged hazard) and to formal tuples that cross without
//     dominating (m1 = (A,B), m2 = (B,A) style), where the winner flips with
//     the argument types.
//
//   - kResultCovariance: if m1 can override m2 (m1's formals pointwise ≼
//     m2's and they share calls), the static result type the checker assigns
//     is m2-based for some call sites but m1 executes — sound only if
//     result(m1) ≼ result(m2).

#ifndef TYDER_METHODS_CONSISTENCY_H_
#define TYDER_METHODS_CONSISTENCY_H_

#include <string>
#include <vector>

#include "methods/schema.h"

namespace tyder {

enum class ConsistencyIssueKind {
  kAmbiguity,
  kResultCovariance,
};

struct ConsistencyIssue {
  ConsistencyIssueKind kind;
  GfId gf = kInvalidGf;
  MethodId first = kInvalidMethod;
  MethodId second = kInvalidMethod;
  std::string description;
};

// All findings across the schema, deterministic order (by gf, then method
// pair). An empty result means every generic function is unambiguous under
// the precedence ordering and result-covariant.
std::vector<ConsistencyIssue> CheckMethodConsistency(const Schema& schema);

std::string ConsistencyReport(const Schema& schema,
                              const std::vector<ConsistencyIssue>& issues);

}  // namespace tyder

#endif  // TYDER_METHODS_CONSISTENCY_H_
