#include "methods/accessor_gen.h"

namespace tyder {

namespace {

// Picks `base`, or `base_<TypeName>` when `base` is already a method label.
std::string AccessorLabel(const Schema& schema, const std::string& base,
                          TypeId formal) {
  if (!schema.FindMethod(base).ok()) return base;
  return base + "_" + schema.types().TypeName(formal);
}

}  // namespace

namespace {

Result<MethodId> MakeReader(Schema& schema, AttrId attr,
                            const std::string& base_name, TypeId formal) {
  if (attr >= schema.types().NumAttributes()) {
    return Status::InvalidArgument("attribute id out of range");
  }
  const AttributeDef& def = schema.types().attribute(attr);
  if (formal == kInvalidType) formal = def.owner;
  std::string gf_name = "get_" + base_name;
  TYDER_ASSIGN_OR_RETURN(GfId gf,
                         schema.FindOrDeclareGenericFunction(gf_name, 1));
  Method m;
  m.label = Symbol::Intern(AccessorLabel(schema, gf_name, formal));
  m.gf = gf;
  m.kind = MethodKind::kReader;
  m.sig = Signature{{formal}, def.value_type};
  m.attr = attr;
  m.param_names = {Symbol::Intern("self")};
  return schema.AddMethod(std::move(m));
}

Result<MethodId> MakeMutator(Schema& schema, AttrId attr,
                             const std::string& base_name, TypeId formal) {
  if (attr >= schema.types().NumAttributes()) {
    return Status::InvalidArgument("attribute id out of range");
  }
  const AttributeDef& def = schema.types().attribute(attr);
  if (formal == kInvalidType) formal = def.owner;
  std::string gf_name = "set_" + base_name;
  TYDER_ASSIGN_OR_RETURN(GfId gf,
                         schema.FindOrDeclareGenericFunction(gf_name, 2));
  Method m;
  m.label = Symbol::Intern(AccessorLabel(schema, gf_name, formal));
  m.gf = gf;
  m.kind = MethodKind::kMutator;
  m.sig = Signature{{formal, def.value_type}, schema.builtins().void_type};
  m.attr = attr;
  m.param_names = {Symbol::Intern("self"), Symbol::Intern("value")};
  return schema.AddMethod(std::move(m));
}

}  // namespace

Result<MethodId> GenerateReader(Schema& schema, AttrId attr, TypeId formal) {
  if (attr >= schema.types().NumAttributes()) {
    return Status::InvalidArgument("attribute id out of range");
  }
  return MakeReader(schema, attr, schema.types().attribute(attr).name.str(),
                    formal);
}

Result<MethodId> GenerateMutator(Schema& schema, AttrId attr, TypeId formal) {
  if (attr >= schema.types().NumAttributes()) {
    return Status::InvalidArgument("attribute id out of range");
  }
  return MakeMutator(schema, attr, schema.types().attribute(attr).name.str(),
                     formal);
}

Result<MethodId> GenerateAliasReader(Schema& schema, AttrId attr,
                                     std::string_view alias, TypeId formal) {
  return MakeReader(schema, attr, std::string(alias), formal);
}

Result<MethodId> GenerateAliasMutator(Schema& schema, AttrId attr,
                                      std::string_view alias, TypeId formal) {
  return MakeMutator(schema, attr, std::string(alias), formal);
}

Status GenerateAccessorsForType(Schema& schema, TypeId t, bool with_mutators) {
  // Copy: AddMethod may not mutate the type's attribute list, but be safe
  // against future re-entrancy.
  std::vector<AttrId> attrs = schema.types().type(t).local_attributes();
  for (AttrId a : attrs) {
    TYDER_RETURN_IF_ERROR(GenerateReader(schema, a, t).status());
    if (with_mutators) {
      TYDER_RETURN_IF_ERROR(GenerateMutator(schema, a, t).status());
    }
  }
  return Status::OK();
}

Status GenerateAllAccessors(Schema& schema, bool with_mutators) {
  for (AttrId a = 0; a < schema.types().NumAttributes(); ++a) {
    TYDER_RETURN_IF_ERROR(GenerateReader(schema, a).status());
    if (with_mutators) {
      TYDER_RETURN_IF_ERROR(GenerateMutator(schema, a).status());
    }
  }
  return Status::OK();
}

}  // namespace tyder
