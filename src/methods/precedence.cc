#include "methods/precedence.h"

#include <algorithm>
#include <list>

#include "methods/applicability.h"
#include "objmodel/linearize.h"

namespace tyder {

namespace {

// Rank of `formal` in the CPL of `actual`; CPL size if absent (least
// specific). `actual ≼ formal` guarantees presence for applicable methods.
size_t CplRank(const TypeGraph& graph, TypeId actual, TypeId formal) {
  std::vector<TypeId> cpl = ClassPrecedenceList(graph, actual);
  auto it = std::find(cpl.begin(), cpl.end(), formal);
  return static_cast<size_t>(it - cpl.begin());
}

}  // namespace

bool MoreSpecific(const Schema& schema, MethodId a, MethodId b,
                  const std::vector<TypeId>& arg_types) {
  const Signature& sa = schema.method(a).sig;
  const Signature& sb = schema.method(b).sig;
  for (size_t i = 0; i < arg_types.size(); ++i) {
    if (sa.params[i] == sb.params[i]) continue;
    return CplRank(schema.types(), arg_types[i], sa.params[i]) <
           CplRank(schema.types(), arg_types[i], sb.params[i]);
  }
  return false;
}

std::vector<MethodId> SortBySpecificity(const Schema& schema, GfId gf,
                                        const std::vector<TypeId>& arg_types) {
  std::vector<MethodId> methods = ApplicableMethods(schema, gf, arg_types);
  if (methods.size() <= 1) return methods;
  // Computing each actual's CPL once and comparing formals through dense
  // rank tables makes the comparator O(arity) instead of re-running the
  // linearization per comparison. Identical verdicts to MoreSpecific():
  // every formal of an applicable method appears in the actual's CPL, and
  // absent types keep the "least specific" sentinel rank.
  const TypeGraph& graph = schema.types();
  size_t num_types = graph.NumTypes();
  std::vector<std::vector<uint32_t>> rank(arg_types.size());
  for (size_t i = 0; i < arg_types.size(); ++i) {
    rank[i].assign(num_types, static_cast<uint32_t>(num_types));
    std::vector<TypeId> cpl = ClassPrecedenceList(graph, arg_types[i]);
    for (size_t r = 0; r < cpl.size(); ++r) {
      rank[i][cpl[r]] = static_cast<uint32_t>(r);
    }
  }
  std::stable_sort(methods.begin(), methods.end(),
                   [&](MethodId a, MethodId b) {
                     const Signature& sa = schema.method(a).sig;
                     const Signature& sb = schema.method(b).sig;
                     for (size_t i = 0; i < arg_types.size(); ++i) {
                       if (sa.params[i] == sb.params[i]) continue;
                       return rank[i][sa.params[i]] < rank[i][sb.params[i]];
                     }
                     return false;
                   });
  return methods;
}

Result<MethodId> MostSpecificApplicable(const Schema& schema, GfId gf,
                                        const std::vector<TypeId>& arg_types) {
  std::vector<MethodId> sorted = SortBySpecificity(schema, gf, arg_types);
  if (sorted.empty()) {
    std::string args;
    for (size_t i = 0; i < arg_types.size(); ++i) {
      if (i > 0) args += ", ";
      args += schema.types().TypeName(arg_types[i]);
    }
    return Status::NotFound("no applicable method for " +
                            schema.gf(gf).name.str() + "(" + args + ")");
  }
  return sorted.front();
}

}  // namespace tyder
