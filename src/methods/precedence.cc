#include "methods/precedence.h"

#include <algorithm>
#include <list>

#include "methods/applicability.h"
#include "objmodel/linearize.h"

namespace tyder {

namespace {

// Rank of `formal` in the CPL of `actual`; CPL size if absent (least
// specific). `actual ≼ formal` guarantees presence for applicable methods.
size_t CplRank(const TypeGraph& graph, TypeId actual, TypeId formal) {
  std::vector<TypeId> cpl = ClassPrecedenceList(graph, actual);
  auto it = std::find(cpl.begin(), cpl.end(), formal);
  return static_cast<size_t>(it - cpl.begin());
}

}  // namespace

bool MoreSpecific(const Schema& schema, MethodId a, MethodId b,
                  const std::vector<TypeId>& arg_types) {
  const Signature& sa = schema.method(a).sig;
  const Signature& sb = schema.method(b).sig;
  for (size_t i = 0; i < arg_types.size(); ++i) {
    if (sa.params[i] == sb.params[i]) continue;
    return CplRank(schema.types(), arg_types[i], sa.params[i]) <
           CplRank(schema.types(), arg_types[i], sb.params[i]);
  }
  return false;
}

std::vector<MethodId> SortBySpecificity(const Schema& schema, GfId gf,
                                        const std::vector<TypeId>& arg_types) {
  std::vector<MethodId> methods = ApplicableMethods(schema, gf, arg_types);
  std::stable_sort(methods.begin(), methods.end(),
                   [&](MethodId a, MethodId b) {
                     return MoreSpecific(schema, a, b, arg_types);
                   });
  return methods;
}

Result<MethodId> MostSpecificApplicable(const Schema& schema, GfId gf,
                                        const std::vector<TypeId>& arg_types) {
  std::vector<MethodId> sorted = SortBySpecificity(schema, gf, arg_types);
  if (sorted.empty()) {
    std::string args;
    for (size_t i = 0; i < arg_types.size(); ++i) {
      if (i > 0) args += ", ";
      args += schema.types().TypeName(arg_types[i]);
    }
    return Status::NotFound("no applicable method for " +
                            schema.gf(gf).name.str() + "(" + args + ")");
  }
  return sorted.front();
}

}  // namespace tyder
