// Accessor generation. The paper assumes "there exist accessor methods
// corresponding to each attribute: e.g. get_SSN, get_name" — these helpers
// create them. An accessor for attribute `a` may be declared on any type at
// which `a` is available (Example 1 declares get_h2 on B while h2 lives at H).

#ifndef TYDER_METHODS_ACCESSOR_GEN_H_
#define TYDER_METHODS_ACCESSOR_GEN_H_

#include <string_view>

#include "common/result.h"
#include "methods/schema.h"

namespace tyder {

// Creates the generic function `get_<attr>` (if absent) and a reader method
// with formal type `formal` (defaults to the attribute's owner). The method
// label equals the generic-function name unless that label is taken, in which
// case "_<FormalType>" is appended.
Result<MethodId> GenerateReader(Schema& schema, AttrId attr,
                                TypeId formal = kInvalidType);

// Same for the mutator `set_<attr>`: (formal, value_type) -> Void.
Result<MethodId> GenerateMutator(Schema& schema, AttrId attr,
                                 TypeId formal = kInvalidType);

// Alias accessors: a reader `get_<alias>` / mutator `set_<alias>` over the
// *same* attribute, under a different public name (rename views, ρ).
Result<MethodId> GenerateAliasReader(Schema& schema, AttrId attr,
                                     std::string_view alias, TypeId formal);
Result<MethodId> GenerateAliasMutator(Schema& schema, AttrId attr,
                                      std::string_view alias, TypeId formal);

// Readers (and optionally mutators) for every local attribute of `t`.
Status GenerateAccessorsForType(Schema& schema, TypeId t,
                                bool with_mutators = true);

// Readers (and optionally mutators) for every attribute in the schema, each
// on its owner type.
Status GenerateAllAccessors(Schema& schema, bool with_mutators = true);

}  // namespace tyder

#endif  // TYDER_METHODS_ACCESSOR_GEN_H_
