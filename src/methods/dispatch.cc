#include "methods/dispatch.h"

#include "methods/precedence.h"

namespace tyder {

Result<MethodId> Dispatch(const Schema& schema, GfId gf,
                          const std::vector<TypeId>& arg_types) {
  if (static_cast<int>(arg_types.size()) != schema.gf(gf).arity) {
    return Status::InvalidArgument("call to '" + schema.gf(gf).name.str() +
                                   "' with wrong argument count");
  }
  return MostSpecificApplicable(schema, gf, arg_types);
}

Result<MethodId> DispatchByName(const Schema& schema, std::string_view gf_name,
                                const std::vector<TypeId>& arg_types) {
  TYDER_ASSIGN_OR_RETURN(GfId gf, schema.FindGenericFunction(gf_name));
  return Dispatch(schema, gf, arg_types);
}

std::vector<MethodId> DispatchOrder(const Schema& schema, GfId gf,
                                    const std::vector<TypeId>& arg_types) {
  return SortBySpecificity(schema, gf, arg_types);
}

}  // namespace tyder
