#include "methods/dispatch.h"

#include <algorithm>
#include <string>

#include "methods/dispatch_table.h"
#include "methods/precedence.h"
#include "obs/obs.h"

namespace tyder {

namespace {

Result<MethodId> NoApplicableMethod(const Schema& schema, GfId gf,
                                    const std::vector<TypeId>& arg_types) {
  std::string args;
  for (size_t i = 0; i < arg_types.size(); ++i) {
    if (i > 0) args += ", ";
    args += schema.types().TypeName(arg_types[i]);
  }
  return Status::NotFound("no applicable method for " +
                          schema.gf(gf).name.str() + "(" + args + ")");
}

// The specificity-sorted applicable set for the call, through the call-site
// cache: a hit skips applicability *and* sorting; a miss computes both and
// installs the result. `need_complete` demands the untruncated order
// (DispatchOrder); Dispatch() only needs the front.
std::vector<MethodId> SortedApplicable(const Schema& schema, GfId gf,
                                       const std::vector<TypeId>& arg_types,
                                       bool need_complete) {
  std::shared_ptr<DispatchCache> cache = DispatchCache::ForSchema(schema);
  DispatchCache::CachedOrder cached;
  if (cache->Lookup(gf, arg_types, &cached) &&
      (!need_complete || cached.Complete())) {
    return std::vector<MethodId>(
        cached.order.begin(),
        cached.order.begin() +
            std::min<size_t>(cached.full_len, DispatchCache::kMaxOrder));
  }
  std::vector<MethodId> sorted = SortBySpecificity(schema, gf, arg_types);
  cache->Insert(gf, arg_types, sorted);
  return sorted;
}

}  // namespace

Result<MethodId> Dispatch(const Schema& schema, GfId gf,
                          const std::vector<TypeId>& arg_types) {
  TYDER_COUNT("dispatch.calls");
  if (static_cast<int>(arg_types.size()) != schema.gf(gf).arity) {
    return Status::InvalidArgument("call to '" + schema.gf(gf).name.str() +
                                   "' with wrong argument count");
  }
  std::vector<MethodId> sorted =
      SortedApplicable(schema, gf, arg_types, /*need_complete=*/false);
  if (sorted.empty()) {
    TYDER_COUNT("dispatch.no_applicable_method");
    return NoApplicableMethod(schema, gf, arg_types);
  }
  return sorted.front();
}

Result<MethodId> DispatchByName(const Schema& schema, std::string_view gf_name,
                                const std::vector<TypeId>& arg_types) {
  TYDER_ASSIGN_OR_RETURN(GfId gf, schema.FindGenericFunction(gf_name));
  return Dispatch(schema, gf, arg_types);
}

std::vector<MethodId> DispatchOrder(const Schema& schema, GfId gf,
                                    const std::vector<TypeId>& arg_types) {
  TYDER_COUNT("dispatch.order_queries");
  return SortedApplicable(schema, gf, arg_types, /*need_complete=*/true);
}

}  // namespace tyder
