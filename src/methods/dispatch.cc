#include "methods/dispatch.h"

#include "methods/precedence.h"
#include "obs/obs.h"

namespace tyder {

Result<MethodId> Dispatch(const Schema& schema, GfId gf,
                          const std::vector<TypeId>& arg_types) {
  TYDER_COUNT("dispatch.calls");
  if (static_cast<int>(arg_types.size()) != schema.gf(gf).arity) {
    return Status::InvalidArgument("call to '" + schema.gf(gf).name.str() +
                                   "' with wrong argument count");
  }
  Result<MethodId> selected = MostSpecificApplicable(schema, gf, arg_types);
  if (!selected.ok()) TYDER_COUNT("dispatch.no_applicable_method");
  return selected;
}

Result<MethodId> DispatchByName(const Schema& schema, std::string_view gf_name,
                                const std::vector<TypeId>& arg_types) {
  TYDER_ASSIGN_OR_RETURN(GfId gf, schema.FindGenericFunction(gf_name));
  return Dispatch(schema, gf, arg_types);
}

std::vector<MethodId> DispatchOrder(const Schema& schema, GfId gf,
                                    const std::vector<TypeId>& arg_types) {
  TYDER_COUNT("dispatch.order_queries");
  return SortBySpecificity(schema, gf, arg_types);
}

}  // namespace tyder
