#include "methods/method.h"

namespace tyder {

const char* MethodKindName(MethodKind kind) {
  switch (kind) {
    case MethodKind::kGeneral: return "general";
    case MethodKind::kReader: return "reader";
    case MethodKind::kMutator: return "mutator";
  }
  return "?";
}

}  // namespace tyder
