// Schema: the complete unit the derivation algorithms operate on — a type
// hierarchy plus the generic functions and methods defined over it. Schemas
// are value types: copying one snapshots it (method bodies are immutable and
// shared), which is how the behavior-preservation verifier compares the
// hierarchy before and after a projection.

#ifndef TYDER_METHODS_SCHEMA_H_
#define TYDER_METHODS_SCHEMA_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/analysis_cache.h"
#include "common/result.h"
#include "common/status.h"
#include "methods/generic_function.h"
#include "methods/method.h"
#include "objmodel/builtin_types.h"
#include "objmodel/type_graph.h"

namespace tyder {

class Schema {
 public:
  // Builds an empty schema with the builtin types installed. A
  // default-constructed Schema has no builtins and exists only as a
  // moved-into target; always start from Create().
  Schema() = default;
  static Result<Schema> Create();

  TypeGraph& types() { return types_; }
  const TypeGraph& types() const { return types_; }
  const BuiltinTypes& builtins() const { return builtins_; }

  // --- generic functions ---------------------------------------------------

  // Declares generic function `name` with the given arity; fails on duplicate
  // name or non-positive arity.
  Result<GfId> DeclareGenericFunction(std::string_view name, int arity);

  // Finds `name`, declaring it with `arity` if absent; fails if it exists
  // with a different arity.
  Result<GfId> FindOrDeclareGenericFunction(std::string_view name, int arity);

  Result<GfId> FindGenericFunction(std::string_view name) const;

  size_t NumGenericFunctions() const { return gfs_.size(); }
  const GenericFunction& gf(GfId id) const { return gfs_[id]; }

  // --- methods ---------------------------------------------------------------

  // Registers `m` under its generic function. Validates: gf exists, arity
  // matches, label unique, accessor shape (reader (T)->V, mutator (T,V)->Void,
  // attribute available at the formal type), duplicate signatures rejected.
  Result<MethodId> AddMethod(Method m);

  size_t NumMethods() const { return methods_.size(); }
  const Method& method(MethodId id) const { return methods_[id]; }
  Result<MethodId> FindMethod(std::string_view label) const;

  // FactorMethods rewrites signatures/bodies in place; these are the only
  // mutators of a registered method.
  void SetMethodSignature(MethodId id, Signature sig) {
    ++version_;
    methods_[id].sig = std::move(sig);
  }
  void SetMethodBody(MethodId id, ExprPtr body) {
    ++version_;
    methods_[id].body = std::move(body);
  }

  // Registered reader/mutator for an attribute (kInvalidMethod if none).
  MethodId ReaderOf(AttrId attr) const;
  MethodId MutatorOf(AttrId attr) const;

  // All methods of every generic function, in registration order.
  std::vector<MethodId> AllMethods() const;

  // Cross-checks the whole schema: type graph validity plus method/gf index
  // consistency and accessor well-formedness.
  Status Validate() const;

  // --- derived-structure caching --------------------------------------------

  // Monotone mutation counter covering both the method/gf tables (local
  // bumps) and the type hierarchy (TypeGraph::version). Every derived
  // structure — dispatch tables, the call-site dispatch cache, the
  // relevant-call cache — keys its validity on this value, so any schema
  // mutation invalidates them all on the next read.
  uint64_t version() const { return version_ + types_.version(); }

  // Version-keyed slots for lazily built analysis structures. The slots are
  // owned here so they share the schema's lifetime and copy semantics
  // (copies and rollback targets start cold — see common/analysis_cache.h);
  // their concrete content types live with the code that builds them
  // (methods/dispatch_table.cc, mir/call_graph.cc).
  AnalysisCacheSlot& dispatch_tables_slot() const {
    return dispatch_tables_slot_;
  }
  AnalysisCacheSlot& dispatch_cache_slot() const {
    return dispatch_cache_slot_;
  }
  AnalysisCacheSlot& relevant_calls_slot() const {
    return relevant_calls_slot_;
  }

 private:

  TypeGraph types_;
  BuiltinTypes builtins_;
  std::vector<GenericFunction> gfs_;
  std::vector<Method> methods_;
  std::unordered_map<Symbol, GfId, SymbolHash> gf_index_;
  std::unordered_map<Symbol, MethodId, SymbolHash> method_index_;
  std::unordered_map<AttrId, MethodId> readers_;
  std::unordered_map<AttrId, MethodId> mutators_;

  uint64_t version_ = 0;
  mutable AnalysisCacheSlot dispatch_tables_slot_;
  mutable AnalysisCacheSlot dispatch_cache_slot_;
  mutable AnalysisCacheSlot relevant_calls_slot_;
};

}  // namespace tyder

#endif  // TYDER_METHODS_SCHEMA_H_
