#include "methods/schema.h"

namespace tyder {

Result<Schema> Schema::Create() {
  Schema schema;
  TYDER_ASSIGN_OR_RETURN(schema.builtins_, InstallBuiltins(schema.types_));
  return schema;
}

Result<GfId> Schema::DeclareGenericFunction(std::string_view name, int arity) {
  if (arity <= 0) {
    return Status::InvalidArgument("generic function '" + std::string(name) +
                                   "' must have positive arity");
  }
  Symbol sym = Symbol::Intern(name);
  if (gf_index_.count(sym) > 0) {
    return Status::AlreadyExists("generic function '" + std::string(name) +
                                 "' already declared");
  }
  GfId id = static_cast<GfId>(gfs_.size());
  gfs_.push_back(GenericFunction{sym, arity, {}});
  gf_index_.emplace(sym, id);
  ++version_;
  return id;
}

Result<GfId> Schema::FindOrDeclareGenericFunction(std::string_view name,
                                                  int arity) {
  Symbol sym = Symbol::Intern(name);
  auto it = gf_index_.find(sym);
  if (it == gf_index_.end()) return DeclareGenericFunction(name, arity);
  if (gfs_[it->second].arity != arity) {
    return Status::InvalidArgument(
        "generic function '" + std::string(name) + "' has arity " +
        std::to_string(gfs_[it->second].arity) + ", not " +
        std::to_string(arity));
  }
  return it->second;
}

Result<GfId> Schema::FindGenericFunction(std::string_view name) const {
  auto it = gf_index_.find(Symbol::Intern(name));
  if (it == gf_index_.end()) {
    return Status::NotFound("no generic function named '" + std::string(name) +
                            "'");
  }
  return it->second;
}

Result<MethodId> Schema::AddMethod(Method m) {
  if (m.gf >= gfs_.size()) {
    return Status::InvalidArgument("method references unknown generic function");
  }
  GenericFunction& gf = gfs_[m.gf];
  if (static_cast<int>(m.sig.params.size()) != gf.arity) {
    return Status::InvalidArgument(
        "method '" + m.label.str() + "' has " +
        std::to_string(m.sig.params.size()) + " formals but '" +
        gf.name.str() + "' has arity " + std::to_string(gf.arity));
  }
  if (m.label.empty() || method_index_.count(m.label) > 0) {
    return Status::AlreadyExists("method label '" + m.label.str() +
                                 "' missing or already in use");
  }
  for (TypeId t : m.sig.params) {
    if (t >= types_.NumTypes()) {
      return Status::InvalidArgument("method '" + m.label.str() +
                                     "' references out-of-range formal type");
    }
  }
  if (!m.param_names.empty() &&
      m.param_names.size() != m.sig.params.size()) {
    return Status::InvalidArgument("method '" + m.label.str() +
                                   "' parameter-name count mismatch");
  }
  // Methods with identical formals are permitted (the paper's u1(A)/u2(A));
  // dispatch breaks the tie by registration order, the model's method
  // precedence mechanism.
  if (m.kind == MethodKind::kReader || m.kind == MethodKind::kMutator) {
    if (m.attr == kInvalidAttr || m.attr >= types_.NumAttributes()) {
      return Status::InvalidArgument("accessor '" + m.label.str() +
                                     "' has no attribute");
    }
    const AttributeDef& attr = types_.attribute(m.attr);
    size_t want_arity = m.kind == MethodKind::kReader ? 1 : 2;
    if (m.sig.params.size() != want_arity) {
      return Status::InvalidArgument("accessor '" + m.label.str() +
                                     "' has wrong arity");
    }
    if (!types_.AttributeAvailableAt(m.sig.params[0], m.attr)) {
      return Status::InvalidArgument(
          "accessor '" + m.label.str() + "': attribute '" + attr.name.str() +
          "' is not available at '" + types_.TypeName(m.sig.params[0]) + "'");
    }
    if (m.kind == MethodKind::kReader && m.sig.result != attr.value_type) {
      return Status::InvalidArgument("reader '" + m.label.str() +
                                     "' result type must match attribute");
    }
    if (m.kind == MethodKind::kMutator &&
        (m.sig.params[1] != attr.value_type ||
         m.sig.result != builtins_.void_type)) {
      return Status::InvalidArgument("mutator '" + m.label.str() +
                                     "' must be (T, V) -> Void");
    }
    if (m.body != nullptr) {
      return Status::InvalidArgument("accessor '" + m.label.str() +
                                     "' must not have a body");
    }
  }
  MethodId id = static_cast<MethodId>(methods_.size());
  if (m.kind == MethodKind::kReader) readers_.emplace(m.attr, id);
  if (m.kind == MethodKind::kMutator) mutators_.emplace(m.attr, id);
  gf.methods.push_back(id);
  method_index_.emplace(m.label, id);
  methods_.push_back(std::move(m));
  ++version_;
  return id;
}

Result<MethodId> Schema::FindMethod(std::string_view label) const {
  auto it = method_index_.find(Symbol::Intern(label));
  if (it == method_index_.end()) {
    return Status::NotFound("no method labeled '" + std::string(label) + "'");
  }
  return it->second;
}

MethodId Schema::ReaderOf(AttrId attr) const {
  auto it = readers_.find(attr);
  return it == readers_.end() ? kInvalidMethod : it->second;
}

MethodId Schema::MutatorOf(AttrId attr) const {
  auto it = mutators_.find(attr);
  return it == mutators_.end() ? kInvalidMethod : it->second;
}

std::vector<MethodId> Schema::AllMethods() const {
  std::vector<MethodId> out;
  out.reserve(methods_.size());
  for (MethodId id = 0; id < methods_.size(); ++id) out.push_back(id);
  return out;
}

Status Schema::Validate() const {
  TYDER_RETURN_IF_ERROR(types_.Validate());
  for (GfId g = 0; g < gfs_.size(); ++g) {
    for (MethodId m : gfs_[g].methods) {
      if (m >= methods_.size() || methods_[m].gf != g) {
        return Status::Internal("generic function '" + gfs_[g].name.str() +
                                "' lists a method it does not own");
      }
    }
  }
  for (MethodId id = 0; id < methods_.size(); ++id) {
    const Method& m = methods_[id];
    if (m.gf >= gfs_.size()) {
      return Status::Internal("method '" + m.label.str() + "' has bad gf id");
    }
    if (static_cast<int>(m.sig.params.size()) != gfs_[m.gf].arity) {
      return Status::Internal("method '" + m.label.str() +
                              "' arity drifted from its generic function");
    }
    if (m.kind != MethodKind::kGeneral) {
      if (m.attr >= types_.NumAttributes()) {
        return Status::Internal("accessor '" + m.label.str() +
                                "' has bad attribute id");
      }
      if (!types_.AttributeAvailableAt(m.sig.params[0], m.attr)) {
        return Status::Internal(
            "accessor '" + m.label.str() +
            "': attribute no longer available at its formal type");
      }
    }
  }
  return Status::OK();
}

}  // namespace tyder
