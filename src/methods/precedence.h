// Method precedence (paper Section 4 and ref [2], "Static Type Checking of
// Multi-Methods"). Two pieces:
//
//   1. Class precedence lists: a total order on the supertypes of each type,
//      derived from the local precedence order on direct supertypes via C3
//      linearization (the CLOS-family algorithm). When C3's merge fails —
//      legal in our model, since the paper only requires *some* deterministic
//      ordering mechanism — we fall back to the precedence-respecting BFS
//      order of the supertype closure.
//
//   2. Method specificity: methods applicable to a call are compared
//      left-to-right by argument position; at the first differing formal,
//      the formal that appears earlier in the CPL of the *actual* argument
//      type is more specific.

#ifndef TYDER_METHODS_PRECEDENCE_H_
#define TYDER_METHODS_PRECEDENCE_H_

#include <vector>

#include "common/result.h"
#include "methods/schema.h"
#include "objmodel/linearize.h"

namespace tyder {

// True iff method `a` is more specific than `b` for a call with the given
// actual argument types. Both must be applicable to the call. Ties (identical
// formals) return false both ways.
bool MoreSpecific(const Schema& schema, MethodId a, MethodId b,
                  const std::vector<TypeId>& arg_types);

// Applicable methods of `gf` for the call, most specific first.
std::vector<MethodId> SortBySpecificity(const Schema& schema, GfId gf,
                                        const std::vector<TypeId>& arg_types);

// The most specific applicable method; NotFound if no method applies.
Result<MethodId> MostSpecificApplicable(const Schema& schema, GfId gf,
                                        const std::vector<TypeId>& arg_types);

}  // namespace tyder

#endif  // TYDER_METHODS_PRECEDENCE_H_
