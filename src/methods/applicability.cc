#include "methods/applicability.h"

#include "methods/dispatch_table.h"

namespace tyder {

bool ApplicableToType(const Schema& schema, MethodId m, TypeId t) {
  for (TypeId formal : schema.method(m).sig.params) {
    if (schema.types().IsSubtype(t, formal)) return true;
  }
  return false;
}

bool ApplicableToCall(const Schema& schema, MethodId m,
                      const std::vector<TypeId>& arg_types) {
  const Signature& sig = schema.method(m).sig;
  if (sig.params.size() != arg_types.size()) return false;
  for (size_t i = 0; i < arg_types.size(); ++i) {
    if (!schema.types().IsSubtype(arg_types[i], sig.params[i])) return false;
  }
  return true;
}

std::vector<MethodId> ApplicableMethods(const Schema& schema, GfId gf,
                                        const std::vector<TypeId>& arg_types) {
  // One mask-AND over the precomputed per-gf applicability tables; same
  // result and order as scanning schema.gf(gf).methods with
  // ApplicableToCall (methods/dispatch_table.h).
  return ApplicableMethodsFromTables(schema, gf, arg_types);
}

std::vector<MethodId> MethodsApplicableToType(const Schema& schema, TypeId t) {
  std::vector<MethodId> out;
  for (MethodId m = 0; m < schema.NumMethods(); ++m) {
    if (ApplicableToType(schema, m, t)) out.push_back(m);
  }
  return out;
}

}  // namespace tyder
