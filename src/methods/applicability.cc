#include "methods/applicability.h"

namespace tyder {

bool ApplicableToType(const Schema& schema, MethodId m, TypeId t) {
  for (TypeId formal : schema.method(m).sig.params) {
    if (schema.types().IsSubtype(t, formal)) return true;
  }
  return false;
}

bool ApplicableToCall(const Schema& schema, MethodId m,
                      const std::vector<TypeId>& arg_types) {
  const Signature& sig = schema.method(m).sig;
  if (sig.params.size() != arg_types.size()) return false;
  for (size_t i = 0; i < arg_types.size(); ++i) {
    if (!schema.types().IsSubtype(arg_types[i], sig.params[i])) return false;
  }
  return true;
}

std::vector<MethodId> ApplicableMethods(const Schema& schema, GfId gf,
                                        const std::vector<TypeId>& arg_types) {
  std::vector<MethodId> out;
  for (MethodId m : schema.gf(gf).methods) {
    if (ApplicableToCall(schema, m, arg_types)) out.push_back(m);
  }
  return out;
}

std::vector<MethodId> MethodsApplicableToType(const Schema& schema, TypeId t) {
  std::vector<MethodId> out;
  for (MethodId m = 0; m < schema.NumMethods(); ++m) {
    if (ApplicableToType(schema, m, t)) out.push_back(m);
  }
  return out;
}

}  // namespace tyder
