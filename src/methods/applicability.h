// Method applicability (paper Section 4):
//   - m_k(T₁ᵏ…Tₙᵏ) is applicable to a *type* T iff some i has T ≼ Tᵢᵏ.
//   - m_k is applicable to a *call* m(T¹…Tⁿ) iff ∀i Tⁱ ≼ Tᵢᵏ.
// Subtype polymorphism means several methods can be applicable to one call;
// methods/precedence.h orders them.

#ifndef TYDER_METHODS_APPLICABILITY_H_
#define TYDER_METHODS_APPLICABILITY_H_

#include <vector>

#include "methods/schema.h"

namespace tyder {

bool ApplicableToType(const Schema& schema, MethodId m, TypeId t);

bool ApplicableToCall(const Schema& schema, MethodId m,
                      const std::vector<TypeId>& arg_types);

// Methods of `gf` applicable to the call, in registration order.
std::vector<MethodId> ApplicableMethods(const Schema& schema, GfId gf,
                                        const std::vector<TypeId>& arg_types);

// Methods (across all generic functions) applicable to type `t` — the input
// set of the IsApplicable algorithm (Section 4.1).
std::vector<MethodId> MethodsApplicableToType(const Schema& schema, TypeId t);

}  // namespace tyder

#endif  // TYDER_METHODS_APPLICABILITY_H_
