// Precomputed dispatch structures (the hot-path engine over methods/):
//
//   1. GfDispatchData — per-generic-function applicability masks: for every
//      argument position and every type T, a packed bitset over the gf's
//      methods (registration order) with bit j set iff T ≼ formal_j at that
//      position. A call's applicable-method set is the AND of one mask per
//      position — O(positions × words) instead of O(methods × positions)
//      subtype tests. Built lazily per gf against the schema version and
//      shared by concurrent readers.
//
//   2. DispatchCache — a fixed-size, direct-mapped call-site cache in the
//      style of polymorphic inline caches: (gf, actual argument type tuple)
//      → the specificity-sorted applicable prefix. Dispatch() and
//      DispatchOrder() consult it before computing anything; a schema
//      mutation bumps the version, which retires the whole cache (the slot
//      machinery in common/analysis_cache.h). Hit/miss counts are exported
//      as `dispatch.cache_hit` / `dispatch.cache_miss`.
//
// Both structures hang off Schema's analysis-cache slots, so schema copies
// and transaction rollbacks start cold and nothing here can leak stale
// answers across a mutation.

#ifndef TYDER_METHODS_DISPATCH_TABLE_H_
#define TYDER_METHODS_DISPATCH_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "methods/schema.h"

namespace tyder {

// Applicability masks for one generic function. Immutable once built.
struct GfDispatchData {
  int arity = 0;
  size_t num_types = 0;
  size_t words = 0;  // words per mask (covers the gf's method count)
  std::vector<MethodId> methods;  // registration order; bit j ↔ methods[j]
  // Laid out [position][type][word]; Mask(i, t) is the per-position row.
  std::vector<uint64_t> masks;

  const uint64_t* Mask(int pos, TypeId t) const {
    return masks.data() + (static_cast<size_t>(pos) * num_types + t) * words;
  }
};

// The lazily filled per-gf table set for one schema version. Readers take
// the shared lock; a builder publishes a gf's data under the exclusive
// lock. A gf's masks cost O(types × arity) subtype tests to build, so they
// are only built once the gf has been queried kBuildThreshold times at this
// schema version — one-shot workloads (a single derivation over a fresh
// schema, the behavior-preservation verifier's sweep) keep the direct
// per-method scan, repeated dispatch gets the tables.
class DispatchTables {
 public:
  static constexpr uint32_t kBuildThreshold = 4;

  // Gfs with at most this many methods never get tables: the direct scan is
  // a handful of O(1) subtype tests, cheaper than even a warm table lookup
  // (slot fetch + shared lock + refcounts). Accessor gfs — one reader per
  // attribute, the bulk of any schema here — all land in this bucket.
  static constexpr size_t kDirectScanMax = 2;

  // The table set for `schema` at its current version.
  static std::shared_ptr<DispatchTables> ForSchema(const Schema& schema);

  // The masks for `gf` if already built, else nullptr.
  std::shared_ptr<const GfDispatchData> TryGet(GfId gf) const;

  // Records one applicability query for `gf`; true once the gf is hot
  // enough that the caller should Build() its masks.
  bool NoteUse(GfId gf);

  // Builds and publishes the masks for `gf` (idempotent under races).
  // `schema` must be the schema this table set was created for.
  std::shared_ptr<const GfDispatchData> Build(const Schema& schema, GfId gf);

 private:
  mutable std::shared_mutex mu_;
  std::vector<std::shared_ptr<const GfDispatchData>> per_gf_;
  std::unique_ptr<std::atomic<uint32_t>[]> uses_;
};

// Fast-path ApplicableMethods: mask-AND over the precomputed tables once a
// gf runs hot (see DispatchTables::kBuildThreshold), a direct per-method
// scan before that and always for tiny gfs (kDirectScanMax) — exact same
// result (and order) as scanning schema.gf(gf).methods with
// ApplicableToCall either way.
std::vector<MethodId> ApplicableMethodsFromTables(
    const Schema& schema, GfId gf, const std::vector<TypeId>& arg_types);

// Direct-mapped call-site cache. Covers calls with arity ≤ kMaxArity; wider
// calls bypass it (no schema in the repo exceeds arity 2, but correctness
// does not depend on the bound).
class DispatchCache {
 public:
  static constexpr size_t kLines = 512;  // power of two
  static constexpr size_t kMaxArity = 4;
  static constexpr size_t kMaxOrder = 8;

  struct CachedOrder {
    // Specificity-sorted applicable methods, truncated to kMaxOrder.
    std::array<MethodId, kMaxOrder> order;
    uint16_t full_len = 0;  // true applicable count (may exceed kMaxOrder)
    bool Complete() const { return full_len <= kMaxOrder; }
  };

  // The cache for `schema` at its current version (built empty on first use
  // or after a mutation).
  static std::shared_ptr<DispatchCache> ForSchema(const Schema& schema);

  // True on hit; fills `out`. Counts dispatch.cache_hit / _miss.
  bool Lookup(GfId gf, const std::vector<TypeId>& arg_types,
              CachedOrder* out) const;

  // Installs the sorted applicable set for the call (silently ignored for
  // calls wider than kMaxArity).
  void Insert(GfId gf, const std::vector<TypeId>& arg_types,
              const std::vector<MethodId>& sorted_applicable);

 private:
  struct Line {
    bool valid = false;
    GfId gf = kInvalidGf;
    uint8_t nargs = 0;
    std::array<TypeId, kMaxArity> args{};
    CachedOrder cached;
  };

  static size_t IndexOf(GfId gf, const std::vector<TypeId>& arg_types);

  mutable std::mutex mu_;
  std::array<Line, kLines> lines_{};
};

}  // namespace tyder

#endif  // TYDER_METHODS_DISPATCH_TABLE_H_
