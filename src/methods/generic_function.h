// GenericFunction: a named operation with fixed arity and a set of methods
// that implement it for particular argument types (paper Section 2). Run-time
// dispatch picks the most specific applicable method for the actual argument
// types (multi-method dispatch, as in CommonLoops/CLOS).

#ifndef TYDER_METHODS_GENERIC_FUNCTION_H_
#define TYDER_METHODS_GENERIC_FUNCTION_H_

#include <vector>

#include "common/ids.h"
#include "common/symbol.h"

namespace tyder {

struct GenericFunction {
  Symbol name;
  int arity = 0;
  std::vector<MethodId> methods;  // in registration order
};

}  // namespace tyder

#endif  // TYDER_METHODS_GENERIC_FUNCTION_H_
