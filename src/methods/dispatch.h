// Run-time method selection: given a generic-function call with actual
// argument types, pick the most specific applicable method (multi-method
// dispatch, paper Section 2). Thin wrapper over methods/precedence.h that
// also exposes the full dispatch order, which the interpreter and the
// behavior-preservation verifier both use.

#ifndef TYDER_METHODS_DISPATCH_H_
#define TYDER_METHODS_DISPATCH_H_

#include <vector>

#include "common/result.h"
#include "methods/schema.h"

namespace tyder {

// The method a call m(arg_types...) dispatches to.
Result<MethodId> Dispatch(const Schema& schema, GfId gf,
                          const std::vector<TypeId>& arg_types);

// Convenience: dispatch by generic-function name.
Result<MethodId> DispatchByName(const Schema& schema, std::string_view gf_name,
                                const std::vector<TypeId>& arg_types);

// Full dispatch order (most specific first) — what call-next-method would
// walk in a CLOS-style system.
std::vector<MethodId> DispatchOrder(const Schema& schema, GfId gf,
                                    const std::vector<TypeId>& arg_types);

}  // namespace tyder

#endif  // TYDER_METHODS_DISPATCH_H_
