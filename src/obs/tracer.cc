#include "obs/tracer.h"

namespace tyder::obs {

namespace {
thread_local Tracer* g_current_tracer = nullptr;
}  // namespace

void Tracer::BeginSpan(std::string name) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kBegin;
  e.name = std::move(name);
  e.depth = depth();
  e.ts_ns = Now();
  open_.push_back(events_.size());
  events_.push_back(std::move(e));
}

void Tracer::EndSpan() {
  if (open_.empty()) return;
  size_t begin_index = open_.back();
  open_.pop_back();
  TraceEvent e;
  e.kind = TraceEvent::Kind::kEnd;
  e.name = events_[begin_index].name;
  e.depth = depth();
  e.ts_ns = Now();
  e.dur_ns = e.ts_ns - events_[begin_index].ts_ns;
  events_.push_back(std::move(e));
}

void Tracer::Instant(std::string message) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kInstant;
  e.name = std::move(message);
  e.depth = depth();
  e.ts_ns = Now();
  events_.push_back(std::move(e));
}

void Tracer::SpanAttr(std::string_view key, std::string value) {
  if (open_.empty()) return;
  events_[open_.back()].attrs.emplace_back(std::string(key), std::move(value));
}

Tracer* CurrentTracer() { return g_current_tracer; }

ScopedTracer::ScopedTracer(Tracer* tracer) : prev_(g_current_tracer) {
  g_current_tracer = tracer;
}

ScopedTracer::~ScopedTracer() { g_current_tracer = prev_; }

void Emit(std::string message) {
  if (g_current_tracer != nullptr) g_current_tracer->Instant(std::move(message));
}

void Narrate(std::vector<std::string>* sink, std::string line) {
  if (g_current_tracer != nullptr) g_current_tracer->Instant(line);
  if (sink != nullptr) sink->push_back(std::move(line));
}

}  // namespace tyder::obs
