#include "obs/snapshotter.h"

#if TYDER_OBS_ENABLED

#include <chrono>
#include <sstream>

#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace tyder::obs {

StatsSnapshotter::StatsSnapshotter(SnapshotterOptions options)
    : options_(std::move(options)) {
  if (options_.period_ms < 1) options_.period_ms = 1;
}

StatsSnapshotter::~StatsSnapshotter() { Stop(); }

bool StatsSnapshotter::Start() {
  if (thread_.joinable()) return false;
  out_.open(options_.path, std::ios::app);
  if (!out_) return false;
  stop_requested_ = false;
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void StatsSnapshotter::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  EmitLine();  // final snapshot so short runs always produce >= 1 line
  out_.close();
}

void StatsSnapshotter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    // Emit first, then sleep: a series always opens with a t~0 snapshot.
    lock.unlock();
    EmitLine();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(options_.period_ms),
                 [this] { return stop_requested_; });
  }
}

void StatsSnapshotter::EmitLine() {
  out_ << SnapshotLine(seq_++) << "\n";
  out_.flush();
  lines_written_.fetch_add(1, std::memory_order_release);
}

std::string StatsSnapshotter::SnapshotLine(uint64_t seq) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  std::ostringstream out;
  int64_t ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  out << "{\"schema\":\"tyder-stats-v1\",\"ts_ms\":" << ts_ms
      << ",\"seq\":" << seq << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.CounterSnapshot()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : registry.HistogramSnapshot()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"count\":" << snap.count
        << ",\"min\":" << snap.min << ",\"max\":" << snap.max
        << ",\"sum\":" << snap.sum << ",\"p50\":" << snap.p50
        << ",\"p95\":" << snap.p95 << ",\"p99\":" << snap.p99 << "}";
  }
  out << "},\"recorder\":{\"threads\":" << FlightRecorder::NumThreads()
      << ",\"events\":" << FlightRecorder::TotalEvents() << "}}";
  return out.str();
}

}  // namespace tyder::obs

#endif  // TYDER_OBS_ENABLED
