#include "obs/export.h"

#include <cstdio>
#include <sstream>

namespace tyder::obs {

namespace {

std::string FormatDurationNs(int64_t ns) {
  char buf[32];
  if (ns >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(ns));
  }
  return buf;
}

void AppendAttrsJson(std::ostream& out, const TraceEvent& e) {
  out << "{";
  bool first = true;
  for (const auto& [key, value] : e.attrs) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(key) << "\":\"" << JsonEscape(value) << "\"";
  }
  out << "}";
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string TraceToText(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEvent::Kind::kBegin: {
        out << std::string(2 * static_cast<size_t>(e.depth), ' ') << "["
            << e.name;
        for (const auto& [key, value] : e.attrs) {
          out << " " << key << "=" << value;
        }
        out << "\n";
        break;
      }
      case TraceEvent::Kind::kEnd:
        out << std::string(2 * static_cast<size_t>(e.depth), ' ') << "] "
            << e.name << " " << FormatDurationNs(e.dur_ns) << "\n";
        break;
      case TraceEvent::Kind::kInstant:
        out << std::string(2 * static_cast<size_t>(e.depth), ' ') << e.name
            << "\n";
        break;
    }
  }
  return out.str();
}

std::string TraceToJson(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "{\"events\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    const char* kind = e.kind == TraceEvent::Kind::kBegin    ? "begin"
                       : e.kind == TraceEvent::Kind::kEnd    ? "end"
                                                             : "instant";
    out << "{\"kind\":\"" << kind << "\",\"name\":\"" << JsonEscape(e.name)
        << "\",\"depth\":" << e.depth << ",\"ts_ns\":" << e.ts_ns;
    if (e.kind == TraceEvent::Kind::kEnd) out << ",\"dur_ns\":" << e.dur_ns;
    if (!e.attrs.empty()) {
      out << ",\"attrs\":";
      AppendAttrsJson(out, e);
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

std::string TraceToChromeJson(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    double ts_us = static_cast<double>(e.ts_ns) / 1e3;
    out << "{\"name\":\"" << JsonEscape(e.name) << "\",\"pid\":1,\"tid\":1,"
        << "\"ts\":" << ts_us;
    switch (e.kind) {
      case TraceEvent::Kind::kBegin:
        out << ",\"ph\":\"B\"";
        if (!e.attrs.empty()) {
          out << ",\"args\":";
          AppendAttrsJson(out, e);
        }
        break;
      case TraceEvent::Kind::kEnd:
        out << ",\"ph\":\"E\"";
        break;
      case TraceEvent::Kind::kInstant:
        out << ",\"ph\":\"i\",\"s\":\"t\"";
        break;
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

std::vector<std::string> RenderNarration(
    const std::vector<TraceEvent>& events) {
  std::vector<std::string> lines;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::kInstant) lines.push_back(e.name);
  }
  return lines;
}

}  // namespace tyder::obs
