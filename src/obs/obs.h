// Umbrella header + instrumentation macros for tyder's observability layer
// (tracer + metrics + exporters). Library code instruments hot paths with
// the macros below; they cache the registry lookup in a function-local
// static, so a counter hit costs one relaxed atomic increment — and with
// -DTYDER_OBS_ENABLED=0 (CMake option TYDER_OBS=OFF) every macro compiles
// to nothing, leaving zero overhead on the hot paths.
//
// Tracing (ScopedSpan / Narrate in obs/tracer.h) is NOT compiled out: it is
// inert unless a Tracer is installed on the thread, and the derivation
// narration (`ProjectionOptions::record_trace`) must keep working in both
// build modes.

#ifndef TYDER_OBS_OBS_H_
#define TYDER_OBS_OBS_H_

#include <chrono>

#include "obs/metrics.h"
#include "obs/tracer.h"

#ifndef TYDER_OBS_ENABLED
#define TYDER_OBS_ENABLED 1
#endif

namespace tyder::obs {

// RAII timer recording nanoseconds into a histogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    histogram_->Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tyder::obs

#define TYDER_OBS_CONCAT_INNER(a, b) a##b
#define TYDER_OBS_CONCAT(a, b) TYDER_OBS_CONCAT_INNER(a, b)

#if TYDER_OBS_ENABLED

// Bumps counter `name` by 1 (resp. `n`). `name` must be a string literal.
#define TYDER_COUNT(name) TYDER_COUNT_N(name, 1)
#define TYDER_COUNT_N(name, n)                                             \
  do {                                                                     \
    static ::tyder::obs::Counter* TYDER_OBS_CONCAT(tyder_counter_,         \
                                                   __LINE__) =             \
        ::tyder::obs::MetricsRegistry::Global().GetCounter(name);          \
    TYDER_OBS_CONCAT(tyder_counter_, __LINE__)->Add(n);                    \
  } while (0)

// Times the enclosing scope into histogram `name` (nanoseconds).
#define TYDER_TIMED(name)                                                  \
  static ::tyder::obs::Histogram* TYDER_OBS_CONCAT(tyder_histogram_,       \
                                                   __LINE__) =             \
      ::tyder::obs::MetricsRegistry::Global().GetHistogram(name);          \
  ::tyder::obs::ScopedTimer TYDER_OBS_CONCAT(tyder_timer_, __LINE__)(      \
      TYDER_OBS_CONCAT(tyder_histogram_, __LINE__))

#else  // !TYDER_OBS_ENABLED

#define TYDER_COUNT(name) \
  do {                    \
  } while (0)
#define TYDER_COUNT_N(name, n) \
  do {                         \
  } while (0)
#define TYDER_TIMED(name) \
  do {                    \
  } while (0)

#endif  // TYDER_OBS_ENABLED

// Opens a trace span covering the enclosing scope (inert without an
// installed tracer; available in both build modes).
#define TYDER_SPAN(name) \
  ::tyder::obs::ScopedSpan TYDER_OBS_CONCAT(tyder_span_, __LINE__)(name)

#endif  // TYDER_OBS_OBS_H_
