// Umbrella header + instrumentation macros for tyder's observability layer
// (tracer + metrics + flight recorder + exporters). Library code instruments
// hot paths with the macros below; TYDER_COUNT/TYDER_TIMED cache the
// registry lookup in a function-local static, so a counter hit costs one
// uncontended relaxed atomic increment (per-thread-sharded, see
// obs/sharded_counter.h) — and with -DTYDER_OBS_ENABLED=0 (CMake option
// TYDER_OBS=OFF) every macro compiles to nothing, leaving zero overhead on
// the hot paths. `scripts/run_all.sh obs` builds the OFF configuration and
// asserts the symbols are really gone.
//
// Tracing (ScopedSpan / Narrate in obs/tracer.h) is NOT compiled out: it is
// inert unless a Tracer is installed on the thread, and the derivation
// narration (`ProjectionOptions::record_trace`) must keep working in both
// build modes. (Its flight-recorder mirror IS compiled out with the rest.)

#ifndef TYDER_OBS_OBS_H_
#define TYDER_OBS_OBS_H_

#include <atomic>
#include <chrono>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

#ifndef TYDER_OBS_ENABLED
#define TYDER_OBS_ENABLED 1
#endif

namespace tyder::obs {

// RAII timer recording nanoseconds into a histogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    histogram_->Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tyder::obs

#define TYDER_OBS_CONCAT_INNER(a, b) a##b
#define TYDER_OBS_CONCAT(a, b) TYDER_OBS_CONCAT_INNER(a, b)

#if TYDER_OBS_ENABLED

// Bumps counter `name` by 1 (resp. `n`). `name` must be a string literal.
// The registry lookup is cached in a constant-initialized atomic pointer
// rather than a magic static: the steady-state cost is one acquire load
// (free on x86) + branch + ShardedCounter::Add, with no guard-byte check.
// A racing first hit resolves GetCounter twice — idempotent, same pointer —
// and the release/acquire pair publishes the counter's construction.
#define TYDER_COUNT(name) TYDER_COUNT_N(name, 1)
#define TYDER_COUNT_N(name, n)                                             \
  do {                                                                     \
    static constinit ::std::atomic<::tyder::obs::Counter*>                 \
        TYDER_OBS_CONCAT(tyder_counter_, __LINE__){nullptr};               \
    ::tyder::obs::Counter* tyder_counter_ptr =                             \
        TYDER_OBS_CONCAT(tyder_counter_, __LINE__)                         \
            .load(::std::memory_order_acquire);                            \
    if (tyder_counter_ptr == nullptr) [[unlikely]] {                       \
      tyder_counter_ptr =                                                  \
          ::tyder::obs::MetricsRegistry::Global().GetCounter(name);        \
      TYDER_OBS_CONCAT(tyder_counter_, __LINE__)                           \
          .store(tyder_counter_ptr, ::std::memory_order_release);          \
    }                                                                      \
    tyder_counter_ptr->Add(n);                                             \
  } while (0)

// Times the enclosing scope into histogram `name` (nanoseconds).
#define TYDER_TIMED(name)                                                  \
  static ::tyder::obs::Histogram* TYDER_OBS_CONCAT(tyder_histogram_,       \
                                                   __LINE__) =             \
      ::tyder::obs::MetricsRegistry::Global().GetHistogram(name);          \
  ::tyder::obs::ScopedTimer TYDER_OBS_CONCAT(tyder_timer_, __LINE__)(      \
      TYDER_OBS_CONCAT(tyder_histogram_, __LINE__))

// Records one explicit sample into histogram `name` (same cached-lookup
// pattern as TYDER_COUNT; `name` must be a string literal). For values that
// are not scope durations — batch sizes, queue depths, externally measured
// waits (e.g. storage.group_commit.batch_size / .stall_ns).
#define TYDER_RECORD_HIST(name, value)                                     \
  do {                                                                     \
    static constinit ::std::atomic<::tyder::obs::Histogram*>               \
        TYDER_OBS_CONCAT(tyder_rhist_, __LINE__){nullptr};                 \
    ::tyder::obs::Histogram* tyder_rhist_ptr =                             \
        TYDER_OBS_CONCAT(tyder_rhist_, __LINE__)                           \
            .load(::std::memory_order_acquire);                            \
    if (tyder_rhist_ptr == nullptr) [[unlikely]] {                         \
      tyder_rhist_ptr =                                                    \
          ::tyder::obs::MetricsRegistry::Global().GetHistogram(name);      \
      TYDER_OBS_CONCAT(tyder_rhist_, __LINE__)                             \
          .store(tyder_rhist_ptr, ::std::memory_order_release);            \
    }                                                                      \
    tyder_rhist_ptr->Record(value);                                        \
  } while (0)

// Appends an event to the calling thread's flight-recorder ring
// (obs/flight_recorder.h). `kind` is a FlightEventKind member name.
#define TYDER_RECORD(kind, name) TYDER_RECORD_V(kind, name, 0)
#define TYDER_RECORD_V(kind, name, value)                     \
  ::tyder::obs::FlightRecorder::Record(                       \
      ::tyder::obs::FlightEventKind::kind, (name), (value))

// Dump-on-demand hook: writes a flight-recorder JSON dump into
// $TYDER_FLIGHT_DIR when that is set; silent no-op otherwise.
#define TYDER_FLIGHT_DUMP(reason) \
  (void)::tyder::obs::FlightRecorder::DumpIfConfigured(reason)

#else  // !TYDER_OBS_ENABLED

#define TYDER_COUNT(name) \
  do {                    \
  } while (0)
#define TYDER_COUNT_N(name, n) \
  do {                         \
  } while (0)
#define TYDER_TIMED(name) \
  do {                    \
  } while (0)
#define TYDER_RECORD_HIST(name, value) \
  do {                                 \
  } while (0)
#define TYDER_RECORD(kind, name) \
  do {                           \
  } while (0)
#define TYDER_RECORD_V(kind, name, value) \
  do {                                    \
  } while (0)
#define TYDER_FLIGHT_DUMP(reason) \
  do {                            \
  } while (0)

#endif  // TYDER_OBS_ENABLED

// Opens a trace span covering the enclosing scope (inert without an
// installed tracer; available in both build modes).
#define TYDER_SPAN(name) \
  ::tyder::obs::ScopedSpan TYDER_OBS_CONCAT(tyder_span_, __LINE__)(name)

#endif  // TYDER_OBS_OBS_H_
