#include "obs/histogram.h"

#include <bit>

namespace tyder::obs {

namespace {

// Racy (relaxed) atomic min/max via CAS; contention is rare because the
// running extremum changes ever less often as the distribution fills in.
void AtomicMin(std::atomic<int64_t>& target, int64_t value) {
  int64_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<int64_t>& target, int64_t value) {
  int64_t current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t Histogram::BucketIndex(int64_t value) {
  uint64_t v = value < 0 ? 0 : static_cast<uint64_t>(value);
  if (v < kSubBuckets) return static_cast<size_t>(v);
  int msb = 63 - std::countl_zero(v);
  int shift = msb - kSubBits;
  size_t sub = static_cast<size_t>(v >> shift) & (kSubBuckets - 1);
  return static_cast<size_t>(shift + 1) * kSubBuckets + sub;
}

int64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) return static_cast<int64_t>(index);
  size_t octave = index >> kSubBits;        // = shift + 1
  size_t sub = index & (kSubBuckets - 1);
  return static_cast<int64_t>((kSubBuckets + sub) << (octave - 1));
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::MergeFrom(const Histogram& other) {
  uint64_t other_count = other.count_.load(std::memory_order_relaxed);
  if (other_count == 0) return;
  count_.fetch_add(other_count, std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  AtomicMin(min_, other.min_.load(std::memory_order_relaxed));
  AtomicMax(max_, other.max_.load(std::memory_order_relaxed));
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  // A concurrent Record may have bumped count_ before publishing min_/max_
  // (all stores are relaxed); clamp so min <= max always holds in a
  // snapshot, even one taken mid-record.
  if (snap.min == INT64_MAX) snap.min = 0;
  if (snap.max < snap.min) snap.max = snap.min;
  // Walk the buckets once, resolving each quantile's rank to the lower bound
  // of the bucket it falls in. Matches the PR 1 rank convention
  // (index = q * (count - 1) + 0.5) so quantile semantics carry over.
  const double targets[] = {0.50, 0.95, 0.99};
  int64_t* out[] = {&snap.p50, &snap.p95, &snap.p99};
  uint64_t ranks[3];
  for (int i = 0; i < 3; ++i) {
    ranks[i] = static_cast<uint64_t>(
        targets[i] * static_cast<double>(snap.count - 1) + 0.5);
  }
  uint64_t seen = 0;
  int next = 0;
  for (size_t b = 0; b < kNumBuckets && next < 3; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    while (next < 3 && seen > ranks[next]) {
      *out[next] = BucketLowerBound(b);
      ++next;
    }
  }
  // Records still in flight (count bumped, bucket not yet) can leave ranks
  // unresolved; report the max for those, floored at the last resolved
  // quantile so p50 <= p95 <= p99 holds even when the racy max is stale.
  for (; next < 3; ++next) {
    int64_t floor_value = next > 0 ? *out[next - 1] : snap.max;
    *out[next] = snap.max > floor_value ? snap.max : floor_value;
  }
  return snap;
}

}  // namespace tyder::obs
