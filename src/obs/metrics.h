// Process-wide named counters and duration histograms.
//
// Counters are per-thread-sharded atomics (obs/sharded_counter.h) and
// histograms are lock-free log-bucketed (obs/histogram.h): a hot-path hit is
// one uncontended relaxed fetch_add regardless of how many threads are
// recording, which is what lets the instrumentation stay always-on under
// concurrent traffic. Call sites go through the TYDER_COUNT / TYDER_TIMED
// macros in obs/obs.h, which cache the registry lookup in a function-local
// static — and compile to nothing when observability is disabled
// (-DTYDER_OBS_ENABLED=0).
//
// Metric names are dot-separated, lowest-frequency component first:
// "dispatch.calls", "subtype.cache_hit", "query.rows_emitted". The full
// taxonomy is documented in docs/OBSERVABILITY.md.

#ifndef TYDER_OBS_METRICS_H_
#define TYDER_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "obs/sharded_counter.h"

namespace tyder::obs {

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Finds or creates; the returned pointer is stable for the registry's
  // lifetime, so call sites may cache it.
  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Current value of a counter, 0 when it has never been touched.
  uint64_t CounterValue(std::string_view name) const;

  // Zeroes every counter and clears every histogram (tests want
  // deterministic deltas). Registered metrics stay registered.
  void Reset();

  // Stable name-sorted snapshots for the exporters in obs/export.h.
  std::vector<std::pair<std::string, uint64_t>> CounterSnapshot() const;
  std::vector<std::pair<std::string, Histogram::Snapshot>> HistogramSnapshot()
      const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace tyder::obs

#endif  // TYDER_OBS_METRICS_H_
