// Process-wide named counters and duration histograms.
//
// Counters are lock-free atomics; histograms take a small mutex. Call sites
// go through the TYDER_COUNT / TYDER_TIMED macros in obs/obs.h, which cache
// the registry lookup in a function-local static so the steady-state cost of
// a counter hit is one relaxed atomic increment — and compile to nothing
// when observability is disabled (-DTYDER_OBS_ENABLED=0).
//
// Metric names are dot-separated, lowest-frequency component first:
// "dispatch.calls", "subtype.cache_hit", "query.rows_emitted". The full
// taxonomy is documented in docs/OBSERVABILITY.md.

#ifndef TYDER_OBS_METRICS_H_
#define TYDER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tyder::obs {

class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Aggregate + sample-backed histogram. count/min/max/sum are exact; p50/p95
// are computed from the recorded samples, of which at most kMaxSamples are
// kept (beyond that only the aggregates keep updating).
class Histogram {
 public:
  static constexpr size_t kMaxSamples = 65536;

  void Record(int64_t value);
  void Reset();

  struct Snapshot {
    uint64_t count = 0;
    int64_t min = 0;
    int64_t max = 0;
    int64_t sum = 0;
    int64_t p50 = 0;
    int64_t p95 = 0;
  };
  Snapshot Snap() const;

 private:
  mutable std::mutex mu_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  int64_t sum_ = 0;
  std::vector<int64_t> samples_;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Finds or creates; the returned pointer is stable for the registry's
  // lifetime, so call sites may cache it.
  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Current value of a counter, 0 when it has never been touched.
  uint64_t CounterValue(std::string_view name) const;

  // Zeroes every counter and clears every histogram (tests want
  // deterministic deltas). Registered metrics stay registered.
  void Reset();

  // Stable name-sorted snapshots for the exporters in obs/export.h.
  std::vector<std::pair<std::string, uint64_t>> CounterSnapshot() const;
  std::vector<std::pair<std::string, Histogram::Snapshot>> HistogramSnapshot()
      const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace tyder::obs

#endif  // TYDER_OBS_METRICS_H_
