#include "obs/flight_recorder.h"

#if TYDER_OBS_ENABLED

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include <unistd.h>

#include "obs/export.h"

namespace tyder::obs {

namespace {

// One ring slot. Every field is an atomic so a dump racing the owner
// thread's writes is race-free; relaxed is enough because the reader
// tolerates torn events at the write frontier (see header).
struct Slot {
  std::atomic<int64_t> ts_ns{0};
  std::atomic<uint32_t> kind{0};
  std::atomic<int64_t> value{0};
  // The event name, packed into words (31 chars + NUL).
  std::atomic<uint64_t> name_words[4] = {};
};

struct Ring {
  uint64_t thread_index = 0;
  std::atomic<bool> retired{false};
  std::atomic<uint64_t> head{0};  // next sequence number to write
  Slot slots[FlightRecorder::kRingSize];
};

// Registry of every ring ever created. Rings are heap-allocated and never
// freed: a dump after a thread exits must still see its last events, and
// the leak is bounded by peak thread count x sizeof(Ring).
class RingRegistry {
 public:
  static RingRegistry& Global() {
    static RingRegistry* instance = new RingRegistry();
    return *instance;
  }

  Ring* Register() {
    std::lock_guard<std::mutex> lock(mu_);
    Ring* ring = new Ring();
    ring->thread_index = rings_.size();
    rings_.push_back(ring);
    return ring;
  }

  std::vector<Ring*> All() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rings_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Ring*> rings_;
};

// Owns the calling thread's ring for the thread's lifetime; marks it
// retired (but keeps it registered) when the thread exits.
struct ThreadRing {
  Ring* ring = RingRegistry::Global().Register();
  ~ThreadRing() { ring->retired.store(true, std::memory_order_release); }
};

Ring& ThisThreadRing() {
  thread_local ThreadRing owner;
  return *owner.ring;
}

int64_t NowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void DecodeSlot(const Slot& slot, FlightEvent* out) {
  out->ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
  out->kind = static_cast<FlightEventKind>(
      slot.kind.load(std::memory_order_relaxed));
  out->value = slot.value.load(std::memory_order_relaxed);
  uint64_t words[4];
  for (int w = 0; w < 4; ++w) {
    words[w] = slot.name_words[w].load(std::memory_order_relaxed);
  }
  static_assert(sizeof(words) == sizeof(out->name));
  std::memcpy(out->name, words, sizeof(words));
  out->name[sizeof(out->name) - 1] = '\0';
}

}  // namespace

const char* FlightRecorder::KindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kOp:
      return "op";
    case FlightEventKind::kSpanBegin:
      return "span_begin";
    case FlightEventKind::kSpanEnd:
      return "span_end";
    case FlightEventKind::kFailpoint:
      return "failpoint";
    case FlightEventKind::kAbort:
      return "abort";
    case FlightEventKind::kMark:
      return "mark";
  }
  return "unknown";
}

void FlightRecorder::Record(FlightEventKind kind, std::string_view name,
                            int64_t value) {
  Ring& ring = ThisThreadRing();
  uint64_t seq = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[seq & (kRingSize - 1)];
  slot.ts_ns.store(NowNs(), std::memory_order_relaxed);
  slot.kind.store(static_cast<uint32_t>(kind), std::memory_order_relaxed);
  slot.value.store(value, std::memory_order_relaxed);
  uint64_t words[4] = {};
  size_t n = name.size() < 31 ? name.size() : 31;
  std::memcpy(words, name.data(), n);
  for (int w = 0; w < 4; ++w) {
    slot.name_words[w].store(words[w], std::memory_order_relaxed);
  }
  // Publish: a reader that observes head >= seq+1 sees this slot's fields
  // (unless it has since been overwritten — the documented torn-event case).
  ring.head.store(seq + 1, std::memory_order_release);
}

std::vector<FlightRecorder::ThreadDump> FlightRecorder::Snapshot() {
  std::vector<ThreadDump> dumps;
  for (Ring* ring : RingRegistry::Global().All()) {
    ThreadDump dump;
    dump.thread_index = ring->thread_index;
    dump.retired = ring->retired.load(std::memory_order_acquire);
    uint64_t head = ring->head.load(std::memory_order_acquire);
    dump.total_events = head;
    uint64_t available = head < kRingSize ? head : kRingSize;
    dump.events.reserve(available);
    for (uint64_t seq = head - available; seq < head; ++seq) {
      FlightEvent event;
      DecodeSlot(ring->slots[seq & (kRingSize - 1)], &event);
      dump.events.push_back(event);
    }
    dumps.push_back(std::move(dump));
  }
  return dumps;
}

std::string FlightRecorder::DumpJson(std::string_view reason) {
  std::ostringstream out;
  out << "{\"schema\":\"tyder-flight-v1\",\"reason\":\""
      << JsonEscape(reason) << "\",\"ring_size\":" << kRingSize
      << ",\"threads\":[";
  bool first_thread = true;
  for (const ThreadDump& dump : Snapshot()) {
    if (!first_thread) out << ",";
    first_thread = false;
    out << "{\"thread\":" << dump.thread_index << ",\"retired\":"
        << (dump.retired ? "true" : "false")
        << ",\"total_events\":" << dump.total_events << ",\"events\":[";
    bool first_event = true;
    for (const FlightEvent& e : dump.events) {
      if (!first_event) out << ",";
      first_event = false;
      out << "{\"ts_ns\":" << e.ts_ns << ",\"kind\":\"" << KindName(e.kind)
          << "\",\"name\":\"" << JsonEscape(e.name) << "\",\"value\":"
          << e.value << "}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

bool FlightRecorder::DumpToFile(const std::string& path,
                                std::string_view reason) {
  std::ofstream out(path);
  if (!out) return false;
  out << DumpJson(reason) << "\n";
  out.flush();
  return out.good();
}

std::string FlightRecorder::MaybeDumpForCrash(std::string_view reason) {
  const char* dir = std::getenv("TYDER_FLIGHT_DIR");
  if (dir == nullptr || *dir == '\0') {
    // No dump directory: put a short per-thread tail on stderr so the black
    // box still surfaces in interactive failures and test logs.
    std::fprintf(stderr, "tyder: flight recorder (%.*s):\n",
                 static_cast<int>(reason.size()), reason.data());
    for (const ThreadDump& dump : Snapshot()) {
      size_t n = dump.events.size();
      size_t from = n > 8 ? n - 8 : 0;
      for (size_t i = from; i < n; ++i) {
        const FlightEvent& e = dump.events[i];
        std::fprintf(stderr, "  [t%llu] %+12lldns %-10s %s (%lld)\n",
                     static_cast<unsigned long long>(dump.thread_index),
                     static_cast<long long>(e.ts_ns), KindName(e.kind),
                     e.name, static_cast<long long>(e.value));
      }
    }
    return "";
  }
  return DumpIfConfigured(reason);
}

std::string FlightRecorder::DumpIfConfigured(std::string_view reason) {
  const char* dir = std::getenv("TYDER_FLIGHT_DIR");
  if (dir == nullptr || *dir == '\0') return "";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  static std::atomic<uint64_t> dump_seq{0};
  uint64_t seq = dump_seq.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream path;
  path << dir << "/flight-" << static_cast<unsigned long>(::getpid()) << "-"
       << seq << ".json";
  if (!DumpToFile(path.str(), reason)) {
    std::fprintf(stderr, "tyder: cannot write flight dump '%s'\n",
                 path.str().c_str());
    return "";
  }
  std::fprintf(stderr, "tyder: flight recorder dumped to %s (%.*s)\n",
               path.str().c_str(), static_cast<int>(reason.size()),
               reason.data());
  return path.str();
}

size_t FlightRecorder::NumThreads() {
  return RingRegistry::Global().All().size();
}

uint64_t FlightRecorder::TotalEvents() {
  uint64_t total = 0;
  for (Ring* ring : RingRegistry::Global().All()) {
    total += ring->head.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace tyder::obs

#endif  // TYDER_OBS_ENABLED
