// Lock-free log-bucketed duration histogram (HDR-histogram style).
//
// Record() is wait-free: one relaxed fetch_add into a log-spaced bucket plus
// relaxed aggregate updates — no mutex, no sample buffer, safe from any
// number of threads concurrently. Snap() may run concurrently with Record()
// and sees an approximately-consistent view (counts that land between the
// aggregate reads and the bucket walk can skew a snapshot by the handful of
// in-flight records; every completed Record is eventually visible).
//
// Bucket scheme: values 0..31 get one exact bucket each; beyond that, each
// power of two is split into 32 log-linear sub-buckets, so a bucket's width
// is at most 1/32 of its lower bound. Quantiles (p50/p95/p99) are computed
// by rank over the bucket counts and reported as the containing bucket's
// lower bound: they are *not* exact ranks — the reported value
// under-estimates the true quantile by at most kMaxRelativeError (3.125%).
// count, sum, min and max are exact. This replaces the PR 1 design, which
// kept a mutex-guarded buffer of 65k raw samples and silently degraded
// percentiles once the buffer filled.
//
// The int64 value range is clamped to [0, 2^62): negative values count as 0
// (durations are non-negative by construction).

#ifndef TYDER_OBS_HISTOGRAM_H_
#define TYDER_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tyder::obs {

class Histogram {
 public:
  // Sub-bucket resolution: 2^kSubBits log-linear buckets per power of two.
  static constexpr int kSubBits = 5;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBits;  // 32
  // Buckets 0..kSubBuckets-1 are exact; (63 - kSubBits) further octaves of
  // kSubBuckets sub-buckets each cover the rest of the non-negative range.
  static constexpr size_t kNumBuckets = (64 - kSubBits) * kSubBuckets;
  // Quantiles under-estimate the true rank value by at most this fraction.
  static constexpr double kMaxRelativeError = 1.0 / kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Wait-free; safe from any thread.
  void Record(int64_t value);

  // Zeroes all buckets and aggregates. Not atomic with respect to concurrent
  // Record() calls: records racing a Reset may be partially dropped. Tests
  // reset between deterministic phases; production code never resets.
  void Reset();

  // Adds every bucket and aggregate of `other` into this histogram (the
  // bucket layouts are identical by construction, so the merge is exact).
  // Safe against concurrent Record() on either side with the usual
  // approximately-consistent caveat; the workload replay merges per-thread
  // latency histograms after the threads have joined, where it is exact.
  void MergeFrom(const Histogram& other);

  struct Snapshot {
    uint64_t count = 0;
    int64_t min = 0;  // exact
    int64_t max = 0;  // exact
    int64_t sum = 0;  // exact
    int64_t p50 = 0;  // bucket lower bound, see kMaxRelativeError
    int64_t p95 = 0;
    int64_t p99 = 0;
  };
  Snapshot Snap() const;

  // The bucket a value lands in, and a bucket's smallest value. Exposed for
  // the error-bound tests and the docs' worked examples.
  static size_t BucketIndex(int64_t value);
  static int64_t BucketLowerBound(size_t index);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

}  // namespace tyder::obs

#endif  // TYDER_OBS_HISTOGRAM_H_
