// Background stats snapshotter: a thread that periodically appends one JSON
// line to a file — the engine's time series. Each line (schema
// "tyder-stats-v1") carries a wall-clock timestamp, every counter, every
// histogram's quantile snapshot, and the flight recorder's depth:
//
//   {"schema":"tyder-stats-v1","ts_ms":...,"seq":N,
//    "counters":{"dispatch.calls":123,...},
//    "histograms":{"projection.derive_ns":{"count":..,"min":..,"max":..,
//                  "sum":..,"p50":..,"p95":..,"p99":..},...},
//    "recorder":{"threads":T,"events":E}}
//
// Consumers: `tyder_stat` (tools/) summarizes and diffs series files;
// `tyderc --stats-jsonl=FILE` runs a snapshotter for the duration of a CLI
// run. Reading a partially-written last line is the reader's problem (both
// shipped consumers skip unparseable trailing lines).
//
// Like the flight recorder, the unit vanishes under -DTYDER_OBS=OFF (empty
// header); call sites must sit behind a TYDER_OBS_ENABLED guard.

#ifndef TYDER_OBS_SNAPSHOTTER_H_
#define TYDER_OBS_SNAPSHOTTER_H_

#ifndef TYDER_OBS_ENABLED
#define TYDER_OBS_ENABLED 1
#endif

#if TYDER_OBS_ENABLED

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

namespace tyder::obs {

struct SnapshotterOptions {
  std::string path;      // JSONL output file, appended to
  int period_ms = 1000;  // snapshot cadence (clamped to >= 1)
};

class StatsSnapshotter {
 public:
  explicit StatsSnapshotter(SnapshotterOptions options);
  ~StatsSnapshotter();  // stops if running
  StatsSnapshotter(const StatsSnapshotter&) = delete;
  StatsSnapshotter& operator=(const StatsSnapshotter&) = delete;

  // Opens the output file and starts the background thread. False if the
  // file cannot be opened (or Start was already called).
  bool Start();
  // Emits one final snapshot line and joins the thread. Idempotent.
  void Stop();

  bool running() const { return thread_.joinable(); }
  // Safe to poll while the snapshotter runs (tests wait on it).
  uint64_t lines_written() const {
    return lines_written_.load(std::memory_order_acquire);
  }

  // One snapshot line from the current global registry + recorder state
  // (no trailing newline). Usable without a running snapshotter.
  static std::string SnapshotLine(uint64_t seq);

 private:
  void Loop();
  void EmitLine();

  SnapshotterOptions options_;
  std::ofstream out_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  uint64_t seq_ = 0;
  std::atomic<uint64_t> lines_written_{0};
};

}  // namespace tyder::obs

#endif  // TYDER_OBS_ENABLED

#endif  // TYDER_OBS_SNAPSHOTTER_H_
