// Exporters for traces and metrics: human-readable text, plain JSON, and
// Chrome trace_event JSON (load via chrome://tracing or https://ui.perfetto.dev).

#ifndef TYDER_OBS_EXPORT_H_
#define TYDER_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace tyder::obs {

// --- trace exporters ------------------------------------------------------

// Indented text rendering: one line per span (with duration and attributes)
// and per instant event.
std::string TraceToText(const std::vector<TraceEvent>& events);

// {"events": [{"kind": "begin"|"end"|"instant", "name": ..., "depth": ...,
//  "ts_ns": ..., "dur_ns": ..., "attrs": {...}}, ...]}
std::string TraceToJson(const std::vector<TraceEvent>& events);

// Chrome trace_event format: {"traceEvents": [{"ph": "B"/"E"/"i", ...}]}.
// Timestamps are microseconds as the format requires.
std::string TraceToChromeJson(const std::vector<TraceEvent>& events);

// The back-compat narration: instant-event messages in emission order —
// exactly the lines the legacy `DerivationResult::trace` vector carried.
std::vector<std::string> RenderNarration(const std::vector<TraceEvent>& events);

// --- metrics exporters (export_metrics.cc) -------------------------------

// Name-sorted "name = value" lines, histograms with
// count/min/max/sum/p50/p95/p99.
std::string MetricsToText(const MetricsRegistry& registry);

// {"counters": {...}, "histograms": {name: {count, min, max, sum, p50, p95,
//  p99}}}
std::string MetricsToJson(const MetricsRegistry& registry);

// JSON string escaping (shared with the bench reporters).
std::string JsonEscape(std::string_view s);

}  // namespace tyder::obs

#endif  // TYDER_OBS_EXPORT_H_
