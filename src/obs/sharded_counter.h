// Per-thread-sharded monotonic counter.
//
// The PR 1 Counter was a single std::atomic<uint64_t>; under concurrent
// traffic (parallel batch derivation, the oracle stress suites, the future
// tyderd service) every increment bounced the same cache line between cores.
// ShardedCounter gives each of the first kShards threads exclusive ownership
// of one cache-line-sized slot: because nobody else ever writes an owned
// slot, an increment is a plain relaxed load + store — no atomic
// read-modify-write, no lock prefix — which is what keeps the always-on
// counters on the subtype/dispatch hot paths inside the `obs` mode's 5%
// overhead gate. Threads past the first kShards share one overflow slot via
// relaxed fetch_add (correct, just slower; short-lived worker pools rarely
// get there). Reads (value()) lazily aggregate by summing the slots — reads
// are rare (exporters, snapshotter ticks, tests), writes are the hot path.
//
// value() is monotone and eventually consistent: it never under-counts
// completed Add()s from the calling thread, and racing Add()s from other
// threads are each either fully visible or not yet visible.

#ifndef TYDER_OBS_SHARDED_COUNTER_H_
#define TYDER_OBS_SHARDED_COUNTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace tyder::obs {

namespace internal {
// Cold path: assigns the calling thread's ordinal (a process-wide counter,
// never reused), once per thread. Out of line in metrics.cc.
size_t AssignShardSlot();

// The calling thread's ordinal. Shared by every ShardedCounter: a thread
// uses the same slot index in each. Inline so that a hot-path counter bump
// pays a thread-local read, not a function call — the dispatch/subtype
// paths count on every query and the `obs` overhead gate holds them to <5%
// over the uninstrumented build. The +1 sentinel keeps the thread_local
// constant-initialized (zero), so there is no per-access dynamic-init guard.
inline size_t ThisThreadShardSlot() {
  thread_local size_t slot_plus_one = 0;
  size_t s = slot_plus_one;
  if (s == 0) [[unlikely]] {
    s = AssignShardSlot() + 1;
    slot_plus_one = s;
  }
  return s - 1;
}
}  // namespace internal

class ShardedCounter {
 public:
  static constexpr size_t kShards = 16;

  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void Add(uint64_t n) {
    size_t slot = internal::ThisThreadShardSlot();
    if (slot < kShards) [[likely]] {
      // This thread owns shards_[slot] exclusively: a plain load + store
      // cannot lose an update, and both sides being atomic keeps concurrent
      // value() readers defined.
      std::atomic<uint64_t>& cell = shards_[slot].value;
      cell.store(cell.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    } else {
      overflow_.value.fetch_add(n, std::memory_order_relaxed);
    }
  }

  uint64_t value() const {
    uint64_t total = overflow_.value.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Not atomic with respect to concurrent Add()s (tests only).
  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
    overflow_.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kShards];
  Shard overflow_;  // shared by every thread past the first kShards
};

// The registry's counter type. Call sites cache the Counter* returned by
// MetricsRegistry::GetCounter, so the name must stay `Counter`.
using Counter = ShardedCounter;

}  // namespace tyder::obs

#endif  // TYDER_OBS_SHARDED_COUNTER_H_
