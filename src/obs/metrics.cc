#include "obs/metrics.h"

#include <algorithm>

namespace tyder::obs {

void Histogram::Record(int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (samples_.size() < kMaxSamples) samples_.push_back(value);
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  min_ = max_ = sum_ = 0;
  samples_.clear();
}

Histogram::Snapshot Histogram::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.count = count_;
  snap.min = min_;
  snap.max = max_;
  snap.sum = sum_;
  if (!samples_.empty()) {
    std::vector<int64_t> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    auto quantile = [&sorted](double q) {
      size_t index = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
      return sorted[std::min(index, sorted.size() - 1)];
    };
    snap.p50 = quantile(0.50);
    snap.p95 = quantile(0.95);
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
MetricsRegistry::HistogramSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram->Snap());
  }
  return out;
}

}  // namespace tyder::obs
