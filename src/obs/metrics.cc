#include "obs/metrics.h"

namespace tyder::obs {

namespace internal {

// Thread-ordinal assignment: the Nth thread to touch any sharded counter
// gets ordinal N, shared across every counter in the process. Ordinals are
// never reused, so the first kShards threads each own their slot for the
// life of the process (ShardedCounter::Add relies on that exclusivity for
// its non-RMW fast path); later threads share the overflow slot. Called
// once per thread from the inline ThisThreadShardSlot fast path.
size_t AssignShardSlot() {
  static std::atomic<size_t> next_slot{0};
  return next_slot.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
MetricsRegistry::HistogramSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram->Snap());
  }
  return out;
}

}  // namespace tyder::obs
