// Always-on flight recorder: a per-thread lock-free ring buffer of recent
// engine events (spans, operations, fault-point hits, rollbacks, aborts),
// dumpable on demand — the engine's black box.
//
// Each thread owns a fixed ring of kRingSize slots; Record() writes only to
// the calling thread's ring (single writer), so recording is one clock read
// plus a handful of relaxed atomic stores and a release publish of the head
// counter — no locks, no allocation after the ring exists. Rings are
// registered in a process-wide list and kept alive after their thread exits
// (marked retired), so a dump taken after a worker pool wound down still
// shows what those workers did last.
//
// Dumps (Snapshot / DumpJson / DumpToFile) may run concurrently with
// recording on other threads. Every slot field is an atomic, so concurrent
// dumping is race-free (TSan-clean) but best-effort at the ring's write
// frontier: a slot overwritten mid-read can yield one torn event (fields
// from two different records). Dump consumers treat events as diagnostics,
// not ground truth.
//
// Dump-on-demand hooks call MaybeDumpForCrash(reason): if TYDER_FLIGHT_DIR
// is set in the environment, the full JSON dump is written there as
// flight-<pid>-<seq>.json and the path is reported on stderr; otherwise the
// last few events per thread go to stderr as text. Hook sites: Result<T>
// misuse aborts, every armed fault-point fire, and the fuzzer's failure
// path.
//
// The whole unit compiles away under -DTYDER_OBS=OFF: this header is empty,
// so any call site not behind TYDER_RECORD/TYDER_FLIGHT_DUMP (obs/obs.h) or
// an explicit TYDER_OBS_ENABLED guard fails the OFF build loudly —
// `scripts/run_all.sh obs` builds that configuration to catch bitrot.

#ifndef TYDER_OBS_FLIGHT_RECORDER_H_
#define TYDER_OBS_FLIGHT_RECORDER_H_

#ifndef TYDER_OBS_ENABLED
#define TYDER_OBS_ENABLED 1
#endif

#if TYDER_OBS_ENABLED

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tyder::obs {

enum class FlightEventKind : uint32_t {
  kOp = 0,        // a named engine operation (wal append, rollback, ...)
  kSpanBegin,     // ScopedSpan opened
  kSpanEnd,       // ScopedSpan closed (value = duration in ns)
  kFailpoint,     // an armed fault point fired
  kAbort,         // Result<T> misuse abort in flight
  kMark,          // free-form marker (tests, tools)
};

// Decoded event, as read back out of a ring.
struct FlightEvent {
  int64_t ts_ns = 0;  // since the process-wide recorder epoch
  FlightEventKind kind = FlightEventKind::kMark;
  int64_t value = 0;
  char name[32] = {};  // NUL-terminated, truncated to 31 chars
};

class FlightRecorder {
 public:
  static constexpr size_t kRingSize = 256;  // power of two

  // Appends one event to the calling thread's ring. Wait-free after the
  // thread's first call (which allocates + registers its ring).
  static void Record(FlightEventKind kind, std::string_view name,
                     int64_t value = 0);

  struct ThreadDump {
    uint64_t thread_index = 0;  // stable per-thread registration index
    bool retired = false;       // the owning thread has exited
    uint64_t total_events = 0;  // lifetime count (ring keeps the last N)
    std::vector<FlightEvent> events;  // oldest first
  };

  // Reads every registered ring (best-effort at live write frontiers).
  static std::vector<ThreadDump> Snapshot();

  // Full dump as pretty-printed-enough JSON:
  //   {"schema":"tyder-flight-v1","reason":...,"threads":[...]}
  static std::string DumpJson(std::string_view reason);
  // Writes DumpJson to `path`; false on I/O failure.
  static bool DumpToFile(const std::string& path, std::string_view reason);

  // The dump-on-demand hook: writes a JSON dump into $TYDER_FLIGHT_DIR
  // (creating it if needed) and returns the path; silent no-op returning ""
  // when the variable is unset/empty. This is what TYDER_FLIGHT_DUMP and the
  // fault-point hook call — arbitrarily many fault injections in a test run
  // stay quiet unless a dump directory was asked for.
  static std::string DumpIfConfigured(std::string_view reason);

  // DumpIfConfigured, but when no dump directory is configured the last few
  // events per thread go to stderr instead — for terminal failures (Result
  // misuse aborts) where losing the black box entirely would be worse than
  // noisy logs.
  static std::string MaybeDumpForCrash(std::string_view reason);

  // Number of registered rings / sum of their lifetime event counts.
  // Exported by the stats snapshotter as the recorder's depth gauge.
  static size_t NumThreads();
  static uint64_t TotalEvents();

  static const char* KindName(FlightEventKind kind);
};

}  // namespace tyder::obs

#endif  // TYDER_OBS_ENABLED

#endif  // TYDER_OBS_FLIGHT_RECORDER_H_
