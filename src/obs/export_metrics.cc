// Metrics exporters, in their own translation unit so a binary that never
// references metrics (tyderc built with -DTYDER_OBS=OFF gates every use)
// links without pulling in the registry — `scripts/run_all.sh obs` asserts
// that with nm. Trace exporters + JsonEscape live in export.cc.

#include <sstream>

#include "obs/export.h"

namespace tyder::obs {

std::string MetricsToText(const MetricsRegistry& registry) {
  std::ostringstream out;
  for (const auto& [name, value] : registry.CounterSnapshot()) {
    out << name << " = " << value << "\n";
  }
  for (const auto& [name, snap] : registry.HistogramSnapshot()) {
    out << name << ": count=" << snap.count << " min=" << snap.min
        << " max=" << snap.max << " sum=" << snap.sum << " p50=" << snap.p50
        << " p95=" << snap.p95 << " p99=" << snap.p99 << "\n";
  }
  return out.str();
}

std::string MetricsToJson(const MetricsRegistry& registry) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.CounterSnapshot()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : registry.HistogramSnapshot()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"count\":" << snap.count
        << ",\"min\":" << snap.min << ",\"max\":" << snap.max
        << ",\"sum\":" << snap.sum << ",\"p50\":" << snap.p50
        << ",\"p95\":" << snap.p95 << ",\"p99\":" << snap.p99 << "}";
  }
  out << "}}";
  return out.str();
}

}  // namespace tyder::obs
