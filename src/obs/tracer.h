// Hierarchical tracing for the derivation pipeline and its consumers.
//
// A Tracer records a flat stream of TraceEvents (span begin/end pairs plus
// instant narration events), each stamped with a steady_clock timestamp
// relative to the tracer's epoch and the nesting depth at emission. Spans
// are opened and closed with RAII ScopedSpans; narration lines (the paper's
// "FactorState({e2,h2}, C, ~A, 1)" style) become instant events attached to
// the innermost open span.
//
// Tracers are installed per thread with ScopedTracer; instrumentation sites
// (ScopedSpan, Emit, Narrate) write to the installed tracer and are no-ops
// when none is installed, so library code can be instrumented
// unconditionally. Exporters (text, JSON, Chrome trace_event) live in
// obs/export.h.

#ifndef TYDER_OBS_TRACER_H_
#define TYDER_OBS_TRACER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"

namespace tyder::obs {

struct TraceEvent {
  enum class Kind { kBegin, kEnd, kInstant };

  Kind kind = Kind::kInstant;
  // Span name for kBegin/kEnd; the narration line for kInstant.
  std::string name;
  // Nesting depth at emission: the root span begins at depth 0; an instant
  // inside it carries depth 1.
  int depth = 0;
  // Nanoseconds since the tracer's epoch.
  int64_t ts_ns = 0;
  // kEnd only: wall-clock span duration.
  int64_t dur_ns = 0;
  // Key/value attributes (kBegin events only; attached via ScopedSpan::Attr).
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  // Non-copyable: open-span bookkeeping indexes into events_.
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void BeginSpan(std::string name);
  // Closes the innermost open span, computing its duration. No-op if no span
  // is open.
  void EndSpan();
  void Instant(std::string message);
  // Attaches an attribute to the innermost open span's begin event.
  void SpanAttr(std::string_view key, std::string value);

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t NumEvents() const { return events_.size(); }
  int depth() const { return static_cast<int>(open_.size()); }

 private:
  int64_t Now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
  std::vector<size_t> open_;  // indices of kBegin events of open spans
};

// The tracer installed on this thread, or nullptr.
Tracer* CurrentTracer();
inline bool TracingActive() { return CurrentTracer() != nullptr; }

// Installs `tracer` as the thread's current tracer for the enclosing scope,
// restoring the previous one on destruction.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* tracer);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* prev_;
};

// RAII span on the current tracer; inert when no tracer is installed. In
// TYDER_OBS_ENABLED builds every span is additionally mirrored into the
// calling thread's flight-recorder ring (begin + end-with-duration), so the
// black box always knows which operation was in flight — tracer or not.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) : tracer_(CurrentTracer()) {
    if (tracer_ != nullptr) tracer_->BeginSpan(std::string(name));
#if TYDER_OBS_ENABLED
    name_ = name;
    start_ = std::chrono::steady_clock::now();
    FlightRecorder::Record(FlightEventKind::kSpanBegin, name_);
#endif
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan();
#if TYDER_OBS_ENABLED
    FlightRecorder::Record(
        FlightEventKind::kSpanEnd, name_,
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
#endif
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Attr(std::string_view key, std::string value) {
    if (tracer_ != nullptr) tracer_->SpanAttr(key, std::move(value));
  }

 private:
  Tracer* tracer_;
#if TYDER_OBS_ENABLED
  // Valid for the span's scope: every call site passes a literal or a
  // string that outlives the span.
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
#endif
};

// Emits an instant event on the current tracer (no-op without one).
void Emit(std::string message);

// Narration used by the derivation phases: pushes `line` onto `sink` when
// non-null (the legacy string-vector channel) and mirrors it as an instant
// event on the current tracer. Callers should build `line` only when
// NarrationRequested(sink) to keep the untraced path allocation-free.
inline bool NarrationRequested(const std::vector<std::string>* sink) {
  return sink != nullptr || TracingActive();
}
void Narrate(std::vector<std::string>* sink, std::string line);

}  // namespace tyder::obs

#endif  // TYDER_OBS_TRACER_H_
