#include "net/protocol.h"

#include <array>

#include "common/string_util.h"

namespace tyder::net {

namespace {

// Splits on '\n'; a trailing newline does not produce a final empty line.
std::vector<std::string> SplitLines(std::string_view payload) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= payload.size()) {
    size_t nl = payload.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < payload.size())
        lines.emplace_back(payload.substr(start));
      break;
    }
    lines.emplace_back(payload.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 19) return false;
  uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

std::string EncodeRequest(const Request& request) {
  std::string out(kProtocolMagic);
  out += ' ';
  out += request.command;
  out += ' ';
  out += std::to_string(request.deadline_ms);
  for (const std::string& arg : request.args) {
    out += '\n';
    out += arg;
  }
  return out;
}

Result<Request> ParseRequest(std::string_view payload) {
  std::vector<std::string> lines = SplitLines(payload);
  if (lines.empty())
    return Status::InvalidArgument("empty request frame");
  const std::string& head = lines[0];
  size_t sp1 = head.find(' ');
  size_t sp2 = sp1 == std::string::npos ? sp1 : head.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos)
    return Status::InvalidArgument(
        "malformed request line (want 'tyder1 <command> <deadline_ms>')");
  if (std::string_view(head).substr(0, sp1) != kProtocolMagic)
    return Status::InvalidArgument(
        "unknown protocol magic '" + head.substr(0, sp1) + "'");
  Request request;
  request.command = head.substr(sp1 + 1, sp2 - sp1 - 1);
  if (request.command.empty())
    return Status::InvalidArgument("empty command");
  if (!ParseU64(std::string_view(head).substr(sp2 + 1),
                &request.deadline_ms))
    return Status::InvalidArgument("malformed deadline '" +
                                   head.substr(sp2 + 1) + "'");
  request.args.assign(lines.begin() + 1, lines.end());
  return request;
}

std::string EncodeResponse(const Response& response) {
  std::string out;
  switch (response.kind) {
    case ResponseKind::kOk:
      out = "OK";
      break;
    case ResponseKind::kErr:
      out = "ERR ";
      out += StatusCodeName(response.code);
      break;
    case ResponseKind::kRetryAfter:
      out = "RETRY_AFTER " + std::to_string(response.retry_after_ms);
      break;
    case ResponseKind::kDeadlineExceeded:
      out = "DEADLINE_EXCEEDED";
      break;
    case ResponseKind::kDegraded:
      out = "DEGRADED";
      break;
  }
  for (const std::string& line : response.body) {
    out += '\n';
    out += line;
  }
  return out;
}

Result<Response> ParseResponse(std::string_view payload) {
  std::vector<std::string> lines = SplitLines(payload);
  if (lines.empty())
    return Status::InvalidArgument("empty response frame");
  const std::string& head = lines[0];
  Response response;
  if (head == "OK") {
    response.kind = ResponseKind::kOk;
  } else if (head.rfind("ERR ", 0) == 0) {
    response.kind = ResponseKind::kErr;
    response.code = StatusCodeFromName(std::string_view(head).substr(4));
  } else if (head.rfind("RETRY_AFTER ", 0) == 0) {
    response.kind = ResponseKind::kRetryAfter;
    if (!ParseU64(std::string_view(head).substr(12),
                  &response.retry_after_ms))
      return Status::InvalidArgument("malformed RETRY_AFTER line '" + head +
                                     "'");
  } else if (head == "DEADLINE_EXCEEDED") {
    response.kind = ResponseKind::kDeadlineExceeded;
  } else if (head == "DEGRADED") {
    response.kind = ResponseKind::kDegraded;
  } else {
    return Status::InvalidArgument("unknown response status line '" + head +
                                   "'");
  }
  response.body.assign(lines.begin() + 1, lines.end());
  return response;
}

Response OkResponse(std::vector<std::string> body) {
  Response r;
  r.kind = ResponseKind::kOk;
  r.body = std::move(body);
  return r;
}

Response ErrResponse(const Status& status) {
  Response r;
  r.kind = ResponseKind::kErr;
  r.code = status.code();
  r.body.push_back(status.message());
  return r;
}

Response RetryAfterResponse(uint64_t ms) {
  Response r;
  r.kind = ResponseKind::kRetryAfter;
  r.retry_after_ms = ms;
  return r;
}

Response DeadlineExceededResponse() {
  Response r;
  r.kind = ResponseKind::kDeadlineExceeded;
  return r;
}

Response DegradedResponse(std::string cause) {
  Response r;
  r.kind = ResponseKind::kDegraded;
  r.body.push_back(std::move(cause));
  return r;
}

StatusCode StatusCodeFromName(std::string_view name) {
  static constexpr std::array<StatusCode, 8> kCodes = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kFailedPrecondition, StatusCode::kTypeError,
      StatusCode::kParseError,   StatusCode::kInternal,
  };
  for (StatusCode code : kCodes) {
    if (StatusCodeName(code) == name) return code;
  }
  return StatusCode::kInternal;
}

}  // namespace tyder::net
