#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <climits>

namespace tyder::net {

namespace {

constexpr const char* kTimeoutPrefix = "net: timed out";

Status Timeout(const char* what) {
  return Status::FailedPrecondition(std::string(kTimeoutPrefix) + " " + what);
}

Status Errno(const char* what) {
  return Status::Internal(std::string("net: ") + what + " failed: " +
                          strerror(errno));
}

// poll(2) one fd for `events`, honoring the deadline. OK == ready.
Status PollOne(int fd, short events, Deadline deadline, const char* what) {
  for (;;) {
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    int rc = poll(&p, 1, deadline.PollTimeoutMs());
    if (rc > 0) {
      // POLLERR/POLLHUP are "ready": the subsequent read/write surfaces the
      // real error (or EOF) with its errno.
      return Status::OK();
    }
    if (rc == 0) return Timeout(what);
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace

int Deadline::PollTimeoutMs() const {
  if (!at_.has_value()) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  *at_ - std::chrono::steady_clock::now())
                  .count();
  if (left <= 0) return 0;
  if (left > INT_MAX) return INT_MAX;
  return static_cast<int>(left);
}

uint64_t Deadline::RemainingMs() const {
  int ms = PollTimeoutMs();
  if (ms < 0) return UINT64_MAX;
  return static_cast<uint64_t>(ms);
}

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Fd::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<Fd> ListenLoopback(uint16_t port, uint16_t* bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0)
    return Errno("bind");
  if (::listen(fd.get(), 64) != 0) return Errno("listen");

  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                      &len) != 0)
      return Errno("getsockname");
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

Result<Fd> Accept(int listen_fd, Deadline deadline) {
  TYDER_RETURN_IF_ERROR(PollOne(listen_fd, POLLIN, deadline, "accept"));
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Fd(fd);
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Result<Fd> ConnectLoopback(uint16_t port, Deadline deadline) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // Loopback connect either completes immediately or the listener's backlog
  // is full; a plain blocking connect with EINTR retry is enough — the
  // deadline guards the pathological case via SO_SNDTIMEO-free poll below.
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      break;
    if (errno == EINTR) {
      // The connect may have completed asynchronously; poll for writability
      // and check SO_ERROR.
      TYDER_RETURN_IF_ERROR(PollOne(fd.get(), POLLOUT, deadline, "connect"));
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0)
        return Errno("getsockopt");
      if (err != 0) {
        errno = err;
        return Errno("connect");
      }
      break;
    }
    return Errno("connect");
  }
  int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status WaitReadable(int fd, Deadline deadline) {
  return PollOne(fd, POLLIN, deadline, "read");
}

Status WaitWritable(int fd, Deadline deadline) {
  return PollOne(fd, POLLOUT, deadline, "write");
}

bool IsTimeout(const Status& s) {
  return !s.ok() && s.message().rfind(kTimeoutPrefix, 0) == 0;
}

}  // namespace tyder::net
