// Blocking tyder1 client: one connection, one outstanding request.
//
// Call() frames the request, ships it, and waits for exactly one response
// frame; the request's deadline_ms (plus a small grace window for the
// response to cross the wire) bounds the whole round trip. Transport
// failures are surfaced as statuses distinct from protocol-level outcomes:
// a Response is returned whenever the server ANSWERED — even if the answer
// is ERR / RETRY_AFTER / DEADLINE_EXCEEDED / DEGRADED — and a non-OK
// Result means the connection itself failed, in which case the caller
// cannot know whether the request executed (see SentWithoutAnswer). The
// chaos harness builds its acked/nacked/indeterminate ledger on exactly
// this distinction.

#ifndef TYDER_NET_CLIENT_H_
#define TYDER_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace tyder::net {

class Client {
 public:
  // Connects to tyderd on 127.0.0.1:`port`.
  static Result<Client> Connect(uint16_t port,
                                uint64_t connect_timeout_ms = 5'000);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  // Sends `request` and waits for its response. An unbounded request
  // (deadline_ms == 0) waits up to `fallback_timeout_ms` for the answer so
  // a dead server can never hang the caller.
  Result<Response> Call(const Request& request,
                        uint64_t fallback_timeout_ms = 30'000);

  // Convenience: Call with command + args and no deadline.
  Result<Response> Call(std::string command,
                        std::vector<std::string> args = {},
                        uint64_t deadline_ms = 0);

  // True iff the last Call wrote its request but got no response frame —
  // the indeterminate window (the server may or may not have applied it).
  bool SentWithoutAnswer() const { return sent_without_answer_; }

  void Close() { fd_.Close(); }
  bool connected() const { return fd_.valid(); }

 private:
  explicit Client(Fd fd) : fd_(std::move(fd)) {}

  Fd fd_;
  bool sent_without_answer_ = false;
};

}  // namespace tyder::net

#endif  // TYDER_NET_CLIENT_H_
