#include "net/frame.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/failpoint.h"
#include "obs/obs.h"
#include "storage/crc32c.h"

namespace tyder::net {

namespace {

constexpr const char* kCleanClose = "net: connection closed";

void PutLe32(uint32_t v, char* out) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
  out[2] = static_cast<char>((v >> 16) & 0xff);
  out[3] = static_cast<char>((v >> 24) & 0xff);
}

uint32_t GetLe32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

// Reads exactly `n` bytes. `any_read` reports whether at least one byte
// arrived (EOF at offset 0 is a clean close; EOF later is a torn frame).
Status ReadFull(int fd, char* buf, size_t n, Deadline deadline,
                bool* any_read) {
  size_t got = 0;
  bool eintr_injected = false;
  while (got < n) {
    TYDER_RETURN_IF_ERROR(WaitReadable(fd, deadline));
    if (!eintr_injected && TYDER_FAULT_CONSUME("net.read.eintr")) {
      // One synthetic signal interruption: fall through the loop exactly the
      // way a real EINTR from read(2) would.
      eintr_injected = true;
      TYDER_COUNT("net.eintr_retries");
      continue;
    }
    ssize_t rc = ::read(fd, buf + got, n - got);
    if (rc > 0) {
      got += static_cast<size_t>(rc);
      if (any_read != nullptr) *any_read = true;
      if (TYDER_FAULT_CONSUME("net.read.short")) {
        // The peer dies mid-frame: everything past this byte is lost.
        return Status::Internal(
            "net: peer closed mid-frame (injected short read)");
      }
      continue;
    }
    if (rc == 0) {
      if (got == 0 && (any_read == nullptr || !*any_read))
        return Status::NotFound(kCleanClose);
      return Status::Internal("net: peer closed mid-frame (" +
                              std::to_string(got) + "/" + std::to_string(n) +
                              " bytes)");
    }
    if (errno == EINTR) {
      TYDER_COUNT("net.eintr_retries");
      continue;
    }
    return Status::Internal(std::string("net: read failed: ") +
                            strerror(errno));
  }
  return Status::OK();
}

Status WriteFull(int fd, const char* buf, size_t n, Deadline deadline) {
  size_t sent = 0;
  while (sent < n) {
    TYDER_RETURN_IF_ERROR(WaitWritable(fd, deadline));
    // MSG_DONTWAIT, not a blocking write: a blocking write of more bytes
    // than the socket buffer holds parks until the peer drains it — past
    // any deadline. Partial sends loop back through the poll. MSG_NOSIGNAL
    // turns a peer-closed pipe into EPIPE instead of a process-wide SIGPIPE.
    ssize_t rc = ::send(fd, buf + sent, n - sent, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EINTR || errno == EAGAIN ||
                   errno == EWOULDBLOCK))
      continue;
    return Status::Internal(std::string("net: write failed: ") +
                            (rc < 0 ? strerror(errno) : "zero write"));
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload, Deadline deadline) {
  char header[8];
  PutLe32(static_cast<uint32_t>(payload.size()), header);
  PutLe32(storage::Crc32c(payload), header + 4);
  // One buffer, one write path: a frame is never visible half-built unless
  // the transport itself tears it (which the peer's CRC then catches).
  std::string wire;
  wire.reserve(sizeof(header) + payload.size());
  wire.append(header, sizeof(header));
  wire.append(payload);
  return WriteFull(fd, wire.data(), wire.size(), deadline);
}

Result<std::string> ReadFrame(int fd, Deadline deadline, size_t max_frame) {
  char header[8];
  bool any_read = false;
  TYDER_RETURN_IF_ERROR(
      ReadFull(fd, header, sizeof(header), deadline, &any_read));
  uint32_t len = GetLe32(header);
  uint32_t crc = GetLe32(header + 4);
  if (len > max_frame) {
    TYDER_COUNT("net.frame_errors");
    return Status::InvalidArgument("net: frame of " + std::to_string(len) +
                                   " bytes exceeds the " +
                                   std::to_string(max_frame) + "-byte limit");
  }
  std::string payload(len, '\0');
  if (len > 0)
    TYDER_RETURN_IF_ERROR(
        ReadFull(fd, payload.data(), len, deadline, &any_read));
  if (storage::Crc32c(payload) != crc) {
    TYDER_COUNT("net.frame_errors");
    return Status::Internal("net: frame checksum mismatch (" +
                            std::to_string(len) + " bytes)");
  }
  return payload;
}

bool IsCleanClose(const Status& s) {
  return s.code() == StatusCode::kNotFound && s.message() == kCleanClose;
}

}  // namespace tyder::net
