// tyderd's serving core: a multi-client schema service over a
// DurableCatalog that stays correct and available under fault.
//
// Threading model. One accept thread, one reader thread per live
// connection, a fixed pool of worker threads draining a bounded work queue,
// and one reaper thread. A connection carries ONE outstanding request at a
// time (the reader blocks until the worker's response is on the wire before
// reading the next frame), so responses never need correlation ids;
// concurrency comes from many connections sharing the worker pool and the
// group-commit window underneath it.
//
// Admission control — the server answers, it never stalls:
//   * accept with all max_connections slots taken → a RETRY_AFTER frame is
//     written to the new connection and it is closed;
//   * work queue full at enqueue → RETRY_AFTER on that request, connection
//     stays up;
//   * request deadline (protocol.h) already expired when a worker dequeues
//     it → DEADLINE_EXCEEDED, the request never touches the catalog;
//   * idle connections are reaped after idle_timeout_ms;
//   * a reader too slow to drain its response gets write_timeout_ms of
//     patience and is then disconnected (backpressure never parks a worker).
//
// RETRY_AFTER and DEADLINE_EXCEEDED are definitive nacks (the catalog was
// not touched). A mutation that begins executing runs to completion even if
// its deadline lapses meanwhile — aborting a half-applied schema operation
// for latency would trade correctness for punctuality — so a late client
// may get an OK past its deadline, never a torn catalog.
//
// Graceful degradation. When the store drops into read-only degraded mode
// (storage/durable_catalog.h), mutations answer DEGRADED naming the original
// durability failure while ping/health/query keep serving off pinned epoch
// snapshots. The admin `reopen` command re-runs recovery in place with
// traffic still flowing.
//
// Fault points: net.accept (accepted socket dies), net.conn.drop_mid_request
// (connection killed after a request is read, before it executes),
// net.write.response (response write fails AFTER the mutation committed —
// the acked-but-unobserved window the chaos harness verifies), plus the
// frame-level net.read.* points (frame.h).
//
// Observability: net.* counters (accepted, requests, shed, deadline_misses,
// disconnects, response_write_failures, eintr_retries, frame_errors),
// net.queue_depth / net.request_ns histograms, a span per request, and
// flight-recorder marks on shed / degraded refusal / disconnect.

#ifndef TYDER_NET_SERVER_H_
#define TYDER_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "storage/durable_catalog.h"

namespace tyder::net {

struct ServerOptions {
  uint16_t port = 0;  // 0 = ephemeral (tests); port() reports the real one
  int max_connections = 64;
  size_t queue_capacity = 128;
  int workers = 4;
  uint64_t idle_timeout_ms = 60'000;   // 0 = never reap
  uint64_t write_timeout_ms = 5'000;   // slow-reader patience
  uint64_t retry_after_ms = 50;        // hint sent with RETRY_AFTER
  size_t max_frame_bytes = kDefaultMaxFrame;
  // Enables reopen/fault/sleep/shutdown. tyderd sets this from --admin;
  // a non-admin server answers them with ERR FailedPrecondition.
  bool admin = false;
};

// Point-in-time copies of the server's own atomics (independent of the obs
// build mode, so tests assert on them directly).
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t requests = 0;
  uint64_t shed = 0;              // RETRY_AFTER answers (accept + enqueue)
  uint64_t deadline_misses = 0;   // DEADLINE_EXCEEDED answers
  uint64_t disconnects = 0;       // connections torn down for any reason
  uint64_t degraded_refusals = 0;
  uint64_t response_write_failures = 0;  // committed but never acked
};

class Server {
 public:
  // Starts listening and serving immediately. `db` must outlive the server.
  static Result<std::unique_ptr<Server>> Start(storage::DurableCatalog* db,
                                               ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  uint16_t port() const { return port_; }

  // Stops accepting, fails the queue, tears down every connection, joins
  // all threads. Idempotent.
  void Stop();

  // Blocks until an admin `shutdown` request arrives, RequestShutdown() is
  // called, or Stop() runs (tyderd's main thread parks here).
  void WaitForShutdownRequest();
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }
  // Flags shutdown without doing any teardown — a single atomic store, so
  // tyderd's signal handler may call it. WaitForShutdownRequest notices
  // within its poll tick.
  void RequestShutdown() {
    shutdown_requested_.store(true, std::memory_order_release);
  }

  ServerStats stats() const;
  int active_connections() const;

  // Executes one already-parsed request against the catalog — the command
  // registry, exposed for direct unit testing without sockets.
  Response Execute(const Request& request);

 private:
  struct Connection {
    uint64_t id = 0;
    Fd fd;
    std::thread reader;
    std::mutex write_mu;                 // serializes frames onto the wire
    std::atomic<bool> closing{false};    // torn down; stop touching the fd
    std::atomic<bool> reader_done{false};
    std::atomic<int64_t> last_active_ms{0};  // steady-clock ms, for reaping
  };

  struct WorkItem {
    std::shared_ptr<Connection> conn;
    Request request;
    Deadline deadline;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };

  Server(storage::DurableCatalog* db, ServerOptions options)
      : db_(db), options_(options) {}

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();
  void ReaperLoop();

  // Writes `response` to the connection under its write mutex; on failure
  // (slow reader, injected response-write fault) tears the connection down.
  void WriteResponse(Connection& conn, const Response& response);
  void TearDown(Connection& conn);
  void MarkDone(WorkItem& item);

  // Command handlers (called from Execute).
  Response HandleQuery(const Request& request);
  Response HandleHealth();
  Response HandleMutation(const Request& request);
  Response HandleAdmin(const Request& request);
  Response MapMutationFailure(const Status& status);

  storage::DurableCatalog* db_;
  ServerOptions options_;
  uint16_t port_ = 0;
  Fd listener_;

  std::thread accept_thread_;
  std::thread reaper_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  mutable std::mutex conns_mu_;
  std::map<uint64_t, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<WorkItem>> queue_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  std::atomic<bool> shutdown_requested_{false};

  // Server-local stat atomics (see ServerStats).
  std::atomic<uint64_t> n_accepted_{0}, n_requests_{0}, n_shed_{0},
      n_deadline_misses_{0}, n_disconnects_{0}, n_degraded_refusals_{0},
      n_response_write_failures_{0};
};

}  // namespace tyder::net

#endif  // TYDER_NET_SERVER_H_
