#include "net/client.h"

namespace tyder::net {

namespace {
// Extra response-side budget past the server-side deadline: enough for the
// answer (possibly DEADLINE_EXCEEDED, decided at the server) to cross the
// loopback, small enough that a wedged server still fails the call fast.
constexpr uint64_t kResponseGraceMs = 2'000;
}  // namespace

Result<Client> Client::Connect(uint16_t port, uint64_t connect_timeout_ms) {
  TYDER_ASSIGN_OR_RETURN(
      Fd fd, ConnectLoopback(port, Deadline::AfterMs(connect_timeout_ms)));
  return Client(std::move(fd));
}

Result<Response> Client::Call(const Request& request,
                              uint64_t fallback_timeout_ms) {
  sent_without_answer_ = false;
  if (!fd_.valid())
    return Status::FailedPrecondition("client is not connected");
  uint64_t budget_ms = request.deadline_ms == 0
                           ? fallback_timeout_ms
                           : request.deadline_ms + kResponseGraceMs;
  Deadline deadline = Deadline::AfterMs(budget_ms);

  Status sent = WriteFrame(fd_.get(), EncodeRequest(request), deadline);
  if (!sent.ok()) {
    // The request may have partially left the socket buffer; from here on
    // every failure is indeterminate.
    sent_without_answer_ = true;
    fd_.Close();
    return sent;
  }
  sent_without_answer_ = true;
  Result<std::string> frame = ReadFrame(fd_.get(), deadline);
  if (!frame.ok()) {
    fd_.Close();
    return frame.status();
  }
  Result<Response> response = ParseResponse(*frame);
  if (!response.ok()) {
    fd_.Close();
    return response.status();
  }
  sent_without_answer_ = false;
  return response;
}

Result<Response> Client::Call(std::string command,
                              std::vector<std::string> args,
                              uint64_t deadline_ms) {
  Request request;
  request.command = std::move(command);
  request.deadline_ms = deadline_ms;
  request.args = std::move(args);
  return Call(request);
}

}  // namespace tyder::net
