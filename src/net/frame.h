// Length-prefixed, checksummed request/response framing for tyderd.
//
// Wire layout (integers little-endian, matching the WAL record header):
//
//   offset  size  field
//   0       4     payload length n  (must be <= the reader's max_frame)
//   4       4     CRC32C over the payload (storage/crc32c.h)
//   8       n     payload
//
// The checksum turns "the kernel gave us bytes" into "the peer sent these
// bytes": a truncated write, a desynchronized stream, or corruption on the
// way through a proxy all surface as a hard frame error rather than a
// half-parsed request mutating the catalog. Frame errors are CONNECTION
// FATAL — after one, the stream offset can no longer be trusted, so both
// sides close rather than resynchronize by guesswork.
//
// Reads and writes are loops over poll+read/write with an absolute Deadline
// (net/socket.h): a peer that stops mid-frame costs one timeout, not a
// parked thread. EINTR is always retried.
//
// Fault points (registered in common/failpoint.cc):
//   net.read.short   the peer dies mid-frame: ReadFrame returns the same
//                    error a real truncated stream produces
//   net.read.eintr   one synthetic EINTR on the read path, proving the
//                    retry loop (and not errno luck) absorbs signals

#ifndef TYDER_NET_FRAME_H_
#define TYDER_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "net/socket.h"

namespace tyder::net {

// Frames larger than this are refused on both sides (a schema request is
// text; megabytes of it is a protocol error or an attack, not a workload).
constexpr size_t kDefaultMaxFrame = 1 << 20;

// Writes one frame. On any failure the stream must be considered
// desynchronized and the connection closed.
Status WriteFrame(int fd, std::string_view payload, Deadline deadline);

// Reads one frame; empty-payload frames are legal. An EOF before the first
// header byte is reported as kNotFound ("clean close") so servers can tell
// an orderly disconnect from a mid-frame death (kInternal).
Result<std::string> ReadFrame(int fd, Deadline deadline,
                              size_t max_frame = kDefaultMaxFrame);

// True iff `s` is ReadFrame's clean-close signal.
bool IsCleanClose(const Status& s);

}  // namespace tyder::net

#endif  // TYDER_NET_FRAME_H_
