// Minimal loopback TCP plumbing for tyderd (net/server.h) and its client.
//
// Everything here is blocking-with-deadline: sockets stay in blocking mode
// and every read/write/accept first poll(2)s with a timeout derived from the
// caller's Deadline, so a slow or dead peer can never park a server thread
// forever — the poll expires, the caller gets a timeout status, and the
// admission-control layer decides whether that means "reap the connection"
// (idle client) or "shed the response" (slow reader backpressure).
//
// Deadlines are absolute (steady_clock) rather than per-call budgets so a
// request's budget naturally spans the read-parse-execute-respond pipeline:
// each stage polls with whatever is left, not with a fresh allowance.
//
// Only loopback is supported (tyderd is a local schema service, not an
// exposed network daemon); Listen binds 127.0.0.1 and port 0 picks an
// ephemeral port for tests.

#ifndef TYDER_NET_SOCKET_H_
#define TYDER_NET_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "common/result.h"

namespace tyder::net {

// Absolute budget for one operation (or one request pipeline). Infinite()
// never expires; AfterMs(0) is already expired — a zero-deadline request is
// refused, not raced.
class Deadline {
 public:
  static Deadline Infinite() { return Deadline(); }
  static Deadline AfterMs(uint64_t ms) {
    Deadline d;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  bool infinite() const { return !at_.has_value(); }
  bool expired() const {
    return at_.has_value() && std::chrono::steady_clock::now() >= *at_;
  }
  // Remaining budget as a poll(2) timeout: -1 for infinite, else clamped to
  // [0, INT_MAX] milliseconds (0 == already expired: poll just probes).
  int PollTimeoutMs() const;
  // Remaining whole milliseconds (0 when expired; large when infinite).
  uint64_t RemainingMs() const;

 private:
  std::optional<std::chrono::steady_clock::time_point> at_;
};

// Owning file descriptor. Closing twice is a bug this guard makes
// unrepresentable; moved-from guards hold -1.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  // Half-close + full close from another thread wakes a blocked peer loop;
  // shutdown(2) is async-signal-safe with respect to concurrent poll.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

// Binds and listens on 127.0.0.1:`port` (0 = ephemeral); returns the socket
// and reports the actual port through `bound_port`.
Result<Fd> ListenLoopback(uint16_t port, uint16_t* bound_port);

// Accepts one connection, waiting until `deadline`. Timeout and EINTR are
// reported as statuses (see IsTimeout); callers loop.
Result<Fd> Accept(int listen_fd, Deadline deadline);

// Connects to 127.0.0.1:`port`, waiting at most until `deadline`.
Result<Fd> ConnectLoopback(uint16_t port, Deadline deadline);

// Blocks until `fd` is readable/writable or the deadline expires.
Status WaitReadable(int fd, Deadline deadline);
Status WaitWritable(int fd, Deadline deadline);

// True iff `s` is a deadline/idle expiry from this layer (as opposed to a
// real transport failure): the caller distinguishes "reap the idle client"
// from "the peer is gone".
bool IsTimeout(const Status& s);

}  // namespace tyder::net

#endif  // TYDER_NET_SOCKET_H_
