// The tyder1 request/response text protocol carried inside net/frame.h
// frames.
//
// Request payload (lines separated by '\n', no trailing newline required):
//
//   tyder1 <command> <deadline_ms>      magic, command word, per-request
//                                       budget in ms (0 = no deadline)
//   <arg>                               zero or more argument lines; an
//   <arg>                               argument may contain spaces but
//   ...                                 never a newline
//
// Response payload:
//
//   OK                                  executed; body lines follow
//   ERR <CodeName>                      failed; body line 1 is the message
//   RETRY_AFTER <ms>                    load-shed before execution: the
//                                       request was NOT applied, retry later
//   DEADLINE_EXCEEDED                   budget expired before execution
//                                       began: the request was NOT applied
//   DEGRADED                            the store is read-only degraded;
//                                       body line 1 names the original
//                                       durability failure
//
// RETRY_AFTER / DEADLINE_EXCEEDED are definitive nacks: they are only ever
// sent for requests that never reached the catalog (shed at admission or
// expired at dequeue). Once a mutation starts executing it runs to
// completion and the answer is OK or ERR — the one indeterminate window is
// a connection that dies after the request was sent but before any response
// arrives, which the chaos harness (tests/net/chaos.h) accounts for
// explicitly.

#ifndef TYDER_NET_PROTOCOL_H_
#define TYDER_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace tyder::net {

inline constexpr std::string_view kProtocolMagic = "tyder1";

struct Request {
  std::string command;
  uint64_t deadline_ms = 0;  // 0 = unbounded
  std::vector<std::string> args;
};

enum class ResponseKind {
  kOk,
  kErr,
  kRetryAfter,
  kDeadlineExceeded,
  kDegraded,
};

struct Response {
  ResponseKind kind = ResponseKind::kOk;
  StatusCode code = StatusCode::kOk;  // kErr only
  uint64_t retry_after_ms = 0;        // kRetryAfter only
  std::vector<std::string> body;

  bool ok() const { return kind == ResponseKind::kOk; }
  // First body line, or "" — the error/degraded message slot.
  std::string_view message() const {
    return body.empty() ? std::string_view() : std::string_view(body.front());
  }
};

std::string EncodeRequest(const Request& request);
Result<Request> ParseRequest(std::string_view payload);

std::string EncodeResponse(const Response& response);
Result<Response> ParseResponse(std::string_view payload);

// Convenience constructors for the server side.
Response OkResponse(std::vector<std::string> body = {});
Response ErrResponse(const Status& status);
Response RetryAfterResponse(uint64_t ms);
Response DeadlineExceededResponse();
Response DegradedResponse(std::string cause);

// Maps a code name ("NotFound") back to its StatusCode; kInternal for
// anything unrecognized (forward compatibility beats rejection here).
StatusCode StatusCodeFromName(std::string_view name);

}  // namespace tyder::net

#endif  // TYDER_NET_PROTOCOL_H_
