#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "methods/dispatch.h"
#include "objmodel/schema_printer.h"
#include "obs/obs.h"
#include "oracle/differential.h"

namespace tyder::net {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool LooksDegraded(const Status& s) {
  return s.code() == StatusCode::kFailedPrecondition &&
         s.message().find("read-only degraded mode") != std::string::npos;
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Start(storage::DurableCatalog* db,
                                              ServerOptions options) {
  if (db == nullptr)
    return Status::InvalidArgument("Server::Start: null catalog");
  if (options.workers < 1) options.workers = 1;
  if (options.max_connections < 1) options.max_connections = 1;
  if (options.queue_capacity < 1) options.queue_capacity = 1;

  std::unique_ptr<Server> server(new Server(db, options));
  TYDER_ASSIGN_OR_RETURN(server->listener_,
                         ListenLoopback(options.port, &server->port_));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  server->reaper_thread_ = std::thread([s = server.get()] { s->ReaperLoop(); });
  for (int i = 0; i < options.workers; ++i)
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  TYDER_RECORD_V(kMark, "net.server_start",
                 static_cast<int64_t>(server->port_));
  return server;
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the tyderd main thread parked in WaitForShutdownRequest.
  shutdown_cv_.notify_all();

  // Accept and reaper first: no new connections, no concurrent joins of
  // reader threads from the reaper while we tear the map down below.
  if (accept_thread_.joinable()) accept_thread_.join();
  if (reaper_thread_.joinable()) reaper_thread_.join();

  // Workers next: they drain nothing further once stopping_ is set; any
  // request already executing runs to completion and writes its response.
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();

  // Unexecuted queue items get no response — their connections close
  // underneath them, which the protocol defines as an indeterminate
  // outcome. Mark them done so their readers unblock.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (auto& item : queue_) MarkDone(*item);
    queue_.clear();
  }

  // Tear down every connection and join its reader.
  std::map<uint64_t, std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& [id, conn] : conns) {
    TearDown(*conn);
    if (conn->reader.joinable()) conn->reader.join();
  }
  TYDER_RECORD(kMark, "net.server_stop");
}

void Server::WaitForShutdownRequest() {
  // Polling wait (rather than a pure cv sleep) so an async-signal-context
  // RequestShutdown — which may only touch the atomic — is noticed too.
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  while (!shutdown_requested() &&
         !stopping_.load(std::memory_order_acquire)) {
    shutdown_cv_.wait_for(lock, std::chrono::milliseconds(100));
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = n_accepted_.load();
  s.requests = n_requests_.load();
  s.shed = n_shed_.load();
  s.deadline_misses = n_deadline_misses_.load();
  s.disconnects = n_disconnects_.load();
  s.degraded_refusals = n_degraded_refusals_.load();
  s.response_write_failures = n_response_write_failures_.load();
  return s;
}

int Server::active_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return static_cast<int>(conns_.size());
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    // Short poll windows so Stop() is noticed without a wakeup pipe.
    Result<Fd> accepted = Accept(listener_.get(), Deadline::AfterMs(100));
    if (!accepted.ok()) {
      if (IsTimeout(accepted.status())) continue;
      if (stopping_.load(std::memory_order_acquire)) break;
      TYDER_COUNT("net.accept_errors");
      continue;
    }
    n_accepted_.fetch_add(1);
    TYDER_COUNT("net.accepted");

    if (TYDER_FAULT_CONSUME("net.accept")) {
      // The accepted socket dies before the server can service it (FD
      // pressure, peer RST): drop it, keep accepting.
      TYDER_COUNT("net.accept_errors");
      TYDER_RECORD(kMark, "net.accept_fault");
      continue;  // ~Fd closes it
    }

    std::shared_ptr<Connection> conn;
    bool full = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (static_cast<int>(conns_.size()) >= options_.max_connections) {
        full = true;
      } else {
        conn = std::make_shared<Connection>();
        conn->id = next_conn_id_++;
        conn->fd = std::move(*accepted);
        conn->last_active_ms.store(NowMs(), std::memory_order_relaxed);
        conns_.emplace(conn->id, conn);
      }
    }
    if (full) {
      // Shed at the door: answer, don't stall. Best-effort write outside
      // the connection lock — the client may already be gone.
      n_shed_.fetch_add(1);
      TYDER_COUNT("net.shed");
      TYDER_RECORD(kMark, "net.shed_conn");
      (void)WriteFrame(
          accepted->get(),
          EncodeResponse(RetryAfterResponse(options_.retry_after_ms)),
          Deadline::AfterMs(options_.write_timeout_ms));
      continue;
    }
    {
      // Spawned under conns_mu_: a reader that dies instantly (injected
      // accept fault, peer RST) flips reader_done while this assignment is
      // still in flight, and the reaper harvests `reader` under the same
      // lock — unserialized, it can move from a half-assigned thread.
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
    }
  }
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  while (!stopping_.load(std::memory_order_acquire) &&
         !conn->closing.load(std::memory_order_acquire)) {
    Deadline idle = options_.idle_timeout_ms == 0
                        ? Deadline::Infinite()
                        : Deadline::AfterMs(options_.idle_timeout_ms);
    Result<std::string> frame =
        ReadFrame(conn->fd.get(), idle, options_.max_frame_bytes);
    if (!frame.ok()) {
      if (IsTimeout(frame.status())) {
        TYDER_COUNT("net.idle_reaped");
        TYDER_RECORD_V(kMark, "net.idle_reaped",
                       static_cast<int64_t>(conn->id));
      } else if (!IsCleanClose(frame.status())) {
        TYDER_COUNT("net.frame_errors");
      }
      break;
    }
    conn->last_active_ms.store(NowMs(), std::memory_order_relaxed);

    Result<Request> request = ParseRequest(*frame);
    if (!request.ok()) {
      // The frame was intact (CRC passed); the stream stays synchronized,
      // so a malformed request earns an error, not a disconnect.
      WriteResponse(*conn, ErrResponse(request.status()));
      continue;
    }

    if (TYDER_FAULT_CONSUME("net.conn.drop_mid_request")) {
      // The connection dies after the request was read but before it
      // executes: a definitive nack the client cannot observe.
      TYDER_RECORD_V(kMark, "net.drop_mid_request",
                     static_cast<int64_t>(conn->id));
      break;
    }

    auto item = std::make_shared<WorkItem>();
    item->conn = conn;
    item->deadline = request->deadline_ms == 0
                         ? Deadline::Infinite()
                         : Deadline::AfterMs(request->deadline_ms);
    item->request = std::move(*request);
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      if (stopping_.load(std::memory_order_acquire)) break;
      if (queue_.size() >= options_.queue_capacity) {
        lock.unlock();
        n_shed_.fetch_add(1);
        TYDER_COUNT("net.shed");
        TYDER_RECORD_V(kMark, "net.shed_queue",
                       static_cast<int64_t>(options_.queue_capacity));
        WriteResponse(*conn, RetryAfterResponse(options_.retry_after_ms));
        continue;
      }
      queue_.push_back(item);
      TYDER_RECORD_HIST("net.queue_depth",
                        static_cast<int64_t>(queue_.size()));
    }
    queue_cv_.notify_one();

    // One outstanding request per connection: wait for its response to be
    // on the wire (or the connection to be torn down) before reading the
    // next frame.
    std::unique_lock<std::mutex> lock(item->mu);
    item->cv.wait(lock, [&item] { return item->done; });
  }
  TearDown(*conn);
  conn->reader_done.store(true, std::memory_order_release);
}

void Server::WorkerLoop() {
  for (;;) {
    std::shared_ptr<WorkItem> item;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      item = std::move(queue_.front());
      queue_.pop_front();
    }

    Response response;
    if (item->deadline.expired()) {
      // The budget died in the queue: refuse before touching the catalog.
      n_deadline_misses_.fetch_add(1);
      TYDER_COUNT("net.deadline_misses");
      TYDER_RECORD(kMark, "net.deadline_miss");
      response = DeadlineExceededResponse();
    } else {
      TYDER_SPAN("net.request");
      n_requests_.fetch_add(1);
      TYDER_COUNT("net.requests");
      auto start = std::chrono::steady_clock::now();
      response = Execute(item->request);
      TYDER_RECORD_HIST(
          "net.request_ns",
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
    WriteResponse(*item->conn, response);
    MarkDone(*item);
  }
}

void Server::ReaperLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    int64_t now = NowMs();
    std::vector<std::shared_ptr<Connection>> stale;
    std::vector<std::thread> finished;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        Connection& conn = *it->second;
        if (conn.reader_done.load(std::memory_order_acquire)) {
          // The reader exited (disconnect, reap, fault): collect its thread
          // and drop the map's reference.
          finished.push_back(std::move(conn.reader));
          it = conns_.erase(it);
          continue;
        }
        // The frame-read deadline inside ReaderLoop is the primary idle
        // mechanism; this sweep is the backstop for a connection parked in
        // a state that poll alone cannot age out (e.g. mid-frame trickle).
        if (options_.idle_timeout_ms != 0 &&
            now - conn.last_active_ms.load(std::memory_order_relaxed) >
                static_cast<int64_t>(2 * options_.idle_timeout_ms)) {
          stale.push_back(it->second);
        }
        ++it;
      }
    }
    for (std::thread& t : finished)
      if (t.joinable()) t.join();
    for (auto& conn : stale) TearDown(*conn);
  }
}

void Server::WriteResponse(Connection& conn, const Response& response) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  if (conn.closing.load(std::memory_order_acquire)) return;
  if (TYDER_FAULT_CONSUME("net.write.response")) {
    // The client never hears about work that may already be durable — the
    // one indeterminate window the protocol admits. Tear the connection
    // down so the client sees a hard disconnect, not a hang.
    n_response_write_failures_.fetch_add(1);
    TYDER_COUNT("net.response_write_failures");
    TYDER_RECORD(kMark, "net.response_write_fault");
    TearDown(conn);
    return;
  }
  Status written =
      WriteFrame(conn.fd.get(), EncodeResponse(response),
                 Deadline::AfterMs(options_.write_timeout_ms));
  if (!written.ok()) {
    // Slow or dead reader: disconnect rather than park a worker.
    if (IsTimeout(written)) TYDER_COUNT("net.slow_reader_drops");
    n_response_write_failures_.fetch_add(1);
    TYDER_COUNT("net.response_write_failures");
    TearDown(conn);
  }
}

void Server::TearDown(Connection& conn) {
  if (conn.closing.exchange(true)) return;
  n_disconnects_.fetch_add(1);
  TYDER_COUNT("net.disconnects");
  TYDER_RECORD_V(kMark, "net.disconnect", static_cast<int64_t>(conn.id));
  // Shutdown (not close): the reader and a concurrent worker may still hold
  // the fd; the Connection destructor closes it once both let go.
  conn.fd.ShutdownBoth();
}

void Server::MarkDone(WorkItem& item) {
  {
    std::lock_guard<std::mutex> lock(item.mu);
    item.done = true;
  }
  item.cv.notify_all();
}

// --- command registry ------------------------------------------------------

Response Server::Execute(const Request& request) {
  const std::string& cmd = request.command;
  if (cmd == "ping") return OkResponse({"pong"});
  if (cmd == "health") return HandleHealth();
  if (cmd == "query") return HandleQuery(request);
  if (cmd == "project" || cmd == "select" || cmd == "generalize" ||
      cmd == "rename" || cmd == "drop" || cmd == "collapse" || cmd == "save")
    return HandleMutation(request);
  if (cmd == "verify") {
    // Differential oracle over the pinned snapshot: reads-only, safe (and
    // meaningful) even while degraded.
    EpochCatalog::Pin pin = db_->PinSnapshot();
    if (pin.get() == nullptr)
      return ErrResponse(Status::FailedPrecondition("no published epoch"));
    Status checked = oracle::CheckSchemaAgainstOracle(pin->schema());
    if (!checked.ok()) return ErrResponse(checked);
    return OkResponse({"oracle clean at epoch " +
                       std::to_string(pin.version())});
  }
  if (cmd == "reopen" || cmd == "fault" || cmd == "sleep" ||
      cmd == "shutdown")
    return HandleAdmin(request);
  return ErrResponse(
      Status::InvalidArgument("unknown command '" + cmd + "'"));
}

Response Server::HandleHealth() {
  EpochCatalog::Pin pin = db_->PinSnapshot();
  std::vector<std::string> body;
  body.push_back(std::string("status ") +
                 (db_->degraded_now() ? "degraded" : "ok"));
  body.push_back("lsn " + std::to_string(db_->last_lsn()));
  body.push_back("epoch " + std::to_string(pin.version()));
  body.push_back(
      "views " +
      std::to_string(pin.get() != nullptr ? pin->views().size() : 0));
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    body.push_back("connections " + std::to_string(conns_.size()));
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    body.push_back("queue " + std::to_string(queue_.size()));
  }
  return OkResponse(std::move(body));
}

Response Server::HandleQuery(const Request& request) {
  if (request.args.empty())
    return ErrResponse(Status::InvalidArgument(
        "query needs a subcommand: views | schema | subtype | dispatch"));
  EpochCatalog::Pin pin = db_->PinSnapshot();
  if (pin.get() == nullptr)
    return ErrResponse(Status::FailedPrecondition("no published epoch"));
  const Catalog& catalog = *pin;
  const std::string& sub = request.args[0];

  if (sub == "views") {
    std::vector<std::string> body;
    body.reserve(catalog.views().size());
    for (const ViewDef& view : catalog.views()) body.push_back(view.name);
    return OkResponse(std::move(body));
  }
  if (sub == "schema") {
    std::vector<std::string> body;
    std::string printed = PrintHierarchy(catalog.schema().types());
    size_t start = 0;
    while (start < printed.size()) {
      size_t nl = printed.find('\n', start);
      if (nl == std::string::npos) nl = printed.size();
      body.emplace_back(printed.substr(start, nl - start));
      start = nl + 1;
    }
    return OkResponse(std::move(body));
  }
  if (sub == "subtype") {
    if (request.args.size() != 3)
      return ErrResponse(
          Status::InvalidArgument("query subtype needs <TypeA> <TypeB>"));
    const TypeGraph& types = catalog.schema().types();
    auto a = types.FindType(request.args[1]);
    if (!a.ok()) return ErrResponse(a.status());
    auto b = types.FindType(request.args[2]);
    if (!b.ok()) return ErrResponse(b.status());
    return OkResponse({types.IsSubtype(*a, *b) ? "true" : "false"});
  }
  if (sub == "dispatch") {
    if (request.args.size() < 3)
      return ErrResponse(Status::InvalidArgument(
          "query dispatch needs <gf> <ArgType> [<ArgType>...]"));
    const Schema& schema = catalog.schema();
    std::vector<TypeId> arg_types;
    for (size_t i = 2; i < request.args.size(); ++i) {
      auto t = schema.types().FindType(request.args[i]);
      if (!t.ok()) return ErrResponse(t.status());
      arg_types.push_back(*t);
    }
    auto method = DispatchByName(schema, request.args[1], arg_types);
    if (!method.ok()) return ErrResponse(method.status());
    return OkResponse({schema.method(*method).label.str()});
  }
  return ErrResponse(
      Status::InvalidArgument("unknown query subcommand '" + sub + "'"));
}

Response Server::HandleMutation(const Request& request) {
  const std::string& cmd = request.command;
  const std::vector<std::string>& args = request.args;

  if (cmd == "project") {
    if (args.size() < 3 || args.size() > 4)
      return ErrResponse(Status::InvalidArgument(
          "project needs <View> <SourceType> <a,b,c> [noverify]"));
    ProjectionOptions options;
    if (args.size() == 4) {
      if (args[3] != "noverify")
        return ErrResponse(
            Status::InvalidArgument("unknown project flag '" + args[3] + "'"));
      options.verify = false;
    }
    auto view = db_->DefineProjectionView(args[0], args[1],
                                          SplitAndTrim(args[2], ','), options);
    if (!view.ok()) return MapMutationFailure(view.status());
    return OkResponse({"defined " + args[0]});
  }
  if (cmd == "select") {
    if (args.size() != 2)
      return ErrResponse(
          Status::InvalidArgument("select needs <View> <SourceType>"));
    auto view = db_->DefineSelectionView(args[0], args[1]);
    if (!view.ok()) return MapMutationFailure(view.status());
    return OkResponse({"defined " + args[0]});
  }
  if (cmd == "generalize") {
    if (args.size() != 3)
      return ErrResponse(
          Status::InvalidArgument("generalize needs <View> <TypeA> <TypeB>"));
    auto view = db_->DefineGeneralizationView(args[0], args[1], args[2]);
    if (!view.ok()) return MapMutationFailure(view.status());
    return OkResponse({"defined " + args[0]});
  }
  if (cmd == "rename") {
    if (args.size() != 3)
      return ErrResponse(Status::InvalidArgument(
          "rename needs <View> <SourceType> <old=new,...>"));
    std::vector<AttributeRename> renames;
    for (const std::string& pair : SplitAndTrim(args[2], ',')) {
      size_t eq = pair.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size())
        return ErrResponse(Status::InvalidArgument(
            "malformed rename '" + pair + "' (want old=new)"));
      renames.push_back({pair.substr(0, eq), pair.substr(eq + 1)});
    }
    auto view = db_->DefineRenameView(args[0], args[1], renames);
    if (!view.ok()) return MapMutationFailure(view.status());
    return OkResponse({"defined " + args[0]});
  }
  if (cmd == "drop") {
    if (args.size() != 1)
      return ErrResponse(Status::InvalidArgument("drop needs <View>"));
    Status dropped = db_->DropView(args[0]);
    if (!dropped.ok()) return MapMutationFailure(dropped);
    return OkResponse({"dropped " + args[0]});
  }
  if (cmd == "collapse") {
    auto report = db_->Collapse();
    if (!report.ok()) return MapMutationFailure(report.status());
    return OkResponse(
        {"collapsed " + std::to_string(report->collapsed.size())});
  }
  if (cmd == "save") {
    Status compacted = db_->Compact();
    if (!compacted.ok()) return MapMutationFailure(compacted);
    return OkResponse({"compacted at lsn " + std::to_string(db_->last_lsn())});
  }
  return ErrResponse(
      Status::Internal("unrouted mutation '" + cmd + "'"));
}

Response Server::MapMutationFailure(const Status& status) {
  if (LooksDegraded(status)) {
    // The typed degraded answer: reads still work, the cause is named, and
    // an admin reopen is the way out.
    n_degraded_refusals_.fetch_add(1);
    TYDER_COUNT("net.degraded_refusals");
    TYDER_RECORD(kMark, "net.degraded_refusal");
    return DegradedResponse(status.message());
  }
  return ErrResponse(status);
}

Response Server::HandleAdmin(const Request& request) {
  if (!options_.admin)
    return ErrResponse(Status::FailedPrecondition(
        "command '" + request.command +
        "' requires a server started with --admin"));
  const std::string& cmd = request.command;

  if (cmd == "reopen") {
    Status reopened = db_->Reopen();
    if (!reopened.ok()) return ErrResponse(reopened);
    return OkResponse({"recovered at lsn " + std::to_string(db_->last_lsn())});
  }
  if (cmd == "fault") {
    // Arms a registered fault point in-process — the chaos harness drives
    // net.* and storage.* failures through this instead of env vars so a
    // campaign can schedule faults mid-flight.
    if (request.args.size() != 2)
      return ErrResponse(
          Status::InvalidArgument("fault needs <point> <count>"));
    const std::vector<std::string>& known = failpoint::AllFaultPointNames();
    if (std::find(known.begin(), known.end(), request.args[0]) == known.end())
      return ErrResponse(Status::NotFound("unknown fault point '" +
                                          request.args[0] + "'"));
    int count = 0;
    try {
      count = std::stoi(request.args[1]);
    } catch (...) {
      return ErrResponse(Status::InvalidArgument("malformed fault count '" +
                                                 request.args[1] + "'"));
    }
    failpoint::Activate(request.args[0], count);
    return OkResponse({"armed " + request.args[0] + " x" + request.args[1]});
  }
  if (cmd == "sleep") {
    // Test/ops aid: occupies one worker for a bounded time, for driving the
    // admission-control paths (queue fill, deadline expiry) from outside.
    if (request.args.size() != 1)
      return ErrResponse(Status::InvalidArgument("sleep needs <ms>"));
    int ms = 0;
    try {
      ms = std::stoi(request.args[0]);
    } catch (...) {
      return ErrResponse(
          Status::InvalidArgument("malformed sleep ms '" + request.args[0] +
                                  "'"));
    }
    ms = std::clamp(ms, 0, 5000);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return OkResponse({"slept " + std::to_string(ms)});
  }
  if (cmd == "shutdown") {
    shutdown_requested_.store(true, std::memory_order_release);
    shutdown_cv_.notify_all();
    return OkResponse({"shutting down"});
  }
  return ErrResponse(
      Status::Internal("unrouted admin command '" + cmd + "'"));
}

}  // namespace tyder::net
