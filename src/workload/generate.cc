#include "workload/generate.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace tyder::workload {

namespace {

// Weighted pick over small integer-weight lists; total fits easily in int.
template <typename T, typename WeightOf>
size_t WeightedPick(const std::vector<T>& items, WeightOf weight_of,
                    std::mt19937_64& rng) {
  int total = 0;
  for (const T& item : items) total += weight_of(item);
  int roll = static_cast<int>(rng() % static_cast<uint64_t>(total));
  for (size_t i = 0; i < items.size(); ++i) {
    roll -= weight_of(items[i]);
    if (roll < 0) return i;
  }
  return items.size() - 1;
}

struct ZipfSampler {
  std::vector<double> cumulative;  // empty for uniform populations

  static ZipfSampler For(int zipf_centi) {
    ZipfSampler sampler;
    if (zipf_centi <= 0) return sampler;
    std::vector<double> weights = ZipfWeights(zipf_centi / 100.0);
    sampler.cumulative.resize(weights.size());
    double running = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      running += weights[i];
      sampler.cumulative[i] = running;
    }
    return sampler;
  }

  uint32_t Draw(std::mt19937_64& rng) const {
    if (cumulative.empty()) return static_cast<uint32_t>(rng());
    double u = std::uniform_real_distribution<double>(
                   0.0, cumulative.back())(rng);
    auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
    return static_cast<uint32_t>(it - cumulative.begin());
  }
};

}  // namespace

std::vector<double> ZipfWeights(double s) {
  std::vector<double> weights(kZipfRanks);
  for (uint32_t rank = 0; rank < kZipfRanks; ++rank) {
    weights[rank] = 1.0 / std::pow(static_cast<double>(rank + 1), s);
  }
  return weights;
}

Workload GenerateWorkload(const ScenarioSpec& spec) {
  Workload workload;
  workload.spec = spec;
  workload.steps.reserve(spec.TotalOps());
  std::mt19937_64 rng(spec.seed * 0x9E3779B97F4A7C15ull +
                      0x74796465722D776Bull);  // "tyder-wk"
  std::vector<ZipfSampler> samplers;
  samplers.reserve(spec.populations.size());
  for (const Population& pop : spec.populations) {
    samplers.push_back(ZipfSampler::For(pop.zipf_centi));
  }
  for (size_t pi = 0; pi < spec.phases.size(); ++pi) {
    const Phase& phase = spec.phases[pi];
    size_t current = 0;
    for (int i = 0; i < phase.ops; ++i) {
      if (i % phase.burst == 0) {
        current = WeightedPick(
            spec.populations, [](const Population& p) { return p.weight; },
            rng);
      }
      const Population& pop = spec.populations[current];
      WorkloadStep step;
      step.phase = static_cast<uint16_t>(pi);
      step.population = static_cast<uint16_t>(current);
      step.op = pop.mix[WeightedPick(
                            pop.mix, [](const OpWeight& w) { return w.weight; },
                            rng)]
                    .op;
      step.a = samplers[current].Draw(rng);
      step.b = static_cast<uint32_t>(rng());
      step.c = static_cast<uint32_t>(rng());
      workload.steps.push_back(step);
    }
  }
  return workload;
}

size_t ResolveIndex(const ScenarioSpec& spec, const WorkloadStep& step,
                    size_t n) {
  if (spec.populations[step.population].zipf_centi > 0) {
    // `a` is a rank in [0, kZipfRanks): scale onto the candidate list so the
    // head of the distribution stays the head.
    return static_cast<size_t>((static_cast<uint64_t>(step.a % kZipfRanks) *
                                n) /
                               kZipfRanks);
  }
  return step.a % n;
}

}  // namespace tyder::workload
