// Deterministic expansion of a ScenarioSpec into a concrete step list.
//
// GenerateWorkload is a pure function of the spec: the same spec (including
// its seed) produces a byte-identical step list, so a replay that is itself
// deterministic yields the same final catalog fingerprint on every run —
// the property `tyder_workload --check-determinism` and the scenario
// round-trip test pin.
//
// Populations with zipf > 0 draw their primary payload as a *rank* in
// [0, kZipfRanks) from Zipf(s = zipf/100): rank 0 is the hottest. Replay
// scales the rank onto the live candidate list with ResolveIndex, which
// preserves the skew shape regardless of how many candidates exist at that
// point in the run (a plain modulo would smear the head of the distribution
// across the whole list).

#ifndef TYDER_WORKLOAD_GENERATE_H_
#define TYDER_WORKLOAD_GENERATE_H_

#include <cstdint>
#include <vector>

#include "workload/spec.h"

namespace tyder::workload {

// Rank space for Zipf-skewed payloads.
inline constexpr uint32_t kZipfRanks = 1024;

struct WorkloadStep {
  uint16_t phase = 0;       // index into spec.phases
  uint16_t population = 0;  // index into spec.populations
  ScenarioOp op = ScenarioOp::kPing;
  uint32_t a = 0, b = 0, c = 0;  // payloads, resolved at replay time
};

struct Workload {
  ScenarioSpec spec;
  std::vector<WorkloadStep> steps;
};

Workload GenerateWorkload(const ScenarioSpec& spec);

// Maps a step's primary payload onto [0, n). Zipf populations carry a rank
// in [0, kZipfRanks), scaled onto the candidate list; uniform populations
// carry a full-range draw taken modulo n. n must be > 0.
size_t ResolveIndex(const ScenarioSpec& spec, const WorkloadStep& step,
                    size_t n);

// The un-normalized Zipf(s) weight table over kZipfRanks ranks, exposed so
// tests can pin the skew shape the generator samples from.
std::vector<double> ZipfWeights(double s);

}  // namespace tyder::workload

#endif  // TYDER_WORKLOAD_GENERATE_H_
