// Scenario specs for the macro-workload harness (ROADMAP item 5).
//
// A *scenario* is a declarative description of sustained, multi-population
// traffic against the schema engine: a seeded random-schema recipe (the same
// recipe the fuzzer embeds in tyder-fuzz-trace v1), a set of weighted client
// populations (each with its own operation mix and optional Zipf skew), and
// a list of phases (op counts, burstiness, pacing, and armed fault points
// for crash steps). Scenarios are checked in as text packs under
// bench/scenarios/*.scn; FormatScenario ∘ ParseScenario is the identity on
// canonical packs, and GenerateWorkload expands a spec into a deterministic
// step list (same spec ⇒ byte-identical workload).
//
// The text form (tyder-scenario v1) deliberately mirrors the fuzz-trace
// grammar: line-oriented, '#' comments, a `schema` key=value line, an `end`
// terminator. Canonical form — what FormatScenario prints — has every key
// present, in fixed order, with no comments, so the round-trip test can
// require byte identity on the checked-in packs.

#ifndef TYDER_WORKLOAD_SPEC_H_
#define TYDER_WORKLOAD_SPEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "workload/random_schema.h"

namespace tyder::workload {

// The operation vocabulary a population mixes over. Mutations and queries
// resolve their integer payloads against the live catalog at replay time
// (like fuzz ops); kCrash steps run the phase's armed fault points against
// an ephemeral durable catalog and adopt the recovered state.
enum class ScenarioOp {
  kProject,     // define a projection view over a live type
  kGeneralize,  // define a generalization view over two live types
  kDrop,        // drop a live view
  kCollapse,    // empty-surrogate reduction
  kNewType,     // declare a type subtyping a live type
  kNewAttr,     // declare an attribute on a live type
  kNewEdge,     // add a supertype edge between live types
  kSubtype,     // IsSubtype query over a (possibly skewed) type pair
  kDispatch,    // generic-function dispatch over (possibly skewed) args
  kViews,       // enumerate the view registry
  kPing,        // liveness no-op (wire: round-trip; in-proc: counted read)
  kCrash,       // fault-injected durable round trip (needs phase faults)
};

// Canonical lower-case token for the text form.
std::string_view ScenarioOpName(ScenarioOp op);
bool ScenarioOpFromName(std::string_view name, ScenarioOp* out);
bool IsMutation(ScenarioOp op);

// The fuzzer's SchemaParams, restated here so libtyder does not depend on
// test code. Field-for-field compatible with the fuzz-trace `schema` line.
struct SchemaRecipe {
  uint32_t seed = 1;
  int types = 10;
  int supers = 2;
  int attrs = 2;
  int gfs = 6;
  int methods_per_gf = 2;
  int stmts = 3;
  bool mutators = true;

  RandomSchemaOptions ToOptions() const;
};

struct OpWeight {
  ScenarioOp op = ScenarioOp::kPing;
  int weight = 1;
};

// A client population: a named share of the traffic with its own op mix.
// zipf_centi > 0 skews the primary payload of every step this population
// issues: payloads are ranks drawn from Zipf(s = zipf_centi / 100) over
// kZipfRanks ranks, so low-numbered (old, hot) catalog entries dominate.
struct Population {
  std::string name;
  int weight = 1;
  int zipf_centi = 0;
  std::vector<OpWeight> mix;
};

// A phase: `ops` steps, re-drawing the issuing population every `burst`
// steps. `pace_us` is honored only by timed replays (sleep between steps).
// `faults` are the tokens kCrash steps arm, round-robin by payload:
// `storage.*` failpoint names, or `env.{error,short,sync,enospc}@N` for the
// Nth FaultyEnv call. `power_loss_pct` is the chance a crash step also
// simulates power loss after the fault.
struct Phase {
  std::string label;
  int ops = 100;
  int burst = 1;
  int pace_us = 0;
  std::vector<std::string> faults;
  int power_loss_pct = 0;
};

enum class ScenarioMode {
  kInProc,  // oracle-lockstep replay against an in-process catalog
  kWire,    // driven over the tyder1 protocol against a live tyderd
};

// Name anchors for wire mode, where payloads must render to real schema
// entities of the served database (e.g. examples/payroll.tdl). In-proc
// replay ignores this block and resolves payloads against the live catalog.
struct WireTargets {
  std::string source;                // projection source type
  std::vector<std::string> attrs;    // projected attribute pool
  std::vector<std::string> targets;  // subtype-query type pool
  std::vector<std::string> gfs;      // dispatch generic-function pool
};

struct ScenarioSpec {
  std::string name;
  uint64_t seed = 1;
  ScenarioMode mode = ScenarioMode::kInProc;
  SchemaRecipe schema;
  int oracle_every = 0;  // in-proc: full oracle sweep every N steps; 0 = off
  WireTargets wire;      // meaningful only when mode == kWire
  std::vector<Population> populations;
  std::vector<Phase> phases;

  size_t TotalOps() const;
};

// Canonical text form. ParseScenario accepts comments and blank lines;
// FormatScenario never emits them, and re-formatting a parsed canonical
// pack reproduces it byte-identically.
std::string FormatScenario(const ScenarioSpec& spec);
Result<ScenarioSpec> ParseScenario(std::string_view text);

}  // namespace tyder::workload

#endif  // TYDER_WORKLOAD_SPEC_H_
