#include "workload/spec.h"

#include <cstdlib>
#include <sstream>

namespace tyder::workload {

namespace {

constexpr ScenarioOp kAllOps[] = {
    ScenarioOp::kProject, ScenarioOp::kGeneralize, ScenarioOp::kDrop,
    ScenarioOp::kCollapse, ScenarioOp::kNewType,   ScenarioOp::kNewAttr,
    ScenarioOp::kNewEdge,  ScenarioOp::kSubtype,   ScenarioOp::kDispatch,
    ScenarioOp::kViews,    ScenarioOp::kPing,      ScenarioOp::kCrash,
};

std::vector<std::string> SplitCsv(std::string_view csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string_view::npos) comma = csv.size();
    if (comma > start) out.emplace_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::string JoinCsv(const std::vector<std::string>& items) {
  if (items.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ',';
    out += items[i];
  }
  return out;
}

// A single token with no whitespace (names, labels, fault points).
bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == ',' || c == '=') return false;
  }
  return true;
}

}  // namespace

std::string_view ScenarioOpName(ScenarioOp op) {
  switch (op) {
    case ScenarioOp::kProject:    return "project";
    case ScenarioOp::kGeneralize: return "generalize";
    case ScenarioOp::kDrop:       return "drop";
    case ScenarioOp::kCollapse:   return "collapse";
    case ScenarioOp::kNewType:    return "newtype";
    case ScenarioOp::kNewAttr:    return "newattr";
    case ScenarioOp::kNewEdge:    return "newedge";
    case ScenarioOp::kSubtype:    return "subtype";
    case ScenarioOp::kDispatch:   return "dispatch";
    case ScenarioOp::kViews:      return "views";
    case ScenarioOp::kPing:       return "ping";
    case ScenarioOp::kCrash:      return "crash";
  }
  return "?";
}

bool ScenarioOpFromName(std::string_view name, ScenarioOp* out) {
  for (ScenarioOp op : kAllOps) {
    if (name == ScenarioOpName(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

bool IsMutation(ScenarioOp op) {
  switch (op) {
    case ScenarioOp::kProject:
    case ScenarioOp::kGeneralize:
    case ScenarioOp::kDrop:
    case ScenarioOp::kCollapse:
    case ScenarioOp::kNewType:
    case ScenarioOp::kNewAttr:
    case ScenarioOp::kNewEdge:
      return true;
    default:
      return false;
  }
}

RandomSchemaOptions SchemaRecipe::ToOptions() const {
  RandomSchemaOptions options;
  options.seed = seed;
  options.num_types = types;
  options.max_supers = supers;
  options.attrs_per_type = attrs;
  options.num_general_methods = gfs;
  options.methods_per_gf = methods_per_gf;
  options.max_stmts_per_body = stmts;
  options.with_mutators = mutators;
  return options;
}

size_t ScenarioSpec::TotalOps() const {
  size_t total = 0;
  for (const Phase& phase : phases) total += static_cast<size_t>(phase.ops);
  return total;
}

std::string FormatScenario(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "tyder-scenario v1\n";
  out << "name " << spec.name << "\n";
  out << "seed " << spec.seed << "\n";
  out << "mode " << (spec.mode == ScenarioMode::kWire ? "wire" : "inproc")
      << "\n";
  out << "schema seed=" << spec.schema.seed << " types=" << spec.schema.types
      << " supers=" << spec.schema.supers << " attrs=" << spec.schema.attrs
      << " gfs=" << spec.schema.gfs << " mpg=" << spec.schema.methods_per_gf
      << " stmts=" << spec.schema.stmts
      << " mutators=" << (spec.schema.mutators ? 1 : 0) << "\n";
  out << "oracle every=" << spec.oracle_every << "\n";
  if (spec.mode == ScenarioMode::kWire) {
    out << "wire source=" << (spec.wire.source.empty() ? "-" : spec.wire.source)
        << " attrs=" << JoinCsv(spec.wire.attrs)
        << " targets=" << JoinCsv(spec.wire.targets)
        << " gfs=" << JoinCsv(spec.wire.gfs) << "\n";
  }
  for (const Population& pop : spec.populations) {
    out << "population " << pop.name << " weight=" << pop.weight
        << " zipf=" << pop.zipf_centi << " mix=";
    for (size_t i = 0; i < pop.mix.size(); ++i) {
      if (i > 0) out << ",";
      out << ScenarioOpName(pop.mix[i].op) << ":" << pop.mix[i].weight;
    }
    out << "\n";
  }
  for (const Phase& phase : spec.phases) {
    out << "phase " << phase.label << " ops=" << phase.ops
        << " burst=" << phase.burst << " pace_us=" << phase.pace_us
        << " faults=" << (phase.faults.empty() ? "none" : JoinCsv(phase.faults))
        << " power_loss_pct=" << phase.power_loss_pct << "\n";
  }
  out << "end\n";
  return out.str();
}

Result<ScenarioSpec> ParseScenario(std::string_view text) {
  ScenarioSpec spec;
  spec.oracle_every = 0;
  std::istringstream in{std::string(text)};
  std::string line;
  int state = 0;  // 0: expect header, 1: body, 2: done
  int lineno = 0;
  bool have_name = false;
  while (std::getline(in, line)) {
    ++lineno;
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    size_t stop = line.find_last_not_of(" \t\r");
    std::string body = line.substr(start, stop - start + 1);
    if (body.empty() || body[0] == '#') continue;
    auto err = [&](const std::string& msg) {
      return Status::ParseError("scenario line " + std::to_string(lineno) +
                                ": " + msg);
    };
    if (state == 0) {
      if (body != "tyder-scenario v1") {
        return err("expected 'tyder-scenario v1' header");
      }
      state = 1;
      continue;
    }
    if (state == 2) return err("content after 'end'");
    if (body == "end") {
      state = 2;
      continue;
    }
    std::istringstream fields(body);
    std::string tag;
    fields >> tag;
    if (tag == "name") {
      fields >> spec.name;
      if (!IsToken(spec.name)) return err("name must be a single token");
      have_name = true;
      continue;
    }
    if (tag == "seed") {
      fields >> spec.seed;
      continue;
    }
    if (tag == "mode") {
      std::string mode;
      fields >> mode;
      if (mode == "inproc") spec.mode = ScenarioMode::kInProc;
      else if (mode == "wire") spec.mode = ScenarioMode::kWire;
      else return err("mode must be 'inproc' or 'wire'");
      continue;
    }
    if (tag == "schema") {
      std::string kv;
      while (fields >> kv) {
        size_t eq = kv.find('=');
        if (eq == std::string::npos) return err("malformed '" + kv + "'");
        std::string key = kv.substr(0, eq);
        long value = std::atol(kv.c_str() + eq + 1);
        if (key == "seed") spec.schema.seed = static_cast<uint32_t>(value);
        else if (key == "types") spec.schema.types = static_cast<int>(value);
        else if (key == "supers") spec.schema.supers = static_cast<int>(value);
        else if (key == "attrs") spec.schema.attrs = static_cast<int>(value);
        else if (key == "gfs") spec.schema.gfs = static_cast<int>(value);
        else if (key == "mpg")
          spec.schema.methods_per_gf = static_cast<int>(value);
        else if (key == "stmts") spec.schema.stmts = static_cast<int>(value);
        else if (key == "mutators") spec.schema.mutators = value != 0;
        else return err("unknown schema field '" + key + "'");
      }
      continue;
    }
    if (tag == "oracle") {
      std::string kv;
      fields >> kv;
      if (kv.rfind("every=", 0) != 0) return err("expected 'oracle every=N'");
      spec.oracle_every = std::atoi(kv.c_str() + 6);
      if (spec.oracle_every < 0) return err("oracle every must be >= 0");
      continue;
    }
    if (tag == "wire") {
      std::string kv;
      while (fields >> kv) {
        size_t eq = kv.find('=');
        if (eq == std::string::npos) return err("malformed '" + kv + "'");
        std::string key = kv.substr(0, eq);
        std::string value = kv.substr(eq + 1);
        if (value == "-") value.clear();
        if (key == "source") spec.wire.source = value;
        else if (key == "attrs") spec.wire.attrs = SplitCsv(value);
        else if (key == "targets") spec.wire.targets = SplitCsv(value);
        else if (key == "gfs") spec.wire.gfs = SplitCsv(value);
        else return err("unknown wire field '" + key + "'");
      }
      continue;
    }
    if (tag == "population") {
      Population pop;
      fields >> pop.name;
      if (!IsToken(pop.name)) return err("population needs a name token");
      for (const Population& existing : spec.populations) {
        if (existing.name == pop.name) {
          return err("duplicate population '" + pop.name + "'");
        }
      }
      std::string kv;
      while (fields >> kv) {
        size_t eq = kv.find('=');
        if (eq == std::string::npos) return err("malformed '" + kv + "'");
        std::string key = kv.substr(0, eq);
        std::string value = kv.substr(eq + 1);
        if (key == "weight") pop.weight = std::atoi(value.c_str());
        else if (key == "zipf") pop.zipf_centi = std::atoi(value.c_str());
        else if (key == "mix") {
          pop.mix.clear();
          for (const std::string& entry : SplitCsv(value)) {
            size_t colon = entry.find(':');
            if (colon == std::string::npos) {
              return err("mix entry '" + entry + "' needs op:weight");
            }
            OpWeight w;
            if (!ScenarioOpFromName(entry.substr(0, colon), &w.op)) {
              return err("unknown op '" + entry.substr(0, colon) + "'");
            }
            w.weight = std::atoi(entry.c_str() + colon + 1);
            if (w.weight <= 0) return err("mix weights must be positive");
            pop.mix.push_back(w);
          }
        } else {
          return err("unknown population field '" + key + "'");
        }
      }
      if (pop.weight <= 0) return err("population weight must be positive");
      if (pop.zipf_centi < 0) return err("zipf must be >= 0");
      if (pop.mix.empty()) return err("population needs a non-empty mix");
      spec.populations.push_back(std::move(pop));
      continue;
    }
    if (tag == "phase") {
      Phase phase;
      fields >> phase.label;
      if (!IsToken(phase.label)) return err("phase needs a label token");
      std::string kv;
      while (fields >> kv) {
        size_t eq = kv.find('=');
        if (eq == std::string::npos) return err("malformed '" + kv + "'");
        std::string key = kv.substr(0, eq);
        std::string value = kv.substr(eq + 1);
        if (key == "ops") phase.ops = std::atoi(value.c_str());
        else if (key == "burst") phase.burst = std::atoi(value.c_str());
        else if (key == "pace_us") phase.pace_us = std::atoi(value.c_str());
        else if (key == "faults") {
          phase.faults =
              value == "none" ? std::vector<std::string>{} : SplitCsv(value);
          for (const std::string& fault : phase.faults) {
            if (!IsToken(fault)) return err("bad fault token '" + fault + "'");
          }
        } else if (key == "power_loss_pct") {
          phase.power_loss_pct = std::atoi(value.c_str());
        } else {
          return err("unknown phase field '" + key + "'");
        }
      }
      if (phase.ops <= 0) return err("phase ops must be positive");
      if (phase.burst <= 0) return err("phase burst must be positive");
      if (phase.pace_us < 0) return err("phase pace_us must be >= 0");
      if (phase.power_loss_pct < 0 || phase.power_loss_pct > 100) {
        return err("power_loss_pct must be in [0, 100]");
      }
      spec.phases.push_back(std::move(phase));
      continue;
    }
    return err("unknown directive '" + tag + "'");
  }
  if (state != 2) return Status::ParseError("scenario has no 'end' terminator");
  if (!have_name) return Status::ParseError("scenario has no name");
  if (spec.populations.empty()) {
    return Status::ParseError("scenario has no populations");
  }
  if (spec.phases.empty()) return Status::ParseError("scenario has no phases");
  return spec;
}

}  // namespace tyder::workload
