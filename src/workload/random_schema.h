// Seeded random schema generation for property-based testing: arbitrary
// multiple-inheritance DAGs, attributes, accessors, and general methods with
// type-correct bodies (accessor calls, nested generic-function calls, local
// declarations and assignments that exercise the Section 6.3/6.4 machinery).

#ifndef TYDER_WORKLOAD_RANDOM_SCHEMA_H_
#define TYDER_WORKLOAD_RANDOM_SCHEMA_H_

#include <cstdint>
#include <random>

#include "common/result.h"
#include "methods/schema.h"

namespace tyder::workload {

struct RandomSchemaOptions {
  uint32_t seed = 1;
  int num_types = 12;
  int max_supers = 3;        // per type, drawn from earlier types (acyclic)
  int attrs_per_type = 2;
  int num_general_methods = 10;
  int max_stmts_per_body = 4;
  bool with_mutators = false;
  // Methods per general generic function. The default (1) reproduces the
  // historical one-method-per-gf schemas byte-for-byte (seeded draws are
  // unchanged). Values > 1 add extra multi-methods whose formals are drawn
  // from the supertype closures of the first method's formals — overlapping
  // applicability with varied specificity, so dispatch ordering is
  // non-trivial (multiple applicable methods, CPL-dependent winners).
  int methods_per_gf = 1;
};

// Always returns a schema that passes Validate() and TypeCheckSchema().
Result<Schema> GenerateRandomSchema(const RandomSchemaOptions& options);

// A random projection request over the generated schema: a non-builtin type
// with at least one cumulative attribute, plus a random non-empty subset of
// its cumulative attributes. Returns false if the schema has no such type.
bool PickRandomProjection(const Schema& schema, uint32_t seed, TypeId* source,
                          std::vector<AttrId>* attributes);

}  // namespace tyder::workload

#endif  // TYDER_WORKLOAD_RANDOM_SCHEMA_H_
