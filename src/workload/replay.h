// Replay drivers for generated workloads (ROADMAP item 5).
//
// ReplayInProc drives the step list against an in-process Catalog with the
// differential oracle in lockstep (every spec.oracle_every steps), resolving
// payloads against the live candidate lists exactly like fuzz ops. kCrash
// steps run the phase's armed fault points — storage failpoints or FaultyEnv
// injections, optionally followed by a simulated power loss — against an
// ephemeral DurableCatalog seeded from the live catalog, require recovery to
// land byte-identical to the pre- or post-state of the interrupted op, and
// adopt the recovered catalog (the fuzzer's kCrash/kEnvFault contract).
//
// ReplayOverWire drives the same step list over the tyder1 protocol against
// a live tyderd, one thread per population, keeping a chaos-style
// acked/nacked/indeterminate ledger per worker (workers own disjoint view
// namespaces, so the merged ledger is conflict-free) and verifying it — plus
// server health and the server-side `verify` oracle — at the end.
//
// Both replays are deterministic for a fixed workload: in-proc runs produce
// the same final catalog fingerprint every time; wire runs produce the same
// command sequence per population (server-side interleaving may vary, which
// is why wire runs are verified by ledger rather than by fingerprint).

#ifndef TYDER_WORKLOAD_REPLAY_H_
#define TYDER_WORKLOAD_REPLAY_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "obs/histogram.h"
#include "workload/generate.h"

namespace tyder::workload {

struct ScenarioReport {
  std::string scenario;

  // Step accounting. `refusals` are engine-refused mutations (legal,
  // all-or-nothing outcomes); `skipped` are steps with no live candidate or
  // no wire rendering.
  uint64_t steps = 0;
  uint64_t mutations = 0;
  uint64_t reads = 0;
  uint64_t refusals = 0;
  uint64_t skipped = 0;

  // Durability churn (in-proc kCrash steps).
  uint64_t crashes = 0;
  uint64_t power_losses = 0;
  uint64_t recoveries = 0;

  // Oracle lockstep (in-proc) or server-side `verify` (wire).
  uint64_t oracle_passes = 0;
  bool oracle_clean = true;

  // Wire ledger.
  uint64_t acked = 0;
  uint64_t nacked = 0;
  uint64_t indeterminate = 0;
  uint64_t reconnects = 0;
  bool ledger_clean = true;

  // Timing. Latency snapshots come from the obs histogram machinery;
  // wire-mode per-population histograms are merged into one.
  double elapsed_s = 0.0;
  obs::Histogram::Snapshot mutation_ns;
  obs::Histogram::Snapshot read_ns;
  obs::Histogram::Snapshot recovery_ns;

  // Final-state fingerprint: in-proc, CRC of the serialized catalog; wire,
  // CRC of the sorted server view registry.
  uint32_t final_crc = 0;
  uint64_t final_types = 0;
  uint64_t final_views = 0;
};

struct ReplayOptions {
  // Honor phase pace_us between steps (sustained-load mode). Untimed replay
  // runs flat out — the deterministic CI mode.
  bool timed = false;
  // Override spec.oracle_every; -1 keeps the spec's value.
  int oracle_every = -1;
  // Wire mode: per-request deadline.
  uint64_t deadline_ms = 2'000;
};

Result<ScenarioReport> ReplayInProc(const Workload& workload,
                                    const ReplayOptions& options = {});

Result<ScenarioReport> ReplayOverWire(const Workload& workload, uint16_t port,
                                      const ReplayOptions& options = {});

}  // namespace tyder::workload

#endif  // TYDER_WORKLOAD_REPLAY_H_
