#include "workload/random_schema.h"

#include <algorithm>
#include <set>

#include "methods/accessor_gen.h"
#include "mir/builder.h"
#include "mir/type_check.h"

namespace tyder::workload {

namespace {

class Generator {
 public:
  explicit Generator(const RandomSchemaOptions& options)
      : options_(options), rng_(options.seed) {}

  Result<Schema> Run() {
    TYDER_ASSIGN_OR_RETURN(schema_, Schema::Create());
    TYDER_RETURN_IF_ERROR(MakeTypes());
    TYDER_RETURN_IF_ERROR(MakeAttributes());
    TYDER_RETURN_IF_ERROR(GenerateAllAccessors(schema_, options_.with_mutators));
    TYDER_RETURN_IF_ERROR(MakeMethods());
    TYDER_RETURN_IF_ERROR(schema_.Validate());
    TYDER_RETURN_IF_ERROR(TypeCheckSchema(schema_));
    return std::move(schema_);
  }

 private:
  int Rand(int max_exclusive) {
    return std::uniform_int_distribution<int>(0, max_exclusive - 1)(rng_);
  }

  Status MakeTypes() {
    for (int i = 0; i < options_.num_types; ++i) {
      TYDER_ASSIGN_OR_RETURN(TypeId id,
                             schema_.types().DeclareType(
                                 "T" + std::to_string(i), TypeKind::kUser));
      user_types_.push_back(id);
      if (i == 0) continue;
      // Supertypes drawn from earlier types: acyclic by construction.
      int num_supers = Rand(std::min(options_.max_supers, i) + 1);
      std::set<TypeId> chosen;
      for (int k = 0; k < num_supers; ++k) {
        chosen.insert(user_types_[Rand(i)]);
      }
      for (TypeId super : chosen) {
        TYDER_RETURN_IF_ERROR(schema_.types().AddSupertype(id, super));
      }
    }
    return Status::OK();
  }

  Status MakeAttributes() {
    for (size_t i = 0; i < user_types_.size(); ++i) {
      for (int j = 0; j < options_.attrs_per_type; ++j) {
        std::string name = "t" + std::to_string(i) + "_a" + std::to_string(j);
        TYDER_RETURN_IF_ERROR(schema_.types()
                                  .DeclareAttribute(user_types_[i], name,
                                                    schema_.builtins().int_type)
                                  .status());
      }
    }
    return Status::OK();
  }

  // Picks a parameter (index) of the method under construction whose type is
  // related to `formal` (either direction); -1 if none.
  int RelatedParam(const std::vector<TypeId>& params, TypeId formal) {
    std::vector<int> candidates;
    for (size_t i = 0; i < params.size(); ++i) {
      if (schema_.types().IsSubtype(params[i], formal) ||
          schema_.types().IsSubtype(formal, params[i])) {
        candidates.push_back(static_cast<int>(i));
      }
    }
    if (candidates.empty()) return -1;
    return candidates[Rand(static_cast<int>(candidates.size()))];
  }

  Status MakeMethods() {
    // Pre-declare the generic functions so arities are fixed.
    std::vector<GfId> gfs;
    for (int i = 0; i < options_.num_general_methods; ++i) {
      TYDER_ASSIGN_OR_RETURN(
          GfId gf, schema_.DeclareGenericFunction("m" + std::to_string(i),
                                                  1 + Rand(2)));
      gfs.push_back(gf);
    }
    for (int i = 0; i < options_.num_general_methods; ++i) {
      GfId gf = gfs[static_cast<size_t>(i)];
      Method m;
      m.label = Symbol::Intern("m" + std::to_string(i) + "_impl");
      m.gf = gf;
      m.kind = MethodKind::kGeneral;
      for (int p = 0; p < schema_.gf(gf).arity; ++p) {
        m.sig.params.push_back(
            user_types_[Rand(static_cast<int>(user_types_.size()))]);
        m.param_names.push_back(Symbol::Intern("p" + std::to_string(p)));
      }
      m.sig.result = schema_.builtins().void_type;
      std::vector<TypeId> base_params = m.sig.params;
      m.body = MakeBody(m.sig.params, added_methods_);
      TYDER_ASSIGN_OR_RETURN(MethodId added, schema_.AddMethod(std::move(m)));
      added_methods_.push_back(added);
      // Extra multi-methods on the same gf: each formal is either lifted to
      // a random supertype of the base method's formal (keeping the two
      // methods' applicable sets overlapping, with the base more specific at
      // that position) or redrawn fresh (disjoint or crosswise overlap).
      // Draws happen only when methods_per_gf > 1, so the historical seeded
      // schemas are unchanged.
      for (int j = 1; j < options_.methods_per_gf; ++j) {
        Method extra;
        extra.label = Symbol::Intern("m" + std::to_string(i) + "_impl" +
                                     std::to_string(j));
        extra.gf = gf;
        extra.kind = MethodKind::kGeneral;
        for (int p = 0; p < schema_.gf(gf).arity; ++p) {
          TypeId formal;
          if (Rand(2) == 0) {
            std::vector<TypeId> supers =
                schema_.types().SupertypeClosure(base_params[p]);
            formal = supers[Rand(static_cast<int>(supers.size()))];
          } else {
            formal = user_types_[Rand(static_cast<int>(user_types_.size()))];
          }
          extra.sig.params.push_back(formal);
          extra.param_names.push_back(Symbol::Intern("p" + std::to_string(p)));
        }
        extra.sig.result = schema_.builtins().void_type;
        extra.body = MakeBody(extra.sig.params, added_methods_);
        TYDER_ASSIGN_OR_RETURN(MethodId added_extra,
                               schema_.AddMethod(std::move(extra)));
        added_methods_.push_back(added_extra);
      }
    }
    return Status::OK();
  }

  ExprPtr MakeBody(const std::vector<TypeId>& params,
                   const std::vector<MethodId>& callable) {
    std::vector<ExprPtr> stmts;
    int num_stmts = 1 + Rand(options_.max_stmts_per_body);
    int num_locals = 0;
    int variants = options_.with_mutators ? 5 : 4;
    for (int s = 0; s < num_stmts; ++s) {
      switch (Rand(variants)) {
        case 0: {  // accessor call on a random parameter
          int p = Rand(static_cast<int>(params.size()));
          std::vector<AttrId> attrs =
              schema_.types().CumulativeAttributes(params[p]);
          if (attrs.empty()) break;
          AttrId attr = attrs[Rand(static_cast<int>(attrs.size()))];
          MethodId reader = schema_.ReaderOf(attr);
          if (reader == kInvalidMethod) break;
          stmts.push_back(mir::ExprStmt(
              mir::Call(schema_.method(reader).gf, {mir::Param(p)})));
          break;
        }
        case 1: {  // call an already-defined general method, related args
          if (callable.empty()) break;
          MethodId target = callable[Rand(static_cast<int>(callable.size()))];
          const Method& tm = schema_.method(target);
          std::vector<ExprPtr> args;
          bool feasible = true;
          for (TypeId formal : tm.sig.params) {
            int p = RelatedParam(params, formal);
            if (p < 0) {
              feasible = false;
              break;
            }
            args.push_back(mir::Param(p));
          }
          if (feasible) {
            stmts.push_back(mir::ExprStmt(mir::Call(tm.gf, std::move(args))));
          }
          break;
        }
        case 2: {  // local declaration initialized from a parameter, at a
                   // random supertype — exercises retyping and Augment
          int p = Rand(static_cast<int>(params.size()));
          std::vector<TypeId> supers =
              schema_.types().SupertypeClosure(params[p]);
          TypeId decl_type = supers[Rand(static_cast<int>(supers.size()))];
          std::string var = "v" + std::to_string(num_locals++);
          stmts.push_back(mir::Decl(var, decl_type, mir::Param(p)));
          break;
        }
        case 3: {  // branch on a reader comparison — control-flow coverage
          int p = Rand(static_cast<int>(params.size()));
          std::vector<AttrId> attrs =
              schema_.types().CumulativeAttributes(params[p]);
          if (attrs.empty()) break;
          AttrId attr = attrs[Rand(static_cast<int>(attrs.size()))];
          MethodId reader = schema_.ReaderOf(attr);
          if (reader == kInvalidMethod) break;
          ExprPtr cond = mir::BinOp(
              BinOpKind::kLt,
              mir::Call(schema_.method(reader).gf, {mir::Param(p)}),
              mir::IntLit(Rand(100)));
          stmts.push_back(mir::If(std::move(cond),
                                  mir::Seq({mir::Return()}), mir::Seq({})));
          break;
        }
        case 4: {  // mutator call — writes are method behavior too
          int p = Rand(static_cast<int>(params.size()));
          std::vector<AttrId> attrs =
              schema_.types().CumulativeAttributes(params[p]);
          if (attrs.empty()) break;
          AttrId attr = attrs[Rand(static_cast<int>(attrs.size()))];
          MethodId mutator = schema_.MutatorOf(attr);
          if (mutator == kInvalidMethod) break;
          stmts.push_back(mir::ExprStmt(
              mir::Call(schema_.method(mutator).gf,
                        {mir::Param(p), mir::IntLit(Rand(1000))})));
          break;
        }
      }
    }
    return mir::Seq(std::move(stmts));
  }

  RandomSchemaOptions options_;
  std::mt19937 rng_;
  Schema schema_;
  std::vector<TypeId> user_types_;
  std::vector<MethodId> added_methods_;
};

}  // namespace

Result<Schema> GenerateRandomSchema(const RandomSchemaOptions& options) {
  return Generator(options).Run();
}

bool PickRandomProjection(const Schema& schema, uint32_t seed, TypeId* source,
                          std::vector<AttrId>* attributes) {
  std::mt19937 rng(seed);
  std::vector<TypeId> candidates;
  for (TypeId t = 0; t < schema.types().NumTypes(); ++t) {
    if (schema.types().type(t).kind() != TypeKind::kUser) continue;
    if (schema.types().CumulativeAttributes(t).empty()) continue;
    candidates.push_back(t);
  }
  if (candidates.empty()) return false;
  *source = candidates[std::uniform_int_distribution<size_t>(
      0, candidates.size() - 1)(rng)];
  std::vector<AttrId> attrs = schema.types().CumulativeAttributes(*source);
  std::shuffle(attrs.begin(), attrs.end(), rng);
  size_t keep = 1 + std::uniform_int_distribution<size_t>(
                        0, attrs.size() - 1)(rng);
  attributes->assign(attrs.begin(), attrs.begin() + static_cast<long>(keep));
  return true;
}

}  // namespace tyder::workload
