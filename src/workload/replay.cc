#include "workload/replay.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/failpoint.h"
#include "methods/dispatch.h"
#include "net/client.h"
#include "obs/obs.h"
#include "oracle/differential.h"
#include "storage/catalog_snapshot.h"
#include "storage/crc32c.h"
#include "storage/durable_catalog.h"
#include "storage/faulty_env.h"

namespace tyder::workload {

namespace {

using Clock = std::chrono::steady_clock;

int64_t NsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

std::filesystem::path EphemeralDir(const char* tag) {
  static std::atomic<uint64_t> dir_counter{0};
  return std::filesystem::temp_directory_path() /
         ("tyder-scn-" + std::string(tag) + std::to_string(::getpid()) + "-" +
          std::to_string(dir_counter.fetch_add(1)));
}

// Fault tokens: `storage.*` names arm a one-shot failpoint; `env.KIND@N`
// injects a FaultyEnv fault (error/short/sync/enospc) at the Nth env call.
struct FaultPlan {
  bool is_env = false;
  std::string failpoint;
  storage::FaultyEnv::FaultKind kind = storage::FaultyEnv::FaultKind::kError;
  int index = 0;
  bool valid = true;
};

FaultPlan ParseFaultToken(const std::string& token) {
  FaultPlan plan;
  if (token.rfind("env.", 0) != 0) {
    plan.failpoint = token;
    return plan;
  }
  plan.is_env = true;
  std::string spec = token.substr(4);
  size_t at = spec.find('@');
  if (at != std::string::npos) {
    plan.index = std::atoi(spec.c_str() + at + 1);
    spec = spec.substr(0, at);
  }
  if (spec == "error") plan.kind = storage::FaultyEnv::FaultKind::kError;
  else if (spec == "short") plan.kind = storage::FaultyEnv::FaultKind::kShortWrite;
  else if (spec == "sync") plan.kind = storage::FaultyEnv::FaultKind::kSyncFail;
  else if (spec == "enospc") plan.kind = storage::FaultyEnv::FaultKind::kEnospc;
  else plan.valid = false;
  return plan;
}

// ---------------------------------------------------------------------------
// In-proc replay: live Catalog + oracle lockstep + ephemeral crash steps.
// ---------------------------------------------------------------------------

class InProcRunner {
 public:
  InProcRunner(const Workload& workload, const ReplayOptions& options)
      : workload_(workload), options_(options) {}

  Result<ScenarioReport> Run() {
    const ScenarioSpec& spec = workload_.spec;
    Result<Schema> schema = GenerateRandomSchema(spec.schema.ToOptions());
    if (!schema.ok()) {
      return schema.status().WithContext("scenario: random schema generation");
    }
    catalog_.emplace(std::move(*schema));
    report_.scenario = spec.name;
    int oracle_every = options_.oracle_every >= 0 ? options_.oracle_every
                                                  : spec.oracle_every;
    Clock::time_point start = Clock::now();
    for (size_t i = 0; i < workload_.steps.size(); ++i) {
      const WorkloadStep& step = workload_.steps[i];
      const Phase& phase = spec.phases[step.phase];
      Status s = Execute(step, phase);
      if (!s.ok()) {
        return s.WithContext("scenario '" + spec.name + "' step " +
                             std::to_string(i) + " (" +
                             std::string(ScenarioOpName(step.op)) + ")");
      }
      ++report_.steps;
      TYDER_COUNT("workload.steps");
      if (oracle_every > 0 && report_.steps % oracle_every == 0) {
        Status oracle = RunOracle();
        if (!oracle.ok()) {
          return oracle.WithContext("scenario '" + spec.name +
                                    "' oracle sweep after step " +
                                    std::to_string(i));
        }
      }
      if (options_.timed && phase.pace_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(phase.pace_us));
      }
    }
    if (oracle_every > 0) {
      Status oracle = RunOracle();
      if (!oracle.ok()) {
        return oracle.WithContext("scenario '" + spec.name + "' final oracle");
      }
    }
    report_.elapsed_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    report_.mutation_ns = mutation_hist_.Snap();
    report_.read_ns = read_hist_.Snap();
    report_.recovery_ns = recovery_hist_.Snap();
    report_.final_crc = storage::Crc32c(storage::SerializeCatalog(*catalog_));
    report_.final_types = catalog_->schema().types().NumTypes();
    report_.final_views = catalog_->views().size();
    return report_;
  }

 private:
  Status Fail(const std::string& message) {
    return Status::Internal("workload replay: " + message);
  }

  // Candidate lists, resolved fresh at each step like fuzz ops: every
  // non-builtin type (user + view/surrogate), optionally only those with
  // cumulative state (projection/generalization sources).
  std::vector<TypeId> LiveTypes(bool with_attrs) const {
    std::vector<TypeId> out;
    const TypeGraph& graph = catalog_->schema().types();
    for (TypeId t = 0; t < static_cast<TypeId>(graph.NumTypes()); ++t) {
      if (graph.type(t).kind() == TypeKind::kBuiltin) continue;
      if (with_attrs && graph.CumulativeAttributes(t).empty()) continue;
      out.push_back(t);
    }
    return out;
  }

  std::vector<TypeId> UserTypes() const {
    std::vector<TypeId> out;
    const TypeGraph& graph = catalog_->schema().types();
    for (TypeId t = 0; t < static_cast<TypeId>(graph.NumTypes()); ++t) {
      if (graph.type(t).kind() == TypeKind::kUser) out.push_back(t);
    }
    return out;
  }

  size_t Index(const WorkloadStep& step, size_t n) const {
    return ResolveIndex(workload_.spec, step, n);
  }

  void RecordMutation(Clock::time_point start, bool ok) {
    mutation_hist_.Record(NsSince(start));
    if (ok) {
      ++report_.mutations;
      TYDER_COUNT("workload.mutations");
    } else {
      ++report_.refusals;
      TYDER_COUNT("workload.refusals");
    }
  }

  Status Execute(const WorkloadStep& step, const Phase& phase) {
    const TypeGraph& graph = catalog_->schema().types();
    switch (step.op) {
      case ScenarioOp::kProject: {
        std::vector<TypeId> sources = LiveTypes(/*with_attrs=*/true);
        if (sources.empty()) return Skip();
        TypeId src = sources[Index(step, sources.size())];
        std::vector<AttrId> cum = graph.CumulativeAttributes(src);
        size_t count = 1 + step.b % cum.size();
        size_t at = step.c % cum.size();
        std::vector<std::string> attrs;
        std::set<std::string> seen;
        for (size_t k = 0; k < count; ++k) {
          std::string name =
              graph.attribute(cum[(at + k) % cum.size()]).name.str();
          if (seen.insert(name).second) attrs.push_back(name);
        }
        std::string vname = "SV" + std::to_string(next_view_++);
        Clock::time_point t0 = Clock::now();
        bool ok = catalog_
                      ->DefineProjectionView(vname, graph.TypeName(src), attrs)
                      .ok();
        RecordMutation(t0, ok);
        return Status::OK();
      }
      case ScenarioOp::kGeneralize: {
        std::vector<TypeId> sources = LiveTypes(/*with_attrs=*/true);
        if (sources.size() < 2) return Skip();
        TypeId a = sources[Index(step, sources.size())];
        TypeId b = sources[step.b % sources.size()];
        if (a == b) b = sources[(step.b + 1) % sources.size()];
        if (a == b) return Skip();
        std::string vname = "SG" + std::to_string(next_view_++);
        Clock::time_point t0 = Clock::now();
        bool ok = catalog_
                      ->DefineGeneralizationView(vname, graph.TypeName(a),
                                                graph.TypeName(b))
                      .ok();
        RecordMutation(t0, ok);
        return Status::OK();
      }
      case ScenarioOp::kDrop: {
        const std::vector<ViewDef>& views = catalog_->views();
        if (views.empty()) return Skip();
        std::string name = views[Index(step, views.size())].name;
        Clock::time_point t0 = Clock::now();
        bool ok = catalog_->DropView(name).ok();
        RecordMutation(t0, ok);
        return Status::OK();
      }
      case ScenarioOp::kCollapse: {
        Clock::time_point t0 = Clock::now();
        bool ok = catalog_->Collapse().ok();
        RecordMutation(t0, ok);
        return Status::OK();
      }
      case ScenarioOp::kNewType: {
        std::vector<TypeId> parents = LiveTypes(/*with_attrs=*/false);
        if (parents.empty()) return Skip();
        TypeId parent = parents[Index(step, parents.size())];
        std::string name = "SW" + std::to_string(next_type_++);
        Clock::time_point t0 = Clock::now();
        Result<TypeId> id =
            catalog_->schema().types().DeclareType(name, TypeKind::kUser);
        bool ok = id.ok();
        if (ok) {
          ok = catalog_->schema().types().AddSupertype(*id, parent).ok();
        }
        RecordMutation(t0, ok);
        return Status::OK();
      }
      case ScenarioOp::kNewAttr: {
        std::vector<TypeId> owners = UserTypes();
        if (owners.empty()) return Skip();
        TypeId owner = owners[Index(step, owners.size())];
        std::string name = "sw_a" + std::to_string(next_attr_++);
        Clock::time_point t0 = Clock::now();
        bool ok = catalog_->schema()
                      .types()
                      .DeclareAttribute(owner, name,
                                        catalog_->schema().builtins().int_type)
                      .ok();
        RecordMutation(t0, ok);
        return Status::OK();
      }
      case ScenarioOp::kNewEdge: {
        std::vector<TypeId> types = LiveTypes(/*with_attrs=*/false);
        if (types.size() < 2) return Skip();
        TypeId sub = types[Index(step, types.size())];
        TypeId super = types[step.b % types.size()];
        if (sub == super) return Skip();
        Clock::time_point t0 = Clock::now();
        bool ok = catalog_->schema().types().AddSupertype(sub, super).ok();
        RecordMutation(t0, ok);
        return Status::OK();
      }
      case ScenarioOp::kSubtype: {
        size_t n = graph.NumTypes();
        TypeId a = static_cast<TypeId>(Index(step, n));
        TypeId b = static_cast<TypeId>(step.b % n);
        Clock::time_point t0 = Clock::now();
        (void)graph.IsSubtype(a, b);
        read_hist_.Record(NsSince(t0));
        ++report_.reads;
        return Status::OK();
      }
      case ScenarioOp::kDispatch: {
        const Schema& schema = catalog_->schema();
        size_t ngfs = schema.NumGenericFunctions();
        if (ngfs == 0) return Skip();
        GfId gf = static_cast<GfId>(step.b % ngfs);
        std::vector<TypeId> args;
        size_t n = graph.NumTypes();
        // The first argument takes the population's (possibly Zipf-hot)
        // payload — the hot-type skew the dispatch PIC and mask tables see.
        for (int p = 0; p < schema.gf(gf).arity; ++p) {
          args.push_back(static_cast<TypeId>(
              p == 0 ? Index(step, n) : (step.c + 0x9E3779B9u * p) % n));
        }
        Clock::time_point t0 = Clock::now();
        (void)Dispatch(schema, gf, args);
        read_hist_.Record(NsSince(t0));
        ++report_.reads;
        return Status::OK();
      }
      case ScenarioOp::kViews:
      case ScenarioOp::kPing: {
        Clock::time_point t0 = Clock::now();
        (void)catalog_->views().size();
        read_hist_.Record(NsSince(t0));
        ++report_.reads;
        return Status::OK();
      }
      case ScenarioOp::kCrash:
        if (phase.faults.empty()) return Skip();
        return DoCrash(step, phase);
    }
    return Skip();
  }

  Status Skip() {
    ++report_.skipped;
    return Status::OK();
  }

  // The mutation a crash step interrupts: derive / drop / collapse, resolved
  // against the live candidate lists (the fuzzer's InterruptedOp contract).
  struct InterruptedOp {
    int variant = 0;  // 0 derive, 1 drop, 2 collapse
    std::string vname, src;
    std::vector<std::string> attrs;
    bool skip = false;
  };

  InterruptedOp ResolveInterrupted(const WorkloadStep& step) {
    InterruptedOp iop;
    iop.variant = static_cast<int>(step.c % 3);
    if (iop.variant == 1 && catalog_->views().empty()) iop.variant = 0;
    if (iop.variant == 0) {
      const TypeGraph& graph = catalog_->schema().types();
      std::vector<TypeId> sources = LiveTypes(/*with_attrs=*/true);
      if (sources.empty()) {
        iop.skip = true;
        return iop;
      }
      TypeId src = sources[Index(step, sources.size())];
      iop.src = graph.TypeName(src);
      std::vector<AttrId> cum = graph.CumulativeAttributes(src);
      size_t count = 1 + step.b % cum.size();
      std::set<std::string> seen;
      for (size_t k = 0; k < count; ++k) {
        std::string name = graph.attribute(cum[k % cum.size()]).name.str();
        if (seen.insert(name).second) iop.attrs.push_back(name);
      }
      iop.vname = "SC" + std::to_string(next_view_++);
    } else if (iop.variant == 1) {
      iop.vname = catalog_->views()[step.b % catalog_->views().size()].name;
    }
    return iop;
  }

  template <typename T>
  static bool ApplyInterrupted(const InterruptedOp& iop, T& target) {
    switch (iop.variant) {
      case 0:
        return target.DefineProjectionView(iop.vname, iop.src, iop.attrs).ok();
      case 1:
        return target.DropView(iop.vname).ok();
      default:
        return target.Collapse().ok();
    }
  }

  // Crash step: seed an ephemeral DurableCatalog from the live catalog, run
  // one mutation under the armed fault, "crash" (drop the handle, optionally
  // power-lose unsynced data), recover, and require the recovered state to
  // be byte-identical to the pre- or post-state of the interrupted op — with
  // an acknowledged op surviving any power loss. The recovered catalog is
  // adopted as the live state.
  Status DoCrash(const WorkloadStep& step, const Phase& phase) {
    ++report_.crashes;
    TYDER_COUNT("workload.crash_steps");
    const std::string& token = phase.faults[step.b % phase.faults.size()];
    FaultPlan plan = ParseFaultToken(token);
    if (!plan.valid) return Fail("bad fault token '" + token + "'");

    InterruptedOp iop = ResolveInterrupted(step);
    if (iop.skip) return Skip();

    std::string pre = storage::SerializeCatalog(*catalog_);
    Catalog copy = *catalog_;
    bool would_commit = ApplyInterrupted(iop, copy);
    std::string post = would_commit ? storage::SerializeCatalog(copy) : pre;

    bool power_loss =
        phase.power_loss_pct > 0 &&
        static_cast<int>(step.a % 100) < phase.power_loss_pct;

    std::filesystem::path dir = EphemeralDir("");
    storage::FaultyEnv env;
    bool op_ok = false;
    std::error_code ec;
    {
      Result<storage::DurableCatalog> db =
          storage::DurableCatalog::Open(dir.string(), &env);
      if (!db.ok()) {
        return Fail("DurableCatalog::Open failed: " + db.status().ToString());
      }
      Status seeded = db->Seed(*catalog_);
      if (!seeded.ok()) {
        return Fail("DurableCatalog::Seed failed: " + seeded.ToString());
      }
      env.ResetCounters();
      if (plan.is_env) {
        env.InjectAt(plan.kind, plan.index);
      } else {
        failpoint::Activate(plan.failpoint, 1);
      }
      op_ok = ApplyInterrupted(iop, *db);
      if (plan.is_env) {
        env.ClearFaults();
      } else {
        failpoint::Deactivate(plan.failpoint);
      }
    }  // drop the handle: the crash
    if (power_loss) {
      env.PowerLoss();
      ++report_.power_losses;
    }

    Clock::time_point t0 = Clock::now();
    Result<storage::DurableCatalog> re =
        storage::DurableCatalog::Open(dir.string());
    recovery_hist_.Record(NsSince(t0));
    if (!re.ok()) {
      std::filesystem::remove_all(dir, ec);
      return Fail("recovery after fault '" + token +
                  "' failed: " + re.status().ToString());
    }
    std::string recovered = storage::SerializeCatalog(re->catalog());
    std::filesystem::remove_all(dir, ec);
    if (recovered != pre && recovered != post) {
      return Fail("recovery after fault '" + token +
                  "' landed on neither the pre- nor the post-state of the "
                  "interrupted op");
    }
    if (op_ok && power_loss && recovered != post) {
      return Fail("acknowledged op did not survive the power loss "
                  "(durability violated)");
    }
    catalog_.emplace(re->catalog());
    ++report_.recoveries;
    TYDER_COUNT("workload.recoveries");
    if (recovered == post && post != pre) ++report_.mutations;
    return Status::OK();
  }

  Status RunOracle() {
    const Schema& schema = catalog_->schema();
    Status s = oracle::CheckSubtypeOracle(schema);
    if (s.ok()) s = oracle::CheckCumulativeStateOracle(schema);
    if (s.ok()) {
      // A light dispatch differential per sweep; the heavyweight exhaustive
      // pass belongs to the fuzzer's kQuery op, not sustained replay.
      oracle::DifferentialOptions dopt;
      dopt.seed = static_cast<uint32_t>(workload_.spec.seed + report_.steps);
      dopt.tuples_per_gf = 2;
      dopt.exhaustive_tuple_limit = 64;
      s = oracle::CheckDispatchOracle(schema, dopt);
    }
    if (!s.ok()) {
      report_.oracle_clean = false;
      return s;
    }
    ++report_.oracle_passes;
    TYDER_COUNT("workload.oracle_passes");
    return Status::OK();
  }

  const Workload& workload_;
  ReplayOptions options_;
  std::optional<Catalog> catalog_;
  ScenarioReport report_;
  obs::Histogram mutation_hist_, read_hist_, recovery_hist_;
  uint64_t next_view_ = 0, next_type_ = 0, next_attr_ = 0;
};

// ---------------------------------------------------------------------------
// Wire replay: one worker per population against a live tyderd.
// ---------------------------------------------------------------------------

// What the worker's ledger expects of a view name after the run.
enum class Expect { kPresent, kAbsent, kUnknown };

struct WireWorker {
  // Inputs.
  const Workload* workload = nullptr;
  const ReplayOptions* options = nullptr;
  uint16_t port = 0;
  size_t population = 0;
  std::vector<const WorkloadStep*> steps;

  // Outputs.
  uint64_t mutations = 0, reads = 0, refusals = 0, skipped = 0;
  uint64_t acked = 0, nacked = 0, indeterminate = 0, reconnects = 0;
  std::map<std::string, Expect> ledger;
  std::vector<std::string> own_views;  // acked creations, drop candidates
  obs::Histogram mutation_hist, read_hist;
  Status status;

  void Run() {
    Result<net::Client> client = ConnectWithRetry();
    if (!client.ok()) {
      status = client.status();
      return;
    }
    const ScenarioSpec& spec = workload->spec;
    uint64_t next_view = 0;
    for (const WorkloadStep* step : steps) {
      const Phase& phase = spec.phases[step->phase];
      net::Request request;
      request.deadline_ms = options->deadline_ms;
      bool is_mutation = false;
      std::string created, dropped;
      if (!Render(*step, next_view, &request, &is_mutation, &created,
                  &dropped)) {
        ++skipped;
        request = net::Request{};
        request.command = "ping";
        request.deadline_ms = options->deadline_ms;
        is_mutation = false;
      }
      Clock::time_point t0 = Clock::now();
      Result<net::Response> response = client->Call(request);
      int64_t ns = NsSince(t0);
      if (is_mutation) {
        mutation_hist.Record(ns);
      } else {
        read_hist.Record(ns);
      }
      if (!response.ok()) {
        // Transport death. SentWithoutAnswer is the indeterminate window —
        // the server may or may not have applied the request.
        if (is_mutation) {
          if (client->SentWithoutAnswer()) {
            ++indeterminate;
            if (!created.empty()) ledger[created] = Expect::kUnknown;
            if (!dropped.empty()) ledger[dropped] = Expect::kUnknown;
          } else {
            ++nacked;
          }
        }
        client->Close();
        client = ConnectWithRetry();
        if (!client.ok()) {
          status = client.status().WithContext("wire worker reconnect");
          return;
        }
        ++reconnects;
        continue;
      }
      if (is_mutation) {
        if (response->ok()) {
          ++acked;
          ++mutations;
          if (!created.empty()) {
            ledger[created] = Expect::kPresent;
            own_views.push_back(created);
          }
          if (!dropped.empty()) {
            ledger[dropped] = Expect::kAbsent;
            own_views.erase(
                std::remove(own_views.begin(), own_views.end(), dropped),
                own_views.end());
          }
        } else {
          // kErr (engine refusal), kRetryAfter, kDeadlineExceeded, kDegraded:
          // all definitive nacks over a live connection.
          ++nacked;
          ++refusals;
        }
      } else {
        ++reads;
      }
      if (options->timed && phase.pace_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(phase.pace_us));
      }
    }
  }

  Result<net::Client> ConnectWithRetry() {
    Status last = Status::Internal("connect never attempted");
    for (int attempt = 0; attempt < 20; ++attempt) {
      Result<net::Client> client = net::Client::Connect(port);
      if (client.ok()) return client;
      last = client.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return last;
  }

  // Renders a step into a wire request. Returns false for steps with no
  // wire form (newtype/newattr/newedge/crash, or missing anchors); those
  // fall back to ping.
  bool Render(const WorkloadStep& step, uint64_t& next_view,
              net::Request* request,
              bool* is_mutation, std::string* created, std::string* dropped) {
    const ScenarioSpec& spec = workload->spec;
    const WireTargets& wire = spec.wire;
    auto view_name = [&](const char* prefix) {
      return std::string(prefix) + std::to_string(population) + "_" +
             std::to_string(next_view++);
    };
    switch (step.op) {
      case ScenarioOp::kProject: {
        if (wire.source.empty() || wire.attrs.empty()) return false;
        size_t count = 1 + step.b % wire.attrs.size();
        size_t at = step.c % wire.attrs.size();
        std::set<std::string> seen;
        std::string attrs;
        for (size_t k = 0; k < count; ++k) {
          const std::string& name = wire.attrs[(at + k) % wire.attrs.size()];
          if (!seen.insert(name).second) continue;
          if (!attrs.empty()) attrs += ',';
          attrs += name;
        }
        *created = view_name("WV");
        request->command = "project";
        request->args = {*created, wire.source, attrs};
        *is_mutation = true;
        return true;
      }
      case ScenarioOp::kGeneralize: {
        if (wire.targets.size() < 2) return false;
        size_t a = ResolveIndex(spec, step, wire.targets.size());
        size_t b = step.b % wire.targets.size();
        if (a == b) b = (b + 1) % wire.targets.size();
        *created = view_name("WG");
        request->command = "generalize";
        request->args = {*created, wire.targets[a], wire.targets[b]};
        *is_mutation = true;
        return true;
      }
      case ScenarioOp::kDrop: {
        if (own_views.empty()) return false;
        *dropped = own_views[ResolveIndex(spec, step, own_views.size())];
        request->command = "drop";
        request->args = {*dropped};
        *is_mutation = true;
        return true;
      }
      case ScenarioOp::kCollapse:
        request->command = "collapse";
        *is_mutation = true;
        return true;
      case ScenarioOp::kSubtype: {
        if (wire.targets.empty()) return false;
        request->command = "query";
        request->args = {
            "subtype", wire.targets[ResolveIndex(spec, step, wire.targets.size())],
            wire.targets[step.b % wire.targets.size()]};
        return true;
      }
      case ScenarioOp::kDispatch: {
        if (wire.gfs.empty() || wire.targets.empty()) return false;
        request->command = "query";
        request->args = {
            "dispatch", wire.gfs[step.b % wire.gfs.size()],
            wire.targets[ResolveIndex(spec, step, wire.targets.size())]};
        return true;
      }
      case ScenarioOp::kViews:
        request->command = "query";
        request->args = {"views"};
        return true;
      case ScenarioOp::kPing:
        request->command = "ping";
        return true;
      case ScenarioOp::kNewType:
      case ScenarioOp::kNewAttr:
      case ScenarioOp::kNewEdge:
      case ScenarioOp::kCrash:
        return false;
    }
    return false;
  }
};

}  // namespace

Result<ScenarioReport> ReplayInProc(const Workload& workload,
                                    const ReplayOptions& options) {
  if (workload.spec.populations.empty() || workload.spec.phases.empty()) {
    return Status::InvalidArgument("workload has no populations or phases");
  }
  return InProcRunner(workload, options).Run();
}

Result<ScenarioReport> ReplayOverWire(const Workload& workload, uint16_t port,
                                      const ReplayOptions& options) {
  const ScenarioSpec& spec = workload.spec;
  if (spec.populations.empty() || spec.phases.empty()) {
    return Status::InvalidArgument("workload has no populations or phases");
  }
  std::vector<WireWorker> workers(spec.populations.size());
  for (size_t p = 0; p < workers.size(); ++p) {
    workers[p].workload = &workload;
    workers[p].options = &options;
    workers[p].port = port;
    workers[p].population = p;
  }
  for (const WorkloadStep& step : workload.steps) {
    workers[step.population].steps.push_back(&step);
  }

  Clock::time_point start = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    for (WireWorker& worker : workers) {
      threads.emplace_back([&worker] { worker.Run(); });
    }
    for (std::thread& thread : threads) thread.join();
  }

  ScenarioReport report;
  report.scenario = spec.name;
  report.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  obs::Histogram mutation_hist, read_hist;
  std::map<std::string, Expect> ledger;
  for (WireWorker& worker : workers) {
    if (!worker.status.ok()) {
      return worker.status.WithContext("scenario '" + spec.name +
                                       "' wire population '" +
                                       spec.populations[worker.population].name +
                                       "'");
    }
    report.steps += worker.steps.size();
    report.mutations += worker.mutations;
    report.reads += worker.reads;
    report.refusals += worker.refusals;
    report.skipped += worker.skipped;
    report.acked += worker.acked;
    report.nacked += worker.nacked;
    report.indeterminate += worker.indeterminate;
    report.reconnects += worker.reconnects;
    mutation_hist.MergeFrom(worker.mutation_hist);
    read_hist.MergeFrom(worker.read_hist);
    // Workers own disjoint view namespaces (names carry the population
    // index), so the merge never conflicts.
    for (const auto& [name, expect] : worker.ledger) ledger[name] = expect;
  }
  report.mutation_ns = mutation_hist.Snap();
  report.read_ns = read_hist.Snap();

  // Post-run verification over a fresh connection: server healthy, the
  // server-side oracle clean, and the view registry consistent with every
  // definitive ledger entry.
  Result<net::Client> client = net::Client::Connect(port);
  if (!client.ok()) {
    return client.status().WithContext("scenario '" + spec.name +
                                       "' post-run verification connect");
  }
  Result<net::Response> health = client->Call("health");
  if (!health.ok() || !health->ok() ||
      health->message().find("status ok") == std::string::npos) {
    report.ledger_clean = false;
    return Status::Internal(
        "scenario '" + spec.name + "': server unhealthy after the run" +
        (health.ok() ? " (" + std::string(health->message()) + ")" : ""));
  }
  Result<net::Response> verify = client->Call("verify");
  if (!verify.ok() || !verify->ok()) {
    report.oracle_clean = false;
    return Status::Internal("scenario '" + spec.name +
                            "': server-side oracle verification failed");
  }
  ++report.oracle_passes;
  Result<net::Response> views = client->Call("query", {"views"});
  if (!views.ok() || !views->ok()) {
    report.ledger_clean = false;
    return Status::Internal("scenario '" + spec.name +
                            "': query views failed after the run");
  }
  std::set<std::string> server_views(views->body.begin(), views->body.end());
  for (const auto& [name, expect] : ledger) {
    bool present = server_views.count(name) > 0;
    if ((expect == Expect::kPresent && !present) ||
        (expect == Expect::kAbsent && present)) {
      report.ledger_clean = false;
      return Status::Internal(
          "scenario '" + spec.name + "': ledger violation — view '" + name +
          "' expected " +
          (expect == Expect::kPresent ? "present" : "absent") +
          " but the server disagrees");
    }
  }

  std::string fingerprint;
  for (const std::string& name : server_views) {
    fingerprint += name;
    fingerprint += '\n';
  }
  report.final_crc = storage::Crc32c(fingerprint);
  report.final_views = server_views.size();
  return report;
}

}  // namespace tyder::workload
