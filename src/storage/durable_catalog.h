// DurableCatalog: a Catalog whose committed mutations survive process death
// — and whose durability guarantees degrade loudly, not silently, when the
// disk itself misbehaves.
//
// Directory layout (`Open(dir)` creates the directory if needed):
//
//   dir/wal.log                      append-only mutation log (storage/wal.h)
//   dir/snapshot-<lsn 20d>.tysnap    checksummed catalog snapshot covering
//                                    every record with lsn <= <lsn>
//
// Durability protocol (MVCC + group commit). Mutations are serialized on a
// writer lock and applied to a mutable writer TIP (`catalog()`); the op's
// WAL record is then sequenced into a group-commit queue (storage/wal.h
// GroupWal) where one leader writes a whole batch of concurrent commits with
// a single fsync. Only after the batch is durable does the leader PUBLISH
// the corresponding snapshot as a new schema epoch (core/epoch.h) — so the
// published, reader-visible state never runs ahead of stable storage, and an
// operation is acknowledged only once its record is fsync'd. Readers that
// must never block on writers use PinSnapshot(): a wait-free guard on the
// latest published epoch, valid (with all its analysis caches) until
// unpinned regardless of concurrent commits. `catalog()` remains the
// single-threaded view: with no concurrent committers it is always the last
// acknowledged state (any failed op's tip mutations are rolled back to the
// last durable epoch before the op returns).
//
// If a batch append fails, NONE of its operations commit: every waiter
// observes the failure, the group stalls, and the first failing committer to
// reacquire the writer lock rolls the tip back to the last durable epoch
// (so records sequenced against never-durable state are never written).
// Records carry the textual op (including the verify flag, since a
// no-verify derivation might not replay under verify) and are replayed
// deterministically at recovery. All I/O goes through a storage::Env
// (env.h), injectable per database for fault testing.
//
// Compaction. Compact() writes a fresh snapshot to a temp file, fsyncs it,
// renames it into place, fsyncs the directory, and only then truncates the
// WAL and deletes older snapshots. A crash between rename and truncate is
// benign: replay skips records with lsn <= the snapshot's lsn. On any
// failure before the WAL truncate the old snapshot + intact WAL remain the
// recovery source and the temp file is removed, so the catalog stays live.
//
// Degraded mode. A failed fsync — of the WAL file, of a failed append's
// truncation undo, or of a snapshot temp file — means the store can no
// longer prove its durability claims (see env.h on why fsync must never be
// retried). The catalog then enters READ-ONLY DEGRADED MODE: every logged
// mutation, Compact and Seed refuse with a FailedPrecondition naming the
// original failure; reads (catalog(), recovery(), last_lsn()) keep serving
// the last consistent in-memory state, which matches the last state whose
// record was durably acknowledged. The transition bumps the
// storage.degraded_entries counter and ships a flight-recorder dump.
// Plain write errors (ENOSPC, EIO, short writes) whose undo holds do NOT
// degrade: the operation fails, state is unchanged, and a retry may
// succeed once the disk recovers. Reopen() leaves degraded mode by
// re-running full recovery from disk; it succeeds only if the on-disk
// state validates cleanly.
//
// Recovery (in Open). The newest snapshot that decodes cleanly is loaded —
// a corrupt newer snapshot falls back to an older one with a warning, and is
// fatal only when no snapshot loads at all. The WAL is then validated and
// replayed: a torn tail (crash mid-append) is truncated with a warning and
// never an error; mid-log corruption is refused with a byte-offset
// diagnostic. Recovery always yields a catalog byte-identical to the state
// either before or after the interrupted mutation — never in between.
//
// Crash-injection points: storage.wal.* (wal.h), storage.env.* (env.h),
// plus storage.compact.before_rename / storage.compact.after_rename.

#ifndef TYDER_STORAGE_DURABLE_CATALOG_H_
#define TYDER_STORAGE_DURABLE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/epoch.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace tyder::storage {

struct RecoveryInfo {
  bool snapshot_loaded = false;
  uint64_t snapshot_lsn = 0;   // meaningful only when snapshot_loaded
  size_t replayed_records = 0;
  std::vector<std::string> warnings;  // torn tail, skipped corrupt snapshots
  uint64_t recovery_ns = 0;
};

class DurableCatalog {
 public:
  // Opens (creating if absent) the database directory and recovers the
  // catalog from its newest valid snapshot plus the WAL. All I/O goes
  // through `env` (nullptr == Env::Posix()) for the life of the database.
  // `group` tunes the group-commit window (benchmarks set max_batch = 1 for
  // the serial fsync-per-commit baseline).
  static Result<DurableCatalog> Open(const std::string& dir,
                                     Env* env = nullptr,
                                     GroupCommitOptions group = {});

  // Moving requires external quiescence: no concurrent operation, and no
  // live Pin from PinSnapshot(). (Reopen does NOT move — it adopts recovered
  // state in place precisely so it stays safe under concurrency.)
  DurableCatalog(DurableCatalog&&) = default;
  DurableCatalog& operator=(DurableCatalog&&) = default;

  // The writer tip. Safe only without concurrent committers; concurrent
  // readers use PinSnapshot() instead.
  Catalog& catalog() { return *catalog_; }
  const Catalog& catalog() const { return *catalog_; }

  // Wait-free pin of the newest PUBLISHED epoch: the last state whose WAL
  // records were durably acknowledged. Never blocks on (and is never torn
  // by) concurrent committers; the snapshot stays valid until the pin dies.
  EpochCatalog::Pin PinSnapshot() const {
    return EpochCatalog::Pin(state_->epochs);
  }
  // The epoch layer itself (reclamation counters, TryReclaim — tests).
  EpochCatalog& epochs() { return state_->epochs; }

  const RecoveryInfo& recovery() const { return recovery_; }
  const std::string& dir() const { return dir_; }
  // LSN of the newest durably ACKNOWLEDGED record (snapshot-covered, or in
  // the WAL and fsync'd with its commit published).
  uint64_t last_lsn() const {
    return state_->durable_lsn.load(std::memory_order_acquire);
  }

  // True once a durability failure has forced read-only degraded mode.
  bool degraded() const { return !degraded_.ok(); }
  // The refusal every mutation gets while degraded; OK when healthy.
  // Like catalog(), degraded()/degraded_status() belong to the writer side:
  // they are written under the writer lock and safe to read only from a
  // thread that serializes with mutations.
  const Status& degraded_status() const { return degraded_; }
  // Thread-safe snapshot of the degraded flag for concurrent observers
  // (tyderd's health endpoint polls this off arbitrary worker threads).
  bool degraded_now() const {
    return state_->degraded_flag.load(std::memory_order_acquire);
  }

  // Leaves degraded mode by re-running full recovery from disk: the
  // in-memory catalog, WAL handle and lsn are replaced by what the on-disk
  // state validates to (pre- or post- the interrupted mutation). On failure
  // the database stays degraded and untouched. Safe (a no-op recovery) when
  // healthy — and safe under concurrency: Reopen serializes on the writer
  // lock, drains the group-commit queue so every already-queued committer
  // gets its definitive ack/nack first, and adopts the recovered state into
  // the address-stable CommitState (live reader Pins and committers blocked
  // on the writer lock survive it). tyderd's admin `reopen` command calls
  // this with traffic in flight.
  Status Reopen();

  // --- logged mutations (Catalog API + durability) --------------------------
  // Same contracts as the Catalog methods; additionally, on OK the operation
  // is on stable storage, and on failure it is rolled back in memory (the
  // WAL tail is restored durably, see WalWriter::Append). All refuse with
  // degraded_status() while degraded.

  Result<const ViewDef*> DefineProjectionView(
      std::string_view name, std::string_view source_type,
      const std::vector<std::string>& attribute_names,
      const ProjectionOptions& options = {});
  Result<const ViewDef*> DefineSelectionView(std::string_view name,
                                             std::string_view source_type);
  Result<const ViewDef*> DefineGeneralizationView(
      std::string_view name, std::string_view type_a, std::string_view type_b,
      const ProjectionOptions& options = {});
  Result<const ViewDef*> DefineRenameView(
      std::string_view name, std::string_view source_type,
      const std::vector<AttributeRename>& renames,
      const ProjectionOptions& options = {});
  Status DropView(std::string_view name);
  Result<CollapseReport> Collapse();

  // Writes a checksummed snapshot covering last_lsn() and truncates the WAL.
  Status Compact();

  // Seeds a freshly created database from an in-memory catalog (typically a
  // parsed TDL file) by writing the initial snapshot. Fails unless the
  // database has no durable state at all.
  Status Seed(Catalog catalog);

 private:
  DurableCatalog() = default;

  // Shared, address-stable commit state: the group-commit leader callback
  // and in-flight waiters hold pointers into it across DurableCatalog moves.
  struct CommitState {
    // Serializes mutations: tip apply + lsn assignment + enqueue order.
    std::mutex writer_mu;
    // LSN of the last op applied to the tip (>= durable_lsn; they are equal
    // whenever no commit is in flight). Guarded by writer_mu.
    uint64_t tip_lsn = 0;
    // LSN of the last durably acknowledged (and published) record.
    std::atomic<uint64_t> durable_lsn{0};
    // Tip snapshots keyed by lsn, awaiting their batch fsync; the leader
    // publishes the entry matching the batch's last lsn. Guarded by
    // publish_mu (never writer_mu: the leader publishes while another
    // committer may hold writer_mu applying the next op).
    std::mutex publish_mu;
    std::map<uint64_t, Catalog> pending_publish;
    // Mirrors degraded_ for lock-free observers (degraded_now()).
    std::atomic<bool> degraded_flag{false};
    EpochCatalog epochs;
    GroupCommitOptions group_options;  // preserved across Reopen
    std::unique_ptr<GroupWal> group;
  };

  // The group-commit path shared by every logged mutation; see .cc.
  template <typename ResultT, typename OpFn>
  ResultT CommitLogged(std::string payload, OpFn&& op);
  // Under writer_mu: consume a pending stall (rolling the tip back to the
  // last durable epoch) and mirror a poisoned WAL into degraded mode.
  void AbsorbFailureLocked(const Status& cause);
  void ResetTipToDurableLocked();

  Status WriteSnapshot(const std::string& tmp_path, std::string_view bytes);
  Status CompactLocked();  // snapshot + WAL truncate; requires writer_mu
  void EnterDegraded(const std::string& reason);

  std::string dir_;
  std::string wal_path_;
  Env* env_ = nullptr;
  // unique_ptrs keep the class movable without hand-written moves (Catalog
  // holds a Schema; WalWriter owns a file handle; CommitState holds mutexes
  // and must stay address-stable for the leader callback).
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<CommitState> state_;
  RecoveryInfo recovery_;
  Status degraded_;  // non-OK == read-only degraded mode
};

// Applies one WAL payload to `catalog` without logging (recovery replay).
// Exposed for tests.
Status ReplayOp(Catalog& catalog, std::string_view payload);

}  // namespace tyder::storage

#endif  // TYDER_STORAGE_DURABLE_CATALOG_H_
