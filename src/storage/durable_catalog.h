// DurableCatalog: a Catalog whose committed mutations survive process death.
//
// Directory layout (`Open(dir)` creates the directory if needed):
//
//   dir/wal.log                      append-only mutation log (storage/wal.h)
//   dir/snapshot-<lsn 20d>.tysnap    checksummed catalog snapshot covering
//                                    every record with lsn <= <lsn>
//
// Durability protocol. Every mutating operation routes through the underlying
// Catalog inside a SchemaTransaction whose commit hook appends one WAL record
// — written and fsync'd BEFORE the in-memory commit publishes. If the append
// fails, the transaction rolls back and the operation reports the failure: an
// operation is never observable in memory unless its record is on stable
// storage. Records carry the textual op (including the verify flag, since a
// no-verify derivation might not replay under verify) and are replayed
// deterministically at recovery.
//
// Compaction. Compact() writes a fresh snapshot to a temp file, fsyncs it,
// renames it into place, fsyncs the directory, and only then truncates the
// WAL and deletes older snapshots. A crash between rename and truncate is
// benign: replay skips records with lsn <= the snapshot's lsn.
//
// Recovery (in Open). The newest snapshot that decodes cleanly is loaded —
// a corrupt newer snapshot falls back to an older one with a warning, and is
// fatal only when no snapshot loads at all. The WAL is then validated and
// replayed: a torn tail (crash mid-append) is truncated with a warning and
// never an error; mid-log corruption is refused with a byte-offset
// diagnostic. Recovery always yields a catalog byte-identical to the state
// either before or after the interrupted mutation — never in between.
//
// Crash-injection points: storage.wal.* (wal.h) plus
// storage.compact.before_rename / storage.compact.after_rename.

#ifndef TYDER_STORAGE_DURABLE_CATALOG_H_
#define TYDER_STORAGE_DURABLE_CATALOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/wal.h"

namespace tyder::storage {

struct RecoveryInfo {
  bool snapshot_loaded = false;
  uint64_t snapshot_lsn = 0;   // meaningful only when snapshot_loaded
  size_t replayed_records = 0;
  std::vector<std::string> warnings;  // torn tail, skipped corrupt snapshots
  uint64_t recovery_ns = 0;
};

class DurableCatalog {
 public:
  // Opens (creating if absent) the database directory and recovers the
  // catalog from its newest valid snapshot plus the WAL.
  static Result<DurableCatalog> Open(const std::string& dir);

  DurableCatalog(DurableCatalog&&) = default;
  DurableCatalog& operator=(DurableCatalog&&) = default;

  Catalog& catalog() { return *catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  const RecoveryInfo& recovery() const { return recovery_; }
  const std::string& dir() const { return dir_; }
  // LSN of the newest durable record (snapshot-covered or in the WAL).
  uint64_t last_lsn() const { return last_lsn_; }

  // --- logged mutations (Catalog API + durability) --------------------------
  // Same contracts as the Catalog methods; additionally, on OK the operation
  // is on stable storage, and on failure it is rolled back in memory (the
  // WAL tail is restored best-effort, see WalWriter::Append).

  Result<const ViewDef*> DefineProjectionView(
      std::string_view name, std::string_view source_type,
      const std::vector<std::string>& attribute_names,
      const ProjectionOptions& options = {});
  Result<const ViewDef*> DefineSelectionView(std::string_view name,
                                             std::string_view source_type);
  Result<const ViewDef*> DefineGeneralizationView(
      std::string_view name, std::string_view type_a, std::string_view type_b,
      const ProjectionOptions& options = {});
  Result<const ViewDef*> DefineRenameView(
      std::string_view name, std::string_view source_type,
      const std::vector<AttributeRename>& renames,
      const ProjectionOptions& options = {});
  Status DropView(std::string_view name);
  Result<CollapseReport> Collapse();

  // Writes a checksummed snapshot covering last_lsn() and truncates the WAL.
  Status Compact();

  // Seeds a freshly created database from an in-memory catalog (typically a
  // parsed TDL file) by writing the initial snapshot. Fails unless the
  // database has no durable state at all.
  Status Seed(Catalog catalog);

 private:
  DurableCatalog() = default;

  Status AppendRecord(std::string_view payload);

  std::string dir_;
  std::string wal_path_;
  // unique_ptrs keep the class movable without hand-written moves (Catalog
  // holds a Schema; WalWriter owns an fd).
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t last_lsn_ = 0;
  RecoveryInfo recovery_;
};

// Applies one WAL payload to `catalog` without logging (recovery replay).
// Exposed for tests.
Status ReplayOp(Catalog& catalog, std::string_view payload);

}  // namespace tyder::storage

#endif  // TYDER_STORAGE_DURABLE_CATALOG_H_
