// Pluggable storage environment: every syscall the durable catalog issues
// (open/append/fsync/rename/ftruncate/fsync-dir/read/list/remove) routes
// through this interface, so tests can swap the disk out from under the
// store without touching the durability protocol.
//
// Implementations:
//   PosixEnv   (env.cc)        the real disk; EINTR + partial-write retry
//                              loops, storage.env.* fault points.
//   FaultyEnv  (faulty_env.h)  test-only wrapper injecting ENOSPC (byte
//                              quota), EIO, short writes, fsync failure and
//                              simulated power loss.
//
// fsync-failure semantics (the "fsyncgate" rule). A failed Sync() POISONS
// the handle: after fsync reports an error the kernel may have dropped the
// dirty pages and marked them clean, so a later fsync returning OK proves
// nothing — the base class refuses every subsequent Append/Sync/Truncate
// with the original failure instead of re-fsyncing and claiming durability.
// Callers that need the data must reopen and re-validate on-disk state
// (DurableCatalog::Reopen does exactly that).
//
// Crash-simulation vs error-return fault points. The storage.wal.* points
// (wal.h) simulate the *process dying* at a protocol step — no error is
// returned, the bytes are just abandoned. The storage.env.* points below
// simulate the *syscall failing* with an error the code must handle:
//
//   storage.env.append       the write itself fails, nothing persists
//   storage.env.short_write  only a prefix persists, then the write fails
//   storage.env.sync         fsync(fd) fails (poisons the handle)
//   storage.env.truncate     ftruncate/truncate fails
//   storage.env.rename       rename(2) fails
//   storage.env.sync_dir     fsync of a directory fd fails

#ifndef TYDER_STORAGE_ENV_H_
#define TYDER_STORAGE_ENV_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace tyder::storage {

// A writable file handle. Public methods are non-virtual guards that
// enforce the poison rule and count storage.io_errors; implementations
// override the Do* hooks.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  // Writes all of `data` at the end of the file. Implementations retry
  // EINTR and short writes; on failure an unknown prefix of `data` may have
  // reached the file (the WAL undoes it with Truncate + Sync).
  Status Append(std::string_view data);

  // Makes everything written so far durable. A failure poisons the handle.
  Status Sync();

  // Truncates the file to `size` bytes.
  Status Truncate(uint64_t size);

  // Current file size in bytes (allowed even when poisoned).
  Result<uint64_t> Size();

  // True once a Sync (or an injected sync fault) has failed on this handle.
  bool poisoned() const { return !poison_.ok(); }
  // The original failure, non-OK iff poisoned.
  const Status& poison_status() const { return poison_; }

 protected:
  virtual Status DoAppend(std::string_view data) = 0;
  virtual Status DoSync() = 0;
  virtual Status DoTruncate(uint64_t size) = 0;
  virtual Result<uint64_t> DoSize() = 0;

 private:
  Status Poisoned(const char* op) const;

  Status poison_;  // non-OK once a Sync has failed; never cleared
};

// The environment: file-system operations by path. Public methods are
// non-virtual guards counting storage.io_errors; implementations override
// the Do* hooks. All paths are plain strings; directories use '/'.
class Env {
 public:
  virtual ~Env() = default;

  // Opens `path` for appending, creating it (0644) if absent.
  Result<std::unique_ptr<WritableFile>> OpenAppendable(const std::string& path);
  // Opens `path` truncated to empty, creating it (0644) if absent.
  Result<std::unique_ptr<WritableFile>> OpenTruncated(const std::string& path);
  // Reads the whole file. NotFound iff the file does not exist.
  Result<std::string> ReadFile(const std::string& path);
  // Renames `from` onto `to` (atomic replace, rename(2) semantics). The new
  // directory entry is durable only after SyncDir of the parent directory.
  Status RenameFile(const std::string& from, const std::string& to);
  // Removes the file; OK if it did not exist.
  Status RemoveFile(const std::string& path);
  // Truncates the file at `path` to `size` bytes (no open handle needed).
  Status TruncateFile(const std::string& path, uint64_t size);
  // fsyncs the directory so renamed/created entries are durable.
  Status SyncDir(const std::string& dir);
  // mkdir -p.
  Status CreateDirs(const std::string& dir);
  // File names (not paths) of the directory's entries, sorted.
  Result<std::vector<std::string>> ListDir(const std::string& dir);

  // The process-wide default environment (a PosixEnv).
  static Env& Posix();

 protected:
  virtual Result<std::unique_ptr<WritableFile>> DoOpenAppendable(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<WritableFile>> DoOpenTruncated(
      const std::string& path) = 0;
  virtual Result<std::string> DoReadFile(const std::string& path) = 0;
  virtual Status DoRenameFile(const std::string& from,
                              const std::string& to) = 0;
  virtual Status DoRemoveFile(const std::string& path) = 0;
  virtual Status DoTruncateFile(const std::string& path, uint64_t size) = 0;
  virtual Status DoSyncDir(const std::string& dir) = 0;
  virtual Status DoCreateDirs(const std::string& dir) = 0;
  virtual Result<std::vector<std::string>> DoListDir(
      const std::string& dir) = 0;
};

// The real disk. Instantiable so tests can configure a private instance;
// production code uses the Env::Posix() singleton.
class PosixEnv : public Env {
 public:
  PosixEnv() = default;

  // Caps each write(2) at `n` bytes so tests can force the partial-write
  // retry loop through real short writes. 0 (default) = no cap.
  void set_max_write_bytes_for_testing(size_t n) { max_write_bytes_ = n; }

 protected:
  Result<std::unique_ptr<WritableFile>> DoOpenAppendable(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> DoOpenTruncated(
      const std::string& path) override;
  Result<std::string> DoReadFile(const std::string& path) override;
  Status DoRenameFile(const std::string& from, const std::string& to) override;
  Status DoRemoveFile(const std::string& path) override;
  Status DoTruncateFile(const std::string& path, uint64_t size) override;
  Status DoSyncDir(const std::string& dir) override;
  Status DoCreateDirs(const std::string& dir) override;
  Result<std::vector<std::string>> DoListDir(const std::string& dir) override;

 private:
  size_t max_write_bytes_ = 0;
};

}  // namespace tyder::storage

#endif  // TYDER_STORAGE_ENV_H_
