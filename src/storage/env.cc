#include "storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "obs/obs.h"

namespace tyder::storage {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path + "': " + std::strerror(errno));
}

// Counts every surfaced I/O failure. NotFound from ReadFile is excluded: a
// missing WAL or snapshot is a normal state, not a disk error.
void CountIoError(const Status& status) {
  if (status.ok() || status.code() == StatusCode::kNotFound) return;
  TYDER_COUNT("storage.io_errors");
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path, size_t max_write_bytes)
      : fd_(fd), path_(std::move(path)), max_write_bytes_(max_write_bytes) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

 protected:
  Status DoAppend(std::string_view data) override {
    TYDER_FAULT_POINT("storage.env.append");
    if (TYDER_FAULT_CONSUME("storage.env.short_write")) {
      // Simulated failing write that persisted a prefix first: the caller
      // must treat the record as torn and undo it.
      (void)WriteLoop(data.substr(0, data.size() / 2));
      return Status::Internal(
          "fault injected at 'storage.env.short_write' (partial write "
          "persisted)");
    }
    return WriteLoop(data);
  }

  Status DoSync() override {
    TYDER_FAULT_POINT("storage.env.sync");
    if (::fsync(fd_) != 0) return Errno("cannot fsync", path_);
    return Status::OK();
  }

  Status DoTruncate(uint64_t size) override {
    TYDER_FAULT_POINT("storage.env.truncate");
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Errno("cannot truncate", path_);
    }
    return Status::OK();
  }

  Result<uint64_t> DoSize() override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return Errno("cannot stat", path_);
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  // write(2) may persist fewer bytes than asked without any error — a
  // single-shot write would silently corrupt the record. Loop until every
  // byte is down, retrying EINTR.
  Status WriteLoop(std::string_view data) {
    size_t done = 0;
    while (done < data.size()) {
      size_t len = data.size() - done;
      if (max_write_bytes_ > 0) len = std::min(len, max_write_bytes_);
      ssize_t n = ::write(fd_, data.data() + done, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("cannot write", path_);
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  int fd_;
  std::string path_;
  size_t max_write_bytes_;
};

}  // namespace

Status WritableFile::Poisoned(const char* op) const {
  return Status::FailedPrecondition(
      std::string(op) +
      " refused: file handle is poisoned by an earlier fsync failure (" +
      poison_.message() + "); reopen and re-validate on-disk state");
}

Status WritableFile::Append(std::string_view data) {
  if (!poison_.ok()) return Poisoned("append");
  Status status = DoAppend(data);
  CountIoError(status);
  return status;
}

Status WritableFile::Sync() {
  if (!poison_.ok()) return Poisoned("fsync");
  Status status = DoSync();
  if (!status.ok()) {
    CountIoError(status);
    // fsyncgate: the kernel may have dropped the dirty pages and marked
    // them clean — a retry that "succeeds" would claim durability for data
    // that never reached the platter. Refuse this handle forever.
    poison_ = status;
    TYDER_RECORD_V(kMark, "env.sync_poisoned", 0);
  }
  return status;
}

Status WritableFile::Truncate(uint64_t size) {
  if (!poison_.ok()) return Poisoned("truncate");
  Status status = DoTruncate(size);
  CountIoError(status);
  return status;
}

Result<uint64_t> WritableFile::Size() {
  Result<uint64_t> size = DoSize();
  if (!size.ok()) CountIoError(size.status());
  return size;
}

Result<std::unique_ptr<WritableFile>> Env::OpenAppendable(
    const std::string& path) {
  Result<std::unique_ptr<WritableFile>> file = DoOpenAppendable(path);
  if (!file.ok()) CountIoError(file.status());
  return file;
}

Result<std::unique_ptr<WritableFile>> Env::OpenTruncated(
    const std::string& path) {
  Result<std::unique_ptr<WritableFile>> file = DoOpenTruncated(path);
  if (!file.ok()) CountIoError(file.status());
  return file;
}

Result<std::string> Env::ReadFile(const std::string& path) {
  Result<std::string> bytes = DoReadFile(path);
  if (!bytes.ok()) CountIoError(bytes.status());
  return bytes;
}

Status Env::RenameFile(const std::string& from, const std::string& to) {
  Status status = DoRenameFile(from, to);
  CountIoError(status);
  return status;
}

Status Env::RemoveFile(const std::string& path) {
  Status status = DoRemoveFile(path);
  CountIoError(status);
  return status;
}

Status Env::TruncateFile(const std::string& path, uint64_t size) {
  Status status = DoTruncateFile(path, size);
  CountIoError(status);
  return status;
}

Status Env::SyncDir(const std::string& dir) {
  Status status = DoSyncDir(dir);
  CountIoError(status);
  return status;
}

Status Env::CreateDirs(const std::string& dir) {
  Status status = DoCreateDirs(dir);
  CountIoError(status);
  return status;
}

Result<std::vector<std::string>> Env::ListDir(const std::string& dir) {
  Result<std::vector<std::string>> names = DoListDir(dir);
  if (!names.ok()) CountIoError(names.status());
  return names;
}

Env& Env::Posix() {
  static PosixEnv* instance = new PosixEnv();
  return *instance;
}

Result<std::unique_ptr<WritableFile>> PosixEnv::DoOpenAppendable(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("cannot open for append", path);
  return std::unique_ptr<WritableFile>(
      new PosixWritableFile(fd, path, max_write_bytes_));
}

Result<std::unique_ptr<WritableFile>> PosixEnv::DoOpenTruncated(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot create", path);
  return std::unique_ptr<WritableFile>(
      new PosixWritableFile(fd, path, max_write_bytes_));
}

Result<std::string> PosixEnv::DoReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file '" + path + "'");
    }
    return Errno("cannot open for read", path);
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Errno("cannot read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return bytes;
}

Status PosixEnv::DoRenameFile(const std::string& from, const std::string& to) {
  TYDER_FAULT_POINT("storage.env.rename");
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Errno("cannot rename to", to);
  }
  return Status::OK();
}

Status PosixEnv::DoRemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("cannot remove", path);
  }
  return Status::OK();
}

Status PosixEnv::DoTruncateFile(const std::string& path, uint64_t size) {
  TYDER_FAULT_POINT("storage.env.truncate");
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("cannot truncate", path);
  }
  return Status::OK();
}

Status PosixEnv::DoSyncDir(const std::string& dir) {
  TYDER_FAULT_POINT("storage.env.sync_dir");
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("cannot open directory for fsync", dir);
  if (::fsync(fd) != 0) {
    Status status = Errno("cannot fsync directory", dir);
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::OK();
}

Status PosixEnv::DoCreateDirs(const std::string& dir) {
  // mkdir -p, front to back; EEXIST along the way is fine.
  std::string prefix;
  size_t pos = 0;
  while (pos <= dir.size()) {
    size_t slash = dir.find('/', pos);
    if (slash == std::string::npos) slash = dir.size();
    prefix = dir.substr(0, slash);
    pos = slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("cannot create directory", prefix);
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> PosixEnv::DoListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("cannot list directory", dir);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace tyder::storage
