#include "storage/catalog_snapshot.h"

#include <charconv>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "catalog/serialize.h"
#include "common/string_util.h"

namespace tyder::storage {

namespace {

constexpr std::string_view kHeader = "tyder-db v1";

// --- encoding helpers -------------------------------------------------------

void AppendIdList(std::ostringstream& out, const std::vector<uint32_t>& ids) {
  if (ids.empty()) {
    out << '-';
    return;
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out << ',';
    out << ids[i];
  }
}

void AppendSignature(std::ostringstream& out, const Signature& sig) {
  AppendIdList(out, sig.params);
  out << ' ' << sig.result;
}

// --- decoding helpers -------------------------------------------------------

// Line-by-line cursor that can also take a byte-exact slice (the embedded
// schema section).
struct Cursor {
  std::string_view text;
  size_t pos = 0;
  size_t line_no = 0;  // 1-based number of the last line returned

  bool AtEnd() const { return pos >= text.size(); }

  std::string_view NextLine() {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end < text.size() ? end + 1 : end;
    ++line_no;
    return line;
  }
};

Status Corrupt(const Cursor& cursor, const std::string& what) {
  return Status::ParseError("catalog snapshot line " +
                            std::to_string(cursor.line_no) + ": " + what);
}

bool ParseU64(std::string_view token, uint64_t& out) {
  auto [ptr, ec] = std::from_chars(token.begin(), token.end(), out);
  return ec == std::errc() && ptr == token.end();
}

bool ParseU32(std::string_view token, uint32_t& out) {
  uint64_t wide = 0;
  if (!ParseU64(token, wide) || wide > UINT32_MAX) return false;
  out = static_cast<uint32_t>(wide);
  return true;
}

bool ParseIdList(std::string_view token, std::vector<uint32_t>& out) {
  out.clear();
  if (token == "-") return true;
  for (const std::string& part : SplitAndTrim(token, ',')) {
    uint32_t id = 0;
    if (!ParseU32(part, id)) return false;
    out.push_back(id);
  }
  return true;
}

// One already-split snapshot line: tag + the remaining whitespace-separated
// tokens.
struct Line {
  std::string_view raw;
  std::string tag;
  std::vector<std::string> tokens;
};

Line SplitLine(std::string_view raw) {
  Line line;
  line.raw = raw;
  std::istringstream in{std::string(raw)};
  in >> line.tag;
  std::string token;
  while (in >> token) line.tokens.push_back(token);
  return line;
}

}  // namespace

std::string SerializeCatalog(const Catalog& catalog) {
  std::string schema_text = SerializeSchema(catalog.schema());
  std::ostringstream out;
  out << kHeader << '\n';
  out << "schema " << schema_text.size() << '\n' << schema_text << '\n';
  for (const ViewDef& view : catalog.views()) {
    out << "view " << view.name << ' ' << static_cast<int>(view.op) << ' '
        << view.derived << ' ' << view.source << ' ' << view.source2 << '\n';
    out << "va ";
    AppendIdList(out, view.attributes);
    out << '\n';
    out << "vn ";
    if (view.renames.empty()) {
      out << '-';
    } else {
      for (size_t i = 0; i < view.renames.size(); ++i) {
        if (i > 0) out << ',';
        out << view.renames[i].attribute << '=' << view.renames[i].alias;
      }
    }
    out << '\n';
    const DerivationResult& d = view.derivation;
    out << "dd " << d.derived << ' ' << d.spec.source << ' '
        << (d.spec.view_name.empty() ? "-" : d.spec.view_name) << '\n';
    out << "dattrs ";
    AppendIdList(out, d.spec.attributes);
    out << '\n';
    out << "do ";
    if (d.surrogates.of.empty()) {
      out << '-';
    } else {
      bool first = true;
      for (const auto& [src, surr] : d.surrogates.of) {
        if (!first) out << ',';
        first = false;
        out << src << ':' << surr;
      }
    }
    out << '\n';
    out << "dc ";
    AppendIdList(out, d.surrogates.created);
    out << '\n';
    out << "de ";
    if (d.surrogates.edge_rank.empty()) {
      out << '-';
    } else {
      bool first = true;
      for (const auto& [edge, rank] : d.surrogates.edge_rank) {
        if (!first) out << ',';
        first = false;
        out << edge.first << ':' << edge.second << ':' << rank;
      }
    }
    out << '\n';
    out << "dg ";
    AppendIdList(out, std::vector<uint32_t>(d.surrogates.augment_created.begin(),
                                            d.surrogates.augment_created.end()));
    out << '\n';
    out << "dz ";
    AppendIdList(out,
                 std::vector<uint32_t>(d.augment_z.begin(), d.augment_z.end()));
    out << '\n';
    out << "da ";
    AppendIdList(out, d.applicability.applicable);
    out << '\n';
    out << "dn ";
    AppendIdList(out, d.applicability.not_applicable);
    out << '\n';
    for (const MethodRewrite& rw : d.rewrites) {
      out << "rw " << rw.method << ' ' << (rw.body_changed ? 1 : 0) << ' ';
      AppendSignature(out, rw.old_sig);
      out << ' ';
      AppendSignature(out, rw.new_sig);
      out << '\n';
      if (rw.body_changed && rw.old_body != nullptr) {
        out << "rwb " << SerializeBody(catalog.schema(), rw.old_body) << '\n';
      }
    }
    out << "end\n";
  }
  return out.str();
}

Result<Catalog> DeserializeCatalog(std::string_view text) {
  Cursor cursor{text};
  if (cursor.NextLine() != kHeader) {
    return Corrupt(cursor, "expected header '" + std::string(kHeader) + "'");
  }

  Line schema_line = SplitLine(cursor.NextLine());
  uint64_t schema_bytes = 0;
  if (schema_line.tag != "schema" || schema_line.tokens.size() != 1 ||
      !ParseU64(schema_line.tokens[0], schema_bytes)) {
    return Corrupt(cursor, "expected 'schema <nbytes>'");
  }
  if (cursor.pos + schema_bytes + 1 > text.size() ||
      text[cursor.pos + schema_bytes] != '\n') {
    return Corrupt(cursor, "embedded schema section is cut short (" +
                               std::to_string(schema_bytes) +
                               " bytes declared)");
  }
  std::string_view schema_text = text.substr(cursor.pos, schema_bytes);
  cursor.pos += schema_bytes + 1;
  for (char c : schema_text) {
    if (c == '\n') ++cursor.line_no;
  }
  Schema schema;
  {
    Result<Schema> parsed = DeserializeSchema(schema_text);
    if (!parsed.ok()) {
      return Status::ParseError("catalog snapshot: embedded schema: " +
                                parsed.status().message());
    }
    schema = std::move(parsed).value();
  }

  std::vector<ViewDef> views;
  while (!cursor.AtEnd()) {
    Line header = SplitLine(cursor.NextLine());
    if (header.tag.empty()) continue;  // tolerate a trailing blank line
    if (header.tag != "view" || header.tokens.size() != 5) {
      return Corrupt(cursor, "expected 'view <name> <op> <derived> <source> "
                             "<source2>', got '" +
                                 std::string(header.raw) + "'");
    }
    ViewDef view;
    view.name = header.tokens[0];
    uint32_t op = 0;
    if (!ParseU32(header.tokens[1], op) ||
        op > static_cast<uint32_t>(ViewOpKind::kRename) ||
        !ParseU32(header.tokens[2], view.derived) ||
        !ParseU32(header.tokens[3], view.source) ||
        !ParseU32(header.tokens[4], view.source2)) {
      return Corrupt(cursor, "malformed view header '" +
                                 std::string(header.raw) + "'");
    }
    view.op = static_cast<ViewOpKind>(op);
    DerivationResult& d = view.derivation;

    bool done = false;
    MethodRewrite* last_rewrite = nullptr;
    while (!done) {
      if (cursor.AtEnd()) {
        return Corrupt(cursor, "view '" + view.name +
                                   "' is missing its 'end' line");
      }
      Line line = SplitLine(cursor.NextLine());
      bool ok = true;
      if (line.tag == "end") {
        done = true;
      } else if (line.tag == "va" && line.tokens.size() == 1) {
        ok = ParseIdList(line.tokens[0], view.attributes);
      } else if (line.tag == "vn" && line.tokens.size() == 1) {
        if (line.tokens[0] != "-") {
          for (const std::string& pair : SplitAndTrim(line.tokens[0], ',')) {
            size_t eq = pair.find('=');
            if (eq == std::string::npos) {
              ok = false;
              break;
            }
            view.renames.push_back(
                AttributeRename{pair.substr(0, eq), pair.substr(eq + 1)});
          }
        }
      } else if (line.tag == "dd" && line.tokens.size() == 3) {
        ok = ParseU32(line.tokens[0], d.derived) &&
             ParseU32(line.tokens[1], d.spec.source);
        if (line.tokens[2] != "-") d.spec.view_name = line.tokens[2];
      } else if (line.tag == "dattrs" && line.tokens.size() == 1) {
        ok = ParseIdList(line.tokens[0], d.spec.attributes);
      } else if (line.tag == "do" && line.tokens.size() == 1) {
        if (line.tokens[0] != "-") {
          for (const std::string& pair : SplitAndTrim(line.tokens[0], ',')) {
            size_t colon = pair.find(':');
            uint32_t src = 0, surr = 0;
            if (colon == std::string::npos ||
                !ParseU32(std::string_view(pair).substr(0, colon), src) ||
                !ParseU32(std::string_view(pair).substr(colon + 1), surr)) {
              ok = false;
              break;
            }
            d.surrogates.of[src] = surr;
          }
        }
      } else if (line.tag == "dc" && line.tokens.size() == 1) {
        ok = ParseIdList(line.tokens[0], d.surrogates.created);
      } else if (line.tag == "de" && line.tokens.size() == 1) {
        if (line.tokens[0] != "-") {
          for (const std::string& entry : SplitAndTrim(line.tokens[0], ',')) {
            std::vector<std::string> parts = SplitAndTrim(entry, ':');
            uint32_t a = 0, b = 0, rank = 0;
            if (parts.size() != 3 || !ParseU32(parts[0], a) ||
                !ParseU32(parts[1], b) || !ParseU32(parts[2], rank)) {
              ok = false;
              break;
            }
            d.surrogates.edge_rank[{a, b}] = static_cast<int>(rank);
          }
        }
      } else if (line.tag == "dg" && line.tokens.size() == 1) {
        std::vector<uint32_t> ids;
        ok = ParseIdList(line.tokens[0], ids);
        d.surrogates.augment_created.insert(ids.begin(), ids.end());
      } else if (line.tag == "dz" && line.tokens.size() == 1) {
        std::vector<uint32_t> ids;
        ok = ParseIdList(line.tokens[0], ids);
        d.augment_z.insert(ids.begin(), ids.end());
      } else if (line.tag == "da" && line.tokens.size() == 1) {
        ok = ParseIdList(line.tokens[0], d.applicability.applicable);
      } else if (line.tag == "dn" && line.tokens.size() == 1) {
        ok = ParseIdList(line.tokens[0], d.applicability.not_applicable);
      } else if (line.tag == "rw" && line.tokens.size() == 6) {
        MethodRewrite rw;
        uint32_t body_changed = 0;
        ok = ParseU32(line.tokens[0], rw.method) &&
             ParseU32(line.tokens[1], body_changed) && body_changed <= 1 &&
             ParseIdList(line.tokens[2], rw.old_sig.params) &&
             ParseU32(line.tokens[3], rw.old_sig.result) &&
             ParseIdList(line.tokens[4], rw.new_sig.params) &&
             ParseU32(line.tokens[5], rw.new_sig.result);
        rw.body_changed = body_changed == 1;
        if (ok) {
          d.rewrites.push_back(std::move(rw));
          last_rewrite = &d.rewrites.back();
        }
      } else if (line.tag == "rwb") {
        if (last_rewrite == nullptr) {
          return Corrupt(cursor, "'rwb' line without a preceding 'rw'");
        }
        // Everything after the tag, verbatim (s-expressions contain spaces).
        std::string_view expr = line.raw.substr(4);
        Result<ExprPtr> body = DeserializeBody(schema, expr);
        if (!body.ok()) {
          return Corrupt(cursor, "bad rewrite body: " +
                                     body.status().message());
        }
        last_rewrite->old_body = std::move(body).value();
        last_rewrite = nullptr;
      } else {
        return Corrupt(cursor, "unknown view line '" + std::string(line.raw) +
                                   "'");
      }
      if (!ok) {
        return Corrupt(cursor, "malformed '" + line.tag + "' line '" +
                                   std::string(line.raw) + "'");
      }
    }
    views.push_back(std::move(view));
  }
  return Catalog::Restore(std::move(schema), std::move(views));
}

std::string SaveCatalogSnapshot(const Catalog& catalog) {
  return EncodeSnapshotEnvelope(SerializeCatalog(catalog));
}

Result<Catalog> LoadCatalogSnapshot(std::string_view bytes) {
  Result<std::string> payload = DecodeSnapshotEnvelope(bytes);
  if (!payload.ok()) return payload.status();
  return DeserializeCatalog(*payload);
}

Result<Catalog> ReadCatalogSnapshotFile(Env& env, const std::string& path) {
  Result<std::string> bytes = env.ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return LoadCatalogSnapshot(*bytes);
}

}  // namespace tyder::storage
