// CRC32C (Castagnoli) — the checksum guarding the durable-catalog formats:
// every write-ahead-log record (storage/wal.h) and the snapshot envelope
// (catalog/serialize.h) carry one, so a truncated or bit-flipped file is
// detected instead of being parsed as valid schema state. The Castagnoli
// polynomial is the storage-industry standard (ext4, RocksDB, LevelDB,
// iSCSI); this is the portable table-driven form — record payloads are
// small and snapshots are read once at startup, so hardware acceleration
// would be noise here.

#ifndef TYDER_STORAGE_CRC32C_H_
#define TYDER_STORAGE_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace tyder::storage {

// Extends `crc` (state from a previous call, 0 for a fresh checksum) with
// `data`. Chainable: Crc32c(Crc32c(0, a), b) == Crc32c(0, a + b).
uint32_t Crc32c(uint32_t crc, std::string_view data);

inline uint32_t Crc32c(std::string_view data) { return Crc32c(0, data); }

}  // namespace tyder::storage

#endif  // TYDER_STORAGE_CRC32C_H_
