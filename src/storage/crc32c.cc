#include "storage/crc32c.h"

#include <array>

namespace tyder::storage {

namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32c(uint32_t crc, std::string_view data) {
  crc = ~crc;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace tyder::storage
