// FaultyEnv: a deterministic fault-injecting storage::Env for tests.
//
// Wraps a base Env (the real disk by default) and misbehaves on command:
//
//   InjectAt(kind, n)   the n-th (0-based) eligible call from now fails:
//                         kError       the n-th call of ANY kind fails (EIO)
//                         kShortWrite  the n-th APPEND persists only half
//                                      its bytes, then fails
//                         kSyncFail    the n-th fsync (file or directory)
//                                      fails — poisoning the handle per the
//                                      env.h contract
//                         kEnospc     the n-th APPEND fails with ENOSPC,
//                                      nothing persisted
//   SetByteQuota(b)     cumulative append budget: the append that would
//                       cross `b` bytes persists exactly the prefix that
//                       fits, then fails with ENOSPC (disk-full mid-write)
//   PowerLoss()         rewinds the real file system to the DURABLE state:
//                       every tracked file reverts to its last-fsync'd
//                       content (or vanishes if never fsync'd), and
//                       renames/removes not yet committed by a directory
//                       fsync are undone. Call after dropping all open
//                       handles; then recover with a fresh env.
//
// The durability model backing PowerLoss:
//   - a file's content becomes durable when its handle is Sync'd;
//     fsync of a new file also makes its directory entry durable
//     (ext4/xfs-style);
//   - RenameFile/RemoveFile take real effect immediately but stay PENDING —
//     power loss undoes them — until SyncDir of the containing directory
//     commits them;
//   - files that already existed when FaultyEnv first touched them are
//     assumed durable with their on-disk content;
//   - directories themselves are assumed durable (the store cannot fsync
//     the parent of its own root).
//
// Call counters (total/append/sync) tick on every call whether or not a
// fault is armed, so a clean run measures the sweep space for the I/O fault
// matrix: run once cleanly, then re-run once per (kind, n) combination.
// Single-threaded use only, like the tests that drive it.

#ifndef TYDER_STORAGE_FAULTY_ENV_H_
#define TYDER_STORAGE_FAULTY_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/env.h"

namespace tyder::storage {

class FaultyEnv : public Env {
 public:
  enum class FaultKind { kError, kShortWrite, kSyncFail, kEnospc };

  // `base` == nullptr means Env::Posix().
  explicit FaultyEnv(Env* base = nullptr)
      : base_(base != nullptr ? base : &Env::Posix()) {}

  // Arms a one-shot fault at the n-th eligible call from now (see the
  // kind's counter above). Replaces any previously armed fault.
  void InjectAt(FaultKind kind, int nth);

  // Arms the cumulative append byte budget; appends past it fail ENOSPC.
  void SetByteQuota(uint64_t bytes);

  // Disarms the injected fault and the quota. Counters keep running.
  void ClearFaults();

  // True once an armed fault or the quota has actually fired.
  bool fault_fired() const { return fault_fired_; }

  int total_calls() const { return total_calls_; }
  int append_calls() const { return append_calls_; }
  int sync_calls() const { return sync_calls_; }
  void ResetCounters();

  // Simulated power loss: rewinds the real filesystem to the durable state.
  // Drop every file handle opened through this env first.
  void PowerLoss();

 protected:
  Result<std::unique_ptr<WritableFile>> DoOpenAppendable(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> DoOpenTruncated(
      const std::string& path) override;
  Result<std::string> DoReadFile(const std::string& path) override;
  Status DoRenameFile(const std::string& from, const std::string& to) override;
  Status DoRemoveFile(const std::string& path) override;
  Status DoTruncateFile(const std::string& path, uint64_t size) override;
  Status DoSyncDir(const std::string& dir) override;
  Status DoCreateDirs(const std::string& dir) override;
  Result<std::vector<std::string>> DoListDir(const std::string& dir) override;

 private:
  class FaultyFile;

  struct PendingOp {
    enum Kind { kRename, kRemove } kind;
    std::string from;  // rename source; unused for removes
    std::string path;  // rename target / removed file
    // The durable content the renamed inode carries to its new name.
    std::optional<std::string> moved_durable;
  };

  // First-touch tracking: pre-existing files are durable as-is.
  void Touch(const std::string& path);
  std::string ParentDir(const std::string& path) const;

  // Fires iff the armed fault matches `kind` at index `idx`.
  bool ShouldFire(FaultKind kind, int idx);

  // Hooks called by FaultyFile.
  Status OnAppend(const std::string& path, std::string_view data,
                  WritableFile& inner);
  Status OnSync(const std::string& path, WritableFile& inner);
  Status OnTruncate(const std::string& path, uint64_t size,
                    WritableFile& inner);

  Env* base_;

  bool armed_ = false;
  FaultKind armed_kind_ = FaultKind::kError;
  int armed_nth_ = 0;
  bool fault_fired_ = false;

  bool quota_armed_ = false;
  uint64_t quota_bytes_ = 0;
  uint64_t quota_used_ = 0;

  int total_calls_ = 0;
  int append_calls_ = 0;
  int sync_calls_ = 0;

  // nullopt == durably absent.
  std::map<std::string, std::optional<std::string>> durable_;
  std::vector<PendingOp> pending_;
};

}  // namespace tyder::storage

#endif  // TYDER_STORAGE_FAULTY_ENV_H_
