// Full-fidelity catalog snapshots: the payload the durable catalog frames in
// the checksummed envelope of catalog/serialize.h.
//
// ExportTdl is deliberately NOT used here: a TDL round trip is lossy (detached
// tombstone types vanish, generic-function id order can shift), so it cannot
// honor the recovery contract that a reloaded catalog serializes
// byte-identically to the one that was saved. This format instead embeds the
// exact SerializeSchema text — whose ids are stable across a round trip —
// followed by the view registry with each view's complete derivation record
// (surrogates, rewrites with original signatures and bodies), so DropView and
// Collapse keep working after recovery.
//
//   tyder-db v1
//   schema <nbytes>
//   <SerializeSchema text, exactly nbytes>
//   view <name> <op> <derived> <source> <source2>
//   va <attr-ids|->            # ViewDef.attributes
//   vn <attr=alias,...|->      # ViewDef.renames
//   dd <derived> <spec.source> <spec.view_name|->
//   dattrs <attr-ids|->        # spec.attributes
//   do <src:surr,...|->        # surrogates.of
//   dc <type-ids|->            # surrogates.created
//   de <a:b:rank,...|->        # surrogates.edge_rank
//   dg <type-ids|->            # surrogates.augment_created
//   dz <type-ids|->            # augment_z
//   da <method-ids|->          # applicability.applicable
//   dn <method-ids|->          # applicability.not_applicable
//   rw <method> <0|1> <old params|-> <old result> <new params|-> <new result>
//   rwb <method> <s-expression>     # old body, rewrites with body_changed only
//   end
//
// Transient diagnostics (trace lines, trace events) are not persisted.

#ifndef TYDER_STORAGE_CATALOG_SNAPSHOT_H_
#define TYDER_STORAGE_CATALOG_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/env.h"

namespace tyder::storage {

// Serializes the whole catalog (schema + view registry) as the text payload
// above. Deterministic: equal catalogs produce equal bytes.
std::string SerializeCatalog(const Catalog& catalog);

// Inverse of SerializeCatalog. The result serializes byte-identically to the
// input of the SerializeCatalog call that produced `text`.
Result<Catalog> DeserializeCatalog(std::string_view text);

// Catalog <-> checksummed snapshot envelope (serialize.h framing).
std::string SaveCatalogSnapshot(const Catalog& catalog);
Result<Catalog> LoadCatalogSnapshot(std::string_view bytes);

// Reads the file at `path` through `env` and decodes the envelope.
Result<Catalog> ReadCatalogSnapshotFile(Env& env, const std::string& path);

}  // namespace tyder::storage

#endif  // TYDER_STORAGE_CATALOG_SNAPSHOT_H_
