#include "storage/durable_catalog.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "obs/obs.h"
#include "storage/catalog_snapshot.h"

namespace tyder::storage {

namespace {

constexpr std::string_view kSnapshotPrefix = "snapshot-";
constexpr std::string_view kSnapshotSuffix = ".tysnap";

std::string SnapshotFileName(uint64_t lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snapshot-%020llu.tysnap",
                static_cast<unsigned long long>(lsn));
  return buf;
}

// snapshot-<20 digits>.tysnap -> lsn, or false for any other name.
bool ParseSnapshotFileName(std::string_view name, uint64_t& lsn) {
  if (name.size() != kSnapshotPrefix.size() + 20 + kSnapshotSuffix.size() ||
      name.substr(0, kSnapshotPrefix.size()) != kSnapshotPrefix ||
      name.substr(name.size() - kSnapshotSuffix.size()) != kSnapshotSuffix) {
    return false;
  }
  std::string_view digits = name.substr(kSnapshotPrefix.size(), 20);
  auto [ptr, ec] = std::from_chars(digits.begin(), digits.end(), lsn);
  return ec == std::errc() && ptr == digits.end();
}

std::string JoinNames(const std::vector<std::string>& names) {
  if (names.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ',';
    out += names[i];
  }
  return out;
}

std::string VerifyFlag(const ProjectionOptions& options) {
  return options.verify ? "verify" : "no-verify";
}

}  // namespace

Status ReplayOp(Catalog& catalog, std::string_view payload) {
  std::istringstream in{std::string(payload)};
  std::string op;
  in >> op;
  auto bad = [&payload]() {
    return Status::ParseError("malformed WAL op '" + std::string(payload) +
                              "'");
  };
  auto parse_options = [&](ProjectionOptions& options) {
    std::string flag;
    in >> flag;
    if (flag == "verify") {
      options.verify = true;
    } else if (flag == "no-verify") {
      options.verify = false;
    } else {
      return false;
    }
    return true;
  };

  if (op == "project") {
    std::string view, source, attrs;
    in >> view >> source >> attrs;
    ProjectionOptions options;
    if (in.fail() || !parse_options(options)) return bad();
    std::vector<std::string> names =
        attrs == "-" ? std::vector<std::string>{} : SplitAndTrim(attrs, ',');
    Result<const ViewDef*> r =
        catalog.DefineProjectionView(view, source, names, options);
    return r.ok() ? Status::OK() : r.status();
  }
  if (op == "select") {
    std::string view, source;
    in >> view >> source;
    if (in.fail()) return bad();
    Result<const ViewDef*> r = catalog.DefineSelectionView(view, source);
    return r.ok() ? Status::OK() : r.status();
  }
  if (op == "generalize") {
    std::string view, a, b;
    in >> view >> a >> b;
    ProjectionOptions options;
    if (in.fail() || !parse_options(options)) return bad();
    Result<const ViewDef*> r =
        catalog.DefineGeneralizationView(view, a, b, options);
    return r.ok() ? Status::OK() : r.status();
  }
  if (op == "rename") {
    std::string view, source, pairs;
    in >> view >> source >> pairs;
    ProjectionOptions options;
    if (in.fail() || !parse_options(options)) return bad();
    std::vector<AttributeRename> renames;
    if (pairs != "-") {
      for (const std::string& pair : SplitAndTrim(pairs, ',')) {
        size_t eq = pair.find('=');
        if (eq == std::string::npos) return bad();
        renames.push_back(
            AttributeRename{pair.substr(0, eq), pair.substr(eq + 1)});
      }
    }
    Result<const ViewDef*> r =
        catalog.DefineRenameView(view, source, renames, options);
    return r.ok() ? Status::OK() : r.status();
  }
  if (op == "drop") {
    std::string view;
    in >> view;
    if (in.fail()) return bad();
    return catalog.DropView(view);
  }
  if (op == "collapse") {
    Result<CollapseReport> r = catalog.Collapse();
    return r.ok() ? Status::OK() : r.status();
  }
  return Status::ParseError("unknown WAL op '" + op + "' in record '" +
                            std::string(payload) + "'");
}

Result<DurableCatalog> DurableCatalog::Open(const std::string& dir, Env* env,
                                            GroupCommitOptions group) {
  TYDER_SPAN("DurableCatalog.Open");
  TYDER_TIMED("storage.recovery_ns");
  auto start = std::chrono::steady_clock::now();

  DurableCatalog db;
  db.dir_ = dir;
  db.wal_path_ = dir + "/wal.log";
  db.env_ = env != nullptr ? env : &Env::Posix();

  TYDER_RETURN_IF_ERROR(db.env_->CreateDirs(dir));

  // 1. Load the newest snapshot that decodes cleanly.
  Result<std::vector<std::string>> entries = db.env_->ListDir(dir);
  if (!entries.ok()) return entries.status();
  std::vector<std::pair<uint64_t, std::string>> snapshots;  // lsn -> path
  for (const std::string& name : *entries) {
    uint64_t lsn = 0;
    if (ParseSnapshotFileName(name, lsn)) {
      snapshots.emplace_back(lsn, dir + "/" + name);
    }
  }
  std::sort(snapshots.rbegin(), snapshots.rend());
  uint64_t snapshot_lsn = 0;
  for (const auto& [lsn, path] : snapshots) {
    Result<Catalog> loaded = ReadCatalogSnapshotFile(*db.env_, path);
    if (loaded.ok()) {
      db.catalog_ = std::make_unique<Catalog>(std::move(loaded).value());
      db.recovery_.snapshot_loaded = true;
      snapshot_lsn = lsn;
      break;
    }
    db.recovery_.warnings.push_back(
        "snapshot '" + path + "' is unusable (" + loaded.status().message() +
        "); falling back to an older snapshot");
  }
  if (db.catalog_ == nullptr) {
    if (!snapshots.empty()) {
      std::string detail;
      for (const std::string& w : db.recovery_.warnings) {
        detail += "\n  " + w;
      }
      return Status::Internal(
          "no snapshot in '" + dir +
          "' decodes cleanly; refusing to rebuild from the WAL alone (it was "
          "truncated at the last compaction)" +
          detail);
    }
    Result<Catalog> fresh = Catalog::Create();
    if (!fresh.ok()) return fresh.status();
    db.catalog_ = std::make_unique<Catalog>(std::move(fresh).value());
  }
  db.recovery_.snapshot_lsn = snapshot_lsn;
  uint64_t recovered_lsn = snapshot_lsn;

  // 2. Validate the log; repair a torn tail; refuse mid-log corruption.
  Result<WalReadResult> wal = ReadWal(db.wal_path_, db.env_);
  if (!wal.ok()) return wal.status();
  if (!wal->torn_tail_warning.empty()) {
    db.recovery_.warnings.push_back(wal->torn_tail_warning);
    TYDER_RETURN_IF_ERROR(
        RepairTornTail(db.wal_path_, wal->valid_bytes, db.env_));
  }

  // 3. Replay everything the snapshot does not already cover. (Records at or
  // below the snapshot lsn are left over from a crash between a compaction's
  // snapshot rename and its WAL truncate.)
  for (const WalRecord& record : wal->records) {
    if (record.lsn <= snapshot_lsn) continue;
    Status replayed = ReplayOp(*db.catalog_, record.payload);
    if (!replayed.ok()) {
      return Status::Internal(
          "WAL replay failed at lsn " + std::to_string(record.lsn) + " ('" +
          record.payload + "'): " + replayed.message());
    }
    TYDER_COUNT("storage.wal_replays");
    recovered_lsn = record.lsn;
    ++db.recovery_.replayed_records;
  }

  Result<WalWriter> writer = WalWriter::Open(db.wal_path_, db.env_);
  if (!writer.ok()) return writer.status();
  db.wal_ = std::make_unique<WalWriter>(std::move(writer).value());

  // Commit state: the group-commit queue over the WAL, and the epoch layer
  // seeded with the recovered catalog so readers can pin from the start.
  // CommitState is address-stable (unique_ptr), so the leader callback and
  // in-flight waiters survive DurableCatalog moves.
  db.state_ = std::make_unique<CommitState>();
  db.state_->tip_lsn = recovered_lsn;
  db.state_->durable_lsn.store(recovered_lsn, std::memory_order_relaxed);
  db.state_->epochs.Publish(*db.catalog_, recovered_lsn);
  db.state_->group_options = group;
  db.state_->group = std::make_unique<GroupWal>(db.wal_.get(), group);
  db.state_->group->set_on_batch_durable([cs = db.state_.get()](
                                             uint64_t last_lsn) {
    // Leader side, batch fsync'd, no waiter awake yet: publish the batch's
    // final snapshot as the new epoch and advance the acknowledged lsn.
    // Intermediate per-record snapshots of the same batch are dropped —
    // they were never individually acknowledged.
    std::lock_guard<std::mutex> lock(cs->publish_mu);
    auto it = cs->pending_publish.find(last_lsn);
    if (it != cs->pending_publish.end()) {
      cs->epochs.Publish(std::move(it->second), last_lsn);
    }
    cs->pending_publish.erase(cs->pending_publish.begin(),
                              cs->pending_publish.upper_bound(last_lsn));
    cs->durable_lsn.store(last_lsn, std::memory_order_release);
  });

  db.recovery_.recovery_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return db;
}

void DurableCatalog::EnterDegraded(const std::string& reason) {
  if (!degraded_.ok()) return;  // keep the first cause
  degraded_ = Status::FailedPrecondition(
      "database '" + dir_ + "' is in read-only degraded mode: " + reason +
      "; reads keep serving the last consistent state, mutations are "
      "refused until Reopen() re-validates the on-disk state");
  state_->degraded_flag.store(true, std::memory_order_release);
  TYDER_COUNT("storage.degraded_entries");
  TYDER_RECORD_V(kMark, "storage.degraded",
                 static_cast<int64_t>(last_lsn()));
  TYDER_FLIGHT_DUMP("storage.degraded:" + dir_);
}

Status DurableCatalog::Reopen() {
  TYDER_SPAN("DurableCatalog.Reopen");
  std::lock_guard<std::mutex> lock(state_->writer_mu);
  // Drain the commit pipeline first: every record already queued in the
  // GroupWal reaches its batch — a durable ack or a definitive nack — before
  // recovery replaces the WAL handle, so no committer's fate is decided by a
  // writer that no longer exists. New committers block on writer_mu until
  // the reopen completes (and then see either the recovered healthy state or
  // the original degraded refusal).
  state_->group->Quiesce();
  if (state_->group->ConsumeStallIfPending()) ResetTipToDurableLocked();

  Result<DurableCatalog> fresh = Open(dir_, env_, state_->group_options);
  if (!fresh.ok()) {
    return Status::FailedPrecondition(
        "Reopen of '" + dir_ + "' failed; staying in " +
        std::string(degraded() ? "degraded" : "current") +
        " mode: " + fresh.status().message());
  }

  // Adopt the recovered state IN PLACE. CommitState (the writer lock, the
  // epoch layer, the group-commit queue) must stay address-stable: nacked
  // committers may still be blocked on writer_mu behind us, readers may hold
  // live Pins into the epoch layer, and a waiter may still be returning from
  // the old queue's Wait(). Only the catalog, the WAL handle, and the lsn
  // bookkeeping are replaced; `fresh`'s private CommitState dies unused.
  uint64_t lsn = fresh->last_lsn();
  *catalog_ = std::move(*fresh->catalog_);
  wal_ = std::move(fresh->wal_);
  state_->group->ResetWal(wal_.get());
  recovery_ = fresh->recovery_;
  {
    std::lock_guard<std::mutex> plock(state_->publish_mu);
    state_->pending_publish.clear();
    // Re-publish the recovered catalog. Recovery lands pre- or post- the
    // interrupted mutation: at a version past the published one this
    // advances the epoch; at the same version replay is deterministic, so
    // the published snapshot is already byte-identical and the stale
    // publish is dropped.
    state_->epochs.Publish(*catalog_, lsn);
    state_->durable_lsn.store(lsn, std::memory_order_release);
  }
  state_->tip_lsn = lsn;
  degraded_ = Status::OK();
  state_->degraded_flag.store(false, std::memory_order_release);
  TYDER_RECORD_V(kMark, "storage.reopen", static_cast<int64_t>(lsn));
  return Status::OK();
}

// Rolls the writer tip back to the last durable (published) epoch and drops
// every pending publish past it. Requires writer_mu, and no batch in flight
// (true whenever a stall is pending: the leader stalls the queue before any
// waiter can reach this path, and new enqueues are refused until the stall
// is consumed).
void DurableCatalog::ResetTipToDurableLocked() {
  EpochCatalog::Pin pin(state_->epochs);
  *catalog_ = *pin.get();  // Open always publishes, so the pin is never null
  uint64_t durable = state_->durable_lsn.load(std::memory_order_acquire);
  state_->tip_lsn = durable;
  std::lock_guard<std::mutex> lock(state_->publish_mu);
  state_->pending_publish.erase(state_->pending_publish.upper_bound(durable),
                                state_->pending_publish.end());
}

// Failure path shared by every committer that observed a commit failure
// (its own batch failing, a drain-fail, or an enqueue refusal) — and by
// entry points that may run before any failed waiter reacquired the lock.
// Exactly one caller consumes the stall and rolls the tip back; a poisoned
// WAL additionally degrades the database, exactly as a failed single-record
// fsync always has (first cause wins, so every waiter converges on the same
// degraded status).
void DurableCatalog::AbsorbFailureLocked(const Status& cause) {
  if (state_->group->ConsumeStallIfPending()) {
    ResetTipToDurableLocked();
  }
  if (wal_->poisoned()) {
    EnterDegraded("the WAL can no longer vouch for durability (" +
                  cause.message() + ")");
  }
}

// The group-commit path every logged mutation rides:
//
//   lock writer_mu → absorb any unconsumed failure → refuse if degraded
//   → apply the op to the tip (all-or-nothing via its SchemaTransaction)
//   → assign the next lsn, stash the tip snapshot for the leader to publish
//   → enqueue the record, UNLOCK, wait for the batch fsync
//
// On a durable ack the op returns success — its epoch is already published
// (the leader publishes before waking waiters). On any commit failure the
// op re-locks, rolls the tip back to the last durable epoch (unless another
// failed committer already did) and returns the failure: the caller
// observes pre-call state, and may retry once the disk recovers unless the
// failure poisoned the WAL (→ degraded).
template <typename ResultT, typename OpFn>
ResultT DurableCatalog::CommitLogged(std::string payload, OpFn&& op) {
  std::unique_lock<std::mutex> lock(state_->writer_mu);
  if (state_->group->stalled()) {
    AbsorbFailureLocked(Status::Internal("an earlier group commit failed"));
  }
  if (!degraded_.ok()) return degraded_;

  ResultT applied = op();
  if (!applied.ok()) return applied;  // refused by the catalog: tip untouched

  uint64_t lsn = ++state_->tip_lsn;
  {
    // Stash before enqueue: the leader may seal, fsync and publish this
    // record the instant it is queued.
    std::lock_guard<std::mutex> plock(state_->publish_mu);
    state_->pending_publish.emplace(lsn, *catalog_);
  }
  GroupWal::Ticket ticket;
  Status enqueued = state_->group->Enqueue(ticket, lsn, std::move(payload));
  if (!enqueued.ok()) {
    // A concurrent batch failed between our entry check and here; our op was
    // applied on a tip that can no longer become durable.
    AbsorbFailureLocked(enqueued);
    return enqueued;
  }

  lock.unlock();
  Status durable = state_->group->Wait(ticket);
  if (!durable.ok()) {
    std::lock_guard<std::mutex> relock(state_->writer_mu);
    AbsorbFailureLocked(durable);
    return durable;
  }
  return applied;
}

Result<const ViewDef*> DurableCatalog::DefineProjectionView(
    std::string_view name, std::string_view source_type,
    const std::vector<std::string>& attribute_names,
    const ProjectionOptions& options) {
  std::string payload = "project " + std::string(name) + ' ' +
                        std::string(source_type) + ' ' +
                        JoinNames(attribute_names) + ' ' + VerifyFlag(options);
  return CommitLogged<Result<const ViewDef*>>(std::move(payload), [&] {
    return catalog_->DefineProjectionView(name, source_type, attribute_names,
                                          options);
  });
}

Result<const ViewDef*> DurableCatalog::DefineSelectionView(
    std::string_view name, std::string_view source_type) {
  std::string payload =
      "select " + std::string(name) + ' ' + std::string(source_type);
  return CommitLogged<Result<const ViewDef*>>(std::move(payload), [&] {
    return catalog_->DefineSelectionView(name, source_type);
  });
}

Result<const ViewDef*> DurableCatalog::DefineGeneralizationView(
    std::string_view name, std::string_view type_a, std::string_view type_b,
    const ProjectionOptions& options) {
  std::string payload = "generalize " + std::string(name) + ' ' +
                        std::string(type_a) + ' ' + std::string(type_b) + ' ' +
                        VerifyFlag(options);
  return CommitLogged<Result<const ViewDef*>>(std::move(payload), [&] {
    return catalog_->DefineGeneralizationView(name, type_a, type_b, options);
  });
}

Result<const ViewDef*> DurableCatalog::DefineRenameView(
    std::string_view name, std::string_view source_type,
    const std::vector<AttributeRename>& renames,
    const ProjectionOptions& options) {
  std::string pairs;
  for (size_t i = 0; i < renames.size(); ++i) {
    if (i > 0) pairs += ',';
    pairs += renames[i].attribute + '=' + renames[i].alias;
  }
  if (pairs.empty()) pairs = "-";
  std::string payload = "rename " + std::string(name) + ' ' +
                        std::string(source_type) + ' ' + pairs + ' ' +
                        VerifyFlag(options);
  return CommitLogged<Result<const ViewDef*>>(std::move(payload), [&] {
    return catalog_->DefineRenameView(name, source_type, renames, options);
  });
}

Status DurableCatalog::DropView(std::string_view name) {
  std::string payload = "drop " + std::string(name);
  return CommitLogged<Status>(std::move(payload),
                              [&] { return catalog_->DropView(name); });
}

Result<CollapseReport> DurableCatalog::Collapse() {
  return CommitLogged<Result<CollapseReport>>(
      "collapse", [&] { return catalog_->Collapse(); });
}

Status DurableCatalog::Seed(Catalog catalog) {
  std::lock_guard<std::mutex> lock(state_->writer_mu);
  state_->group->Quiesce();
  if (state_->group->ConsumeStallIfPending()) ResetTipToDurableLocked();
  if (!degraded_.ok()) return degraded_;
  if (recovery_.snapshot_loaded || last_lsn() != 0 ||
      !catalog_->views().empty()) {
    return Status::FailedPrecondition(
        "database '" + dir_ +
        "' already has durable state; refusing to overwrite it with a new "
        "schema");
  }
  *catalog_ = std::move(catalog);
  Status compacted = CompactLocked();
  if (compacted.ok()) {
    // The seed never rode the WAL, so publish it directly — the snapshot
    // write above made it durable.
    state_->epochs.Publish(*catalog_, last_lsn());
  }
  return compacted;
}

// Writes the snapshot bytes to `tmp_path` and fsyncs them. A failed fsync
// degrades the database: the file's durability can no longer be proven and
// a rename would publish a snapshot that might evaporate in a crash.
Status DurableCatalog::WriteSnapshot(const std::string& tmp_path,
                                     std::string_view bytes) {
  Result<std::unique_ptr<WritableFile>> file = env_->OpenTruncated(tmp_path);
  if (!file.ok()) return file.status();
  Status status = (*file)->Append(bytes);
  if (status.ok()) {
    status = (*file)->Sync();
    if (!status.ok() && (*file)->poisoned()) {
      EnterDegraded("snapshot fsync failed (" + status.message() + ")");
    }
  }
  return status;
}

Status DurableCatalog::Compact() {
  TYDER_SPAN("DurableCatalog.Compact");
  std::lock_guard<std::mutex> lock(state_->writer_mu);
  // Quiesce the commit pipeline: every enqueued record reaches its batch
  // fsync (and its epoch publish) or fails before we read the lsn the
  // snapshot will claim to cover. A stall surfaced during the drain is
  // absorbed here — tip back to the durable epoch, degraded if poisoned —
  // rather than deadlocking against failed waiters that also want the
  // writer lock (we hold it; they re-check after us).
  state_->group->Quiesce();
  if (state_->group->stalled()) {
    AbsorbFailureLocked(Status::Internal("a group commit failed"));
  }
  if (!degraded_.ok()) return degraded_;
  return CompactLocked();
}

Status DurableCatalog::CompactLocked() {
  std::string bytes = SaveCatalogSnapshot(*catalog_);
  std::string file_name = SnapshotFileName(last_lsn());
  std::string tmp_path = dir_ + "/" + file_name + ".tmp";
  std::string final_path = dir_ + "/" + file_name;

  // Until the WAL truncate below, any failure leaves the previous snapshot
  // plus the intact WAL as the recovery source: clean up the temp file,
  // report the failure, stay live (unless an fsync failure degraded us).
  Status status = WriteSnapshot(tmp_path, bytes);
  if (status.ok() && TYDER_FAULT_CONSUME("storage.compact.before_rename")) {
    // Simulated crash: temp snapshot written, never renamed. No cleanup —
    // the "process" is gone; the next successful compaction reclaims it.
    return Status::Internal(
        "fault injected at 'storage.compact.before_rename'");
  }
  if (status.ok()) status = env_->RenameFile(tmp_path, final_path);
  if (status.ok()) status = env_->SyncDir(dir_);
  if (!status.ok()) {
    (void)env_->RemoveFile(tmp_path);
    return status;
  }
  TYDER_COUNT("storage.snapshot_writes");
  // Snapshot live, WAL not yet truncated: recovery must skip the records the
  // snapshot already covers.
  TYDER_FAULT_POINT("storage.compact.after_rename");
  status = wal_->TruncateAll();
  if (!status.ok()) {
    if (wal_->poisoned()) {
      EnterDegraded("the WAL truncation after compaction could not be made "
                    "durable (" + status.message() + ")");
    }
    return status;
  }

  // Only now is it safe to drop older snapshots: up to this point a crash
  // could still need them (their WAL suffix was intact). Cleanup failures are
  // cosmetic — stale files are ignored or reclaimed by the next compaction.
  Result<std::vector<std::string>> entries = env_->ListDir(dir_);
  if (entries.ok()) {
    for (const std::string& name : *entries) {
      uint64_t lsn = 0;
      bool stale_snapshot =
          ParseSnapshotFileName(name, lsn) && name != file_name;
      bool stale_tmp = name.size() > 4 &&
                       name.compare(name.size() - 4, 4, ".tmp") == 0;
      if (stale_snapshot || stale_tmp) {
        (void)env_->RemoveFile(dir_ + "/" + name);
      }
    }
  }
  return Status::OK();
}

}  // namespace tyder::storage
