#include "storage/durable_catalog.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "core/transaction.h"
#include "obs/obs.h"
#include "storage/catalog_snapshot.h"

namespace tyder::storage {

namespace {

constexpr std::string_view kSnapshotPrefix = "snapshot-";
constexpr std::string_view kSnapshotSuffix = ".tysnap";

std::string SnapshotFileName(uint64_t lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snapshot-%020llu.tysnap",
                static_cast<unsigned long long>(lsn));
  return buf;
}

// snapshot-<20 digits>.tysnap -> lsn, or false for any other name.
bool ParseSnapshotFileName(std::string_view name, uint64_t& lsn) {
  if (name.size() != kSnapshotPrefix.size() + 20 + kSnapshotSuffix.size() ||
      name.substr(0, kSnapshotPrefix.size()) != kSnapshotPrefix ||
      name.substr(name.size() - kSnapshotSuffix.size()) != kSnapshotSuffix) {
    return false;
  }
  std::string_view digits = name.substr(kSnapshotPrefix.size(), 20);
  auto [ptr, ec] = std::from_chars(digits.begin(), digits.end(), lsn);
  return ec == std::errc() && ptr == digits.end();
}

std::string JoinNames(const std::vector<std::string>& names) {
  if (names.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ',';
    out += names[i];
  }
  return out;
}

std::string VerifyFlag(const ProjectionOptions& options) {
  return options.verify ? "verify" : "no-verify";
}

}  // namespace

Status ReplayOp(Catalog& catalog, std::string_view payload) {
  std::istringstream in{std::string(payload)};
  std::string op;
  in >> op;
  auto bad = [&payload]() {
    return Status::ParseError("malformed WAL op '" + std::string(payload) +
                              "'");
  };
  auto parse_options = [&](ProjectionOptions& options) {
    std::string flag;
    in >> flag;
    if (flag == "verify") {
      options.verify = true;
    } else if (flag == "no-verify") {
      options.verify = false;
    } else {
      return false;
    }
    return true;
  };

  if (op == "project") {
    std::string view, source, attrs;
    in >> view >> source >> attrs;
    ProjectionOptions options;
    if (in.fail() || !parse_options(options)) return bad();
    std::vector<std::string> names =
        attrs == "-" ? std::vector<std::string>{} : SplitAndTrim(attrs, ',');
    Result<const ViewDef*> r =
        catalog.DefineProjectionView(view, source, names, options);
    return r.ok() ? Status::OK() : r.status();
  }
  if (op == "select") {
    std::string view, source;
    in >> view >> source;
    if (in.fail()) return bad();
    Result<const ViewDef*> r = catalog.DefineSelectionView(view, source);
    return r.ok() ? Status::OK() : r.status();
  }
  if (op == "generalize") {
    std::string view, a, b;
    in >> view >> a >> b;
    ProjectionOptions options;
    if (in.fail() || !parse_options(options)) return bad();
    Result<const ViewDef*> r =
        catalog.DefineGeneralizationView(view, a, b, options);
    return r.ok() ? Status::OK() : r.status();
  }
  if (op == "rename") {
    std::string view, source, pairs;
    in >> view >> source >> pairs;
    ProjectionOptions options;
    if (in.fail() || !parse_options(options)) return bad();
    std::vector<AttributeRename> renames;
    if (pairs != "-") {
      for (const std::string& pair : SplitAndTrim(pairs, ',')) {
        size_t eq = pair.find('=');
        if (eq == std::string::npos) return bad();
        renames.push_back(
            AttributeRename{pair.substr(0, eq), pair.substr(eq + 1)});
      }
    }
    Result<const ViewDef*> r =
        catalog.DefineRenameView(view, source, renames, options);
    return r.ok() ? Status::OK() : r.status();
  }
  if (op == "drop") {
    std::string view;
    in >> view;
    if (in.fail()) return bad();
    return catalog.DropView(view);
  }
  if (op == "collapse") {
    Result<CollapseReport> r = catalog.Collapse();
    return r.ok() ? Status::OK() : r.status();
  }
  return Status::ParseError("unknown WAL op '" + op + "' in record '" +
                            std::string(payload) + "'");
}

Result<DurableCatalog> DurableCatalog::Open(const std::string& dir, Env* env) {
  TYDER_SPAN("DurableCatalog.Open");
  TYDER_TIMED("storage.recovery_ns");
  auto start = std::chrono::steady_clock::now();

  DurableCatalog db;
  db.dir_ = dir;
  db.wal_path_ = dir + "/wal.log";
  db.env_ = env != nullptr ? env : &Env::Posix();

  TYDER_RETURN_IF_ERROR(db.env_->CreateDirs(dir));

  // 1. Load the newest snapshot that decodes cleanly.
  Result<std::vector<std::string>> entries = db.env_->ListDir(dir);
  if (!entries.ok()) return entries.status();
  std::vector<std::pair<uint64_t, std::string>> snapshots;  // lsn -> path
  for (const std::string& name : *entries) {
    uint64_t lsn = 0;
    if (ParseSnapshotFileName(name, lsn)) {
      snapshots.emplace_back(lsn, dir + "/" + name);
    }
  }
  std::sort(snapshots.rbegin(), snapshots.rend());
  uint64_t snapshot_lsn = 0;
  for (const auto& [lsn, path] : snapshots) {
    Result<Catalog> loaded = ReadCatalogSnapshotFile(*db.env_, path);
    if (loaded.ok()) {
      db.catalog_ = std::make_unique<Catalog>(std::move(loaded).value());
      db.recovery_.snapshot_loaded = true;
      snapshot_lsn = lsn;
      break;
    }
    db.recovery_.warnings.push_back(
        "snapshot '" + path + "' is unusable (" + loaded.status().message() +
        "); falling back to an older snapshot");
  }
  if (db.catalog_ == nullptr) {
    if (!snapshots.empty()) {
      std::string detail;
      for (const std::string& w : db.recovery_.warnings) {
        detail += "\n  " + w;
      }
      return Status::Internal(
          "no snapshot in '" + dir +
          "' decodes cleanly; refusing to rebuild from the WAL alone (it was "
          "truncated at the last compaction)" +
          detail);
    }
    Result<Catalog> fresh = Catalog::Create();
    if (!fresh.ok()) return fresh.status();
    db.catalog_ = std::make_unique<Catalog>(std::move(fresh).value());
  }
  db.recovery_.snapshot_lsn = snapshot_lsn;
  db.last_lsn_ = snapshot_lsn;

  // 2. Validate the log; repair a torn tail; refuse mid-log corruption.
  Result<WalReadResult> wal = ReadWal(db.wal_path_, db.env_);
  if (!wal.ok()) return wal.status();
  if (!wal->torn_tail_warning.empty()) {
    db.recovery_.warnings.push_back(wal->torn_tail_warning);
    TYDER_RETURN_IF_ERROR(
        RepairTornTail(db.wal_path_, wal->valid_bytes, db.env_));
  }

  // 3. Replay everything the snapshot does not already cover. (Records at or
  // below the snapshot lsn are left over from a crash between a compaction's
  // snapshot rename and its WAL truncate.)
  for (const WalRecord& record : wal->records) {
    if (record.lsn <= snapshot_lsn) continue;
    Status replayed = ReplayOp(*db.catalog_, record.payload);
    if (!replayed.ok()) {
      return Status::Internal(
          "WAL replay failed at lsn " + std::to_string(record.lsn) + " ('" +
          record.payload + "'): " + replayed.message());
    }
    TYDER_COUNT("storage.wal_replays");
    db.last_lsn_ = record.lsn;
    ++db.recovery_.replayed_records;
  }

  Result<WalWriter> writer = WalWriter::Open(db.wal_path_, db.env_);
  if (!writer.ok()) return writer.status();
  db.wal_ = std::make_unique<WalWriter>(std::move(writer).value());

  db.recovery_.recovery_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return db;
}

void DurableCatalog::EnterDegraded(const std::string& reason) {
  if (!degraded_.ok()) return;  // keep the first cause
  degraded_ = Status::FailedPrecondition(
      "database '" + dir_ + "' is in read-only degraded mode: " + reason +
      "; reads keep serving the last consistent state, mutations are "
      "refused until Reopen() re-validates the on-disk state");
  TYDER_COUNT("storage.degraded_entries");
  TYDER_RECORD_V(kMark, "storage.degraded", static_cast<int64_t>(last_lsn_));
  TYDER_FLIGHT_DUMP("storage.degraded:" + dir_);
}

Status DurableCatalog::Reopen() {
  TYDER_SPAN("DurableCatalog.Reopen");
  Result<DurableCatalog> fresh = Open(dir_, env_);
  if (!fresh.ok()) {
    return Status::FailedPrecondition(
        "Reopen of '" + dir_ + "' failed; staying in " +
        std::string(degraded() ? "degraded" : "current") +
        " mode: " + fresh.status().message());
  }
  TYDER_RECORD_V(kMark, "storage.reopen", static_cast<int64_t>(fresh->last_lsn_));
  *this = std::move(*fresh);
  return Status::OK();
}

Status DurableCatalog::AppendRecord(std::string_view payload) {
  if (!degraded_.ok()) return degraded_;
  Status status = wal_->Append(last_lsn_ + 1, payload);
  if (!status.ok()) {
    if (wal_->poisoned()) {
      EnterDegraded("the WAL can no longer vouch for durability (" +
                    status.message() + ")");
    }
    return status;
  }
  ++last_lsn_;
  return Status::OK();
}

Result<const ViewDef*> DurableCatalog::DefineProjectionView(
    std::string_view name, std::string_view source_type,
    const std::vector<std::string>& attribute_names,
    const ProjectionOptions& options) {
  if (!degraded_.ok()) return degraded_;
  std::string payload = "project " + std::string(name) + ' ' +
                        std::string(source_type) + ' ' +
                        JoinNames(attribute_names) + ' ' + VerifyFlag(options);
  ScopedCommitHook hook(
      [this, payload = std::move(payload)] { return AppendRecord(payload); });
  return catalog_->DefineProjectionView(name, source_type, attribute_names,
                                        options);
}

Result<const ViewDef*> DurableCatalog::DefineSelectionView(
    std::string_view name, std::string_view source_type) {
  if (!degraded_.ok()) return degraded_;
  std::string payload =
      "select " + std::string(name) + ' ' + std::string(source_type);
  ScopedCommitHook hook(
      [this, payload = std::move(payload)] { return AppendRecord(payload); });
  return catalog_->DefineSelectionView(name, source_type);
}

Result<const ViewDef*> DurableCatalog::DefineGeneralizationView(
    std::string_view name, std::string_view type_a, std::string_view type_b,
    const ProjectionOptions& options) {
  if (!degraded_.ok()) return degraded_;
  std::string payload = "generalize " + std::string(name) + ' ' +
                        std::string(type_a) + ' ' + std::string(type_b) + ' ' +
                        VerifyFlag(options);
  ScopedCommitHook hook(
      [this, payload = std::move(payload)] { return AppendRecord(payload); });
  return catalog_->DefineGeneralizationView(name, type_a, type_b, options);
}

Result<const ViewDef*> DurableCatalog::DefineRenameView(
    std::string_view name, std::string_view source_type,
    const std::vector<AttributeRename>& renames,
    const ProjectionOptions& options) {
  if (!degraded_.ok()) return degraded_;
  std::string pairs;
  for (size_t i = 0; i < renames.size(); ++i) {
    if (i > 0) pairs += ',';
    pairs += renames[i].attribute + '=' + renames[i].alias;
  }
  if (pairs.empty()) pairs = "-";
  std::string payload = "rename " + std::string(name) + ' ' +
                        std::string(source_type) + ' ' + pairs + ' ' +
                        VerifyFlag(options);
  ScopedCommitHook hook(
      [this, payload = std::move(payload)] { return AppendRecord(payload); });
  return catalog_->DefineRenameView(name, source_type, renames, options);
}

Status DurableCatalog::DropView(std::string_view name) {
  if (!degraded_.ok()) return degraded_;
  std::string payload = "drop " + std::string(name);
  ScopedCommitHook hook(
      [this, payload = std::move(payload)] { return AppendRecord(payload); });
  return catalog_->DropView(name);
}

Result<CollapseReport> DurableCatalog::Collapse() {
  if (!degraded_.ok()) return degraded_;
  ScopedCommitHook hook([this] { return AppendRecord("collapse"); });
  return catalog_->Collapse();
}

Status DurableCatalog::Seed(Catalog catalog) {
  if (!degraded_.ok()) return degraded_;
  if (recovery_.snapshot_loaded || last_lsn_ != 0 ||
      !catalog_->views().empty()) {
    return Status::FailedPrecondition(
        "database '" + dir_ +
        "' already has durable state; refusing to overwrite it with a new "
        "schema");
  }
  *catalog_ = std::move(catalog);
  return Compact();
}

// Writes the snapshot bytes to `tmp_path` and fsyncs them. A failed fsync
// degrades the database: the file's durability can no longer be proven and
// a rename would publish a snapshot that might evaporate in a crash.
Status DurableCatalog::WriteSnapshot(const std::string& tmp_path,
                                     std::string_view bytes) {
  Result<std::unique_ptr<WritableFile>> file = env_->OpenTruncated(tmp_path);
  if (!file.ok()) return file.status();
  Status status = (*file)->Append(bytes);
  if (status.ok()) {
    status = (*file)->Sync();
    if (!status.ok() && (*file)->poisoned()) {
      EnterDegraded("snapshot fsync failed (" + status.message() + ")");
    }
  }
  return status;
}

Status DurableCatalog::Compact() {
  TYDER_SPAN("DurableCatalog.Compact");
  if (!degraded_.ok()) return degraded_;
  std::string bytes = SaveCatalogSnapshot(*catalog_);
  std::string file_name = SnapshotFileName(last_lsn_);
  std::string tmp_path = dir_ + "/" + file_name + ".tmp";
  std::string final_path = dir_ + "/" + file_name;

  // Until the WAL truncate below, any failure leaves the previous snapshot
  // plus the intact WAL as the recovery source: clean up the temp file,
  // report the failure, stay live (unless an fsync failure degraded us).
  Status status = WriteSnapshot(tmp_path, bytes);
  if (status.ok() && TYDER_FAULT_CONSUME("storage.compact.before_rename")) {
    // Simulated crash: temp snapshot written, never renamed. No cleanup —
    // the "process" is gone; the next successful compaction reclaims it.
    return Status::Internal(
        "fault injected at 'storage.compact.before_rename'");
  }
  if (status.ok()) status = env_->RenameFile(tmp_path, final_path);
  if (status.ok()) status = env_->SyncDir(dir_);
  if (!status.ok()) {
    (void)env_->RemoveFile(tmp_path);
    return status;
  }
  TYDER_COUNT("storage.snapshot_writes");
  // Snapshot live, WAL not yet truncated: recovery must skip the records the
  // snapshot already covers.
  TYDER_FAULT_POINT("storage.compact.after_rename");
  status = wal_->TruncateAll();
  if (!status.ok()) {
    if (wal_->poisoned()) {
      EnterDegraded("the WAL truncation after compaction could not be made "
                    "durable (" + status.message() + ")");
    }
    return status;
  }

  // Only now is it safe to drop older snapshots: up to this point a crash
  // could still need them (their WAL suffix was intact). Cleanup failures are
  // cosmetic — stale files are ignored or reclaimed by the next compaction.
  Result<std::vector<std::string>> entries = env_->ListDir(dir_);
  if (entries.ok()) {
    for (const std::string& name : *entries) {
      uint64_t lsn = 0;
      bool stale_snapshot =
          ParseSnapshotFileName(name, lsn) && name != file_name;
      bool stale_tmp = name.size() > 4 &&
                       name.compare(name.size() - 4, 4, ".tmp") == 0;
      if (stale_snapshot || stale_tmp) {
        (void)env_->RemoveFile(dir_ + "/" + name);
      }
    }
  }
  return Status::OK();
}

}  // namespace tyder::storage
