#include "storage/durable_catalog.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "core/transaction.h"
#include "obs/obs.h"
#include "storage/catalog_snapshot.h"

namespace tyder::storage {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kSnapshotPrefix = "snapshot-";
constexpr std::string_view kSnapshotSuffix = ".tysnap";

std::string SnapshotFileName(uint64_t lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snapshot-%020llu.tysnap",
                static_cast<unsigned long long>(lsn));
  return buf;
}

// snapshot-<20 digits>.tysnap -> lsn, or false for any other name.
bool ParseSnapshotFileName(std::string_view name, uint64_t& lsn) {
  if (name.size() != kSnapshotPrefix.size() + 20 + kSnapshotSuffix.size() ||
      name.substr(0, kSnapshotPrefix.size()) != kSnapshotPrefix ||
      name.substr(name.size() - kSnapshotSuffix.size()) != kSnapshotSuffix) {
    return false;
  }
  std::string_view digits = name.substr(kSnapshotPrefix.size(), 20);
  auto [ptr, ec] = std::from_chars(digits.begin(), digits.end(), lsn);
  return ec == std::errc() && ptr == digits.end();
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path + "': " + std::strerror(errno));
}

// Writes `data` to `path` (truncating) and fsyncs it.
Status WriteFileSync(const std::string& path, std::string_view data) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot create snapshot file", path);
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("cannot write snapshot file", path);
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Errno("cannot fsync snapshot file", path);
  }
  ::close(fd);
  return Status::OK();
}

// fsyncs the directory so a just-renamed snapshot's directory entry is
// durable.
Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("cannot open directory for fsync", dir);
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Errno("cannot fsync directory", dir);
  }
  ::close(fd);
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Errno("cannot read snapshot file", path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string JoinNames(const std::vector<std::string>& names) {
  if (names.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ',';
    out += names[i];
  }
  return out;
}

std::string VerifyFlag(const ProjectionOptions& options) {
  return options.verify ? "verify" : "no-verify";
}

}  // namespace

Status ReplayOp(Catalog& catalog, std::string_view payload) {
  std::istringstream in{std::string(payload)};
  std::string op;
  in >> op;
  auto bad = [&payload]() {
    return Status::ParseError("malformed WAL op '" + std::string(payload) +
                              "'");
  };
  auto parse_options = [&](ProjectionOptions& options) {
    std::string flag;
    in >> flag;
    if (flag == "verify") {
      options.verify = true;
    } else if (flag == "no-verify") {
      options.verify = false;
    } else {
      return false;
    }
    return true;
  };

  if (op == "project") {
    std::string view, source, attrs;
    in >> view >> source >> attrs;
    ProjectionOptions options;
    if (in.fail() || !parse_options(options)) return bad();
    std::vector<std::string> names =
        attrs == "-" ? std::vector<std::string>{} : SplitAndTrim(attrs, ',');
    Result<const ViewDef*> r =
        catalog.DefineProjectionView(view, source, names, options);
    return r.ok() ? Status::OK() : r.status();
  }
  if (op == "select") {
    std::string view, source;
    in >> view >> source;
    if (in.fail()) return bad();
    Result<const ViewDef*> r = catalog.DefineSelectionView(view, source);
    return r.ok() ? Status::OK() : r.status();
  }
  if (op == "generalize") {
    std::string view, a, b;
    in >> view >> a >> b;
    ProjectionOptions options;
    if (in.fail() || !parse_options(options)) return bad();
    Result<const ViewDef*> r =
        catalog.DefineGeneralizationView(view, a, b, options);
    return r.ok() ? Status::OK() : r.status();
  }
  if (op == "rename") {
    std::string view, source, pairs;
    in >> view >> source >> pairs;
    ProjectionOptions options;
    if (in.fail() || !parse_options(options)) return bad();
    std::vector<AttributeRename> renames;
    if (pairs != "-") {
      for (const std::string& pair : SplitAndTrim(pairs, ',')) {
        size_t eq = pair.find('=');
        if (eq == std::string::npos) return bad();
        renames.push_back(
            AttributeRename{pair.substr(0, eq), pair.substr(eq + 1)});
      }
    }
    Result<const ViewDef*> r =
        catalog.DefineRenameView(view, source, renames, options);
    return r.ok() ? Status::OK() : r.status();
  }
  if (op == "drop") {
    std::string view;
    in >> view;
    if (in.fail()) return bad();
    return catalog.DropView(view);
  }
  if (op == "collapse") {
    Result<CollapseReport> r = catalog.Collapse();
    return r.ok() ? Status::OK() : r.status();
  }
  return Status::ParseError("unknown WAL op '" + op + "' in record '" +
                            std::string(payload) + "'");
}

Result<DurableCatalog> DurableCatalog::Open(const std::string& dir) {
  TYDER_SPAN("DurableCatalog.Open");
  TYDER_TIMED("storage.recovery_ns");
  auto start = std::chrono::steady_clock::now();

  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create database directory '" + dir +
                            "': " + ec.message());
  }

  DurableCatalog db;
  db.dir_ = dir;
  db.wal_path_ = dir + "/wal.log";

  // 1. Load the newest snapshot that decodes cleanly.
  std::vector<std::pair<uint64_t, std::string>> snapshots;  // lsn -> path
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    uint64_t lsn = 0;
    if (ParseSnapshotFileName(entry.path().filename().string(), lsn)) {
      snapshots.emplace_back(lsn, entry.path().string());
    }
  }
  std::sort(snapshots.rbegin(), snapshots.rend());
  uint64_t snapshot_lsn = 0;
  for (const auto& [lsn, path] : snapshots) {
    Result<std::string> bytes = ReadFile(path);
    Result<Catalog> loaded =
        bytes.ok() ? LoadCatalogSnapshot(*bytes) : bytes.status();
    if (loaded.ok()) {
      db.catalog_ = std::make_unique<Catalog>(std::move(loaded).value());
      db.recovery_.snapshot_loaded = true;
      snapshot_lsn = lsn;
      break;
    }
    db.recovery_.warnings.push_back(
        "snapshot '" + path + "' is unusable (" + loaded.status().message() +
        "); falling back to an older snapshot");
  }
  if (db.catalog_ == nullptr) {
    if (!snapshots.empty()) {
      std::string detail;
      for (const std::string& w : db.recovery_.warnings) {
        detail += "\n  " + w;
      }
      return Status::Internal(
          "no snapshot in '" + dir +
          "' decodes cleanly; refusing to rebuild from the WAL alone (it was "
          "truncated at the last compaction)" +
          detail);
    }
    Result<Catalog> fresh = Catalog::Create();
    if (!fresh.ok()) return fresh.status();
    db.catalog_ = std::make_unique<Catalog>(std::move(fresh).value());
  }
  db.recovery_.snapshot_lsn = snapshot_lsn;
  db.last_lsn_ = snapshot_lsn;

  // 2. Validate the log; repair a torn tail; refuse mid-log corruption.
  Result<WalReadResult> wal = ReadWal(db.wal_path_);
  if (!wal.ok()) return wal.status();
  if (!wal->torn_tail_warning.empty()) {
    db.recovery_.warnings.push_back(wal->torn_tail_warning);
    TYDER_RETURN_IF_ERROR(RepairTornTail(db.wal_path_, wal->valid_bytes));
  }

  // 3. Replay everything the snapshot does not already cover. (Records at or
  // below the snapshot lsn are left over from a crash between a compaction's
  // snapshot rename and its WAL truncate.)
  for (const WalRecord& record : wal->records) {
    if (record.lsn <= snapshot_lsn) continue;
    Status replayed = ReplayOp(*db.catalog_, record.payload);
    if (!replayed.ok()) {
      return Status::Internal(
          "WAL replay failed at lsn " + std::to_string(record.lsn) + " ('" +
          record.payload + "'): " + replayed.message());
    }
    TYDER_COUNT("storage.wal_replays");
    db.last_lsn_ = record.lsn;
    ++db.recovery_.replayed_records;
  }

  Result<WalWriter> writer = WalWriter::Open(db.wal_path_);
  if (!writer.ok()) return writer.status();
  db.wal_ = std::make_unique<WalWriter>(std::move(writer).value());

  db.recovery_.recovery_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return db;
}

Status DurableCatalog::AppendRecord(std::string_view payload) {
  TYDER_RETURN_IF_ERROR(wal_->Append(last_lsn_ + 1, payload));
  ++last_lsn_;
  return Status::OK();
}

Result<const ViewDef*> DurableCatalog::DefineProjectionView(
    std::string_view name, std::string_view source_type,
    const std::vector<std::string>& attribute_names,
    const ProjectionOptions& options) {
  std::string payload = "project " + std::string(name) + ' ' +
                        std::string(source_type) + ' ' +
                        JoinNames(attribute_names) + ' ' + VerifyFlag(options);
  ScopedCommitHook hook(
      [this, payload = std::move(payload)] { return AppendRecord(payload); });
  return catalog_->DefineProjectionView(name, source_type, attribute_names,
                                        options);
}

Result<const ViewDef*> DurableCatalog::DefineSelectionView(
    std::string_view name, std::string_view source_type) {
  std::string payload =
      "select " + std::string(name) + ' ' + std::string(source_type);
  ScopedCommitHook hook(
      [this, payload = std::move(payload)] { return AppendRecord(payload); });
  return catalog_->DefineSelectionView(name, source_type);
}

Result<const ViewDef*> DurableCatalog::DefineGeneralizationView(
    std::string_view name, std::string_view type_a, std::string_view type_b,
    const ProjectionOptions& options) {
  std::string payload = "generalize " + std::string(name) + ' ' +
                        std::string(type_a) + ' ' + std::string(type_b) + ' ' +
                        VerifyFlag(options);
  ScopedCommitHook hook(
      [this, payload = std::move(payload)] { return AppendRecord(payload); });
  return catalog_->DefineGeneralizationView(name, type_a, type_b, options);
}

Result<const ViewDef*> DurableCatalog::DefineRenameView(
    std::string_view name, std::string_view source_type,
    const std::vector<AttributeRename>& renames,
    const ProjectionOptions& options) {
  std::string pairs;
  for (size_t i = 0; i < renames.size(); ++i) {
    if (i > 0) pairs += ',';
    pairs += renames[i].attribute + '=' + renames[i].alias;
  }
  if (pairs.empty()) pairs = "-";
  std::string payload = "rename " + std::string(name) + ' ' +
                        std::string(source_type) + ' ' + pairs + ' ' +
                        VerifyFlag(options);
  ScopedCommitHook hook(
      [this, payload = std::move(payload)] { return AppendRecord(payload); });
  return catalog_->DefineRenameView(name, source_type, renames, options);
}

Status DurableCatalog::DropView(std::string_view name) {
  std::string payload = "drop " + std::string(name);
  ScopedCommitHook hook(
      [this, payload = std::move(payload)] { return AppendRecord(payload); });
  return catalog_->DropView(name);
}

Result<CollapseReport> DurableCatalog::Collapse() {
  ScopedCommitHook hook([this] { return AppendRecord("collapse"); });
  return catalog_->Collapse();
}

Status DurableCatalog::Seed(Catalog catalog) {
  if (recovery_.snapshot_loaded || last_lsn_ != 0 ||
      !catalog_->views().empty()) {
    return Status::FailedPrecondition(
        "database '" + dir_ +
        "' already has durable state; refusing to overwrite it with a new "
        "schema");
  }
  *catalog_ = std::move(catalog);
  return Compact();
}

Status DurableCatalog::Compact() {
  TYDER_SPAN("DurableCatalog.Compact");
  std::string bytes = SaveCatalogSnapshot(*catalog_);
  std::string file_name = SnapshotFileName(last_lsn_);
  std::string tmp_path = dir_ + "/" + file_name + ".tmp";
  std::string final_path = dir_ + "/" + file_name;

  TYDER_RETURN_IF_ERROR(WriteFileSync(tmp_path, bytes));
  TYDER_FAULT_POINT("storage.compact.before_rename");
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Errno("cannot publish snapshot", final_path);
  }
  TYDER_RETURN_IF_ERROR(SyncDir(dir_));
  TYDER_COUNT("storage.snapshot_writes");
  // Snapshot live, WAL not yet truncated: recovery must skip the records the
  // snapshot already covers.
  TYDER_FAULT_POINT("storage.compact.after_rename");
  TYDER_RETURN_IF_ERROR(wal_->TruncateAll());

  // Only now is it safe to drop older snapshots: up to this point a crash
  // could still need them (their WAL suffix was intact). Cleanup failures are
  // cosmetic — stale files are ignored or reclaimed by the next compaction.
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    uint64_t lsn = 0;
    bool stale_snapshot = ParseSnapshotFileName(name, lsn) && name != file_name;
    bool stale_tmp = name.size() > 4 &&
                     name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (stale_snapshot || stale_tmp) {
      std::error_code remove_ec;
      fs::remove(entry.path(), remove_ec);
    }
  }
  return Status::OK();
}

}  // namespace tyder::storage
