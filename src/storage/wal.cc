#include "storage/wal.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "obs/obs.h"
#include "storage/crc32c.h"

namespace tyder::storage {

namespace {

constexpr size_t kRecordHeaderSize = 16;  // u32 len + u32 crc + u64 lsn

void AppendLe32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void AppendLe64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

uint32_t ReadLe32(std::string_view bytes, size_t offset) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[offset + i]);
  }
  return v;
}

uint64_t ReadLe64(std::string_view bytes, size_t offset) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[offset + i]);
  }
  return v;
}

Env& EnvOrPosix(Env* env) { return env != nullptr ? *env : Env::Posix(); }

std::string EncodeRecord(uint64_t lsn, std::string_view payload) {
  std::string lsn_bytes;
  AppendLe64(lsn_bytes, lsn);
  uint32_t crc = Crc32c(Crc32c(0, lsn_bytes), payload);
  std::string record;
  record.reserve(kRecordHeaderSize + payload.size());
  AppendLe32(record, static_cast<uint32_t>(payload.size()));
  AppendLe32(record, crc);
  record.append(lsn_bytes);
  record.append(payload);
  return record;
}

}  // namespace

Result<WalReadResult> ParseWal(std::string_view bytes) {
  WalReadResult result;
  size_t offset = 0;
  while (offset < bytes.size()) {
    size_t remaining = bytes.size() - offset;
    uint64_t payload_len =
        remaining >= 4 ? ReadLe32(bytes, offset) : 0;
    if (remaining < kRecordHeaderSize ||
        remaining < kRecordHeaderSize + payload_len) {
      result.torn_tail_warning =
          "torn WAL tail: dropped " + std::to_string(remaining) +
          " trailing byte(s) of a partial record at offset " +
          std::to_string(offset) + " (crash mid-append)";
      break;
    }
    uint32_t stored_crc = ReadLe32(bytes, offset + 4);
    std::string_view checked =
        bytes.substr(offset + 8, 8 + payload_len);  // lsn + payload
    if (Crc32c(checked) != stored_crc) {
      bool is_last = offset + kRecordHeaderSize + payload_len == bytes.size();
      if (is_last) {
        // A bad checksum on the final record is indistinguishable from a
        // partially persisted append; treat it as the torn tail it almost
        // certainly is.
        result.torn_tail_warning =
            "torn WAL tail: dropped final record at offset " +
            std::to_string(offset) + " (checksum mismatch on the last record)";
        break;
      }
      std::ostringstream msg;
      msg << "WAL corrupt at offset " << offset << ": checksum mismatch on a "
          << payload_len << "-byte record followed by "
          << bytes.size() - (offset + kRecordHeaderSize + payload_len)
          << " more byte(s) — not a torn tail; refusing to replay past it";
      return Status::ParseError(msg.str());
    }
    WalRecord record;
    record.lsn = ReadLe64(bytes, offset + 8);
    record.payload = std::string(bytes.substr(offset + kRecordHeaderSize,
                                              payload_len));
    if (!result.records.empty() && record.lsn <= result.records.back().lsn) {
      return Status::ParseError(
          "WAL corrupt at offset " + std::to_string(offset) +
          ": lsn " + std::to_string(record.lsn) +
          " does not advance past lsn " +
          std::to_string(result.records.back().lsn));
    }
    result.records.push_back(std::move(record));
    offset += kRecordHeaderSize + payload_len;
    result.valid_bytes = offset;
  }
  return result;
}

Result<WalReadResult> ReadWal(const std::string& path, Env* env) {
  Result<std::string> bytes = EnvOrPosix(env).ReadFile(path);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) {
      return WalReadResult{};  // absent log == empty log
    }
    return bytes.status();
  }
  return ParseWal(*bytes);
}

Status RepairTornTail(const std::string& path, uint64_t valid_bytes,
                      Env* env) {
  TYDER_RETURN_IF_ERROR(EnvOrPosix(env).TruncateFile(path, valid_bytes));
  TYDER_COUNT("storage.torn_tail_truncations");
  return Status::OK();
}

Result<WalWriter> WalWriter::Open(const std::string& path, Env* env) {
  Result<std::unique_ptr<WritableFile>> file =
      EnvOrPosix(env).OpenAppendable(path);
  if (!file.ok()) return file.status();
  return WalWriter(std::move(*file));
}

void WalWriter::Poison(const Status& cause) {
  if (!poison_.ok()) return;  // keep the first cause
  poison_ = Status::FailedPrecondition(
      "WAL is poisoned: " + cause.message() +
      "; the log can no longer vouch for durability — reopen the database "
      "to re-validate on-disk state");
  TYDER_RECORD_V(kMark, "wal.poisoned", 0);
}

Status WalWriter::Append(uint64_t lsn, std::string_view payload) {
  TYDER_SPAN("Wal.Append");
  std::vector<WalRecord> one(1);
  one[0].lsn = lsn;
  one[0].payload = std::string(payload);
  return AppendBatch(one);
}

Status WalWriter::AppendBatch(const std::vector<WalRecord>& records) {
  TYDER_SPAN("Wal.AppendBatch");
  TYDER_TIMED("storage.wal_append_ns");
  if (records.empty()) return Status::OK();
  if (!poison_.ok()) return poison_;
  Result<uint64_t> start = file_->Size();
  if (!start.ok()) return start.status();
  Status status = AppendUnguarded(records);
  if (!status.ok()) {
    if (file_->poisoned()) {
      // The batch's own fsync failed: the bytes may or may not be durable
      // and the handle can never prove it either way.
      Poison(status);
      return status;
    }
    // Undo whatever prefix of the batch reached the file so the tail stays
    // clean and the caller may retry the (rolled-back) operations. The undo
    // must itself be durable: a truncation that only lives in the page cache
    // can resurrect the torn tail after a crash.
    Status undo = file_->Truncate(*start);
    if (undo.ok()) undo = file_->Sync();
    if (!undo.ok()) {
      Poison(Status::Internal("failed append could not be durably undone (" +
                              undo.message() + ")"));
    }
  }
  return status;
}

Status WalWriter::AppendUnguarded(const std::vector<WalRecord>& records) {
  std::string bytes;
  for (const WalRecord& record : records) {
    bytes += EncodeRecord(record.lsn, record.payload);
  }
  if (TYDER_FAULT_CONSUME("storage.wal.torn_write")) {
    // Simulated crash mid-write: only a prefix of the batch persists. (For a
    // multi-record batch that prefix may contain whole leading records —
    // recovery then replays that prefix; none of the batch was acknowledged.)
    std::string_view prefix(bytes.data(), bytes.size() / 2);
    (void)file_->Append(prefix);
    return Status::Internal(
        "fault injected at 'storage.wal.torn_write' (partial record written)");
  }
  TYDER_RETURN_IF_ERROR(file_->Append(bytes));
  TYDER_FAULT_POINT("storage.wal.after_append");
  TYDER_FAULT_POINT("storage.wal.mid_fsync");
  TYDER_RETURN_IF_ERROR(file_->Sync());
  TYDER_FAULT_POINT("storage.wal.after_sync");
  TYDER_COUNT_N("projection.wal_appends", records.size());
  TYDER_RECORD_V(kOp, "wal.append", static_cast<int64_t>(records.back().lsn));
  return Status::OK();
}

Status WalWriter::TruncateAll() {
  if (!poison_.ok()) return poison_;
  Status status = file_->Truncate(0);
  if (status.ok()) status = file_->Sync();
  if (!status.ok() && file_->poisoned()) {
    // The truncation happened but its durability is unknowable: after a
    // crash the log could reappear with records the snapshot also covers
    // (benign) — or with a tail the handle already disowned. Refuse further
    // appends until recovery re-validates.
    Poison(status);
  }
  return status;
}

// --- GroupWal --------------------------------------------------------------

GroupWal::GroupWal(WalWriter* wal, GroupCommitOptions options)
    : wal_(wal), options_(options) {
  if (options_.max_batch == 0) options_.max_batch = 1;
}

Status GroupWal::Enqueue(Ticket& ticket, uint64_t lsn, std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stall_pending_) {
    return Status::FailedPrecondition(
        "group commit is stalled by an earlier batch failure (" +
        stall_cause_.message() +
        "); roll the in-memory tip back to the last durable state before "
        "sequencing new records");
  }
  ticket.record_.lsn = lsn;
  ticket.record_.payload = std::move(payload);
  ticket.result_ = Status::OK();
  ticket.done_ = false;
  ticket.enqueued_at_ = std::chrono::steady_clock::now();
  queue_.push_back(&ticket);
  // A leader lingering for stragglers (max_wait_us > 0) is waiting on cv_.
  cv_.notify_all();
  return Status::OK();
}

Status GroupWal::Wait(Ticket& ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  while (!ticket.done_) {
    if (!leader_active_) {
      // First waiter to see an idle log leads; it returns only once its own
      // record is done (possibly after writing several batches).
      LeadBatches(lock, ticket);
      break;
    }
    cv_.wait(lock);
  }
  int64_t stall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - ticket.enqueued_at_)
                         .count();
  TYDER_RECORD_HIST("storage.group_commit.stall_ns", stall_ns);
  return ticket.result_;
}

Status GroupWal::Commit(uint64_t lsn, std::string payload) {
  Ticket ticket;
  TYDER_RETURN_IF_ERROR(Enqueue(ticket, lsn, std::move(payload)));
  return Wait(ticket);
}

void GroupWal::LeadBatches(std::unique_lock<std::mutex>& lock, Ticket& own) {
  leader_active_ = true;
  while (!own.done_ && !queue_.empty()) {
    if (options_.max_wait_us > 0 && queue_.size() < options_.max_batch) {
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::microseconds(options_.max_wait_us);
      while (queue_.size() < options_.max_batch &&
             cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
      }
    }
    std::vector<Ticket*> batch;
    batch.reserve(std::min(queue_.size(), options_.max_batch));
    while (!queue_.empty() && batch.size() < options_.max_batch) {
      batch.push_back(queue_.front());
      queue_.pop_front();
    }
    std::vector<WalRecord> records;
    records.reserve(batch.size());
    for (Ticket* t : batch) records.push_back(t->record_);

    // One write + one fsync for the whole batch. The queue keeps filling
    // behind us meanwhile — that pile-up is the next batch.
    lock.unlock();
    Status status = wal_->AppendBatch(records);
    if (status.ok() && on_batch_durable_) {
      // Publish before any waiter wakes: a committer whose Wait returns OK
      // must be able to observe its own write in the published epoch.
      on_batch_durable_(records.back().lsn);
    }
    lock.lock();

    TYDER_RECORD_HIST("storage.group_commit.batch_size",
                      static_cast<int64_t>(batch.size()));
    TYDER_COUNT("storage.group_commit.batches");
    TYDER_COUNT_N("storage.group_commit.records", batch.size());
    if (status.ok()) {
      TYDER_COUNT("storage.group_commit.syncs");
      for (Ticket* t : batch) {
        t->result_ = Status::OK();
        t->done_ = true;
      }
      cv_.notify_all();
      continue;
    }

    // Batch failure: stall the group BEFORE anyone wakes. Every waiter of
    // this batch gets the real failure; everything still queued was
    // sequenced against in-memory state that never became durable, so it is
    // drain-failed rather than written (persisting it would create records
    // whose predecessors do not exist).
    TYDER_COUNT("storage.group_commit.failed_batches");
    stall_pending_ = true;
    stall_cause_ = status;
    for (Ticket* t : batch) {
      t->result_ = status;
      t->done_ = true;
    }
    for (Ticket* t : queue_) {
      t->result_ = Status::Internal(
          "commit group aborted: an earlier record in the batch window "
          "failed to persist (" +
          status.message() + "); this record was never written");
      t->done_ = true;
    }
    queue_.clear();
    break;
  }
  leader_active_ = false;
  cv_.notify_all();
}

bool GroupWal::stalled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_pending_;
}

bool GroupWal::ConsumeStallIfPending() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!stall_pending_) return false;
  stall_pending_ = false;
  stall_cause_ = Status::OK();
  return true;
}

void GroupWal::Quiesce() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return queue_.empty() && !leader_active_; });
}

void GroupWal::ResetWal(WalWriter* wal) {
  std::lock_guard<std::mutex> lock(mu_);
  // Contract: the owner holds its writer lock (no new Enqueue) and has
  // Quiesce()d — nothing can be mid-batch on the old writer.
  wal_ = wal;
}

}  // namespace tyder::storage
