#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "obs/obs.h"
#include "storage/crc32c.h"

namespace tyder::storage {

namespace {

constexpr size_t kRecordHeaderSize = 16;  // u32 len + u32 crc + u64 lsn

void AppendLe32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void AppendLe64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

uint32_t ReadLe32(std::string_view bytes, size_t offset) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[offset + i]);
  }
  return v;
}

uint64_t ReadLe64(std::string_view bytes, size_t offset) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[offset + i]);
  }
  return v;
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path + "': " + std::strerror(errno));
}

// Writes all of `data` to `fd`, retrying short writes.
Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("cannot write WAL", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string EncodeRecord(uint64_t lsn, std::string_view payload) {
  std::string lsn_bytes;
  AppendLe64(lsn_bytes, lsn);
  uint32_t crc = Crc32c(Crc32c(0, lsn_bytes), payload);
  std::string record;
  record.reserve(kRecordHeaderSize + payload.size());
  AppendLe32(record, static_cast<uint32_t>(payload.size()));
  AppendLe32(record, crc);
  record.append(lsn_bytes);
  record.append(payload);
  return record;
}

}  // namespace

Result<WalReadResult> ParseWal(std::string_view bytes) {
  WalReadResult result;
  size_t offset = 0;
  while (offset < bytes.size()) {
    size_t remaining = bytes.size() - offset;
    uint64_t payload_len =
        remaining >= 4 ? ReadLe32(bytes, offset) : 0;
    if (remaining < kRecordHeaderSize ||
        remaining < kRecordHeaderSize + payload_len) {
      result.torn_tail_warning =
          "torn WAL tail: dropped " + std::to_string(remaining) +
          " trailing byte(s) of a partial record at offset " +
          std::to_string(offset) + " (crash mid-append)";
      break;
    }
    uint32_t stored_crc = ReadLe32(bytes, offset + 4);
    std::string_view checked =
        bytes.substr(offset + 8, 8 + payload_len);  // lsn + payload
    if (Crc32c(checked) != stored_crc) {
      bool is_last = offset + kRecordHeaderSize + payload_len == bytes.size();
      if (is_last) {
        // A bad checksum on the final record is indistinguishable from a
        // partially persisted append; treat it as the torn tail it almost
        // certainly is.
        result.torn_tail_warning =
            "torn WAL tail: dropped final record at offset " +
            std::to_string(offset) + " (checksum mismatch on the last record)";
        break;
      }
      std::ostringstream msg;
      msg << "WAL corrupt at offset " << offset << ": checksum mismatch on a "
          << payload_len << "-byte record followed by "
          << bytes.size() - (offset + kRecordHeaderSize + payload_len)
          << " more byte(s) — not a torn tail; refusing to replay past it";
      return Status::ParseError(msg.str());
    }
    WalRecord record;
    record.lsn = ReadLe64(bytes, offset + 8);
    record.payload = std::string(bytes.substr(offset + kRecordHeaderSize,
                                              payload_len));
    if (!result.records.empty() && record.lsn <= result.records.back().lsn) {
      return Status::ParseError(
          "WAL corrupt at offset " + std::to_string(offset) +
          ": lsn " + std::to_string(record.lsn) +
          " does not advance past lsn " +
          std::to_string(result.records.back().lsn));
    }
    result.records.push_back(std::move(record));
    offset += kRecordHeaderSize + payload_len;
    result.valid_bytes = offset;
  }
  return result;
}

Result<WalReadResult> ReadWal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return WalReadResult{};  // absent log == empty log
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseWal(buffer.str());
}

Status RepairTornTail(const std::string& path, uint64_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Errno("cannot truncate torn WAL tail of", path);
  }
  TYDER_COUNT("storage.torn_tail_truncations");
  return Status::OK();
}

Result<WalWriter> WalWriter::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("cannot open WAL", path);
  return WalWriter(fd);
}

WalWriter::WalWriter(WalWriter&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(uint64_t lsn, std::string_view payload) {
  TYDER_SPAN("Wal.Append");
  TYDER_TIMED("storage.wal_append_ns");
  off_t start = ::lseek(fd_, 0, SEEK_END);
  Status status = AppendUnguarded(lsn, payload);
  if (!status.ok() && start >= 0) {
    // Undo whatever prefix of the record reached the file so the tail stays
    // clean and the caller may retry the (rolled-back) operation. If this
    // truncate itself fails the tail is torn, which the next recovery
    // repairs.
    if (::ftruncate(fd_, start) == 0) (void)::fsync(fd_);
  }
  return status;
}

Status WalWriter::AppendUnguarded(uint64_t lsn, std::string_view payload) {
  std::string record = EncodeRecord(lsn, payload);
  if (TYDER_FAULT_CONSUME("storage.wal.torn_write")) {
    // Simulated crash mid-write: only a prefix of the record persists.
    std::string_view prefix(record.data(), record.size() / 2);
    (void)WriteAll(fd_, prefix, "<wal>");
    return Status::Internal(
        "fault injected at 'storage.wal.torn_write' (partial record written)");
  }
  TYDER_RETURN_IF_ERROR(WriteAll(fd_, record, "<wal>"));
  TYDER_FAULT_POINT("storage.wal.after_append");
  TYDER_FAULT_POINT("storage.wal.mid_fsync");
  if (::fsync(fd_) != 0) return Errno("cannot fsync WAL", "<wal>");
  TYDER_FAULT_POINT("storage.wal.after_sync");
  TYDER_COUNT("projection.wal_appends");
  TYDER_RECORD_V(kOp, "wal.append", static_cast<int64_t>(lsn));
  return Status::OK();
}

Status WalWriter::TruncateAll() {
  if (::ftruncate(fd_, 0) != 0) return Errno("cannot truncate WAL", "<wal>");
  if (::fsync(fd_) != 0) return Errno("cannot fsync truncated WAL", "<wal>");
  return Status::OK();
}

}  // namespace tyder::storage
