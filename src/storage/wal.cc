#include "storage/wal.h"

#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "obs/obs.h"
#include "storage/crc32c.h"

namespace tyder::storage {

namespace {

constexpr size_t kRecordHeaderSize = 16;  // u32 len + u32 crc + u64 lsn

void AppendLe32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void AppendLe64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

uint32_t ReadLe32(std::string_view bytes, size_t offset) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[offset + i]);
  }
  return v;
}

uint64_t ReadLe64(std::string_view bytes, size_t offset) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[offset + i]);
  }
  return v;
}

Env& EnvOrPosix(Env* env) { return env != nullptr ? *env : Env::Posix(); }

std::string EncodeRecord(uint64_t lsn, std::string_view payload) {
  std::string lsn_bytes;
  AppendLe64(lsn_bytes, lsn);
  uint32_t crc = Crc32c(Crc32c(0, lsn_bytes), payload);
  std::string record;
  record.reserve(kRecordHeaderSize + payload.size());
  AppendLe32(record, static_cast<uint32_t>(payload.size()));
  AppendLe32(record, crc);
  record.append(lsn_bytes);
  record.append(payload);
  return record;
}

}  // namespace

Result<WalReadResult> ParseWal(std::string_view bytes) {
  WalReadResult result;
  size_t offset = 0;
  while (offset < bytes.size()) {
    size_t remaining = bytes.size() - offset;
    uint64_t payload_len =
        remaining >= 4 ? ReadLe32(bytes, offset) : 0;
    if (remaining < kRecordHeaderSize ||
        remaining < kRecordHeaderSize + payload_len) {
      result.torn_tail_warning =
          "torn WAL tail: dropped " + std::to_string(remaining) +
          " trailing byte(s) of a partial record at offset " +
          std::to_string(offset) + " (crash mid-append)";
      break;
    }
    uint32_t stored_crc = ReadLe32(bytes, offset + 4);
    std::string_view checked =
        bytes.substr(offset + 8, 8 + payload_len);  // lsn + payload
    if (Crc32c(checked) != stored_crc) {
      bool is_last = offset + kRecordHeaderSize + payload_len == bytes.size();
      if (is_last) {
        // A bad checksum on the final record is indistinguishable from a
        // partially persisted append; treat it as the torn tail it almost
        // certainly is.
        result.torn_tail_warning =
            "torn WAL tail: dropped final record at offset " +
            std::to_string(offset) + " (checksum mismatch on the last record)";
        break;
      }
      std::ostringstream msg;
      msg << "WAL corrupt at offset " << offset << ": checksum mismatch on a "
          << payload_len << "-byte record followed by "
          << bytes.size() - (offset + kRecordHeaderSize + payload_len)
          << " more byte(s) — not a torn tail; refusing to replay past it";
      return Status::ParseError(msg.str());
    }
    WalRecord record;
    record.lsn = ReadLe64(bytes, offset + 8);
    record.payload = std::string(bytes.substr(offset + kRecordHeaderSize,
                                              payload_len));
    if (!result.records.empty() && record.lsn <= result.records.back().lsn) {
      return Status::ParseError(
          "WAL corrupt at offset " + std::to_string(offset) +
          ": lsn " + std::to_string(record.lsn) +
          " does not advance past lsn " +
          std::to_string(result.records.back().lsn));
    }
    result.records.push_back(std::move(record));
    offset += kRecordHeaderSize + payload_len;
    result.valid_bytes = offset;
  }
  return result;
}

Result<WalReadResult> ReadWal(const std::string& path, Env* env) {
  Result<std::string> bytes = EnvOrPosix(env).ReadFile(path);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) {
      return WalReadResult{};  // absent log == empty log
    }
    return bytes.status();
  }
  return ParseWal(*bytes);
}

Status RepairTornTail(const std::string& path, uint64_t valid_bytes,
                      Env* env) {
  TYDER_RETURN_IF_ERROR(EnvOrPosix(env).TruncateFile(path, valid_bytes));
  TYDER_COUNT("storage.torn_tail_truncations");
  return Status::OK();
}

Result<WalWriter> WalWriter::Open(const std::string& path, Env* env) {
  Result<std::unique_ptr<WritableFile>> file =
      EnvOrPosix(env).OpenAppendable(path);
  if (!file.ok()) return file.status();
  return WalWriter(std::move(*file));
}

void WalWriter::Poison(const Status& cause) {
  if (!poison_.ok()) return;  // keep the first cause
  poison_ = Status::FailedPrecondition(
      "WAL is poisoned: " + cause.message() +
      "; the log can no longer vouch for durability — reopen the database "
      "to re-validate on-disk state");
  TYDER_RECORD_V(kMark, "wal.poisoned", 0);
}

Status WalWriter::Append(uint64_t lsn, std::string_view payload) {
  TYDER_SPAN("Wal.Append");
  TYDER_TIMED("storage.wal_append_ns");
  if (!poison_.ok()) return poison_;
  Result<uint64_t> start = file_->Size();
  if (!start.ok()) return start.status();
  Status status = AppendUnguarded(lsn, payload);
  if (!status.ok()) {
    if (file_->poisoned()) {
      // The record's own fsync failed: the bytes may or may not be durable
      // and the handle can never prove it either way.
      Poison(status);
      return status;
    }
    // Undo whatever prefix of the record reached the file so the tail stays
    // clean and the caller may retry the (rolled-back) operation. The undo
    // must itself be durable: a truncation that only lives in the page cache
    // can resurrect the torn tail after a crash.
    Status undo = file_->Truncate(*start);
    if (undo.ok()) undo = file_->Sync();
    if (!undo.ok()) {
      Poison(Status::Internal("failed append could not be durably undone (" +
                              undo.message() + ")"));
    }
  }
  return status;
}

Status WalWriter::AppendUnguarded(uint64_t lsn, std::string_view payload) {
  std::string record = EncodeRecord(lsn, payload);
  if (TYDER_FAULT_CONSUME("storage.wal.torn_write")) {
    // Simulated crash mid-write: only a prefix of the record persists.
    std::string_view prefix(record.data(), record.size() / 2);
    (void)file_->Append(prefix);
    return Status::Internal(
        "fault injected at 'storage.wal.torn_write' (partial record written)");
  }
  TYDER_RETURN_IF_ERROR(file_->Append(record));
  TYDER_FAULT_POINT("storage.wal.after_append");
  TYDER_FAULT_POINT("storage.wal.mid_fsync");
  TYDER_RETURN_IF_ERROR(file_->Sync());
  TYDER_FAULT_POINT("storage.wal.after_sync");
  TYDER_COUNT("projection.wal_appends");
  TYDER_RECORD_V(kOp, "wal.append", static_cast<int64_t>(lsn));
  return Status::OK();
}

Status WalWriter::TruncateAll() {
  if (!poison_.ok()) return poison_;
  Status status = file_->Truncate(0);
  if (status.ok()) status = file_->Sync();
  if (!status.ok() && file_->poisoned()) {
    // The truncation happened but its durability is unknowable: after a
    // crash the log could reappear with records the snapshot also covers
    // (benign) — or with a tail the handle already disowned. Refuse further
    // appends until recovery re-validates.
    Poison(status);
  }
  return status;
}

}  // namespace tyder::storage
