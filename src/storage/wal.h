// Append-only, checksummed write-ahead log of committed catalog mutations.
//
// Record layout (all integers little-endian):
//
//   offset  size  field
//   0       4     payload length n
//   4       4     CRC32C over (lsn bytes + payload)
//   8       8     log sequence number (lsn)
//   16      n     payload (one logical mutation, storage/durable_catalog.h)
//
// Append semantics: the record is written and fsync'd (through storage::Env)
// before Append returns OK — the durable catalog calls Append from a
// SchemaTransaction commit hook, so an operation is never published in
// memory before its record is on stable storage.
//
// Failure semantics: on a failed append the writer truncates the file back
// to its pre-call length and fsyncs the truncation, so a retry starts from
// a clean, durable tail. If the undo itself cannot be made durable — the
// ftruncate fails, or its fsync fails — the writer is POISONED: the on-disk
// tail may be torn and the handle can no longer vouch for durability, so
// every later Append/TruncateAll refuses with the original failure. Same if
// the record's own fsync fails (see env.h on why a failed fsync must never
// be retried). A poisoned WAL puts the owning DurableCatalog into read-only
// degraded mode; recovery repairs the tail at the next open.
//
// Read semantics (recovery): records are validated front to back. A torn
// tail — header or payload cut short, or a checksum mismatch on the final
// record — is the signature of a crash mid-append: ReadWal reports the
// valid prefix plus a warning, and RepairTornTail truncates the file so the
// next append lands cleanly. A checksum mismatch on a record that is *not*
// the last one cannot be a torn write and is rejected as corruption with a
// byte-offset diagnostic; recovery must not guess past it.
//
// Crash-injection points (all registered in common/failpoint.cc):
//   storage.wal.torn_write    only a prefix of the record reaches the file
//   storage.wal.after_append  full record written, fsync never happens
//   storage.wal.mid_fsync     crash during fsync (no error returned)
//   storage.wal.after_sync    record durable, but Append fails afterwards
// plus the error-return storage.env.* points (env.h).

#ifndef TYDER_STORAGE_WAL_H_
#define TYDER_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/env.h"

namespace tyder::storage {

struct WalRecord {
  uint64_t lsn = 0;
  std::string payload;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  // Byte length of the valid record prefix (== file size when intact).
  uint64_t valid_bytes = 0;
  // Non-empty iff a torn/partial tail record was dropped.
  std::string torn_tail_warning;
};

// Parses `bytes` (the full log file contents). Mid-log corruption is an
// error; a torn tail is reported in the result, never an error.
Result<WalReadResult> ParseWal(std::string_view bytes);

// Reads and parses the log at `path`. A missing file is an empty log.
// `env` == nullptr means Env::Posix().
Result<WalReadResult> ReadWal(const std::string& path, Env* env = nullptr);

// Truncates the log at `path` to `valid_bytes` (torn-tail repair).
Status RepairTornTail(const std::string& path, uint64_t valid_bytes,
                      Env* env = nullptr);

class WalWriter {
 public:
  // Opens (creating if absent) the log for appending through `env`
  // (nullptr == Env::Posix()).
  static Result<WalWriter> Open(const std::string& path, Env* env = nullptr);

  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Appends one record and fsyncs the file. On any failure the in-memory
  // operation being logged must not commit; Append truncates the file back
  // to its pre-call length and fsyncs the truncation so a retry starts from
  // a clean durable tail. If the undo cannot be made durable the writer is
  // poisoned (see file comment).
  Status Append(uint64_t lsn, std::string_view payload);

  // Empties the log (compaction: the snapshot now covers every record).
  Status TruncateAll();

  // True once this writer can no longer vouch for durability (failed fsync
  // or failed append undo). A poisoned writer refuses all mutation.
  bool poisoned() const { return !poison_.ok(); }
  const Status& poison_status() const { return poison_; }

 private:
  explicit WalWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  Status AppendUnguarded(uint64_t lsn, std::string_view payload);
  void Poison(const Status& cause);

  std::unique_ptr<WritableFile> file_;
  Status poison_;
};

}  // namespace tyder::storage

#endif  // TYDER_STORAGE_WAL_H_
