// Append-only, checksummed write-ahead log of committed catalog mutations.
//
// Record layout (all integers little-endian):
//
//   offset  size  field
//   0       4     payload length n
//   4       4     CRC32C over (lsn bytes + payload)
//   8       8     log sequence number (lsn)
//   16      n     payload (one logical mutation, storage/durable_catalog.h)
//
// Append semantics: the record is written and fsync'd (through storage::Env)
// before Append returns OK — the durable catalog calls Append from a
// SchemaTransaction commit hook, so an operation is never published in
// memory before its record is on stable storage.
//
// Failure semantics: on a failed append the writer truncates the file back
// to its pre-call length and fsyncs the truncation, so a retry starts from
// a clean, durable tail. If the undo itself cannot be made durable — the
// ftruncate fails, or its fsync fails — the writer is POISONED: the on-disk
// tail may be torn and the handle can no longer vouch for durability, so
// every later Append/TruncateAll refuses with the original failure. Same if
// the record's own fsync fails (see env.h on why a failed fsync must never
// be retried). A poisoned WAL puts the owning DurableCatalog into read-only
// degraded mode; recovery repairs the tail at the next open.
//
// Read semantics (recovery): records are validated front to back. A torn
// tail — header or payload cut short, or a checksum mismatch on the final
// record — is the signature of a crash mid-append: ReadWal reports the
// valid prefix plus a warning, and RepairTornTail truncates the file so the
// next append lands cleanly. A checksum mismatch on a record that is *not*
// the last one cannot be a torn write and is rejected as corruption with a
// byte-offset diagnostic; recovery must not guess past it.
//
// Crash-injection points (all registered in common/failpoint.cc):
//   storage.wal.torn_write    only a prefix of the record reaches the file
//   storage.wal.after_append  full record written, fsync never happens
//   storage.wal.mid_fsync     crash during fsync (no error returned)
//   storage.wal.after_sync    record durable, but Append fails afterwards
// plus the error-return storage.env.* points (env.h).

#ifndef TYDER_STORAGE_WAL_H_
#define TYDER_STORAGE_WAL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/env.h"

namespace tyder::storage {

struct WalRecord {
  uint64_t lsn = 0;
  std::string payload;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  // Byte length of the valid record prefix (== file size when intact).
  uint64_t valid_bytes = 0;
  // Non-empty iff a torn/partial tail record was dropped.
  std::string torn_tail_warning;
};

// Parses `bytes` (the full log file contents). Mid-log corruption is an
// error; a torn tail is reported in the result, never an error.
Result<WalReadResult> ParseWal(std::string_view bytes);

// Reads and parses the log at `path`. A missing file is an empty log.
// `env` == nullptr means Env::Posix().
Result<WalReadResult> ReadWal(const std::string& path, Env* env = nullptr);

// Truncates the log at `path` to `valid_bytes` (torn-tail repair).
Status RepairTornTail(const std::string& path, uint64_t valid_bytes,
                      Env* env = nullptr);

class WalWriter {
 public:
  // Opens (creating if absent) the log for appending through `env`
  // (nullptr == Env::Posix()).
  static Result<WalWriter> Open(const std::string& path, Env* env = nullptr);

  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Appends one record and fsyncs the file. On any failure the in-memory
  // operation being logged must not commit; Append truncates the file back
  // to its pre-call length and fsyncs the truncation so a retry starts from
  // a clean durable tail. If the undo cannot be made durable the writer is
  // poisoned (see file comment).
  Status Append(uint64_t lsn, std::string_view payload);

  // Appends `records` as one contiguous write followed by ONE fsync — the
  // group-commit primitive: N commits, one sync. Failure semantics are
  // identical to Append's, for the batch as a whole: on any failure none of
  // the records is acknowledged, the file is durably truncated back to its
  // pre-call length (so recovery sees a clean prefix of *whole batches*, and
  // a torn mid-batch write repairs like any torn tail), and an un-undoable
  // failure or a failed fsync poisons the writer. The storage.wal.* fault
  // points fire exactly as on the single-record path.
  Status AppendBatch(const std::vector<WalRecord>& records);

  // Empties the log (compaction: the snapshot now covers every record).
  Status TruncateAll();

  // True once this writer can no longer vouch for durability (failed fsync
  // or failed append undo). A poisoned writer refuses all mutation.
  bool poisoned() const { return !poison_.ok(); }
  const Status& poison_status() const { return poison_; }

 private:
  explicit WalWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  Status AppendUnguarded(const std::vector<WalRecord>& records);
  void Poison(const Status& cause);

  std::unique_ptr<WritableFile> file_;
  Status poison_;
};

// --- Group commit ----------------------------------------------------------
//
// GroupWal amortizes fsync cost across concurrent committers. Each committer
// Enqueue()s its already-sequenced record (under the owner's writer lock, so
// lsns enter the queue in order), releases the lock, and Wait()s. The first
// waiter to find no leader active becomes the LEADER: it seals up to
// max_batch queued records, optionally lingers max_wait_us for stragglers,
// writes them through WalWriter::AppendBatch — one write, one fsync — then
// invokes on_batch_durable (the owner publishes the batch's epoch snapshot
// here) BEFORE waking any waiter, so a committer that returns OK can
// immediately observe its own write in the published epoch. While the leader
// is inside fsync, new committers pile into the queue; the next leader takes
// them all in one batch. That opportunistic window means a lone committer
// pays exactly one fsync (no added latency), while N contending committers
// converge on ~2 fsyncs per N commits.
//
// Failure: a failed batch STALLS the group. Every waiter of the failed batch
// observes the failure, every record still queued behind it is drain-failed
// (it was sequenced against in-memory state that never became durable —
// letting it reach the WAL would persist a record whose predecessors do not
// exist), and new Enqueues are refused until the owner calls
// ConsumeStallIfPending() under its writer lock and rolls its in-memory tip
// back to the last durable state. If the failure poisoned the WalWriter
// (failed fsync / un-undoable undo), the owner additionally degrades —
// exactly the single-record fsyncgate rule, observed by every waiter.
//
// Instrumented with storage.group_commit.{batch_size,stall_ns} histograms
// and storage.group_commit.{batches,records,syncs,failed_batches} counters.

struct GroupCommitOptions {
  // Max records sealed into one batch.
  size_t max_batch = 64;
  // How long a leader lingers for stragglers once it holds a non-full
  // batch. 0 (default) is pure opportunistic batching: never wait — the
  // queue that builds up behind an in-flight fsync IS the next batch.
  uint32_t max_wait_us = 0;
};

class GroupWal {
 public:
  // `wal` must outlive the GroupWal and is written only by batch leaders.
  explicit GroupWal(WalWriter* wal, GroupCommitOptions options = {});

  // Leader-side hook, invoked with the last lsn of each durable batch after
  // its fsync and before any of its waiters wake. Must not call back into
  // Enqueue/Wait. Set once, before the first Enqueue.
  void set_on_batch_durable(std::function<void(uint64_t last_lsn)> fn) {
    on_batch_durable_ = std::move(fn);
  }

  // A committer's handle on its queued record. Must stay alive (and at a
  // stable address) until Wait() returns.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

   private:
    friend class GroupWal;
    WalRecord record_;
    Status result_;
    bool done_ = false;
    std::chrono::steady_clock::time_point enqueued_at_;
  };

  // Queues the record. Caller must hold its own writer lock (serializing lsn
  // assignment) and must call Wait(ticket) after releasing it. Refuses while
  // stalled: the in-memory state this record was sequenced against is not
  // durable.
  Status Enqueue(Ticket& ticket, uint64_t lsn, std::string payload);

  // Blocks until the ticket's record is durable or its batch failed; the
  // calling thread may serve as leader for one or more batches meanwhile.
  Status Wait(Ticket& ticket);

  // Single-record convenience: Enqueue + Wait. Only safe when the caller's
  // writer lock is NOT held (lone-committer paths and tests).
  Status Commit(uint64_t lsn, std::string payload);

  bool stalled() const;
  // If a batch failure is pending, clears it and returns true — the caller
  // (holding its writer lock) must then roll its tip back to the last
  // durable state before sequencing any new record. Exactly one caller
  // observes true per failure.
  bool ConsumeStallIfPending();

  // Points future batches at a fresh WalWriter (DurableCatalog::Reopen
  // replaces a poisoned handle with the recovered one). Caller must hold its
  // writer lock AND have Quiesce()d first: the queue must be empty and no
  // leader in flight. The GroupWal object itself — its mutex, cv and any
  // waiter still returning from Wait() — stays alive across the swap, which
  // is exactly why Reopen adopts recovered state in place instead of
  // destroying the commit pipeline under queued committers.
  void ResetWal(WalWriter* wal);

  // Blocks until the queue is empty and no leader is in flight (all
  // on_batch_durable callbacks returned). With the owner's writer lock held
  // this quiesces the log for compaction/seeding. A pending stall is NOT
  // consumed — check ConsumeStallIfPending afterwards.
  void Quiesce();

 private:
  void LeadBatches(std::unique_lock<std::mutex>& lock, Ticket& own);

  WalWriter* wal_;
  GroupCommitOptions options_;
  std::function<void(uint64_t)> on_batch_durable_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Ticket*> queue_;
  bool leader_active_ = false;
  bool stall_pending_ = false;  // set on batch failure, cleared by consume
  Status stall_cause_;
};

}  // namespace tyder::storage

#endif  // TYDER_STORAGE_WAL_H_
