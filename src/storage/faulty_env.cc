#include "storage/faulty_env.h"

#include <utility>

namespace tyder::storage {

namespace {

Status Injected(const std::string& what, const std::string& path) {
  return Status::Internal("injected " + what + " on '" + path + "'");
}

}  // namespace

// Delegates to the wrapped file, letting the parent env veto each call.
// Derives the env.h guard, so an injected sync failure poisons this handle
// exactly like a real one.
class FaultyEnv::FaultyFile : public WritableFile {
 public:
  FaultyFile(FaultyEnv* parent, std::string path,
             std::unique_ptr<WritableFile> inner)
      : parent_(parent), path_(std::move(path)), inner_(std::move(inner)) {}

 protected:
  Status DoAppend(std::string_view data) override {
    return parent_->OnAppend(path_, data, *inner_);
  }
  Status DoSync() override { return parent_->OnSync(path_, *inner_); }
  Status DoTruncate(uint64_t size) override {
    return parent_->OnTruncate(path_, size, *inner_);
  }
  Result<uint64_t> DoSize() override { return inner_->Size(); }

 private:
  FaultyEnv* parent_;
  std::string path_;
  std::unique_ptr<WritableFile> inner_;
};

void FaultyEnv::InjectAt(FaultKind kind, int nth) {
  armed_ = true;
  armed_kind_ = kind;
  armed_nth_ = nth;
  fault_fired_ = false;
}

void FaultyEnv::SetByteQuota(uint64_t bytes) {
  quota_armed_ = true;
  quota_bytes_ = bytes;
  quota_used_ = 0;
}

void FaultyEnv::ClearFaults() {
  armed_ = false;
  quota_armed_ = false;
}

void FaultyEnv::ResetCounters() {
  total_calls_ = 0;
  append_calls_ = 0;
  sync_calls_ = 0;
}

bool FaultyEnv::ShouldFire(FaultKind kind, int idx) {
  if (!armed_ || armed_kind_ != kind || idx != armed_nth_) return false;
  armed_ = false;  // one shot
  fault_fired_ = true;
  return true;
}

std::string FaultyEnv::ParentDir(const std::string& path) const {
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

void FaultyEnv::Touch(const std::string& path) {
  if (durable_.count(path) != 0) return;
  Result<std::string> existing = base_->ReadFile(path);
  if (existing.ok()) {
    durable_[path] = std::move(*existing);
  } else {
    durable_[path] = std::nullopt;
  }
}

Status FaultyEnv::OnAppend(const std::string& path, std::string_view data,
                           WritableFile& inner) {
  int total = total_calls_++;
  int nth_append = append_calls_++;
  if (ShouldFire(FaultKind::kError, total) ||
      ShouldFire(FaultKind::kEnospc, nth_append)) {
    return Injected("EIO/ENOSPC write failure", path);
  }
  if (ShouldFire(FaultKind::kShortWrite, nth_append)) {
    (void)inner.Append(data.substr(0, data.size() / 2));
    return Injected("short write (half the bytes persisted)", path);
  }
  if (quota_armed_) {
    uint64_t remaining =
        quota_bytes_ > quota_used_ ? quota_bytes_ - quota_used_ : 0;
    if (data.size() > remaining) {
      // Disk full mid-write: exactly the bytes that fit reach the file.
      quota_used_ = quota_bytes_;
      fault_fired_ = true;
      (void)inner.Append(data.substr(0, remaining));
      return Injected("ENOSPC (byte quota exhausted mid-write)", path);
    }
    quota_used_ += data.size();
  }
  return inner.Append(data);
}

Status FaultyEnv::OnSync(const std::string& path, WritableFile& inner) {
  int total = total_calls_++;
  int nth_sync = sync_calls_++;
  if (ShouldFire(FaultKind::kError, total) ||
      ShouldFire(FaultKind::kSyncFail, nth_sync)) {
    return Injected("fsync failure", path);
  }
  TYDER_RETURN_IF_ERROR(inner.Sync());
  // Durable: the inode's current content, reachable under this name.
  Result<std::string> content = base_->ReadFile(path);
  if (content.ok()) durable_[path] = std::move(*content);
  return Status::OK();
}

Status FaultyEnv::OnTruncate(const std::string& path, uint64_t size,
                             WritableFile& inner) {
  int total = total_calls_++;
  if (ShouldFire(FaultKind::kError, total)) {
    return Injected("EIO truncate failure", path);
  }
  // Unsynced metadata: durable content unchanged until the next Sync.
  return inner.Truncate(size);
}

Result<std::unique_ptr<WritableFile>> FaultyEnv::DoOpenAppendable(
    const std::string& path) {
  int total = total_calls_++;
  if (ShouldFire(FaultKind::kError, total)) {
    return Injected("EIO open failure", path);
  }
  Touch(path);
  Result<std::unique_ptr<WritableFile>> inner = base_->OpenAppendable(path);
  if (!inner.ok()) return inner.status();
  return std::unique_ptr<WritableFile>(
      new FaultyFile(this, path, std::move(*inner)));
}

Result<std::unique_ptr<WritableFile>> FaultyEnv::DoOpenTruncated(
    const std::string& path) {
  int total = total_calls_++;
  if (ShouldFire(FaultKind::kError, total)) {
    return Injected("EIO open failure", path);
  }
  Touch(path);
  Result<std::unique_ptr<WritableFile>> inner = base_->OpenTruncated(path);
  if (!inner.ok()) return inner.status();
  return std::unique_ptr<WritableFile>(
      new FaultyFile(this, path, std::move(*inner)));
}

Result<std::string> FaultyEnv::DoReadFile(const std::string& path) {
  int total = total_calls_++;
  if (ShouldFire(FaultKind::kError, total)) {
    return Injected("EIO read failure", path);
  }
  Touch(path);
  return base_->ReadFile(path);
}

Status FaultyEnv::DoRenameFile(const std::string& from,
                               const std::string& to) {
  int total = total_calls_++;
  if (ShouldFire(FaultKind::kError, total)) {
    return Injected("EIO rename failure", to);
  }
  Touch(from);
  Touch(to);
  TYDER_RETURN_IF_ERROR(base_->RenameFile(from, to));
  // Real effect now, durable effect only after SyncDir: power loss before
  // that undoes the rename, resurrecting `from` with its durable content.
  pending_.push_back(
      PendingOp{PendingOp::kRename, from, to, durable_[from]});
  return Status::OK();
}

Status FaultyEnv::DoRemoveFile(const std::string& path) {
  int total = total_calls_++;
  if (ShouldFire(FaultKind::kError, total)) {
    return Injected("EIO remove failure", path);
  }
  Touch(path);
  TYDER_RETURN_IF_ERROR(base_->RemoveFile(path));
  pending_.push_back(PendingOp{PendingOp::kRemove, "", path, std::nullopt});
  return Status::OK();
}

Status FaultyEnv::DoTruncateFile(const std::string& path, uint64_t size) {
  int total = total_calls_++;
  if (ShouldFire(FaultKind::kError, total)) {
    return Injected("EIO truncate failure", path);
  }
  Touch(path);
  return base_->TruncateFile(path, size);
}

Status FaultyEnv::DoSyncDir(const std::string& dir) {
  int total = total_calls_++;
  int nth_sync = sync_calls_++;
  if (ShouldFire(FaultKind::kError, total) ||
      ShouldFire(FaultKind::kSyncFail, nth_sync)) {
    return Injected("directory fsync failure", dir);
  }
  TYDER_RETURN_IF_ERROR(base_->SyncDir(dir));
  // Commit pending metadata ops inside `dir`, in order.
  std::vector<PendingOp> keep;
  for (PendingOp& op : pending_) {
    if (ParentDir(op.path) != dir) {
      keep.push_back(std::move(op));
      continue;
    }
    if (op.kind == PendingOp::kRename) {
      durable_[op.path] = std::move(op.moved_durable);
      durable_[op.from] = std::nullopt;
    } else {
      durable_[op.path] = std::nullopt;
    }
  }
  pending_ = std::move(keep);
  return Status::OK();
}

Status FaultyEnv::DoCreateDirs(const std::string& dir) {
  // Directories are assumed durable (see header); never fault-eligible.
  return base_->CreateDirs(dir);
}

Result<std::vector<std::string>> FaultyEnv::DoListDir(const std::string& dir) {
  int total = total_calls_++;
  if (ShouldFire(FaultKind::kError, total)) {
    return Injected("EIO list failure", dir);
  }
  Result<std::vector<std::string>> names = base_->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) Touch(dir + "/" + name);
  }
  return names;
}

void FaultyEnv::PowerLoss() {
  // Everything not fsync'd evaporates; uncommitted renames/removes undo.
  pending_.clear();
  for (const auto& [path, content] : durable_) {
    if (content.has_value()) {
      Result<std::unique_ptr<WritableFile>> file = base_->OpenTruncated(path);
      if (file.ok()) {
        (void)(*file)->Append(*content);
        (void)(*file)->Sync();
      }
    } else {
      (void)base_->RemoveFile(path);
    }
  }
}

}  // namespace tyder::storage
