// Builtin types installed into every schema: the optional root `Object` and
// the value types used by attributes and literals. User hierarchies are not
// auto-rooted — the paper's figures have root-less forests and we reproduce
// them exactly; `Object` is available for schemas that want a root.

#ifndef TYDER_OBJMODEL_BUILTIN_TYPES_H_
#define TYDER_OBJMODEL_BUILTIN_TYPES_H_

#include "common/result.h"
#include "objmodel/type_graph.h"

namespace tyder {

struct BuiltinTypes {
  TypeId object = kInvalidType;
  TypeId void_type = kInvalidType;  // result type of mutators / statements
  TypeId int_type = kInvalidType;
  TypeId float_type = kInvalidType;
  TypeId bool_type = kInvalidType;
  TypeId string_type = kInvalidType;
  TypeId date_type = kInvalidType;
};

// Declares the builtin types in `graph` (value types are subtypes of Object).
// Must be called on an empty graph, before user types.
Result<BuiltinTypes> InstallBuiltins(TypeGraph& graph);

// True iff `t` is one of the builtin value types (not Object / Void).
bool IsValueType(const BuiltinTypes& b, TypeId t);

}  // namespace tyder

#endif  // TYDER_OBJMODEL_BUILTIN_TYPES_H_
