// Attributes: the state components of object types (paper Section 2). An
// attribute has a globally unique name (a paper simplification we enforce),
// a value type, and an owner — the type at which it is locally defined.
// Subtypes inherit attributes; diamond inheritance yields one copy.

#ifndef TYDER_OBJMODEL_ATTRIBUTE_H_
#define TYDER_OBJMODEL_ATTRIBUTE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/ids.h"
#include "common/symbol.h"

namespace tyder {

struct AttributeDef {
  Symbol name;
  TypeId value_type = kInvalidType;
  // The type at which the attribute is locally defined. FactorState moves
  // attributes between a type and its surrogate by re-homing the owner.
  TypeId owner = kInvalidType;
};

// "name: ValueTypeName" (value type name resolved by the caller).
std::string AttributeToString(const AttributeDef& attr,
                              std::string_view value_type_name);

}  // namespace tyder

#endif  // TYDER_OBJMODEL_ATTRIBUTE_H_
