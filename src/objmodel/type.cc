#include "objmodel/type.h"

#include <algorithm>

namespace tyder {

void Type::InsertSupertypeAt(size_t rank, TypeId t) {
  if (rank >= supertypes_.size()) {
    supertypes_.push_back(t);
  } else {
    supertypes_.insert(supertypes_.begin() + static_cast<ptrdiff_t>(rank), t);
  }
}

bool Type::HasDirectSupertype(TypeId t) const {
  return std::find(supertypes_.begin(), supertypes_.end(), t) !=
         supertypes_.end();
}

bool Type::RemoveSupertype(TypeId t) {
  auto it = std::find(supertypes_.begin(), supertypes_.end(), t);
  if (it == supertypes_.end()) return false;
  supertypes_.erase(it);
  return true;
}

void Type::SortLocalAttributes() {
  std::sort(local_attrs_.begin(), local_attrs_.end());
}

bool Type::RemoveLocalAttribute(AttrId a) {
  auto it = std::find(local_attrs_.begin(), local_attrs_.end(), a);
  if (it == local_attrs_.end()) return false;
  local_attrs_.erase(it);
  return true;
}

}  // namespace tyder
