#include "objmodel/type_graph.h"

#include <algorithm>
#include <deque>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "obs/obs.h"

namespace tyder {

TypeGraph::TypeGraph(const TypeGraph& other)
    : types_(other.types_),
      attrs_(other.attrs_),
      type_index_(other.type_index_),
      attr_index_(other.attr_index_),
      version_(other.version_),
      cache_enabled_(other.cache_enabled_) {}

TypeGraph& TypeGraph::operator=(const TypeGraph& other) {
  if (this == &other) return *this;
  types_ = other.types_;
  attrs_ = other.attrs_;
  type_index_ = other.type_index_;
  attr_index_ = other.attr_index_;
  version_ = other.version_;
  cache_enabled_ = other.cache_enabled_;
  // The assigned-over graph may have published a closure for its old
  // structure; drop it. Assignment implies exclusive access (see Invalidate).
  std::lock_guard<std::mutex> lock(closure_mu_);
  closure_retired_.clear();
  closure_owner_.reset();
  closure_spare_.reset();
  closure_published_.store(nullptr, std::memory_order_release);
  return *this;
}

TypeGraph::TypeGraph(TypeGraph&& other) noexcept
    : types_(std::move(other.types_)),
      attrs_(std::move(other.attrs_)),
      type_index_(std::move(other.type_index_)),
      attr_index_(std::move(other.attr_index_)),
      version_(other.version_),
      cache_enabled_(other.cache_enabled_) {
  // The moved-from graph's closure no longer describes its (emptied)
  // structure.
  std::lock_guard<std::mutex> lock(other.closure_mu_);
  other.closure_retired_.clear();
  other.closure_owner_.reset();
  other.closure_spare_.reset();
  other.closure_published_.store(nullptr, std::memory_order_release);
}

TypeGraph& TypeGraph::operator=(TypeGraph&& other) noexcept {
  if (this == &other) return *this;
  types_ = std::move(other.types_);
  attrs_ = std::move(other.attrs_);
  type_index_ = std::move(other.type_index_);
  attr_index_ = std::move(other.attr_index_);
  version_ = other.version_;
  cache_enabled_ = other.cache_enabled_;
  {
    std::lock_guard<std::mutex> lock(closure_mu_);
    closure_retired_.clear();
    closure_owner_.reset();
    closure_spare_.reset();
    closure_published_.store(nullptr, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lock(other.closure_mu_);
    other.closure_retired_.clear();
    other.closure_owner_.reset();
    other.closure_spare_.reset();
    other.closure_published_.store(nullptr, std::memory_order_release);
  }
  return *this;
}

void TypeGraph::Invalidate() {
  ++version_;
  // Mutation requires exclusive access, so no reader can be holding a
  // retired closure pointer across this call; free everything eagerly
  // rather than letting rebuild churn accumulate. The live closure's
  // allocation is reclaimed, not freed: the next build recycles it, so a
  // mutate→query loop does not malloc per cycle.
  std::lock_guard<std::mutex> lock(closure_mu_);
  closure_retired_.clear();
  if (closure_owner_ != nullptr) closure_spare_ = std::move(closure_owner_);
  closure_published_.store(nullptr, std::memory_order_release);
}

Result<TypeId> TypeGraph::DeclareType(std::string_view name, TypeKind kind) {
  if (name.empty()) {
    return Status::InvalidArgument("type name must be non-empty");
  }
  Symbol sym = Symbol::Intern(name);
  if (type_index_.count(sym) > 0) {
    return Status::AlreadyExists("type '" + std::string(name) +
                                 "' already declared");
  }
  TypeId id = static_cast<TypeId>(types_.size());
  types_.emplace_back(sym, kind);
  type_index_.emplace(sym, id);
  Invalidate();  // new node: the closure has the wrong row count
  return id;
}

Result<TypeId> TypeGraph::DeclareSurrogate(std::string_view name,
                                           TypeId source) {
  if (source >= types_.size()) {
    return Status::InvalidArgument("surrogate source out of range");
  }
  TYDER_ASSIGN_OR_RETURN(TypeId id, DeclareType(name, TypeKind::kSurrogate));
  types_[id].set_surrogate_source(source);
  return id;
}

Status TypeGraph::AddSupertype(TypeId sub, TypeId super) {
  if (sub >= types_.size() || super >= types_.size()) {
    return Status::InvalidArgument("type id out of range");
  }
  if (sub == super) {
    return Status::InvalidArgument("type '" + TypeName(sub) +
                                   "' cannot be its own supertype");
  }
  if (types_[sub].HasDirectSupertype(super)) {
    return Status::AlreadyExists("'" + TypeName(super) +
                                 "' is already a direct supertype of '" +
                                 TypeName(sub) + "'");
  }
  // super ≼ sub would close a cycle. Checked with the exact walk (as in
  // Validate()) rather than IsSubtype so that bulk hierarchy construction
  // never allocates or populates closure state it immediately invalidates.
  if (UncachedWalk(super, sub)) {
    return Status::FailedPrecondition(
        "adding supertype '" + TypeName(super) + "' to '" + TypeName(sub) +
        "' would create a cycle");
  }
  types_[sub].AppendSupertype(super);
  // Chaos hook for the differential fuzzer (tests/fuzz): when armed, the
  // edge lands but the stale ancestor-bitset closure stays published — the
  // exact bug a forgotten Invalidate() would be. Memory-safe by construction
  // (no types were added, so every row stays in bounds); already-built rows
  // simply keep their pre-edge ancestor sets until the next real mutation.
  if (TYDER_FAULT_CONSUME("chaos.skip_closure_invalidation")) {
    return Status::OK();
  }
  Invalidate();
  return Status::OK();
}

Result<AttrId> TypeGraph::DeclareAttribute(TypeId owner, std::string_view name,
                                           TypeId value_type) {
  if (owner >= types_.size() || value_type >= types_.size()) {
    return Status::InvalidArgument("type id out of range");
  }
  if (name.empty()) {
    return Status::InvalidArgument("attribute name must be non-empty");
  }
  Symbol sym = Symbol::Intern(name);
  if (attr_index_.count(sym) > 0) {
    return Status::AlreadyExists("attribute '" + std::string(name) +
                                 "' already declared (attribute names are "
                                 "globally unique)");
  }
  AttrId id = static_cast<AttrId>(attrs_.size());
  attrs_.push_back(AttributeDef{sym, value_type, owner});
  attr_index_.emplace(sym, id);
  types_[owner].AddLocalAttribute(id);
  return id;
}

Status TypeGraph::MoveAttribute(AttrId a, TypeId new_owner) {
  if (a >= attrs_.size() || new_owner >= types_.size()) {
    return Status::InvalidArgument("id out of range");
  }
  TypeId old_owner = attrs_[a].owner;
  if (old_owner == new_owner) return Status::OK();
  if (!types_[old_owner].RemoveLocalAttribute(a)) {
    return Status::Internal("attribute '" + attrs_[a].name.str() +
                            "' missing from owner's local list");
  }
  attrs_[a].owner = new_owner;
  types_[new_owner].AddLocalAttribute(a);
  return Status::OK();
}

Result<TypeId> TypeGraph::FindType(std::string_view name) const {
  auto it = type_index_.find(Symbol::Intern(name));
  if (it == type_index_.end()) {
    return Status::NotFound("no type named '" + std::string(name) + "'");
  }
  return it->second;
}

Result<AttrId> TypeGraph::FindAttribute(std::string_view name) const {
  auto it = attr_index_.find(Symbol::Intern(name));
  if (it == attr_index_.end()) {
    return Status::NotFound("no attribute named '" + std::string(name) + "'");
  }
  return it->second;
}

// Force-inlined into every (same-TU) caller: with the cache-hit counter in
// the body the compiler stops inlining this on its own, and the warm
// IsSubtype path — a single word-test — would eat an extra call per query.
// The `obs` overhead gate watches exactly this path.
__attribute__((always_inline)) inline const TypeGraph::Closure*
TypeGraph::closure() const {
  const Closure* c = closure_published_.load(std::memory_order_acquire);
  if (c != nullptr && c->version == version_) {
    TYDER_COUNT("subtype.cache_hit");
    return c;
  }
  return BuildClosure();
}

const TypeGraph::Closure* TypeGraph::BuildClosure() const {
  std::lock_guard<std::mutex> lock(closure_mu_);
  // Another thread may have finished the build while we waited on the lock.
  const Closure* current = closure_published_.load(std::memory_order_acquire);
  if (current != nullptr && current->version == version_) {
    TYDER_COUNT("subtype.cache_hit");
    return current;
  }
  TYDER_COUNT("subtype.cache_miss");
  if (current != nullptr || closure_spare_ != nullptr) {
    TYDER_COUNT("subtype.cache_invalidations");
  }

  // Allocation (or recycling) only: rows are filled on demand by BuildRow,
  // so a mutation followed by a handful of queries pays for those rows, not
  // for the whole O(types × edges) closure.
  const size_t n = types_.size();
  std::unique_ptr<Closure> built;
  if (closure_spare_ != nullptr && closure_spare_->rows_cap >= n) {
    built = std::move(closure_spare_);
    for (size_t i = 0; i < n; ++i) {
      built->row_built[i].store(0, std::memory_order_relaxed);
    }
  } else {
    built = std::make_unique<Closure>();
    // Headroom so that DeclareType-heavy phases (FactorState spinning off
    // surrogates) keep recycling instead of reallocating per declaration.
    built->rows_cap = n + n / 2 + 8;
    const size_t words_cap = (built->rows_cap + 63) / 64;
    built->bits = std::make_unique_for_overwrite<uint64_t[]>(built->rows_cap *
                                                             words_cap);
    built->row_built =
        std::make_unique<std::atomic<uint8_t>[]>(built->rows_cap);
  }
  built->version = version_;
  built->num_types = n;
  built->words = (n + 63) / 64;

  // Publish. The replaced closure is parked, not freed: a concurrent reader
  // may have loaded its pointer and still be checking its version.
  if (closure_owner_ != nullptr) {
    closure_retired_.push_back(std::move(closure_owner_));
  }
  closure_owner_ = std::move(built);
  closure_published_.store(closure_owner_.get(), std::memory_order_release);
  return closure_owner_.get();
}

void TypeGraph::BuildRow(const Closure* c, TypeId root) const {
  std::lock_guard<std::mutex> lock(closure_mu_);
  if (c->RowReady(root)) return;  // raced with another builder
  // One ancestor walk for just this row, using the row bits themselves as
  // the visited set — cold cost O(ancestors + edges) regardless of how many
  // other rows are stale, which is what mutation-heavy phases (FactorState)
  // hit between edits. Cycle-tolerant by construction (a revisited node's
  // bit is already set). `bits` writes happen under `closure_mu_`; the
  // release-store of the flag publishes the row to lock-free readers.
  uint64_t* row = c->bits.get() + root * c->words;
  std::fill_n(row, c->words, uint64_t{0});
  row[root >> 6] |= uint64_t{1} << (root & 63);
  std::vector<TypeId> queue{root};
  while (!queue.empty()) {
    TypeId t = queue.back();
    queue.pop_back();
    for (TypeId s : types_[t].supertypes()) {
      uint64_t& w = row[s >> 6];
      const uint64_t bit = uint64_t{1} << (s & 63);
      if ((w & bit) == 0) {
        w |= bit;
        queue.push_back(s);
      }
    }
  }
  c->row_built[root].store(1, std::memory_order_release);
}

void TypeGraph::BuildAllRows(const Closure* c) const {
  std::lock_guard<std::mutex> lock(closure_mu_);
  // Bulk path: fill every missing row supertypes-first, row(t) = bit(t) |
  // OR row(s) over direct supertypes s — O(types × edges / 64) words total,
  // cheaper than per-row walks when warming the whole graph. Iterative
  // post-order DFS over the super edges, descending only into rows not yet
  // built (already-published rows are reused as-is, never rewritten — a
  // concurrent reader may be scanning them). The graph is acyclic by
  // construction (AddSupertype refuses cycles), but a cycle snuck in
  // through mutable_type() must not hang the build — Validate() detects it
  // with an exact walk — so in-progress nodes are skipped rather than
  // revisited.
  enum : uint8_t { kUnvisited = 0, kInProgress = 1, kDone = 2 };
  std::vector<uint8_t> mark(c->num_types, kUnvisited);
  std::vector<std::pair<TypeId, size_t>> stack;  // (type, next super index)
  for (TypeId seed = 0; seed < c->num_types; ++seed) {
    if (mark[seed] != kUnvisited || c->RowReady(seed)) continue;
    stack.emplace_back(seed, 0);
    mark[seed] = kInProgress;
    while (!stack.empty()) {
      auto& [t, next] = stack.back();
      const std::vector<TypeId>& supers = types_[t].supertypes();
      if (next < supers.size()) {
        TypeId s = supers[next++];
        if (mark[s] == kUnvisited && !c->RowReady(s)) {
          stack.emplace_back(s, 0);
          mark[s] = kInProgress;
        }
        continue;
      }
      uint64_t* row = c->bits.get() + t * c->words;
      std::fill_n(row, c->words, uint64_t{0});
      row[t >> 6] |= uint64_t{1} << (t & 63);
      for (TypeId s : supers) {
        if (!c->RowReady(s)) continue;  // in-progress: a mutable_type() cycle
        const uint64_t* srow = c->bits.get() + s * c->words;
        for (size_t w = 0; w < c->words; ++w) row[w] |= srow[w];
      }
      c->row_built[t].store(1, std::memory_order_release);
      mark[t] = kDone;
      stack.pop_back();
    }
  }
}

void TypeGraph::PrewarmClosure() const {
  if (!cache_enabled_) return;
  BuildAllRows(closure());
}

bool TypeGraph::UncachedWalk(TypeId a, TypeId b) const {
  std::vector<bool> seen(types_.size(), false);
  std::deque<TypeId> queue{a};
  seen[a] = true;
  while (!queue.empty()) {
    TypeId t = queue.front();
    queue.pop_front();
    for (TypeId s : types_[t].supertypes()) {
      if (s == b) return true;
      if (!seen[s]) {
        seen[s] = true;
        queue.push_back(s);
      }
    }
  }
  return false;
}

bool TypeGraph::IsSubtype(TypeId a, TypeId b) const {
  TYDER_COUNT("subtype.queries");
  if (a == b) return true;
  if (!cache_enabled_) {
    TYDER_COUNT("subtype.uncached_walks");
    return UncachedWalk(a, b);
  }
  const Closure* c = closure();
  if (!c->RowReady(a)) BuildRow(c, a);
  return c->Test(a, b);
}

std::vector<TypeId> TypeGraph::SupertypeClosure(TypeId t) const {
  std::vector<bool> seen(types_.size(), false);
  std::vector<TypeId> order;
  std::deque<TypeId> queue{t};
  seen[t] = true;
  while (!queue.empty()) {
    TypeId cur = queue.front();
    queue.pop_front();
    order.push_back(cur);
    for (TypeId s : types_[cur].supertypes()) {
      if (!seen[s]) {
        seen[s] = true;
        queue.push_back(s);
      }
    }
  }
  return order;
}

std::vector<TypeId> TypeGraph::SubtypeClosure(TypeId t) const {
  // Supertype edges are stored sub -> super; with the bitset closure this is
  // one column scan (word-test per candidate).
  std::vector<TypeId> out;
  for (TypeId cand = 0; cand < types_.size(); ++cand) {
    if (IsSubtype(cand, t)) out.push_back(cand);
  }
  return out;
}

std::vector<AttrId> TypeGraph::CumulativeAttributes(TypeId t) const {
  std::vector<AttrId> out;
  for (TypeId s : SupertypeClosure(t)) {
    for (AttrId a : types_[s].local_attributes()) {
      // Diamond paths visit each type once (closure is deduplicated), and an
      // attribute has exactly one owner, so no further dedup is needed.
      out.push_back(a);
    }
  }
  return out;
}

bool TypeGraph::AttributeAvailableAt(TypeId t, AttrId a) const {
  return IsSubtype(t, attrs_[a].owner);
}

Status TypeGraph::Validate() const {
  // Edge indices in range and acyclic.
  for (TypeId t = 0; t < types_.size(); ++t) {
    for (TypeId s : types_[t].supertypes()) {
      if (s >= types_.size()) {
        return Status::Internal("supertype id out of range for '" +
                                TypeName(t) + "'");
      }
      // Exact DAG walk, not the closure: cycle detection must work even on
      // the malformed graphs the closure build skips over.
      if (s == t || UncachedWalk(s, t)) {
        return Status::Internal("cycle through '" + TypeName(t) + "' and '" +
                                TypeName(s) + "'");
      }
    }
    // Duplicate direct supertypes are ill-formed (precedence is a strict
    // order over direct supertypes).
    std::vector<TypeId> supers = types_[t].supertypes();
    std::sort(supers.begin(), supers.end());
    if (std::adjacent_find(supers.begin(), supers.end()) != supers.end()) {
      return Status::Internal("duplicate direct supertype on '" +
                              TypeName(t) + "'");
    }
  }
  // Attribute ownership consistent with local lists.
  for (AttrId a = 0; a < attrs_.size(); ++a) {
    const AttributeDef& def = attrs_[a];
    if (def.owner >= types_.size() || def.value_type >= types_.size()) {
      return Status::Internal("attribute '" + def.name.str() +
                              "' references out-of-range type");
    }
    const auto& local = types_[def.owner].local_attributes();
    if (std::find(local.begin(), local.end(), a) == local.end()) {
      return Status::Internal("attribute '" + def.name.str() +
                              "' not listed by its owner '" +
                              TypeName(def.owner) + "'");
    }
  }
  for (TypeId t = 0; t < types_.size(); ++t) {
    for (AttrId a : types_[t].local_attributes()) {
      if (a >= attrs_.size() || attrs_[a].owner != t) {
        return Status::Internal("type '" + TypeName(t) +
                                "' lists an attribute it does not own");
      }
    }
  }
  return Status::OK();
}

}  // namespace tyder
