#include "objmodel/type_graph.h"

#include <algorithm>
#include <deque>

#include "common/string_util.h"
#include "obs/obs.h"

namespace tyder {

Result<TypeId> TypeGraph::DeclareType(std::string_view name, TypeKind kind) {
  if (name.empty()) {
    return Status::InvalidArgument("type name must be non-empty");
  }
  Symbol sym = Symbol::Intern(name);
  if (type_index_.count(sym) > 0) {
    return Status::AlreadyExists("type '" + std::string(name) +
                                 "' already declared");
  }
  TypeId id = static_cast<TypeId>(types_.size());
  types_.emplace_back(sym, kind);
  type_index_.emplace(sym, id);
  ++version_;  // new node: cached rows have the wrong width
  return id;
}

Result<TypeId> TypeGraph::DeclareSurrogate(std::string_view name,
                                           TypeId source) {
  if (source >= types_.size()) {
    return Status::InvalidArgument("surrogate source out of range");
  }
  TYDER_ASSIGN_OR_RETURN(TypeId id, DeclareType(name, TypeKind::kSurrogate));
  types_[id].set_surrogate_source(source);
  return id;
}

Status TypeGraph::AddSupertype(TypeId sub, TypeId super) {
  if (sub >= types_.size() || super >= types_.size()) {
    return Status::InvalidArgument("type id out of range");
  }
  if (sub == super) {
    return Status::InvalidArgument("type '" + TypeName(sub) +
                                   "' cannot be its own supertype");
  }
  if (types_[sub].HasDirectSupertype(super)) {
    return Status::AlreadyExists("'" + TypeName(super) +
                                 "' is already a direct supertype of '" +
                                 TypeName(sub) + "'");
  }
  // super ≼ sub would close a cycle.
  if (IsSubtype(super, sub)) {
    return Status::FailedPrecondition(
        "adding supertype '" + TypeName(super) + "' to '" + TypeName(sub) +
        "' would create a cycle");
  }
  types_[sub].AppendSupertype(super);
  ++version_;
  return Status::OK();
}

Result<AttrId> TypeGraph::DeclareAttribute(TypeId owner, std::string_view name,
                                           TypeId value_type) {
  if (owner >= types_.size() || value_type >= types_.size()) {
    return Status::InvalidArgument("type id out of range");
  }
  if (name.empty()) {
    return Status::InvalidArgument("attribute name must be non-empty");
  }
  Symbol sym = Symbol::Intern(name);
  if (attr_index_.count(sym) > 0) {
    return Status::AlreadyExists("attribute '" + std::string(name) +
                                 "' already declared (attribute names are "
                                 "globally unique)");
  }
  AttrId id = static_cast<AttrId>(attrs_.size());
  attrs_.push_back(AttributeDef{sym, value_type, owner});
  attr_index_.emplace(sym, id);
  types_[owner].AddLocalAttribute(id);
  return id;
}

Status TypeGraph::MoveAttribute(AttrId a, TypeId new_owner) {
  if (a >= attrs_.size() || new_owner >= types_.size()) {
    return Status::InvalidArgument("id out of range");
  }
  TypeId old_owner = attrs_[a].owner;
  if (old_owner == new_owner) return Status::OK();
  if (!types_[old_owner].RemoveLocalAttribute(a)) {
    return Status::Internal("attribute '" + attrs_[a].name.str() +
                            "' missing from owner's local list");
  }
  attrs_[a].owner = new_owner;
  types_[new_owner].AddLocalAttribute(a);
  return Status::OK();
}

Result<TypeId> TypeGraph::FindType(std::string_view name) const {
  auto it = type_index_.find(Symbol::Intern(name));
  if (it == type_index_.end()) {
    return Status::NotFound("no type named '" + std::string(name) + "'");
  }
  return it->second;
}

Result<AttrId> TypeGraph::FindAttribute(std::string_view name) const {
  auto it = attr_index_.find(Symbol::Intern(name));
  if (it == attr_index_.end()) {
    return Status::NotFound("no attribute named '" + std::string(name) + "'");
  }
  return it->second;
}

const std::vector<bool>& TypeGraph::ReachRow(TypeId t) const {
  if (cache_version_ != version_) {
    if (!reach_cache_.empty()) TYDER_COUNT("subtype.cache_invalidations");
    reach_cache_.clear();
    cache_version_ = version_;
  }
  auto it = reach_cache_.find(t);
  if (it != reach_cache_.end()) {
    TYDER_COUNT("subtype.cache_hit");
    return it->second;
  }
  TYDER_COUNT("subtype.cache_miss");
  std::vector<bool> row(types_.size(), false);
  std::deque<TypeId> queue{t};
  row[t] = true;
  while (!queue.empty()) {
    TypeId cur = queue.front();
    queue.pop_front();
    for (TypeId s : types_[cur].supertypes()) {
      if (!row[s]) {
        row[s] = true;
        queue.push_back(s);
      }
    }
  }
  return reach_cache_.emplace(t, std::move(row)).first->second;
}

bool TypeGraph::IsSubtype(TypeId a, TypeId b) const {
  TYDER_COUNT("subtype.queries");
  if (a == b) return true;
  if (cache_enabled_) return ReachRow(a)[b];
  TYDER_COUNT("subtype.uncached_walks");
  std::vector<bool> seen(types_.size(), false);
  std::deque<TypeId> queue{a};
  seen[a] = true;
  while (!queue.empty()) {
    TypeId t = queue.front();
    queue.pop_front();
    for (TypeId s : types_[t].supertypes()) {
      if (s == b) return true;
      if (!seen[s]) {
        seen[s] = true;
        queue.push_back(s);
      }
    }
  }
  return false;
}

std::vector<TypeId> TypeGraph::SupertypeClosure(TypeId t) const {
  std::vector<bool> seen(types_.size(), false);
  std::vector<TypeId> order;
  std::deque<TypeId> queue{t};
  seen[t] = true;
  while (!queue.empty()) {
    TypeId cur = queue.front();
    queue.pop_front();
    order.push_back(cur);
    for (TypeId s : types_[cur].supertypes()) {
      if (!seen[s]) {
        seen[s] = true;
        queue.push_back(s);
      }
    }
  }
  return order;
}

std::vector<TypeId> TypeGraph::SubtypeClosure(TypeId t) const {
  // Supertype edges are stored sub -> super; walk all types and test.
  // (Schemas are small enough that the O(V·E) cost is irrelevant; callers
  // needing bulk subtype queries use Digraph::TransitiveClosure.)
  std::vector<TypeId> out;
  for (TypeId cand = 0; cand < types_.size(); ++cand) {
    if (IsSubtype(cand, t)) out.push_back(cand);
  }
  return out;
}

std::vector<AttrId> TypeGraph::CumulativeAttributes(TypeId t) const {
  std::vector<AttrId> out;
  for (TypeId s : SupertypeClosure(t)) {
    for (AttrId a : types_[s].local_attributes()) {
      // Diamond paths visit each type once (closure is deduplicated), and an
      // attribute has exactly one owner, so no further dedup is needed.
      out.push_back(a);
    }
  }
  return out;
}

bool TypeGraph::AttributeAvailableAt(TypeId t, AttrId a) const {
  return IsSubtype(t, attrs_[a].owner);
}

Status TypeGraph::Validate() const {
  // Edge indices in range and acyclic.
  for (TypeId t = 0; t < types_.size(); ++t) {
    for (TypeId s : types_[t].supertypes()) {
      if (s >= types_.size()) {
        return Status::Internal("supertype id out of range for '" +
                                TypeName(t) + "'");
      }
      if (IsSubtype(s, t)) {
        return Status::Internal("cycle through '" + TypeName(t) + "' and '" +
                                TypeName(s) + "'");
      }
    }
    // Duplicate direct supertypes are ill-formed (precedence is a strict
    // order over direct supertypes).
    std::vector<TypeId> supers = types_[t].supertypes();
    std::sort(supers.begin(), supers.end());
    if (std::adjacent_find(supers.begin(), supers.end()) != supers.end()) {
      return Status::Internal("duplicate direct supertype on '" +
                              TypeName(t) + "'");
    }
  }
  // Attribute ownership consistent with local lists.
  for (AttrId a = 0; a < attrs_.size(); ++a) {
    const AttributeDef& def = attrs_[a];
    if (def.owner >= types_.size() || def.value_type >= types_.size()) {
      return Status::Internal("attribute '" + def.name.str() +
                              "' references out-of-range type");
    }
    const auto& local = types_[def.owner].local_attributes();
    if (std::find(local.begin(), local.end(), a) == local.end()) {
      return Status::Internal("attribute '" + def.name.str() +
                              "' not listed by its owner '" +
                              TypeName(def.owner) + "'");
    }
  }
  for (TypeId t = 0; t < types_.size(); ++t) {
    for (AttrId a : types_[t].local_attributes()) {
      if (a >= attrs_.size() || attrs_[a].owner != t) {
        return Status::Internal("type '" + TypeName(t) +
                                "' lists an attribute it does not own");
      }
    }
  }
  return Status::OK();
}

}  // namespace tyder
