#include "objmodel/linearize.h"

#include <algorithm>

namespace tyder {

namespace {

// C3 merge: repeatedly take the head of some input list that appears in no
// other list's tail. Returns false if the merge gets stuck (inconsistent
// local precedence orders).
bool C3Merge(std::vector<std::vector<TypeId>> inputs,
             std::vector<TypeId>* out) {
  auto in_a_tail = [&inputs](TypeId t) {
    for (const auto& list : inputs) {
      for (size_t i = 1; i < list.size(); ++i) {
        if (list[i] == t) return true;
      }
    }
    return false;
  };
  for (;;) {
    // Drop exhausted lists.
    inputs.erase(std::remove_if(inputs.begin(), inputs.end(),
                                [](const auto& l) { return l.empty(); }),
                 inputs.end());
    if (inputs.empty()) return true;
    bool progressed = false;
    for (const auto& list : inputs) {
      TypeId head = list.front();
      if (in_a_tail(head)) continue;
      out->push_back(head);
      for (auto& l : inputs) {
        auto it = std::find(l.begin(), l.end(), head);
        if (it != l.end()) l.erase(it);
      }
      progressed = true;
      break;
    }
    if (!progressed) return false;
  }
}

bool C3Linearize(const TypeGraph& graph, TypeId t, std::vector<TypeId>* out) {
  out->push_back(t);
  const std::vector<TypeId>& supers = graph.type(t).supertypes();
  if (supers.empty()) return true;
  std::vector<std::vector<TypeId>> inputs;
  for (TypeId s : supers) {
    std::vector<TypeId> sub;
    if (!C3Linearize(graph, s, &sub)) return false;
    inputs.push_back(std::move(sub));
  }
  inputs.emplace_back(supers);  // preserve local precedence order
  return C3Merge(std::move(inputs), out);
}

}  // namespace

std::vector<TypeId> ClassPrecedenceList(const TypeGraph& graph, TypeId t) {
  std::vector<TypeId> cpl;
  if (C3Linearize(graph, t, &cpl)) return cpl;
  // Fallback for hierarchies C3 rejects: precedence-respecting BFS.
  return graph.SupertypeClosure(t);
}

bool HasC3Linearization(const TypeGraph& graph, TypeId t) {
  std::vector<TypeId> cpl;
  return C3Linearize(graph, t, &cpl);
}

}  // namespace tyder
