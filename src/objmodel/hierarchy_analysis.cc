#include "objmodel/hierarchy_analysis.h"

#include <algorithm>
#include <sstream>

#include "objmodel/linearize.h"

namespace tyder {

namespace {

// Longest path length (in edges) from `t` upward, memoized.
size_t DepthOf(const TypeGraph& graph, TypeId t, std::vector<int>& memo) {
  if (memo[t] >= 0) return static_cast<size_t>(memo[t]);
  size_t best = 0;
  for (TypeId s : graph.type(t).supertypes()) {
    best = std::max(best, 1 + DepthOf(graph, s, memo));
  }
  memo[t] = static_cast<int>(best);
  return best;
}

// A type sits on a diamond when two distinct direct supertypes share an
// ancestor.
bool OnDiamond(const TypeGraph& graph, TypeId t) {
  const std::vector<TypeId>& supers = graph.type(t).supertypes();
  for (size_t i = 0; i < supers.size(); ++i) {
    std::vector<TypeId> closure_i = graph.SupertypeClosure(supers[i]);
    for (size_t j = i + 1; j < supers.size(); ++j) {
      for (TypeId a : closure_i) {
        if (graph.IsSubtype(supers[j], a)) return true;
      }
    }
  }
  return false;
}

}  // namespace

HierarchyStats AnalyzeHierarchy(const TypeGraph& graph) {
  HierarchyStats stats;
  std::vector<int> depth_memo(graph.NumTypes(), -1);
  std::vector<size_t> fan_out(graph.NumTypes(), 0);

  for (TypeId t = 0; t < graph.NumTypes(); ++t) {
    const Type& type = graph.type(t);
    if (type.detached()) {
      ++stats.detached_types;
      continue;
    }
    ++stats.live_types;
    switch (type.kind()) {
      case TypeKind::kBuiltin: ++stats.builtin_types; break;
      case TypeKind::kUser: ++stats.user_types; break;
      case TypeKind::kSurrogate: ++stats.surrogate_types; break;
    }
    stats.edges += type.supertypes().size();
    if (type.supertypes().empty()) ++stats.roots;
    stats.max_fan_in = std::max(stats.max_fan_in, type.supertypes().size());
    for (TypeId s : type.supertypes()) ++fan_out[s];
    stats.max_depth = std::max(stats.max_depth, DepthOf(graph, t, depth_memo));
    if (OnDiamond(graph, t)) ++stats.diamond_types;
    if (type.local_attributes().empty()) ++stats.empty_types;
  }
  for (TypeId t = 0; t < graph.NumTypes(); ++t) {
    stats.max_fan_out = std::max(stats.max_fan_out, fan_out[t]);
  }
  stats.attributes = graph.NumAttributes();
  return stats;
}

std::string HierarchyStatsToString(const HierarchyStats& stats) {
  std::ostringstream out;
  out << "types: " << stats.live_types << " live (" << stats.builtin_types
      << " builtin, " << stats.user_types << " user, "
      << stats.surrogate_types << " surrogate), " << stats.detached_types
      << " detached\n";
  out << "edges: " << stats.edges << ", roots: " << stats.roots
      << ", max depth: " << stats.max_depth << "\n";
  out << "max fan-in: " << stats.max_fan_in
      << ", max fan-out: " << stats.max_fan_out
      << ", diamond types: " << stats.diamond_types << "\n";
  out << "attributes: " << stats.attributes
      << ", state-less types: " << stats.empty_types << "\n";
  return out.str();
}

std::vector<TypeId> TypesWithoutC3Order(const TypeGraph& graph) {
  std::vector<TypeId> out;
  for (TypeId t = 0; t < graph.NumTypes(); ++t) {
    if (graph.type(t).detached()) continue;
    if (!HasC3Linearization(graph, t)) out.push_back(t);
  }
  return out;
}

}  // namespace tyder
