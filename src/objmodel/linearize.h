// Class precedence lists: a total order on each type's supertype closure,
// derived from the local precedence order on direct supertypes via C3
// linearization (the CLOS-family algorithm). When C3's merge fails — legal
// in this model, since the paper only requires *some* deterministic ordering
// mechanism — the precedence-respecting BFS order of the closure is used
// instead. Method specificity (methods/precedence.h) builds on this.

#ifndef TYDER_OBJMODEL_LINEARIZE_H_
#define TYDER_OBJMODEL_LINEARIZE_H_

#include <vector>

#include "objmodel/type_graph.h"

namespace tyder {

// The class precedence list of `t`: t first, then every proper supertype,
// each exactly once, in precedence order.
std::vector<TypeId> ClassPrecedenceList(const TypeGraph& graph, TypeId t);

// True iff C3's merge succeeds for `t` (no BFS fallback needed).
bool HasC3Linearization(const TypeGraph& graph, TypeId t);

}  // namespace tyder

#endif  // TYDER_OBJMODEL_LINEARIZE_H_
