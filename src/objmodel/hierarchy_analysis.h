// Structural analysis of type hierarchies: the measurements a schema
// designer (or the views-over-views experiments) wants about a DAG —
// depth, fan-in/out, diamonds, surrogate counts — plus a linearization
// feasibility report (which types C3 can order and which fall back to BFS,
// a precedence-consistency smell).

#ifndef TYDER_OBJMODEL_HIERARCHY_ANALYSIS_H_
#define TYDER_OBJMODEL_HIERARCHY_ANALYSIS_H_

#include <string>
#include <vector>

#include "objmodel/type_graph.h"

namespace tyder {

struct HierarchyStats {
  size_t live_types = 0;       // non-detached
  size_t builtin_types = 0;
  size_t user_types = 0;
  size_t surrogate_types = 0;
  size_t detached_types = 0;
  size_t edges = 0;            // direct supertype links among live types
  size_t roots = 0;            // live types with no supertypes
  size_t max_depth = 0;        // longest subtype->supertype path
  size_t max_fan_in = 0;       // most direct supertypes on one type
  size_t max_fan_out = 0;      // most direct subtypes under one type
  size_t diamond_types = 0;    // types with >= 2 distinct paths to some ancestor
  size_t attributes = 0;
  size_t empty_types = 0;      // live types with no local attributes
};

HierarchyStats AnalyzeHierarchy(const TypeGraph& graph);

// Human-readable one-line-per-metric rendering.
std::string HierarchyStatsToString(const HierarchyStats& stats);

// Types whose supertype structure C3 linearization rejects (the dispatch
// order falls back to precedence-respecting BFS for them). Empty on
// well-behaved hierarchies — including everything FactorState produces from
// a C3-clean source, which tests assert.
std::vector<TypeId> TypesWithoutC3Order(const TypeGraph& graph);

}  // namespace tyder

#endif  // TYDER_OBJMODEL_HIERARCHY_ANALYSIS_H_
