// Deterministic text and Graphviz renderings of a type hierarchy. The text
// form is what the figure-reproduction benches print and what golden tests
// compare against.

#ifndef TYDER_OBJMODEL_SCHEMA_PRINTER_H_
#define TYDER_OBJMODEL_SCHEMA_PRINTER_H_

#include <string>

#include "objmodel/type_graph.h"

namespace tyder {

struct PrintOptions {
  bool include_builtins = false;  // Object/Int/... rows are usually noise
  bool show_cumulative = false;   // also list inherited attributes
};

// One line per type, declaration order:
//   Name [surrogate of X] { local_attr: T, ... } <- Super0(0), Super1(1), ...
// The integer after each supertype is its precedence (0 = highest), matching
// the edge annotations in the paper's figures.
std::string PrintHierarchy(const TypeGraph& graph, const PrintOptions& opts = {});

// Single type in the same format.
std::string PrintType(const TypeGraph& graph, TypeId t,
                      const PrintOptions& opts = {});

// Graphviz digraph with subtype -> supertype arrows labeled by precedence;
// surrogates drawn dashed.
std::string ToDot(const TypeGraph& graph, const PrintOptions& opts = {});

}  // namespace tyder

#endif  // TYDER_OBJMODEL_SCHEMA_PRINTER_H_
