#include "objmodel/builtin_types.h"

namespace tyder {

Result<BuiltinTypes> InstallBuiltins(TypeGraph& graph) {
  if (graph.NumTypes() != 0) {
    return Status::FailedPrecondition(
        "builtins must be installed into an empty type graph");
  }
  BuiltinTypes b;
  TYDER_ASSIGN_OR_RETURN(b.object, graph.DeclareType("Object", TypeKind::kBuiltin));
  TYDER_ASSIGN_OR_RETURN(b.void_type, graph.DeclareType("Void", TypeKind::kBuiltin));
  TYDER_ASSIGN_OR_RETURN(b.int_type, graph.DeclareType("Int", TypeKind::kBuiltin));
  TYDER_ASSIGN_OR_RETURN(b.float_type, graph.DeclareType("Float", TypeKind::kBuiltin));
  TYDER_ASSIGN_OR_RETURN(b.bool_type, graph.DeclareType("Bool", TypeKind::kBuiltin));
  TYDER_ASSIGN_OR_RETURN(b.string_type, graph.DeclareType("String", TypeKind::kBuiltin));
  TYDER_ASSIGN_OR_RETURN(b.date_type, graph.DeclareType("Date", TypeKind::kBuiltin));
  for (TypeId t : {b.int_type, b.float_type, b.bool_type, b.string_type,
                   b.date_type}) {
    TYDER_RETURN_IF_ERROR(graph.AddSupertype(t, b.object));
  }
  return b;
}

bool IsValueType(const BuiltinTypes& b, TypeId t) {
  return t == b.int_type || t == b.float_type || t == b.bool_type ||
         t == b.string_type || t == b.date_type;
}

}  // namespace tyder
