#include "objmodel/schema_printer.h"

#include <sstream>

namespace tyder {

namespace {

bool SkipType(const TypeGraph& graph, TypeId t, const PrintOptions& opts) {
  if (graph.type(t).detached()) return true;  // collapsed/reverted husks
  return !opts.include_builtins && graph.type(t).kind() == TypeKind::kBuiltin;
}

void AppendAttrList(const TypeGraph& graph, const std::vector<AttrId>& attrs,
                    std::ostringstream& out) {
  out << "{";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out << ", ";
    const AttributeDef& a = graph.attribute(attrs[i]);
    out << a.name.view() << ": " << graph.TypeName(a.value_type);
  }
  out << "}";
}

}  // namespace

std::string PrintType(const TypeGraph& graph, TypeId t,
                      const PrintOptions& opts) {
  std::ostringstream out;
  const Type& type = graph.type(t);
  out << type.name().view();
  if (type.is_surrogate() && type.surrogate_source() != kInvalidType) {
    out << " [surrogate of " << graph.TypeName(type.surrogate_source()) << "]";
  }
  out << " ";
  AppendAttrList(graph, type.local_attributes(), out);
  if (opts.show_cumulative) {
    out << " cumulative=";
    AppendAttrList(graph, graph.CumulativeAttributes(t), out);
  }
  if (!type.supertypes().empty()) {
    out << " <- ";
    for (size_t i = 0; i < type.supertypes().size(); ++i) {
      if (i > 0) out << ", ";
      out << graph.TypeName(type.supertypes()[i]) << "(" << i << ")";
    }
  }
  return out.str();
}

std::string PrintHierarchy(const TypeGraph& graph, const PrintOptions& opts) {
  std::ostringstream out;
  for (TypeId t = 0; t < graph.NumTypes(); ++t) {
    if (SkipType(graph, t, opts)) continue;
    out << PrintType(graph, t, opts) << "\n";
  }
  return out.str();
}

std::string ToDot(const TypeGraph& graph, const PrintOptions& opts) {
  std::ostringstream out;
  out << "digraph types {\n  rankdir=BT;\n";
  for (TypeId t = 0; t < graph.NumTypes(); ++t) {
    if (SkipType(graph, t, opts)) continue;
    const Type& type = graph.type(t);
    out << "  \"" << type.name().view() << "\"";
    out << " [shape=box";
    if (type.is_surrogate()) out << ", style=dashed";
    out << "];\n";
  }
  for (TypeId t = 0; t < graph.NumTypes(); ++t) {
    if (SkipType(graph, t, opts)) continue;
    const Type& type = graph.type(t);
    for (size_t i = 0; i < type.supertypes().size(); ++i) {
      TypeId s = type.supertypes()[i];
      if (SkipType(graph, s, opts)) continue;
      out << "  \"" << type.name().view() << "\" -> \"" << graph.TypeName(s)
          << "\" [label=\"" << i << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace tyder
