// TypeGraph: the type hierarchy of a schema — a rooted DAG of Type nodes with
// ordered (precedence-carrying) supertype edges, plus the global attribute
// registry. Implements the subtype relation ≼, cumulative-state queries with
// once-only diamond inheritance, and the structural validation rules of the
// paper's model (Section 2).

#ifndef TYDER_OBJMODEL_TYPE_GRAPH_H_
#define TYDER_OBJMODEL_TYPE_GRAPH_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/symbol.h"
#include "objmodel/attribute.h"
#include "objmodel/type.h"

namespace tyder {

class TypeGraph {
 public:
  TypeGraph() = default;

  // --- construction -------------------------------------------------------

  // Declares a new type with no supertypes and no attributes. Fails with
  // AlreadyExists on a duplicate name.
  Result<TypeId> DeclareType(std::string_view name, TypeKind kind);

  // Declares a surrogate type spun off from `source` (Sections 5–6).
  Result<TypeId> DeclareSurrogate(std::string_view name, TypeId source);

  // Appends `super` as the lowest-precedence direct supertype of `sub`.
  // Rejects self edges, duplicates, and edges that would create a cycle.
  Status AddSupertype(TypeId sub, TypeId super);

  // Declares attribute `name` of type `value_type`, locally owned by `owner`.
  // Attribute names are globally unique (paper Section 2.1 simplification).
  Result<AttrId> DeclareAttribute(TypeId owner, std::string_view name,
                                  TypeId value_type);

  // Re-homes attribute `a` so that `new_owner` defines it locally (used by
  // FactorState when moving state to a surrogate).
  Status MoveAttribute(AttrId a, TypeId new_owner);

  // --- lookup --------------------------------------------------------------

  size_t NumTypes() const { return types_.size(); }
  size_t NumAttributes() const { return attrs_.size(); }

  const Type& type(TypeId t) const { return types_[t]; }
  // Handing out a mutable node may change the edge structure, so this
  // conservatively invalidates the subtype cache.
  Type& mutable_type(TypeId t) {
    ++version_;
    return types_[t];
  }

  const AttributeDef& attribute(AttrId a) const { return attrs_[a]; }

  Result<TypeId> FindType(std::string_view name) const;
  Result<AttrId> FindAttribute(std::string_view name) const;
  std::string TypeName(TypeId t) const { return types_[t].name().str(); }

  // --- relations -----------------------------------------------------------

  // a ≼ b: reflexive-transitive subtype relation. Memoized per subtype row;
  // the cache is invalidated whenever the graph (possibly) mutates. Not
  // thread-safe.
  bool IsSubtype(TypeId a, TypeId b) const;

  // Disables/enables the reachability cache (ablation benches; default on).
  void set_subtype_cache_enabled(bool enabled) {
    cache_enabled_ = enabled;
    reach_cache_.clear();
  }
  bool IsProperSubtype(TypeId a, TypeId b) const {
    return a != b && IsSubtype(a, b);
  }

  // All supertypes of `t` including `t` itself, in precedence-respecting BFS
  // order from `t` (deterministic; t first).
  std::vector<TypeId> SupertypeClosure(TypeId t) const;

  // All subtypes of `t` including `t` itself.
  std::vector<TypeId> SubtypeClosure(TypeId t) const;

  // Cumulative attributes of `t`: local attributes of every type in the
  // supertype closure, deduplicated (diamonds contribute once), in closure
  // order then declaration order. This is the "state" of `t`.
  std::vector<AttrId> CumulativeAttributes(TypeId t) const;

  // True iff attribute `a` is part of the cumulative state of `t` ("available
  // at" in the paper's FactorState).
  bool AttributeAvailableAt(TypeId t, AttrId a) const;

  // --- validation ----------------------------------------------------------

  // Checks global invariants: acyclicity, edge/owner index consistency, and
  // that each type's local attribute list matches attribute ownership.
  Status Validate() const;

 private:
  // Upward reachability row for `t` (supertype closure as a bitset).
  const std::vector<bool>& ReachRow(TypeId t) const;

  std::vector<Type> types_;
  std::vector<AttributeDef> attrs_;
  std::unordered_map<Symbol, TypeId, SymbolHash> type_index_;
  std::unordered_map<Symbol, AttrId, SymbolHash> attr_index_;

  // Subtype-query memoization. `version_` counts (possible) mutations;
  // a stale cache is discarded wholesale on the next query.
  uint64_t version_ = 0;
  bool cache_enabled_ = true;
  mutable uint64_t cache_version_ = 0;
  mutable std::unordered_map<TypeId, std::vector<bool>> reach_cache_;
};

}  // namespace tyder

#endif  // TYDER_OBJMODEL_TYPE_GRAPH_H_
