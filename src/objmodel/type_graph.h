// TypeGraph: the type hierarchy of a schema — a rooted DAG of Type nodes with
// ordered (precedence-carrying) supertype edges, plus the global attribute
// registry. Implements the subtype relation ≼, cumulative-state queries with
// once-only diamond inheritance, and the structural validation rules of the
// paper's model (Section 2).

#ifndef TYDER_OBJMODEL_TYPE_GRAPH_H_
#define TYDER_OBJMODEL_TYPE_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/symbol.h"
#include "objmodel/attribute.h"
#include "objmodel/type.h"

namespace tyder {

class TypeGraph {
 public:
  TypeGraph() = default;

  // The ancestor closure is a derived cache, never copied or moved: a copy
  // starts cold and rebuilds on its first query (see SubtypeCacheTest.
  // CopiedGraphHasIndependentCache).
  TypeGraph(const TypeGraph& other);
  TypeGraph& operator=(const TypeGraph& other);
  TypeGraph(TypeGraph&& other) noexcept;
  TypeGraph& operator=(TypeGraph&& other) noexcept;

  // --- construction -------------------------------------------------------

  // Declares a new type with no supertypes and no attributes. Fails with
  // AlreadyExists on a duplicate name.
  Result<TypeId> DeclareType(std::string_view name, TypeKind kind);

  // Declares a surrogate type spun off from `source` (Sections 5–6).
  Result<TypeId> DeclareSurrogate(std::string_view name, TypeId source);

  // Appends `super` as the lowest-precedence direct supertype of `sub`.
  // Rejects self edges, duplicates, and edges that would create a cycle.
  Status AddSupertype(TypeId sub, TypeId super);

  // Declares attribute `name` of type `value_type`, locally owned by `owner`.
  // Attribute names are globally unique (paper Section 2.1 simplification).
  Result<AttrId> DeclareAttribute(TypeId owner, std::string_view name,
                                  TypeId value_type);

  // Re-homes attribute `a` so that `new_owner` defines it locally (used by
  // FactorState when moving state to a surrogate).
  Status MoveAttribute(AttrId a, TypeId new_owner);

  // --- lookup --------------------------------------------------------------

  size_t NumTypes() const { return types_.size(); }
  size_t NumAttributes() const { return attrs_.size(); }

  const Type& type(TypeId t) const { return types_[t]; }
  // Handing out a mutable node may change the edge structure, so this
  // conservatively invalidates the subtype closure.
  Type& mutable_type(TypeId t) {
    Invalidate();
    return types_[t];
  }

  const AttributeDef& attribute(AttrId a) const { return attrs_[a]; }

  Result<TypeId> FindType(std::string_view name) const;
  Result<AttrId> FindAttribute(std::string_view name) const;
  std::string TypeName(TypeId t) const { return types_[t].name().str(); }

  // Mutation counter. Any (possible) change to the node/edge structure bumps
  // it; derived caches (the closure below, Schema's dispatch tables, the
  // relevant-call cache) key their validity on it.
  uint64_t version() const { return version_; }

  // --- relations -----------------------------------------------------------

  // a ≼ b: reflexive-transitive subtype relation, answered with a single
  // word-test against the packed ancestor bitset of `a`. The closure is
  // published atomically and its rows are built lazily — a mutation only
  // retires it, and each post-mutation query pays for the one row (plus its
  // ancestors) it touches — so a structurally frozen (read-only) graph may
  // be queried from many threads concurrently while mutation-heavy phases
  // never recompute more than they read. Mutation is NOT thread-safe and
  // must not overlap any query.
  bool IsSubtype(TypeId a, TypeId b) const;

  // Disables/enables the ancestor-closure cache (ablation benches; default
  // on). When disabled every query walks the DAG.
  void set_subtype_cache_enabled(bool enabled) {
    cache_enabled_ = enabled;
    Invalidate();
  }
  bool IsProperSubtype(TypeId a, TypeId b) const {
    return a != b && IsSubtype(a, b);
  }

  // Forces the closure build now (e.g. once, before fanning read-only
  // queries out to a worker pool). No-op when already valid or when the
  // cache is disabled.
  void PrewarmClosure() const;

  // All supertypes of `t` including `t` itself, in precedence-respecting BFS
  // order from `t` (deterministic; t first).
  std::vector<TypeId> SupertypeClosure(TypeId t) const;

  // All subtypes of `t` including `t` itself.
  std::vector<TypeId> SubtypeClosure(TypeId t) const;

  // Cumulative attributes of `t`: local attributes of every type in the
  // supertype closure, deduplicated (diamonds contribute once), in closure
  // order then declaration order. This is the "state" of `t`.
  std::vector<AttrId> CumulativeAttributes(TypeId t) const;

  // True iff attribute `a` is part of the cumulative state of `t` ("available
  // at" in the paper's FactorState).
  bool AttributeAvailableAt(TypeId t, AttrId a) const;

  // --- validation ----------------------------------------------------------

  // Checks global invariants: acyclicity, edge/owner index consistency, and
  // that each type's local attribute list matches attribute ownership.
  Status Validate() const;

 private:
  // Transitive-closure ancestor sets, one packed bitset row per type: bit b
  // of row a is set iff a ≼ b. Rows are filled lazily, supertypes-first
  // (topological order), so each row is the OR of its direct supertypes'
  // rows plus its own bit. A row is immutable once its `row_built` flag is
  // set; the flag is the publication point: BuildRow fills `bits` under
  // `closure_mu_` and release-stores the flag, readers acquire-load it
  // before touching the row, so warm-row queries stay lock-free.
  struct Closure {
    uint64_t version = 0;  // graph version the closure was allocated at
    size_t num_types = 0;
    size_t words = 0;     // words per row (row stride)
    size_t rows_cap = 0;  // rows the arrays can hold (≥ num_types; the
                          // allocation is recycled across rebuilds)
    // Allocated uninitialized; BuildRow zeroes each row before filling it,
    // so an allocation after a mutation costs O(num_types) flag bytes, not
    // O(num_types × words) bitset words.
    mutable std::unique_ptr<uint64_t[]> bits;
    mutable std::unique_ptr<std::atomic<uint8_t>[]> row_built;

    bool RowReady(TypeId a) const {
      return row_built[a].load(std::memory_order_acquire) != 0;
    }
    bool Test(TypeId a, TypeId b) const {
      return (bits[a * words + (b >> 6)] >> (b & 63)) & 1u;
    }
  };

  // Returns the closure for the current version, allocating an empty (no
  // rows built) one if stale. Row content is produced by BuildRow.
  const Closure* closure() const;
  const Closure* BuildClosure() const;
  // Fills one row with a single ancestor walk (cold-query path).
  void BuildRow(const Closure* c, TypeId root) const;
  // Fills every missing row supertypes-first (PrewarmClosure bulk path).
  void BuildAllRows(const Closure* c) const;
  bool UncachedWalk(TypeId a, TypeId b) const;

  // Marks every derived structure stale. Called from every mutator; mutation
  // requires exclusive access, so this may also free retired closures that
  // concurrent readers could otherwise still be dereferencing.
  void Invalidate();

  std::vector<Type> types_;
  std::vector<AttributeDef> attrs_;
  std::unordered_map<Symbol, TypeId, SymbolHash> type_index_;
  std::unordered_map<Symbol, AttrId, SymbolHash> attr_index_;

  uint64_t version_ = 0;
  bool cache_enabled_ = true;

  // Lazily built closure, atomically published for lock-free reads. The
  // mutex serializes builds. Invalidate() runs with exclusive access, so it
  // reclaims the live closure into `closure_spare_` for the next build to
  // recycle (mutate→query loops would otherwise malloc a closure per
  // cycle). `closure_retired_` parks any closure replaced while readers
  // could still hold its raw pointer; it is freed on the next mutation.
  mutable std::atomic<const Closure*> closure_published_{nullptr};
  mutable std::mutex closure_mu_;
  mutable std::unique_ptr<Closure> closure_owner_;
  mutable std::unique_ptr<Closure> closure_spare_;
  mutable std::vector<std::unique_ptr<Closure>> closure_retired_;
};

}  // namespace tyder

#endif  // TYDER_OBJMODEL_TYPE_GRAPH_H_
