#include "objmodel/attribute.h"

namespace tyder {

std::string AttributeToString(const AttributeDef& attr,
                              std::string_view value_type_name) {
  std::string out = attr.name.str();
  out += ": ";
  out += value_type_name;
  return out;
}

}  // namespace tyder
