// Type: a node of the type hierarchy (paper Section 2). A type has a name,
// local attributes, and an *ordered* list of direct supertypes — the order is
// the inheritance precedence relation (index 0 = highest precedence). The
// refactoring algorithms of Sections 5–6 spin off *surrogate* types; a
// surrogate remembers its source type and the derivation it belongs to.

#ifndef TYDER_OBJMODEL_TYPE_H_
#define TYDER_OBJMODEL_TYPE_H_

#include <cstddef>
#include <vector>

#include "common/symbol.h"
#include "objmodel/attribute.h"

namespace tyder {

enum class TypeKind {
  kBuiltin,    // Object, Int, Float, String, Bool, Date, Void
  kUser,       // declared by the schema author
  kSurrogate,  // created by FactorState / Augment (includes derived view types)
};

class Type {
 public:
  Type(Symbol name, TypeKind kind) : name_(name), kind_(kind) {}

  Symbol name() const { return name_; }
  TypeKind kind() const { return kind_; }
  bool is_surrogate() const { return kind_ == TypeKind::kSurrogate; }

  // Direct supertypes in precedence order (front = highest precedence).
  const std::vector<TypeId>& supertypes() const { return supertypes_; }
  // Appends a supertype with lowest precedence.
  void AppendSupertype(TypeId t) { supertypes_.push_back(t); }
  // Inserts a supertype with highest precedence (used for surrogates, Sec 5).
  void PrependSupertype(TypeId t) { supertypes_.insert(supertypes_.begin(), t); }
  // Inserts a supertype at precedence rank `rank` (0 = highest). Ranks past
  // the end append.
  void InsertSupertypeAt(size_t rank, TypeId t);
  bool HasDirectSupertype(TypeId t) const;
  // Removes the first occurrence of `t` from the supertype list; returns
  // whether it was present.
  bool RemoveSupertype(TypeId t);

  // Locally defined attributes, in declaration order.
  const std::vector<AttrId>& local_attributes() const { return local_attrs_; }
  void AddLocalAttribute(AttrId a) { local_attrs_.push_back(a); }
  bool RemoveLocalAttribute(AttrId a);
  // Restores declaration order (AttrIds are assigned in declaration order,
  // so ascending id order == declaration order). Used by RevertDerivation
  // after moving attributes back.
  void SortLocalAttributes();

  // Source type this surrogate was spun off from (kInvalidType otherwise).
  TypeId surrogate_source() const { return surrogate_source_; }
  void set_surrogate_source(TypeId t) { surrogate_source_ = t; }

  // Detached types have been spliced out of the hierarchy (empty-surrogate
  // collapse); they keep their id but participate in nothing.
  bool detached() const { return detached_; }
  void set_detached(bool detached) { detached_ = detached; }

 private:
  Symbol name_;
  TypeKind kind_;
  std::vector<TypeId> supertypes_;
  std::vector<AttrId> local_attrs_;
  TypeId surrogate_source_ = kInvalidType;
  bool detached_ = false;
};

}  // namespace tyder

#endif  // TYDER_OBJMODEL_TYPE_H_
