#include "query/query.h"

#include "instances/interp.h"
#include "lang/analyzer.h"
#include "lang/parser.h"
#include "mir/builder.h"
#include "mir/type_check.h"
#include "obs/obs.h"

namespace tyder {

Query::Query(const Schema& schema, std::string_view type_name)
    : schema_(schema) {
  Result<TypeId> from = schema.types().FindType(type_name);
  if (!from.ok()) {
    Defer(from.status());
    return;
  }
  from_ = *from;
}

Query& Query::Where(ExprPtr predicate) {
  if (predicate == nullptr) {
    Defer(Status::InvalidArgument("null predicate"));
    return *this;
  }
  // Without a valid extent type the predicate cannot be type-checked; the
  // constructor error is already recorded.
  if (from_ == kInvalidType) return *this;
  // Type-check as `(self: From) -> Bool { return <expr>; }`.
  Signature sig{{from_}, schema_.builtins().bool_type};
  std::vector<Symbol> params = {Symbol::Intern("self")};
  ExprPtr body = mir::Seq({mir::Return(predicate)});
  Result<TypeAnnotations> checked =
      TypeCheckBody(schema_, sig, params, body);
  if (!checked.ok()) {
    Defer(checked.status().WithContext("query predicate"));
    return *this;
  }
  predicates_.push_back(std::move(body));
  return *this;
}

Query& Query::WhereTdl(std::string_view expr) {
  Result<AstExprPtr> parsed = ParseTdlExpression(expr);
  if (!parsed.ok()) {
    Defer(parsed.status().WithContext("query predicate"));
    return *this;
  }
  if (from_ == kInvalidType) return *this;
  Result<ExprPtr> lowered =
      LowerExpression(schema_, *parsed, {{"self", from_}});
  if (!lowered.ok()) {
    Defer(lowered.status().WithContext("query predicate"));
    return *this;
  }
  return Where(*lowered);
}

Query& Query::Column(std::string_view gf_name) {
  Result<GfId> gf = schema_.FindGenericFunction(gf_name);
  if (!gf.ok()) {
    Defer(gf.status().WithContext("query column"));
    return *this;
  }
  if (schema_.gf(*gf).arity != 1) {
    Defer(Status::InvalidArgument("query column '" + std::string(gf_name) +
                                  "' must be a unary generic function"));
    return *this;
  }
  if (from_ == kInvalidType) return *this;
  // The column must be answerable by every candidate: check that the call is
  // at least dynamically plausible for the extent type, by type-checking
  // `gf(self)` as an expression statement.
  Signature sig{{from_}, schema_.builtins().void_type};
  std::vector<Symbol> params = {Symbol::Intern("self")};
  ExprPtr body = mir::Seq({mir::ExprStmt(mir::Call(*gf, {mir::Param(0)}))});
  Result<TypeAnnotations> checked =
      TypeCheckBody(schema_, sig, params, body);
  if (!checked.ok()) {
    Defer(checked.status().WithContext("query column '" +
                                       std::string(gf_name) + "'"));
    return *this;
  }
  columns_.push_back(*gf);
  column_names_.emplace_back(gf_name);
  return *this;
}

Result<QueryResult> Query::Execute(ObjectStore& store) const {
  if (!deferred_.empty()) {
    if (deferred_.size() == 1) return deferred_.front();
    std::string all = "query construction failed with " +
                      std::to_string(deferred_.size()) + " errors:";
    for (const Status& s : deferred_) all += "\n  - " + s.ToString();
    return Status::InvalidArgument(std::move(all));
  }
  TYDER_COUNT("query.executions");
  TYDER_TIMED("query.execute_ns");
  obs::ScopedSpan span("Query::Execute");
  span.Attr("from", schema_.types().TypeName(from_));
  span.Attr("predicates", std::to_string(predicates_.size()));
  span.Attr("columns", std::to_string(columns_.size()));

  QueryResult result;
  result.columns = column_names_;
  Interpreter interp(schema_, &store);
  uint64_t scanned = 0;
  uint64_t filtered_out = 0;
  for (ObjectId candidate : store.Extent(schema_, from_)) {
    ++scanned;
    bool keep = true;
    for (const ExprPtr& predicate : predicates_) {
      TYDER_ASSIGN_OR_RETURN(
          Value verdict,
          interp.EvalBody(predicate, {Value::Object(candidate)}));
      if (!verdict.is_bool()) {
        return Status::Internal("query predicate did not yield Bool");
      }
      if (!verdict.AsBool()) {
        keep = false;
        break;
      }
    }
    if (!keep) {
      ++filtered_out;
      continue;
    }
    result.objects.push_back(candidate);
    std::vector<Value> row;
    row.reserve(columns_.size());
    for (GfId column : columns_) {
      TYDER_ASSIGN_OR_RETURN(Value v,
                             interp.Call(column, {Value::Object(candidate)}));
      row.push_back(std::move(v));
    }
    result.rows.push_back(std::move(row));
  }
  TYDER_COUNT_N("query.objects_scanned", scanned);
  TYDER_COUNT_N("query.objects_filtered_out", filtered_out);
  TYDER_COUNT_N("query.rows_emitted",
                static_cast<uint64_t>(result.objects.size()));
  span.Attr("scanned", std::to_string(scanned));
  span.Attr("filtered_out", std::to_string(filtered_out));
  span.Attr("rows", std::to_string(result.objects.size()));
  return result;
}

}  // namespace tyder
