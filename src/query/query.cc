#include "query/query.h"

#include "instances/interp.h"
#include "lang/analyzer.h"
#include "lang/parser.h"
#include "mir/builder.h"
#include "mir/type_check.h"

namespace tyder {

Query::Query(const Schema& schema, std::string_view type_name)
    : schema_(schema) {
  Result<TypeId> from = schema.types().FindType(type_name);
  if (!from.ok()) {
    deferred_ = from.status();
    return;
  }
  from_ = *from;
}

Query& Query::Where(ExprPtr predicate) {
  if (!deferred_.ok()) return *this;
  if (predicate == nullptr) {
    deferred_ = Status::InvalidArgument("null predicate");
    return *this;
  }
  // Type-check as `(self: From) -> Bool { return <expr>; }`.
  Signature sig{{from_}, schema_.builtins().bool_type};
  std::vector<Symbol> params = {Symbol::Intern("self")};
  ExprPtr body = mir::Seq({mir::Return(predicate)});
  Result<TypeAnnotations> checked =
      TypeCheckBody(schema_, sig, params, body);
  if (!checked.ok()) {
    deferred_ = checked.status().WithContext("query predicate");
    return *this;
  }
  predicates_.push_back(std::move(body));
  return *this;
}

Query& Query::WhereTdl(std::string_view expr) {
  if (!deferred_.ok()) return *this;
  Result<AstExprPtr> parsed = ParseTdlExpression(expr);
  if (!parsed.ok()) {
    deferred_ = parsed.status().WithContext("query predicate");
    return *this;
  }
  Result<ExprPtr> lowered =
      LowerExpression(schema_, *parsed, {{"self", from_}});
  if (!lowered.ok()) {
    deferred_ = lowered.status().WithContext("query predicate");
    return *this;
  }
  return Where(*lowered);
}

Query& Query::Column(std::string_view gf_name) {
  if (!deferred_.ok()) return *this;
  Result<GfId> gf = schema_.FindGenericFunction(gf_name);
  if (!gf.ok()) {
    deferred_ = gf.status().WithContext("query column");
    return *this;
  }
  if (schema_.gf(*gf).arity != 1) {
    deferred_ = Status::InvalidArgument("query column '" +
                                        std::string(gf_name) +
                                        "' must be a unary generic function");
    return *this;
  }
  // The column must be answerable by every candidate: check that the call is
  // at least dynamically plausible for the extent type, by type-checking
  // `gf(self)` as an expression statement.
  Signature sig{{from_}, schema_.builtins().void_type};
  std::vector<Symbol> params = {Symbol::Intern("self")};
  ExprPtr body = mir::Seq({mir::ExprStmt(mir::Call(*gf, {mir::Param(0)}))});
  Result<TypeAnnotations> checked =
      TypeCheckBody(schema_, sig, params, body);
  if (!checked.ok()) {
    deferred_ = checked.status().WithContext("query column '" +
                                             std::string(gf_name) + "'");
    return *this;
  }
  columns_.push_back(*gf);
  column_names_.emplace_back(gf_name);
  return *this;
}

Result<QueryResult> Query::Execute(ObjectStore& store) const {
  TYDER_RETURN_IF_ERROR(deferred_);
  QueryResult result;
  result.columns = column_names_;
  Interpreter interp(schema_, &store);
  for (ObjectId candidate : store.Extent(schema_, from_)) {
    bool keep = true;
    for (const ExprPtr& predicate : predicates_) {
      TYDER_ASSIGN_OR_RETURN(
          Value verdict,
          interp.EvalBody(predicate, {Value::Object(candidate)}));
      if (!verdict.is_bool()) {
        return Status::Internal("query predicate did not yield Bool");
      }
      if (!verdict.AsBool()) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    result.objects.push_back(candidate);
    std::vector<Value> row;
    row.reserve(columns_.size());
    for (GfId column : columns_) {
      TYDER_ASSIGN_OR_RETURN(Value v,
                             interp.Call(column, {Value::Object(candidate)}));
      row.push_back(std::move(v));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace tyder
