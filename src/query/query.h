// Queries over extents and views: the consumer-side of the paper's view
// machinery. A Query scans the extent of a type (or derived view type),
// filters with a Bool-typed MIR predicate over the candidate object, and
// projects columns by applying unary generic functions — so a query on a
// view can only use the behavior that survived the derivation, exactly the
// encapsulation views exist to provide.
//
//   Query query(schema, "EmployeeView");
//   query.WhereTdl("get_pay_rate(self) < 100.0 and age(self) < 65")
//        .Column("get_SSN")
//        .Column("age");
//   QueryResult rows = *query.Execute(store);

#ifndef TYDER_QUERY_QUERY_H_
#define TYDER_QUERY_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "instances/store.h"
#include "methods/schema.h"
#include "mir/expr.h"

namespace tyder {

struct QueryResult {
  std::vector<std::string> columns;        // generic-function names
  std::vector<ObjectId> objects;           // matching objects
  std::vector<std::vector<Value>> rows;    // parallel to objects
};

class Query {
 public:
  // Targets the extent of `type_name` (instances of it or any subtype).
  Query(const Schema& schema, std::string_view type_name);

  // Filter by a Bool-typed MIR expression; parameter 0 is the candidate.
  // Multiple Where calls conjoin.
  Query& Where(ExprPtr predicate);

  // Filter by a TDL expression; the identifier `self` names the candidate.
  Query& WhereTdl(std::string_view expr);

  // Project a column: a unary generic function applied to the candidate
  // (accessor or general method). No columns -> objects only.
  Query& Column(std::string_view gf_name);

  // Runs the query. Construction-time errors (unknown type/function,
  // ill-typed predicate) surface here; every accumulated error is reported —
  // a single error keeps its own code/message, multiple errors are combined
  // into one InvalidArgument listing all of them.
  Result<QueryResult> Execute(ObjectStore& store) const;

 private:
  // Records a construction error; later builder calls still validate
  // whatever they can so Execute can report every problem at once.
  void Defer(Status status) { deferred_.push_back(std::move(status)); }

  const Schema& schema_;
  std::vector<Status> deferred_;  // all construction errors, in call order
  TypeId from_ = kInvalidType;
  std::vector<ExprPtr> predicates_;
  std::vector<GfId> columns_;
  std::vector<std::string> column_names_;
};

}  // namespace tyder

#endif  // TYDER_QUERY_QUERY_H_
