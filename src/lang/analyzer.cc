#include "lang/analyzer.h"

#include <unordered_map>

#include "lang/parser.h"
#include "methods/accessor_gen.h"
#include "mir/builder.h"
#include "mir/type_check.h"

namespace tyder {

namespace {

std::string Where(int line, int col) {
  return std::to_string(line) + ":" + std::to_string(col) + ": ";
}

// Lowers one method body; resolves identifiers against the parameter list
// (everything else is a local variable reference).
class BodyLowerer {
 public:
  BodyLowerer(const Schema& schema, const AstMethod& ast) : schema_(schema) {
    for (size_t i = 0; i < ast.params.size(); ++i) {
      params_.emplace(Symbol::Intern(ast.params[i].name),
                      static_cast<int>(i));
    }
  }
  BodyLowerer(const Schema& schema, const std::vector<std::string>& params)
      : schema_(schema) {
    for (size_t i = 0; i < params.size(); ++i) {
      params_.emplace(Symbol::Intern(params[i]), static_cast<int>(i));
    }
  }

  Result<ExprPtr> LowerSingle(const AstExpr& expr) { return LowerExpr(expr); }

  Result<ExprPtr> LowerBlock(const std::vector<AstStmtPtr>& stmts) {
    std::vector<ExprPtr> lowered;
    lowered.reserve(stmts.size());
    for (const AstStmtPtr& stmt : stmts) {
      TYDER_ASSIGN_OR_RETURN(ExprPtr s, LowerStmt(*stmt));
      lowered.push_back(std::move(s));
    }
    return mir::Seq(std::move(lowered));
  }

 private:
  Result<ExprPtr> LowerStmt(const AstStmt& stmt) {
    switch (stmt.kind) {
      case AstStmtKind::kVarDecl: {
        TYDER_ASSIGN_OR_RETURN(TypeId type,
                               schema_.types().FindType(stmt.type_name));
        ExprPtr init;
        if (stmt.expr != nullptr) {
          TYDER_ASSIGN_OR_RETURN(init, LowerExpr(*stmt.expr));
        }
        return mir::Decl(stmt.var, type, std::move(init));
      }
      case AstStmtKind::kAssign: {
        TYDER_ASSIGN_OR_RETURN(ExprPtr rhs, LowerExpr(*stmt.expr));
        return mir::Assign(stmt.var, std::move(rhs));
      }
      case AstStmtKind::kReturn: {
        if (stmt.expr == nullptr) return mir::Return();
        TYDER_ASSIGN_OR_RETURN(ExprPtr value, LowerExpr(*stmt.expr));
        return mir::Return(std::move(value));
      }
      case AstStmtKind::kIf: {
        TYDER_ASSIGN_OR_RETURN(ExprPtr cond, LowerExpr(*stmt.expr));
        TYDER_ASSIGN_OR_RETURN(ExprPtr then_seq, LowerBlock(stmt.then_body));
        ExprPtr else_seq;
        if (!stmt.else_body.empty()) {
          TYDER_ASSIGN_OR_RETURN(else_seq, LowerBlock(stmt.else_body));
        }
        return mir::If(std::move(cond), std::move(then_seq),
                       std::move(else_seq));
      }
      case AstStmtKind::kExprStmt: {
        TYDER_ASSIGN_OR_RETURN(ExprPtr e, LowerExpr(*stmt.expr));
        return mir::ExprStmt(std::move(e));
      }
    }
    return Status::Internal("unhandled statement kind");
  }

  Result<ExprPtr> LowerExpr(const AstExpr& expr) {
    switch (expr.kind) {
      case AstExprKind::kIdent: {
        auto it = params_.find(Symbol::Intern(expr.text));
        if (it != params_.end()) return mir::Param(it->second);
        return mir::Var(expr.text);
      }
      case AstExprKind::kInt:
        return mir::IntLit(expr.int_val);
      case AstExprKind::kFloat:
        return mir::FloatLit(expr.float_val);
      case AstExprKind::kString:
        return mir::StringLit(expr.str_val);
      case AstExprKind::kBool:
        return mir::BoolLit(expr.bool_val);
      case AstExprKind::kCall: {
        Result<GfId> gf = schema_.FindGenericFunction(expr.text);
        if (!gf.ok()) {
          return Status::ParseError(Where(expr.line, expr.col) +
                                    "call to unknown generic function '" +
                                    expr.text + "'");
        }
        std::vector<ExprPtr> args;
        for (const AstExprPtr& arg : expr.children) {
          TYDER_ASSIGN_OR_RETURN(ExprPtr a, LowerExpr(*arg));
          args.push_back(std::move(a));
        }
        return mir::Call(*gf, std::move(args));
      }
      case AstExprKind::kBinOp: {
        TYDER_ASSIGN_OR_RETURN(ExprPtr lhs, LowerExpr(*expr.children[0]));
        TYDER_ASSIGN_OR_RETURN(ExprPtr rhs, LowerExpr(*expr.children[1]));
        return mir::BinOp(expr.op, std::move(lhs), std::move(rhs));
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  const Schema& schema_;
  std::unordered_map<Symbol, int, SymbolHash> params_;
};

}  // namespace

Result<Catalog> AnalyzeSchema(const AstSchema& ast) {
  TYDER_ASSIGN_OR_RETURN(Catalog catalog, Catalog::Create());
  Schema& schema = catalog.schema();

  // Pass 1: declare all types so supertype/attribute references resolve
  // regardless of declaration order.
  for (const AstType& type : ast.types) {
    Status declared =
        schema.types().DeclareType(type.name, TypeKind::kUser).status();
    if (!declared.ok()) {
      return declared.WithContext(Where(type.line, type.col) + "type '" +
                                  type.name + "'");
    }
  }

  // Pass 2: supertype edges (in precedence order) and attributes.
  for (const AstType& type : ast.types) {
    TYDER_ASSIGN_OR_RETURN(TypeId id, schema.types().FindType(type.name));
    for (const std::string& super : type.supers) {
      Result<TypeId> super_id = schema.types().FindType(super);
      if (!super_id.ok()) {
        return Status::ParseError(Where(type.line, type.col) + "type '" +
                                  type.name + "': unknown supertype '" +
                                  super + "'");
      }
      TYDER_RETURN_IF_ERROR(schema.types().AddSupertype(id, *super_id));
    }
    for (const AstAttr& attr : type.attrs) {
      Result<TypeId> value_type = schema.types().FindType(attr.type_name);
      if (!value_type.ok()) {
        return Status::ParseError(Where(attr.line, attr.col) +
                                  "attribute '" + attr.name +
                                  "': unknown type '" + attr.type_name + "'");
      }
      Status declared =
          schema.types().DeclareAttribute(id, attr.name, *value_type).status();
      if (!declared.ok()) {
        return declared.WithContext(Where(attr.line, attr.col) +
                                    "attribute '" + attr.name + "'");
      }
    }
  }

  // Pass 3: generic functions — explicit declarations, accessors, then the
  // implicit generic function of every method (so bodies can call forward).
  for (const AstGeneric& gen : ast.generics) {
    Status declared =
        schema.DeclareGenericFunction(gen.name, gen.arity).status();
    if (!declared.ok()) {
      return declared.WithContext(Where(gen.line, gen.col) + "generic '" +
                                  gen.name + "'");
    }
  }
  if (ast.accessors_directive) {
    TYDER_RETURN_IF_ERROR(GenerateAllAccessors(schema));
  }
  for (const AstMethod& method : ast.methods) {
    const std::string& gf_name = method.gf.empty() ? method.label : method.gf;
    Status declared =
        schema
            .FindOrDeclareGenericFunction(gf_name,
                                          static_cast<int>(method.params.size()))
            .status();
    if (!declared.ok()) {
      return declared.WithContext(Where(method.line, method.col) +
                                  "method '" + method.label + "'");
    }
  }

  // Pass 4: methods with lowered bodies.
  for (const AstMethod& ast_method : ast.methods) {
    Method m;
    m.label = Symbol::Intern(ast_method.label);
    const std::string& gf_name =
        ast_method.gf.empty() ? ast_method.label : ast_method.gf;
    TYDER_ASSIGN_OR_RETURN(m.gf, schema.FindGenericFunction(gf_name));
    m.kind = MethodKind::kGeneral;
    for (const AstParam& param : ast_method.params) {
      Result<TypeId> t = schema.types().FindType(param.type_name);
      if (!t.ok()) {
        return Status::ParseError(Where(ast_method.line, ast_method.col) +
                                  "method '" + ast_method.label +
                                  "': unknown parameter type '" +
                                  param.type_name + "'");
      }
      m.sig.params.push_back(*t);
      m.param_names.push_back(Symbol::Intern(param.name));
    }
    if (ast_method.result_type.empty()) {
      m.sig.result = schema.builtins().void_type;
    } else {
      Result<TypeId> r = schema.types().FindType(ast_method.result_type);
      if (!r.ok()) {
        return Status::ParseError(Where(ast_method.line, ast_method.col) +
                                  "method '" + ast_method.label +
                                  "': unknown result type '" +
                                  ast_method.result_type + "'");
      }
      m.sig.result = *r;
    }
    BodyLowerer lowerer(schema, ast_method);
    TYDER_ASSIGN_OR_RETURN(m.body, lowerer.LowerBlock(ast_method.body));
    Status added = schema.AddMethod(std::move(m)).status();
    if (!added.ok()) {
      return added.WithContext(Where(ast_method.line, ast_method.col) +
                               "method '" + ast_method.label + "'");
    }
  }

  // Pass 5: whole-schema static type check before any view runs.
  TYDER_RETURN_IF_ERROR(TypeCheckSchema(schema));

  // Pass 6: views, in declaration order (views may build on earlier views).
  for (const AstView& view : ast.views) {
    Status applied = Status::OK();
    switch (view.op) {
      case AstViewOp::kProject:
        applied = catalog
                      .DefineProjectionView(view.name, view.source, view.attrs)
                      .status();
        break;
      case AstViewOp::kSelect:
        applied = catalog.DefineSelectionView(view.name, view.source).status();
        break;
      case AstViewOp::kRename: {
        std::vector<AttributeRename> renames;
        for (const AstRename& r : view.renames) {
          renames.push_back(AttributeRename{r.attribute, r.alias});
        }
        applied =
            catalog.DefineRenameView(view.name, view.source, renames).status();
        break;
      }
      case AstViewOp::kGeneralize:
        applied = catalog
                      .DefineGeneralizationView(view.name, view.source,
                                                view.source2)
                      .status();
        break;
    }
    if (!applied.ok()) {
      return applied.WithContext(Where(view.line, view.col) + "view '" +
                                 view.name + "'");
    }
  }
  return catalog;
}

Result<ExprPtr> LowerExpression(
    const Schema& schema, const AstExprPtr& expr,
    const std::vector<std::pair<std::string, TypeId>>& params) {
  std::vector<std::string> names;
  for (const auto& [name, type] : params) names.push_back(name);
  BodyLowerer lowerer(schema, names);
  return lowerer.LowerSingle(*expr);
}

Result<Catalog> LoadTdl(std::string_view source) {
  TYDER_ASSIGN_OR_RETURN(AstSchema ast, ParseTdl(source));
  return AnalyzeSchema(ast);
}

}  // namespace tyder
