#include "lang/token.h"

namespace tyder {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLit: return "integer literal";
    case TokenKind::kFloatLit: return "float literal";
    case TokenKind::kStringLit: return "string literal";
    case TokenKind::kType: return "'type'";
    case TokenKind::kMethod: return "'method'";
    case TokenKind::kFor: return "'for'";
    case TokenKind::kGeneric: return "'generic'";
    case TokenKind::kAccessors: return "'accessors'";
    case TokenKind::kView: return "'view'";
    case TokenKind::kProject: return "'project'";
    case TokenKind::kSelect: return "'select'";
    case TokenKind::kRename: return "'rename'";
    case TokenKind::kGeneralize: return "'generalize'";
    case TokenKind::kAs: return "'as'";
    case TokenKind::kOn: return "'on'";
    case TokenKind::kReturn: return "'return'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kAnd: return "'and'";
    case TokenKind::kOr: return "'or'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kError: return "invalid token";
  }
  return "?";
}

TokenKind KeywordOrIdent(std::string_view text) {
  struct Entry {
    std::string_view word;
    TokenKind kind;
  };
  static constexpr Entry kKeywords[] = {
      {"type", TokenKind::kType},         {"method", TokenKind::kMethod},
      {"for", TokenKind::kFor},           {"generic", TokenKind::kGeneric},
      {"accessors", TokenKind::kAccessors}, {"view", TokenKind::kView},
      {"project", TokenKind::kProject},   {"select", TokenKind::kSelect},
      {"rename", TokenKind::kRename},     {"generalize", TokenKind::kGeneralize},
      {"as", TokenKind::kAs},
      {"on", TokenKind::kOn},             {"return", TokenKind::kReturn},
      {"if", TokenKind::kIf},             {"else", TokenKind::kElse},
      {"true", TokenKind::kTrue},         {"false", TokenKind::kFalse},
      {"and", TokenKind::kAnd},           {"or", TokenKind::kOr},
  };
  for (const Entry& e : kKeywords) {
    if (e.word == text) return e.kind;
  }
  return TokenKind::kIdent;
}

}  // namespace tyder
