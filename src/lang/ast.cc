#include "lang/ast.h"

// AST nodes are plain aggregates; construction lives in the parser and
// consumption in the analyzer.
