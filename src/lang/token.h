// Tokens of TDL, tyder's schema definition language. TDL is the textual
// front end for the paper's mathematical schema notation: type declarations
// with precedence-ordered supertypes, generic functions, multi-methods with
// bodies, and view definitions.

#ifndef TYDER_LANG_TOKEN_H_
#define TYDER_LANG_TOKEN_H_

#include <string>
#include <string_view>

namespace tyder {

enum class TokenKind {
  // literals / identifiers
  kIdent,
  kIntLit,
  kFloatLit,
  kStringLit,
  // keywords
  kType,
  kMethod,
  kFor,
  kGeneric,
  kAccessors,
  kView,
  kProject,
  kSelect,
  kRename,
  kGeneralize,
  kAs,
  kOn,
  kReturn,
  kIf,
  kElse,
  kTrue,
  kFalse,
  kAnd,
  kOr,
  // punctuation
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kColon,
  kSemicolon,
  kComma,
  kArrow,   // ->
  kAssign,  // =
  kEqEq,    // ==
  kLt,
  kLe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEnd,
  kError,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 0;
  int col = 0;
};

std::string_view TokenKindName(TokenKind kind);

// Keyword lookup; kIdent if `text` is not a keyword.
TokenKind KeywordOrIdent(std::string_view text);

}  // namespace tyder

#endif  // TYDER_LANG_TOKEN_H_
