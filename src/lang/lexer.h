// TDL lexer. Hand-written scanner producing the full token stream in one
// pass; `//` line comments and `/* */` block comments are skipped.

#ifndef TYDER_LANG_LEXER_H_
#define TYDER_LANG_LEXER_H_

#include <string_view>
#include <vector>

#include "lang/diagnostics.h"
#include "lang/token.h"

namespace tyder {

// Tokenizes `source`. Always ends with a kEnd token; lexical errors are
// reported to `diags` and surface as kError tokens.
std::vector<Token> Lex(std::string_view source, DiagnosticEngine& diags);

}  // namespace tyder

#endif  // TYDER_LANG_LEXER_H_
