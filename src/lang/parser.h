// Recursive-descent parser for TDL.
//
//   schema      := decl*
//   decl        := typeDecl | genericDecl | methodDecl | viewDecl |
//                  "accessors" ";"
//   typeDecl    := "type" IDENT (":" IDENT ("," IDENT)*)? "{" attrDecl* "}"
//   attrDecl    := IDENT ":" IDENT ";"
//   genericDecl := "generic" IDENT "/" INT ";"
//   methodDecl  := "method" IDENT ("for" IDENT)? "(" params? ")"
//                  ("->" IDENT)? block
//   viewDecl    := "view" IDENT "=" "project" IDENT "on" "(" idents ")" ";"
//                | "view" IDENT "=" "select" IDENT ";"
//   block       := "{" stmt* "}"
//   stmt        := IDENT ":" IDENT ("=" expr)? ";"   (local declaration)
//                | IDENT "=" expr ";"                 (assignment)
//                | "return" expr? ";" | "if" "(" expr ")" block
//                  ("else" block)? | expr ";"
//   expr        := or-chain over and / == < <= / + - / * / with parentheses,
//                  calls, identifiers and literals.

#ifndef TYDER_LANG_PARSER_H_
#define TYDER_LANG_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "lang/ast.h"
#include "lang/diagnostics.h"

namespace tyder {

// Parses TDL source into an AST; all syntax errors are collected into the
// returned status message.
Result<AstSchema> ParseTdl(std::string_view source);

// Parses a single TDL expression (query predicates, ad-hoc evaluation). The
// whole input must be one expression.
Result<AstExprPtr> ParseTdlExpression(std::string_view source);

}  // namespace tyder

#endif  // TYDER_LANG_PARSER_H_
