// Abstract syntax of TDL. The parser produces these; lang/analyzer.h lowers
// them into a Schema/Catalog.

#ifndef TYDER_LANG_AST_H_
#define TYDER_LANG_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mir/expr.h"  // BinOpKind

namespace tyder {

struct AstExpr;
using AstExprPtr = std::shared_ptr<AstExpr>;

enum class AstExprKind {
  kIdent,   // parameter or local reference
  kInt,
  kFloat,
  kString,
  kBool,
  kCall,    // callee(args...)
  kBinOp,
};

struct AstExpr {
  AstExprKind kind = AstExprKind::kIdent;
  std::string text;     // ident name / callee
  int64_t int_val = 0;
  double float_val = 0;
  bool bool_val = false;
  std::string str_val;
  BinOpKind op = BinOpKind::kAdd;
  std::vector<AstExprPtr> children;  // call args / binop operands
  int line = 0, col = 0;
};

struct AstStmt;
using AstStmtPtr = std::shared_ptr<AstStmt>;

enum class AstStmtKind { kVarDecl, kAssign, kExprStmt, kReturn, kIf };

struct AstStmt {
  AstStmtKind kind = AstStmtKind::kExprStmt;
  std::string var;        // kVarDecl / kAssign
  std::string type_name;  // kVarDecl
  AstExprPtr expr;        // init / rhs / expr / return value / condition
  std::vector<AstStmtPtr> then_body;  // kIf
  std::vector<AstStmtPtr> else_body;  // kIf
  int line = 0, col = 0;
};

struct AstAttr {
  std::string name;
  std::string type_name;
  int line = 0, col = 0;
};

struct AstType {
  std::string name;
  std::vector<std::string> supers;  // precedence order
  std::vector<AstAttr> attrs;
  int line = 0, col = 0;
};

struct AstParam {
  std::string name;
  std::string type_name;
};

struct AstMethod {
  std::string label;
  std::string gf;  // empty: the generic function is named like the method
  std::vector<AstParam> params;
  std::string result_type;  // empty: Void
  std::vector<AstStmtPtr> body;
  int line = 0, col = 0;
};

struct AstGeneric {
  std::string name;
  int arity = 0;
  int line = 0, col = 0;
};

enum class AstViewOp { kProject, kSelect, kRename, kGeneralize };

struct AstRename {
  std::string attribute;
  std::string alias;
};

struct AstView {
  std::string name;
  AstViewOp op = AstViewOp::kProject;
  std::string source;
  std::string source2;             // kGeneralize only
  std::vector<std::string> attrs;  // kProject only
  std::vector<AstRename> renames;  // kRename only
  int line = 0, col = 0;
};

struct AstSchema {
  std::vector<AstType> types;
  std::vector<AstGeneric> generics;
  std::vector<AstMethod> methods;
  std::vector<AstView> views;
  bool accessors_directive = false;
};

}  // namespace tyder

#endif  // TYDER_LANG_AST_H_
