#include "lang/diagnostics.h"

namespace tyder {

std::string DiagnosticEngine::ToString() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += std::to_string(d.line) + ":" + std::to_string(d.col) + ": " +
           d.message + "\n";
  }
  return out;
}

Status DiagnosticEngine::ToStatus() const {
  if (!has_errors()) return Status::OK();
  return Status::ParseError(ToString());
}

}  // namespace tyder
