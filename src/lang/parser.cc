#include "lang/parser.h"

#include "lang/lexer.h"

namespace tyder {

namespace {

class Parser {
 public:
  // Recursive-descent depth cap: nesting beyond this yields a diagnostic
  // instead of a stack overflow on adversarial input (each nesting level
  // costs a bounded handful of frames, so 1000 levels is far below any real
  // stack limit while far above any legitimate TDL program).
  static constexpr int kMaxNestingDepth = 1000;

  Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  AstSchema Run() {
    AstSchema schema;
    while (!At(TokenKind::kEnd)) {
      size_t before = pos_;
      ParseDecl(schema);
      if (pos_ == before) Advance();  // never loop on an unexpected token
    }
    return schema;
  }

  // Entry point for single-expression parsing (query predicates).
  AstExprPtr RunExpression() {
    AstExprPtr expr = ParseExpr();
    if (!At(TokenKind::kEnd)) {
      diags_.Error(Cur().line, Cur().col,
                   "trailing input after expression");
    }
    return expr;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t ahead = 1) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  Token Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Accept(TokenKind kind) {
    if (!At(kind)) return false;
    Advance();
    return true;
  }
  Token Expect(TokenKind kind) {
    if (At(kind)) return Advance();
    diags_.Error(Cur().line, Cur().col,
                 "expected " + std::string(TokenKindName(kind)) + ", found " +
                     std::string(TokenKindName(Cur().kind)));
    return Cur();
  }
  // Skips to just past the next token of `kind` (error recovery).
  void SyncPast(TokenKind kind) {
    while (!At(TokenKind::kEnd) && !Accept(kind)) Advance();
  }

  // True once nesting exceeds the cap. Reports a single diagnostic and jumps
  // to the end-of-input token so every recursive production unwinds without
  // descending further.
  bool DepthExceeded() {
    if (depth_ < kMaxNestingDepth) return false;
    if (!depth_reported_) {
      depth_reported_ = true;
      diags_.Error(Cur().line, Cur().col,
                   "nesting exceeds the maximum depth of " +
                       std::to_string(kMaxNestingDepth));
      pos_ = tokens_.size() - 1;  // the kEnd token
    }
    return true;
  }

  struct DepthScope {
    explicit DepthScope(Parser& p) : parser(p) { ++parser.depth_; }
    ~DepthScope() { --parser.depth_; }
    Parser& parser;
  };

  void ParseDecl(AstSchema& schema) {
    switch (Cur().kind) {
      case TokenKind::kType:
        schema.types.push_back(ParseType());
        return;
      case TokenKind::kGeneric:
        schema.generics.push_back(ParseGeneric());
        return;
      case TokenKind::kMethod:
        schema.methods.push_back(ParseMethod());
        return;
      case TokenKind::kView:
        schema.views.push_back(ParseView());
        return;
      case TokenKind::kAccessors:
        Advance();
        Expect(TokenKind::kSemicolon);
        schema.accessors_directive = true;
        return;
      default:
        diags_.Error(Cur().line, Cur().col,
                     "expected a declaration, found " +
                         std::string(TokenKindName(Cur().kind)));
        return;
    }
  }

  AstType ParseType() {
    AstType type;
    Token kw = Expect(TokenKind::kType);
    type.line = kw.line;
    type.col = kw.col;
    type.name = Expect(TokenKind::kIdent).text;
    if (Accept(TokenKind::kColon)) {
      type.supers.push_back(Expect(TokenKind::kIdent).text);
      while (Accept(TokenKind::kComma)) {
        type.supers.push_back(Expect(TokenKind::kIdent).text);
      }
    }
    Expect(TokenKind::kLBrace);
    while (!At(TokenKind::kRBrace) && !At(TokenKind::kEnd)) {
      size_t before = pos_;
      AstAttr attr;
      Token name = Expect(TokenKind::kIdent);
      attr.name = name.text;
      attr.line = name.line;
      attr.col = name.col;
      Expect(TokenKind::kColon);
      attr.type_name = Expect(TokenKind::kIdent).text;
      Expect(TokenKind::kSemicolon);
      type.attrs.push_back(std::move(attr));
      if (pos_ == before) Advance();  // never loop on an unexpected token
    }
    Expect(TokenKind::kRBrace);
    return type;
  }

  AstGeneric ParseGeneric() {
    AstGeneric gen;
    Token kw = Expect(TokenKind::kGeneric);
    gen.line = kw.line;
    gen.col = kw.col;
    gen.name = Expect(TokenKind::kIdent).text;
    Expect(TokenKind::kSlash);
    if (At(TokenKind::kIntLit)) {
      gen.arity = std::stoi(Advance().text);
    } else {
      Expect(TokenKind::kIntLit);  // report the error
    }
    Expect(TokenKind::kSemicolon);
    return gen;
  }

  AstMethod ParseMethod() {
    AstMethod method;
    Token kw = Expect(TokenKind::kMethod);
    method.line = kw.line;
    method.col = kw.col;
    method.label = Expect(TokenKind::kIdent).text;
    if (Accept(TokenKind::kFor)) {
      method.gf = Expect(TokenKind::kIdent).text;
    }
    Expect(TokenKind::kLParen);
    if (!At(TokenKind::kRParen)) {
      do {
        AstParam param;
        param.name = Expect(TokenKind::kIdent).text;
        Expect(TokenKind::kColon);
        param.type_name = Expect(TokenKind::kIdent).text;
        method.params.push_back(std::move(param));
      } while (Accept(TokenKind::kComma));
    }
    Expect(TokenKind::kRParen);
    if (Accept(TokenKind::kArrow)) {
      method.result_type = Expect(TokenKind::kIdent).text;
    }
    method.body = ParseBlock();
    return method;
  }

  AstView ParseView() {
    AstView view;
    Token kw = Expect(TokenKind::kView);
    view.line = kw.line;
    view.col = kw.col;
    view.name = Expect(TokenKind::kIdent).text;
    Expect(TokenKind::kAssign);
    if (Accept(TokenKind::kProject)) {
      view.op = AstViewOp::kProject;
      view.source = Expect(TokenKind::kIdent).text;
      Expect(TokenKind::kOn);
      Expect(TokenKind::kLParen);
      if (!At(TokenKind::kRParen)) {
        do {
          view.attrs.push_back(Expect(TokenKind::kIdent).text);
        } while (Accept(TokenKind::kComma));
      }
      Expect(TokenKind::kRParen);
    } else if (Accept(TokenKind::kSelect)) {
      view.op = AstViewOp::kSelect;
      view.source = Expect(TokenKind::kIdent).text;
    } else if (Accept(TokenKind::kRename)) {
      // view V = rename T (old as new, ...);
      view.op = AstViewOp::kRename;
      view.source = Expect(TokenKind::kIdent).text;
      Expect(TokenKind::kLParen);
      if (!At(TokenKind::kRParen)) {
        do {
          AstRename rename;
          rename.attribute = Expect(TokenKind::kIdent).text;
          Expect(TokenKind::kAs);
          rename.alias = Expect(TokenKind::kIdent).text;
          view.renames.push_back(std::move(rename));
        } while (Accept(TokenKind::kComma));
      }
      Expect(TokenKind::kRParen);
    } else if (Accept(TokenKind::kGeneralize)) {
      // view V = generalize A, B;
      view.op = AstViewOp::kGeneralize;
      view.source = Expect(TokenKind::kIdent).text;
      Expect(TokenKind::kComma);
      view.source2 = Expect(TokenKind::kIdent).text;
    } else {
      diags_.Error(Cur().line, Cur().col,
                   "expected 'project', 'select', 'rename' or 'generalize' "
                   "after '='");
      SyncPast(TokenKind::kSemicolon);
      return view;
    }
    Expect(TokenKind::kSemicolon);
    return view;
  }

  std::vector<AstStmtPtr> ParseBlock() {
    std::vector<AstStmtPtr> stmts;
    Expect(TokenKind::kLBrace);
    while (!At(TokenKind::kRBrace) && !At(TokenKind::kEnd)) {
      size_t before = pos_;
      stmts.push_back(ParseStmt());
      if (pos_ == before) Advance();
    }
    Expect(TokenKind::kRBrace);
    return stmts;
  }

  AstStmtPtr ParseStmt() {
    auto stmt = std::make_shared<AstStmt>();
    stmt->line = Cur().line;
    stmt->col = Cur().col;
    if (DepthExceeded()) {
      stmt->kind = AstStmtKind::kReturn;
      return stmt;
    }
    DepthScope depth(*this);
    if (Accept(TokenKind::kReturn)) {
      stmt->kind = AstStmtKind::kReturn;
      if (!At(TokenKind::kSemicolon)) stmt->expr = ParseExpr();
      Expect(TokenKind::kSemicolon);
      return stmt;
    }
    if (Accept(TokenKind::kIf)) {
      stmt->kind = AstStmtKind::kIf;
      Expect(TokenKind::kLParen);
      stmt->expr = ParseExpr();
      Expect(TokenKind::kRParen);
      stmt->then_body = ParseBlock();
      if (Accept(TokenKind::kElse)) stmt->else_body = ParseBlock();
      return stmt;
    }
    // IDENT ':' -> local declaration; IDENT '=' (not '==') -> assignment.
    if (At(TokenKind::kIdent) && Peek().kind == TokenKind::kColon) {
      stmt->kind = AstStmtKind::kVarDecl;
      stmt->var = Advance().text;
      Advance();  // ':'
      stmt->type_name = Expect(TokenKind::kIdent).text;
      if (Accept(TokenKind::kAssign)) stmt->expr = ParseExpr();
      Expect(TokenKind::kSemicolon);
      return stmt;
    }
    if (At(TokenKind::kIdent) && Peek().kind == TokenKind::kAssign) {
      stmt->kind = AstStmtKind::kAssign;
      stmt->var = Advance().text;
      Advance();  // '='
      stmt->expr = ParseExpr();
      Expect(TokenKind::kSemicolon);
      return stmt;
    }
    stmt->kind = AstStmtKind::kExprStmt;
    stmt->expr = ParseExpr();
    Expect(TokenKind::kSemicolon);
    return stmt;
  }

  AstExprPtr ParseExpr() {
    if (DepthExceeded()) {
      auto e = std::make_shared<AstExpr>();
      e->kind = AstExprKind::kInt;
      e->line = Cur().line;
      e->col = Cur().col;
      return e;
    }
    DepthScope depth(*this);
    return ParseOr();
  }

  AstExprPtr MakeBin(BinOpKind op, AstExprPtr lhs, AstExprPtr rhs) {
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExprKind::kBinOp;
    e->op = op;
    e->line = lhs->line;
    e->col = lhs->col;
    e->children = {std::move(lhs), std::move(rhs)};
    return e;
  }

  AstExprPtr ParseOr() {
    AstExprPtr lhs = ParseAnd();
    while (Accept(TokenKind::kOr)) {
      lhs = MakeBin(BinOpKind::kOr, std::move(lhs), ParseAnd());
    }
    return lhs;
  }

  AstExprPtr ParseAnd() {
    AstExprPtr lhs = ParseCmp();
    while (Accept(TokenKind::kAnd)) {
      lhs = MakeBin(BinOpKind::kAnd, std::move(lhs), ParseCmp());
    }
    return lhs;
  }

  AstExprPtr ParseCmp() {
    AstExprPtr lhs = ParseAdd();
    if (Accept(TokenKind::kEqEq)) {
      return MakeBin(BinOpKind::kEq, std::move(lhs), ParseAdd());
    }
    if (Accept(TokenKind::kLt)) {
      return MakeBin(BinOpKind::kLt, std::move(lhs), ParseAdd());
    }
    if (Accept(TokenKind::kLe)) {
      return MakeBin(BinOpKind::kLe, std::move(lhs), ParseAdd());
    }
    return lhs;
  }

  AstExprPtr ParseAdd() {
    AstExprPtr lhs = ParseMul();
    for (;;) {
      if (Accept(TokenKind::kPlus)) {
        lhs = MakeBin(BinOpKind::kAdd, std::move(lhs), ParseMul());
      } else if (Accept(TokenKind::kMinus)) {
        lhs = MakeBin(BinOpKind::kSub, std::move(lhs), ParseMul());
      } else {
        return lhs;
      }
    }
  }

  AstExprPtr ParseMul() {
    AstExprPtr lhs = ParsePrimary();
    for (;;) {
      if (Accept(TokenKind::kStar)) {
        lhs = MakeBin(BinOpKind::kMul, std::move(lhs), ParsePrimary());
      } else if (Accept(TokenKind::kSlash)) {
        lhs = MakeBin(BinOpKind::kDiv, std::move(lhs), ParsePrimary());
      } else {
        return lhs;
      }
    }
  }

  AstExprPtr ParsePrimary() {
    auto e = std::make_shared<AstExpr>();
    e->line = Cur().line;
    e->col = Cur().col;
    switch (Cur().kind) {
      case TokenKind::kIntLit:
        e->kind = AstExprKind::kInt;
        e->int_val = std::stoll(Advance().text);
        return e;
      case TokenKind::kFloatLit:
        e->kind = AstExprKind::kFloat;
        e->float_val = std::stod(Advance().text);
        return e;
      case TokenKind::kStringLit:
        e->kind = AstExprKind::kString;
        e->str_val = Advance().text;
        return e;
      case TokenKind::kTrue:
        Advance();
        e->kind = AstExprKind::kBool;
        e->bool_val = true;
        return e;
      case TokenKind::kFalse:
        Advance();
        e->kind = AstExprKind::kBool;
        e->bool_val = false;
        return e;
      case TokenKind::kLParen: {
        Advance();
        AstExprPtr inner = ParseExpr();
        Expect(TokenKind::kRParen);
        return inner;
      }
      case TokenKind::kIdent: {
        std::string name = Advance().text;
        if (Accept(TokenKind::kLParen)) {
          e->kind = AstExprKind::kCall;
          e->text = std::move(name);
          if (!At(TokenKind::kRParen)) {
            do {
              e->children.push_back(ParseExpr());
            } while (Accept(TokenKind::kComma));
          }
          Expect(TokenKind::kRParen);
          return e;
        }
        e->kind = AstExprKind::kIdent;
        e->text = std::move(name);
        return e;
      }
      default:
        diags_.Error(Cur().line, Cur().col,
                     "expected an expression, found " +
                         std::string(TokenKindName(Cur().kind)));
        e->kind = AstExprKind::kInt;
        return e;
    }
  }

  std::vector<Token> tokens_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
  int depth_ = 0;
  bool depth_reported_ = false;
};

}  // namespace

Result<AstSchema> ParseTdl(std::string_view source) {
  DiagnosticEngine diags;
  std::vector<Token> tokens = Lex(source, diags);
  AstSchema schema = Parser(std::move(tokens), diags).Run();
  TYDER_RETURN_IF_ERROR(diags.ToStatus());
  return schema;
}

Result<AstExprPtr> ParseTdlExpression(std::string_view source) {
  DiagnosticEngine diags;
  std::vector<Token> tokens = Lex(source, diags);
  AstExprPtr expr = Parser(std::move(tokens), diags).RunExpression();
  TYDER_RETURN_IF_ERROR(diags.ToStatus());
  return expr;
}

}  // namespace tyder
