// Semantic analysis: lowers a TDL AST into a Catalog (schema + views).
// Passes: (1) declare types, (2) wire supertypes and attributes,
// (3) declare explicit generics and the implicit one per method, plus
// accessors when requested, (4) register methods and lower their bodies to
// MIR, (5) statically type-check everything, (6) apply view definitions
// (running the full derivation machinery for projections).

#ifndef TYDER_LANG_ANALYZER_H_
#define TYDER_LANG_ANALYZER_H_

#include <string_view>

#include "catalog/catalog.h"
#include "common/result.h"
#include "lang/ast.h"

namespace tyder {

Result<Catalog> AnalyzeSchema(const AstSchema& ast);

// Lowers a parsed expression to MIR against `schema`, resolving identifiers
// first against `params` (name -> parameter index in order) and otherwise as
// local variables. Used by the query subsystem for TDL predicates.
Result<ExprPtr> LowerExpression(
    const Schema& schema, const AstExprPtr& expr,
    const std::vector<std::pair<std::string, TypeId>>& params);

// Parse + analyze in one step — the main entry point for loading TDL.
Result<Catalog> LoadTdl(std::string_view source);

}  // namespace tyder

#endif  // TYDER_LANG_ANALYZER_H_
