// Diagnostic collection for the TDL front end: errors carry source positions
// and accumulate so a parse reports everything wrong, not just the first
// problem.

#ifndef TYDER_LANG_DIAGNOSTICS_H_
#define TYDER_LANG_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace tyder {

struct Diagnostic {
  int line = 0;
  int col = 0;
  std::string message;
};

class DiagnosticEngine {
 public:
  void Error(int line, int col, std::string message) {
    diags_.push_back(Diagnostic{line, col, std::move(message)});
  }

  bool has_errors() const { return !diags_.empty(); }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  // "line:col: message" per diagnostic.
  std::string ToString() const;

  // OK, or a ParseError whose message is ToString().
  Status ToStatus() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace tyder

#endif  // TYDER_LANG_DIAGNOSTICS_H_
