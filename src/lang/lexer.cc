#include "lang/lexer.h"

#include <cctype>

namespace tyder {

namespace {

class Scanner {
 public:
  Scanner(std::string_view source, DiagnosticEngine& diags)
      : src_(source), diags_(diags) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    for (;;) {
      SkipTrivia();
      Token tok = Next();
      tokens.push_back(tok);
      if (tok.kind == TokenKind::kEnd) return tokens;
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void SkipTrivia() {
    for (;;) {
      if (AtEnd()) return;
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
        if (AtEnd()) {
          diags_.Error(line_, col_, "unterminated block comment");
          return;
        }
        Advance();
        Advance();
      } else {
        return;
      }
    }
  }

  Token Make(TokenKind kind, std::string text, int line, int col) {
    return Token{kind, std::move(text), line, col};
  }

  Token Next() {
    int line = line_, col = col_;
    if (AtEnd()) return Make(TokenKind::kEnd, "", line, col);
    char c = Advance();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text(1, c);
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_')) {
        text += Advance();
      }
      // Look the keyword up before std::move(text) can hollow the string
      // (argument evaluation order is unspecified).
      TokenKind kind = KeywordOrIdent(text);
      return Make(kind, std::move(text), line, col);
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text(1, c);
      bool is_float = false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        text += Advance();
      }
      if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        is_float = true;
        text += Advance();
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          text += Advance();
        }
      }
      return Make(is_float ? TokenKind::kFloatLit : TokenKind::kIntLit,
                  std::move(text), line, col);
    }

    switch (c) {
      case '"': {
        std::string text;
        while (!AtEnd() && Peek() != '"') {
          char d = Advance();
          if (d == '\\' && !AtEnd()) {
            char esc = Advance();
            text += esc == 'n' ? '\n' : esc;
          } else {
            text += d;
          }
        }
        if (AtEnd()) {
          diags_.Error(line, col, "unterminated string literal");
          return Make(TokenKind::kError, std::move(text), line, col);
        }
        Advance();  // closing quote
        return Make(TokenKind::kStringLit, std::move(text), line, col);
      }
      case '{': return Make(TokenKind::kLBrace, "{", line, col);
      case '}': return Make(TokenKind::kRBrace, "}", line, col);
      case '(': return Make(TokenKind::kLParen, "(", line, col);
      case ')': return Make(TokenKind::kRParen, ")", line, col);
      case ':': return Make(TokenKind::kColon, ":", line, col);
      case ';': return Make(TokenKind::kSemicolon, ";", line, col);
      case ',': return Make(TokenKind::kComma, ",", line, col);
      case '+': return Make(TokenKind::kPlus, "+", line, col);
      case '*': return Make(TokenKind::kStar, "*", line, col);
      case '/': return Make(TokenKind::kSlash, "/", line, col);
      case '-':
        if (Peek() == '>') {
          Advance();
          return Make(TokenKind::kArrow, "->", line, col);
        }
        return Make(TokenKind::kMinus, "-", line, col);
      case '=':
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kEqEq, "==", line, col);
        }
        return Make(TokenKind::kAssign, "=", line, col);
      case '<':
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kLe, "<=", line, col);
        }
        return Make(TokenKind::kLt, "<", line, col);
      default:
        diags_.Error(line, col, std::string("unexpected character '") + c +
                                    "'");
        return Make(TokenKind::kError, std::string(1, c), line, col);
    }
  }

  std::string_view src_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> Lex(std::string_view source, DiagnosticEngine& diags) {
  return Scanner(source, diags).Run();
}

}  // namespace tyder
