// tyderd: the tyder schema service daemon.
//
//   tyderd --db <dir> [<schema.tdl>] [--port <n>] [--admin]
//          [--max-connections <n>] [--workers <n>] [--queue <n>]
//          [--idle-timeout-ms <n>] [--stats-jsonl=<file>]
//          [--stats-period-ms=<n>]
//
// Boots (recovering or seeding) a DurableCatalog and serves the tyder1
// protocol (src/net/protocol.h) on 127.0.0.1 until an admin `shutdown`
// request or SIGINT/SIGTERM. Prints exactly one line
//
//   LISTENING <port>
//
// to stdout once the socket is bound — scripts (scripts/run_all.sh serve)
// parse it to find an ephemerally-chosen port.
//
// A <schema.tdl> operand seeds a FRESH database directory, exactly like
// `tyderc <schema.tdl> --db <dir>`; restarting against an already-seeded
// directory recovers instead (passing the TDL again is then an error, by
// DurableCatalog::Seed's no-durable-state rule).
//
// --admin enables reopen/fault/sleep/shutdown (see docs/ROBUSTNESS.md,
// "Serving and overload"). Without it those commands answer
// ERR FailedPrecondition, so a production-ish tyderd cannot be fault-armed
// or stopped over the wire.
//
// Exit codes follow the tyderc contract (README.md): 0 clean shutdown,
// 1 serving/storage failure, 2 usage error.

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "lang/analyzer.h"
#include "net/server.h"
#include "obs/obs.h"
#include "storage/durable_catalog.h"
#if TYDER_OBS_ENABLED
#include "obs/snapshotter.h"
#endif

namespace tyder {
namespace {

net::Server* g_signal_server = nullptr;

void HandleSignal(int) {
  // Stop() is not async-signal-safe; just flag the shutdown and let the
  // main thread (parked in WaitForShutdownRequest) do the teardown.
  if (g_signal_server != nullptr) g_signal_server->RequestShutdown();
}

int Usage() {
  std::cerr
      << "usage: tyderd --db <dir> [<schema.tdl>] [--port <n>] [--admin]\n"
         "              [--max-connections <n>] [--workers <n>] "
         "[--queue <n>]\n"
         "              [--idle-timeout-ms <n>] [--stats-jsonl=<file>] "
         "[--stats-period-ms=<n>]\n";
  return 2;
}

int Fail(const Status& status) {
  std::cerr << "tyderd: " << status.ToString() << "\n";
  return 1;
}

bool ParseIntFlag(int argc, char** argv, int& i, int* out) {
  if (i + 1 >= argc) return false;
  *out = std::atoi(argv[++i]);
  return *out >= 0;
}

int Run(int argc, char** argv) {
  std::string db_dir;
  std::string schema_path;
  net::ServerOptions options;
  int port = 0, max_conns = options.max_connections, workers = options.workers;
  int queue = static_cast<int>(options.queue_capacity);
  int idle_ms = static_cast<int>(options.idle_timeout_ms);
#if TYDER_OBS_ENABLED
  std::string stats_jsonl_path;
  int stats_period_ms = 1000;
#endif

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--db") {
      if (i + 1 >= argc) return Usage();
      db_dir = argv[++i];
    } else if (arg == "--port") {
      if (!ParseIntFlag(argc, argv, i, &port) || port > 65535) return Usage();
    } else if (arg == "--admin") {
      options.admin = true;
    } else if (arg == "--max-connections") {
      if (!ParseIntFlag(argc, argv, i, &max_conns) || max_conns < 1)
        return Usage();
    } else if (arg == "--workers") {
      if (!ParseIntFlag(argc, argv, i, &workers) || workers < 1)
        return Usage();
    } else if (arg == "--queue") {
      if (!ParseIntFlag(argc, argv, i, &queue) || queue < 1) return Usage();
    } else if (arg == "--idle-timeout-ms") {
      if (!ParseIntFlag(argc, argv, i, &idle_ms)) return Usage();
#if TYDER_OBS_ENABLED
    } else if (arg.rfind("--stats-jsonl=", 0) == 0) {
      stats_jsonl_path = arg.substr(std::string("--stats-jsonl=").size());
      if (stats_jsonl_path.empty()) return Usage();
    } else if (arg.rfind("--stats-period-ms=", 0) == 0) {
      stats_period_ms =
          std::atoi(arg.substr(std::string("--stats-period-ms=").size())
                        .c_str());
      if (stats_period_ms < 1) return Usage();
#else
    } else if (arg.rfind("--stats-", 0) == 0) {
      std::cerr << "tyderd: " << arg.substr(0, arg.find('='))
                << " requires the metrics layer, but this tyderd was built "
                   "with -DTYDER_OBS=OFF\n";
      return 2;
#endif
    } else if (schema_path.empty() && arg.rfind("--", 0) != 0) {
      schema_path = arg;
    } else {
      return Usage();
    }
  }
  if (db_dir.empty()) return Usage();
  options.port = static_cast<uint16_t>(port);
  options.max_connections = max_conns;
  options.workers = workers;
  options.queue_capacity = static_cast<size_t>(queue);
  options.idle_timeout_ms = static_cast<uint64_t>(idle_ms);

  Result<storage::DurableCatalog> opened =
      storage::DurableCatalog::Open(db_dir);
  if (!opened.ok()) return Fail(opened.status());
  storage::DurableCatalog db = std::move(opened).value();
  for (const std::string& warning : db.recovery().warnings) {
    std::cerr << "tyderd: recovery: " << warning << "\n";
  }
  if (!schema_path.empty()) {
    std::ifstream in(schema_path);
    if (!in) return Fail(Status::NotFound("cannot open '" + schema_path + "'"));
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<Catalog> seed = LoadTdl(buffer.str());
    if (!seed.ok()) return Fail(seed.status());
    Status seeded = db.Seed(std::move(*seed));
    if (!seeded.ok()) return Fail(seeded);
    std::cerr << "tyderd: seeded '" << db_dir << "' from " << schema_path
              << "\n";
  }

#if TYDER_OBS_ENABLED
  std::optional<obs::StatsSnapshotter> snapshotter;
  if (!stats_jsonl_path.empty()) {
    snapshotter.emplace(
        obs::SnapshotterOptions{stats_jsonl_path, stats_period_ms});
    if (!snapshotter->Start())
      return Fail(Status::Internal("cannot open stats file '" +
                                   stats_jsonl_path + "'"));
  }
#endif

  Result<std::unique_ptr<net::Server>> server =
      net::Server::Start(&db, options);
  if (!server.ok()) return Fail(server.status());

  g_signal_server = server->get();
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::cout << "LISTENING " << (*server)->port() << std::endl;
  std::cerr << "tyderd: serving '" << db_dir << "' on 127.0.0.1:"
            << (*server)->port() << " (" << workers << " workers, "
            << max_conns << " conns max" << (options.admin ? ", admin" : "")
            << ")\n";

  (*server)->WaitForShutdownRequest();
  std::cerr << "tyderd: shutting down\n";
  (*server)->Stop();
  g_signal_server = nullptr;

  // A degraded store at exit is worth a loud word (and mirrors tyderc's
  // exit-3 health semantics, though for a served lifetime the acked state
  // on disk is still consistent).
  if (db.degraded_now()) {
    std::cerr << "tyderd: WARNING: store ended degraded: reads stayed "
                 "available, mutations were refused\n";
  }
  return 0;
}

}  // namespace
}  // namespace tyder

int main(int argc, char** argv) { return tyder::Run(argc, argv); }
