// tyder_workload: macro-workload scenario driver (ROADMAP item 5).
//
// Replays a checked-in scenario pack (bench/scenarios/*.scn) either against
// an in-process catalog with the differential oracle in lockstep, or — with
// --port — over the tyder1 protocol against a live tyderd with a chaos-style
// ack ledger. Emits one BENCHJSON line per run so `run_all.sh scenarios`
// assembles BENCH_scenario_<name>.json files that scripts/bench_compare.py
// gates as a trajectory.
//
//   tyder_workload --pack FILE [--port P] [--seed S] [--repeat N] [--timed]
//                  [--oracle-every N] [--check-determinism] [--print]
//
//   --pack FILE          scenario pack to run (required)
//   --port P             drive a live tyderd on 127.0.0.1:P (wire replay)
//   --seed S             override the pack's seed
//   --repeat N           replay N times (seed, seed+1, ...): the long mode
//   --timed              honor phase pace_us between steps (sustained load)
//   --oracle-every N     override the in-proc oracle cadence (0 disables)
//   --check-determinism  replay the identical workload twice in-proc and
//                        require byte-identical final catalog fingerprints
//   --print              echo the canonical pack text and exit
//
// Exit status: 0 on a clean run; 1 on usage/parse errors, replay failures,
// oracle/ledger violations, or a determinism mismatch.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/repro_util.h"
#include "workload/generate.h"
#include "workload/replay.h"
#include "workload/spec.h"

namespace {

using tyder::Result;
using tyder::workload::GenerateWorkload;
using tyder::workload::ReplayInProc;
using tyder::workload::ReplayOptions;
using tyder::workload::ReplayOverWire;
using tyder::workload::ScenarioReport;
using tyder::workload::ScenarioSpec;
using tyder::workload::Workload;

int Usage() {
  std::cerr
      << "usage: tyder_workload --pack FILE [--port P] [--seed S]\n"
         "                      [--repeat N] [--timed] [--oracle-every N]\n"
         "                      [--check-determinism] [--print]\n";
  return 1;
}

std::string JsonResult(const std::string& scenario, const std::string& metric,
                       const std::string& fields) {
  return "{\"name\":\"scenario/" + scenario + "/" + metric + "\"," + fields +
         "}";
}

std::string Fmt(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

void EmitReport(const ScenarioReport& report, bool deterministic_checked,
                bool deterministic) {
  const std::string& name = report.scenario;
  double elapsed = report.elapsed_s > 0 ? report.elapsed_s : 1e-9;
  std::vector<std::string> results;
  results.push_back(JsonResult(
      name, "steps_per_s",
      "\"items_per_second\":" + Fmt(report.steps / elapsed)));
  results.push_back(JsonResult(
      name, "mutations_per_s",
      "\"items_per_second\":" + Fmt(report.mutations / elapsed)));
  results.push_back(JsonResult(
      name, "reads_per_s",
      "\"items_per_second\":" + Fmt(report.reads / elapsed)));
  // Latency quantiles are recorded for the trajectory but deliberately not
  // named cpu_time_ns: scenario latencies are host-sensitive macro numbers,
  // so the throughput series plus the correctness flags do the gating.
  results.push_back(JsonResult(
      name, "mutation_p50_ns",
      "\"value\":" + std::to_string(report.mutation_ns.p50)));
  results.push_back(JsonResult(
      name, "mutation_p99_ns",
      "\"value\":" + std::to_string(report.mutation_ns.p99)));
  results.push_back(
      JsonResult(name, "read_p50_ns",
                 "\"value\":" + std::to_string(report.read_ns.p50)));
  results.push_back(
      JsonResult(name, "read_p99_ns",
                 "\"value\":" + std::to_string(report.read_ns.p99)));
  if (report.recoveries > 0) {
    results.push_back(JsonResult(
        name, "recovery_p50_ns",
        "\"value\":" + std::to_string(report.recovery_ns.p50)));
  }
  std::string verified = "\"oracle_clean\":";
  verified += report.oracle_clean ? "true" : "false";
  verified += ",\"ledger_clean\":";
  verified += report.ledger_clean ? "true" : "false";
  if (deterministic_checked) {
    verified += ",\"deterministic\":";
    verified += deterministic ? "true" : "false";
  }
  results.push_back(JsonResult(name, "verified", verified));

  tyder::bench::EmitBenchJsonLine(
      "scenario_" + name, results,
      {{"steps", std::to_string(report.steps)},
       {"mutations", std::to_string(report.mutations)},
       {"reads", std::to_string(report.reads)},
       {"refusals", std::to_string(report.refusals)},
       {"skipped", std::to_string(report.skipped)},
       {"crashes", std::to_string(report.crashes)},
       {"power_losses", std::to_string(report.power_losses)},
       {"recoveries", std::to_string(report.recoveries)},
       {"oracle_passes", std::to_string(report.oracle_passes)},
       {"acked", std::to_string(report.acked)},
       {"nacked", std::to_string(report.nacked)},
       {"indeterminate", std::to_string(report.indeterminate)},
       {"reconnects", std::to_string(report.reconnects)},
       {"final_crc", std::to_string(report.final_crc)},
       {"final_types", std::to_string(report.final_types)},
       {"final_views", std::to_string(report.final_views)},
       {"elapsed_s", Fmt(report.elapsed_s)}});
}

void PrintSummary(const ScenarioReport& r, const char* mode) {
  std::cout << "scenario " << r.scenario << " (" << mode << "): " << r.steps
            << " steps, " << r.mutations << " mutations, " << r.reads
            << " reads, " << r.refusals << " refusals, " << r.skipped
            << " skipped";
  if (r.crashes > 0) {
    std::cout << ", " << r.crashes << " crashes (" << r.recoveries
              << " recovered, " << r.power_losses << " power losses)";
  }
  if (r.acked + r.nacked + r.indeterminate > 0) {
    std::cout << ", ledger " << r.acked << " acked / " << r.nacked
              << " nacked / " << r.indeterminate << " indeterminate";
  }
  std::cout << ", " << r.oracle_passes << " oracle passes, final crc "
            << r.final_crc << " (" << r.final_types << " types, "
            << r.final_views << " views) in " << r.elapsed_s << "s\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string pack_path;
  int port = 0;
  uint64_t seed = 0;
  bool have_seed = false;
  int repeat = 1;
  bool timed = false;
  int oracle_every = -1;
  bool check_determinism = false;
  bool print_only = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--pack") {
      const char* v = value();
      if (!v) return Usage();
      pack_path = v;
    } else if (arg == "--port") {
      const char* v = value();
      if (!v) return Usage();
      port = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return Usage();
      seed = std::strtoull(v, nullptr, 10);
      have_seed = true;
    } else if (arg == "--repeat") {
      const char* v = value();
      if (!v) return Usage();
      repeat = std::atoi(v);
    } else if (arg == "--timed") {
      timed = true;
    } else if (arg == "--oracle-every") {
      const char* v = value();
      if (!v) return Usage();
      oracle_every = std::atoi(v);
    } else if (arg == "--check-determinism") {
      check_determinism = true;
    } else if (arg == "--print") {
      print_only = true;
    } else {
      std::cerr << "tyder_workload: unknown argument '" << arg << "'\n";
      return Usage();
    }
  }
  if (pack_path.empty() || repeat < 1 || port < 0 || port > 65535) {
    return Usage();
  }

  std::ifstream in(pack_path);
  if (!in) {
    std::cerr << "tyder_workload: cannot read " << pack_path << "\n";
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  Result<ScenarioSpec> spec = tyder::workload::ParseScenario(text.str());
  if (!spec.ok()) {
    std::cerr << "tyder_workload: " << pack_path << ": "
              << spec.status().ToString() << "\n";
    return 1;
  }
  if (print_only) {
    std::cout << tyder::workload::FormatScenario(*spec);
    return 0;
  }
  if (have_seed) spec->seed = seed;

  ReplayOptions options;
  options.timed = timed;
  options.oracle_every = oracle_every;

  bool wire = port != 0;
  bool deterministic = true;
  ScenarioReport last;
  for (int run = 0; run < repeat; ++run) {
    ScenarioSpec run_spec = *spec;
    run_spec.seed = spec->seed + static_cast<uint64_t>(run);
    Workload workload = GenerateWorkload(run_spec);
    Result<ScenarioReport> report =
        wire ? ReplayOverWire(workload, static_cast<uint16_t>(port), options)
             : ReplayInProc(workload, options);
    if (!report.ok()) {
      std::cerr << "tyder_workload: " << report.status().ToString() << "\n";
      return 1;
    }
    if (!wire && check_determinism) {
      Result<ScenarioReport> again = ReplayInProc(workload, options);
      if (!again.ok()) {
        std::cerr << "tyder_workload: determinism re-run failed: "
                  << again.status().ToString() << "\n";
        return 1;
      }
      if (again->final_crc != report->final_crc ||
          again->final_types != report->final_types ||
          again->final_views != report->final_views ||
          again->mutations != report->mutations ||
          again->refusals != report->refusals) {
        deterministic = false;
        std::cerr << "tyder_workload: NON-DETERMINISTIC replay of '"
                  << report->scenario << "': crc " << report->final_crc
                  << " vs " << again->final_crc << ", mutations "
                  << report->mutations << " vs " << again->mutations << "\n";
      }
    }
    PrintSummary(*report, wire ? "wire" : "inproc");
    last = *report;
  }

  EmitReport(last, !wire && check_determinism, deterministic);
  if (!deterministic) return 1;
  return 0;
}
