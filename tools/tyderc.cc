// tyderc — the tyder command-line driver. Loads a TDL schema (with its view
// definitions) and inspects or transforms it:
//
//   tyderc <schema.tdl>                      validate + summary
//   tyderc <schema.tdl> --print              type hierarchy
//   tyderc <schema.tdl> --methods            all method signatures/bodies
//   tyderc <schema.tdl> --dot                Graphviz of the hierarchy
//   tyderc <schema.tdl> --lint               multi-method consistency report
//   tyderc <schema.tdl> --project T a,b,c V  derive Π_{a,b,c}(T) as view V
//   tyderc <schema.tdl> --no-verify          skip the behavior-preservation
//                                            verifier in later --project ops
//                                            (failures still roll the schema
//                                            back — derivation is atomic)
//   tyderc <schema.tdl> --batch <file>       derive every projection listed
//                                            in <file> (one per line:
//                                            "<Type> <a,b,c> <ViewName>"; '#'
//                                            comments and blank lines are
//                                            skipped); analysis runs on the
//                                            --jobs worker pool, commits are
//                                            serial and per-item atomic; any
//                                            failed item makes the exit
//                                            status non-zero, with one
//                                            diagnostic per failed item on
//                                            stderr (later ops still run).
//                                            With --db, --jobs N instead
//                                            runs N concurrent committers
//                                            whose WAL records share
//                                            group-commit fsync batches
//                                            (the per-batch fsync count is
//                                            printed, and lands in
//                                            --metrics as
//                                            storage.group_commit.syncs)
//   tyderc <schema.tdl> --drop <View>        drop a view (revert/detach)
//   tyderc <schema.tdl> --collapse           collapse empty surrogates
//   tyderc <schema.tdl> --serialize          dump the (post-ops) schema
//   tyderc <schema.tdl> --export             re-emit the schema as TDL
//   tyderc <schema.tdl> --stats              hierarchy metrics
//
// Durable mode (src/storage/durable_catalog.h):
//
//   tyderc --db <dir> [ops]                  open/recover the database in
//                                            <dir>; mutating ops (--project,
//                                            --batch, --drop, --collapse)
//                                            are WAL-logged and crash-safe
//   tyderc <schema.tdl> --db <dir>           seed a fresh database from the
//                                            TDL file (initial snapshot)
//   tyderc --db <dir> --compact              write a snapshot, truncate the
//                                            WAL
//   tyderc --db <dir> --health               durability health report: state
//                                            (healthy / DEGRADED read-only,
//                                            with the cause), last lsn,
//                                            recovery summary, I/O error
//                                            counters. Exits 3 when the
//                                            database is degraded.
//
// Exit codes: 0 success, 1 operation failure, 2 usage error, 3 the database
// is in read-only degraded mode (a failed fsync made durability unprovable;
// see docs/ROBUSTNESS.md "Degraded mode").
//
// Execution modifiers:
//
//   --jobs <N>           analysis threads for in-memory --batch, concurrent
//                        committers for durable --batch (default 1)
//   --list-faults        print every registered fault point name and exit
//                        (the crash-injection harness enumerates these)
//
// Observability modifiers (composable with everything above; see
// docs/OBSERVABILITY.md):
//
//   --trace              print the span/narration trace of the whole run
//   --trace-json=<file>  write the trace in Chrome trace_event format
//                        (load via chrome://tracing or ui.perfetto.dev)
//   --metrics            print process counters/histograms after the run
//   --stats-jsonl=<file> append periodic tyder-stats-v1 JSON lines to <file>
//                        for the duration of the run (`tyder-stat`
//                        summarizes the series)
//   --stats-period-ms=<n>  snapshot cadence for --stats-jsonl (default 1000)
//
// --metrics and --stats-* need the metrics layer compiled in; a tyderc built
// with -DTYDER_OBS=OFF rejects them with a clear error rather than silently
// printing nothing.
//
// Flags compose left to right; transforms apply before later inspections.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "catalog/export_tdl.h"
#include "catalog/serialize.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "core/collapse.h"
#include "core/derive_batch.h"
#include "core/projection.h"
#include "lang/analyzer.h"
#include "methods/consistency.h"
#include "mir/printer.h"
#include "objmodel/hierarchy_analysis.h"
#include "objmodel/schema_printer.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/snapshotter.h"
#include "storage/durable_catalog.h"

namespace tyder {
namespace {

int Fail(const Status& status) {
  std::cerr << "tyderc: " << status << "\n";
  return 1;
}

// Durable-mode failures check for degraded mode, which gets its own exit
// code (3) so scripts can tell "this operation failed" from "the database
// refuses all mutations until Reopen re-validates the on-disk state".
int FailDb(const std::optional<storage::DurableCatalog>& db,
           const Status& status) {
  std::cerr << "tyderc: " << status << "\n";
  if (db.has_value() && db->degraded()) {
    std::cerr << "tyderc: database is in read-only degraded mode; run "
                 "`tyderc --db <dir> --health` for details\n";
    return 3;
  }
  return 1;
}

int Usage() {
  std::cerr << "usage: tyderc [<schema.tdl>] [--db <dir>] [--print] "
               "[--methods] [--dot] "
               "[--lint] [--no-verify] "
               "[--project <Type> <a,b,c> <ViewName>] [--batch <file>] "
               "[--drop <View>] [--collapse] [--compact] [--health] "
               "[--serialize] [--export] [--stats] [--jobs <N>] "
               "[--list-faults] "
               "[--trace] [--trace-json=<file>] [--metrics] "
               "[--stats-jsonl=<file>] [--stats-period-ms=<n>]\n";
  return 2;
}

// One line of a --batch file, before name resolution.
struct BatchLine {
  std::string source;
  std::vector<std::string> attrs;
  std::string view;
  int lineno = 0;
};

// Parses a --batch file: one projection per line, "<Type> <a,b,c> <ViewName>"
// (the same three operands --project takes). '#' starts a comment; blank
// lines are skipped.
Result<std::vector<BatchLine>> ParseBatchFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open batch file '" + path + "'");
  std::vector<BatchLine> lines;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    BatchLine item;
    item.lineno = lineno;
    std::string attrs;
    if (!(fields >> item.source)) continue;  // blank / comment-only line
    std::string garbage;
    if (!(fields >> attrs >> item.view) || (fields >> garbage)) {
      return Status::ParseError(path + ":" + std::to_string(lineno) +
                                ": expected '<Type> <a,b,c> <ViewName>'");
    }
    item.attrs = SplitAndTrim(attrs, ',');
    lines.push_back(std::move(item));
  }
  return lines;
}

void PrintApplicable(const Schema& schema, std::string_view view,
                     const std::vector<MethodId>& applicable) {
  std::cout << "derived " << view << "; applicable methods:";
  for (MethodId m : applicable) {
    std::cout << " " << schema.method(m).label.view();
  }
  std::cout << "\n";
}

// In-memory --batch: parallel analysis + serial atomic apply via DeriveBatch.
// Returns the number of failed items.
Result<size_t> RunBatchInMemory(Schema& schema,
                                const std::vector<BatchLine>& lines,
                                const std::string& path, int jobs,
                                const ProjectionOptions& projection_options) {
  std::vector<ProjectionSpec> specs;
  for (const BatchLine& item : lines) {
    Result<ProjectionSpec> spec =
        ResolveProjectionSpec(schema, item.source, item.attrs, item.view);
    if (!spec.ok()) {
      return spec.status().WithContext(path + ":" +
                                       std::to_string(item.lineno));
    }
    specs.push_back(std::move(*spec));
  }
  BatchDeriveOptions batch_options;
  batch_options.jobs = jobs;
  batch_options.apply = true;
  batch_options.verify = projection_options.verify;
  BatchDeriveReport report = DeriveBatch(schema, specs, batch_options);
  std::cout << "batch: " << report.items.size() << " projections, "
            << batch_options.jobs << " jobs\n";
  for (const BatchItemResult& item : report.items) {
    if (item.applied) {
      std::cout << "  ";
      PrintApplicable(schema, item.spec.view_name, item.applicability.applicable);
    } else {
      std::cout << "  FAILED " << item.spec.view_name << "\n";
      std::cerr << "tyderc: batch item '" << item.spec.view_name
                << "' failed: " << item.status << "\n";
    }
  }
  std::cout << "batch: " << report.applied << " applied, " << report.failed
            << " failed\n";
  return static_cast<size_t>(report.failed);
}

// Durable --batch: every item commits (and is WAL-logged) individually, but
// with --jobs N > 1 the items are pushed by N concurrent committers whose
// WAL records ride shared group-commit batches — a handful of fsyncs per
// batch window instead of one per item (docs/PERFORMANCE.md "Schema epochs
// and group commit"). Per-item atomicity, ordering of the printed report
// (input order), and failure diagnostics are identical to the serial path.
// Returns the number of failed items.
size_t RunBatchDurable(storage::DurableCatalog& db,
                       const std::vector<BatchLine>& lines,
                       const ProjectionOptions& projection_options, int jobs) {
#if TYDER_OBS_ENABLED
  const obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  uint64_t syncs_before = registry.CounterValue("storage.group_commit.syncs");
#endif
  int workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(std::max(jobs, 1)), lines.size()));
  std::cout << "batch: " << lines.size() << " projections (durable, "
            << workers
            << (workers == 1 ? " committer)\n" : " concurrent committers)\n");
  std::vector<Status> results(lines.size(), Status::OK());
  std::atomic<size_t> cursor{0};
  auto committer = [&] {
    for (size_t i = cursor.fetch_add(1); i < lines.size();
         i = cursor.fetch_add(1)) {
      const BatchLine& item = lines[i];
      Result<const ViewDef*> view = db.DefineProjectionView(
          item.view, item.source, item.attrs, projection_options);
      if (!view.ok()) results[i] = view.status();
    }
  };
  if (workers == 1) {
    committer();
  } else {
    std::vector<std::thread> pool;
    for (int w = 0; w < workers; ++w) pool.emplace_back(committer);
    for (std::thread& t : pool) t.join();
  }
  // Quiesced: report in input order, resolving applied views by name (a
  // ViewDef pointer taken mid-batch could dangle across concurrent commits).
  size_t failed = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    const BatchLine& item = lines[i];
    if (results[i].ok()) {
      Result<const ViewDef*> view = db.catalog().FindView(item.view);
      std::cout << "  ";
      PrintApplicable(db.catalog().schema(), item.view,
                      view.ok() ? (*view)->derivation.applicability.applicable
                                : std::vector<MethodId>{});
    } else {
      ++failed;
      std::cout << "  FAILED " << item.view << "\n";
      std::cerr << "tyderc: batch item '" << item.view
                << "' failed: " << results[i] << "\n";
    }
  }
  std::cout << "batch: " << lines.size() - failed << " applied, " << failed
            << " failed\n";
#if TYDER_OBS_ENABLED
  std::cout << "batch: "
            << registry.CounterValue("storage.group_commit.syncs") -
                   syncs_before
            << " wal fsyncs for " << lines.size() - failed << " commits\n";
#endif
  return failed;
}

Result<Catalog> LoadTdlFile(const std::string& schema_path) {
  std::ifstream in(schema_path);
  if (!in) {
    return Status::NotFound("cannot open '" + schema_path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  obs::ScopedSpan span("LoadTdl");
  span.Attr("path", schema_path);
  return LoadTdl(buffer.str());
}

int RunOps(const std::string& schema_path, const std::string& db_dir,
           const std::vector<std::string>& ops, int jobs) {
  std::optional<Catalog> owned;          // file mode
  std::optional<storage::DurableCatalog> db;  // --db mode
  Catalog* catalog = nullptr;

  if (!db_dir.empty()) {
    Result<storage::DurableCatalog> opened =
        storage::DurableCatalog::Open(db_dir);
    if (!opened.ok()) return Fail(opened.status());
    db.emplace(std::move(opened).value());
    for (const std::string& warning : db->recovery().warnings) {
      std::cerr << "tyderc: recovery: " << warning << "\n";
    }
    if (!schema_path.empty()) {
      Result<Catalog> seed = LoadTdlFile(schema_path);
      if (!seed.ok()) return Fail(seed.status());
      Status seeded = db->Seed(std::move(*seed));
      if (!seeded.ok()) return Fail(seeded);
      std::cout << "seeded db '" << db_dir << "' from " << schema_path << "\n";
    }
    catalog = &db->catalog();
  } else {
    if (schema_path.empty()) return Usage();
    Result<Catalog> loaded = LoadTdlFile(schema_path);
    if (!loaded.ok()) return Fail(loaded.status());
    owned.emplace(std::move(loaded).value());
    catalog = &*owned;
  }
  Schema& schema = catalog->schema();

  if (ops.empty()) {
    std::cout << "OK: " << schema.types().NumTypes() << " types, "
              << schema.types().NumAttributes() << " attributes, "
              << schema.NumGenericFunctions() << " generic functions, "
              << schema.NumMethods() << " methods, "
              << catalog->views().size() << " views\n";
    if (db.has_value()) {
      const storage::RecoveryInfo& rec = db->recovery();
      std::cout << "db: last lsn " << db->last_lsn() << ", "
                << rec.replayed_records << " records replayed";
      if (rec.snapshot_loaded) {
        std::cout << " over snapshot lsn " << rec.snapshot_lsn;
      }
      std::cout << "\n";
    }
    return 0;
  }

  // Per-item failures (--batch) diagnose-and-continue; everything else is
  // fail-fast because later ops depend on the op that failed.
  int exit_code = 0;
  ProjectionOptions projection_options;
  for (size_t i = 0; i < ops.size(); ++i) {
    const std::string& flag = ops[i];
    obs::ScopedSpan span(flag);
    if (flag == "--no-verify") {
      // DeriveProjection stays transactional either way: a failed derivation
      // rolls the schema back whether or not the verifier runs.
      projection_options.verify = false;
    } else if (flag == "--print") {
      std::cout << PrintHierarchy(schema.types());
    } else if (flag == "--methods") {
      std::cout << PrintAllMethods(schema);
    } else if (flag == "--dot") {
      std::cout << ToDot(schema.types());
    } else if (flag == "--stats") {
      std::cout << HierarchyStatsToString(AnalyzeHierarchy(schema.types()));
      std::vector<TypeId> non_c3 = TypesWithoutC3Order(schema.types());
      if (!non_c3.empty()) {
        std::cout << "types without a C3 order:";
        for (TypeId t : non_c3) {
          std::cout << " " << schema.types().TypeName(t);
        }
        std::cout << "\n";
      }
    } else if (flag == "--lint") {
      std::vector<ConsistencyIssue> issues = CheckMethodConsistency(schema);
      if (issues.empty()) {
        std::cout << "lint: no multi-method consistency issues\n";
      } else {
        std::cout << ConsistencyReport(schema, issues);
      }
    } else if (flag == "--project") {
      if (i + 3 >= ops.size()) return Usage();
      std::string source = ops[++i];
      std::vector<std::string> attrs = SplitAndTrim(ops[++i], ',');
      std::string view = ops[++i];
      if (db.has_value()) {
        Result<const ViewDef*> result =
            db->DefineProjectionView(view, source, attrs, projection_options);
        if (!result.ok()) return FailDb(db, result.status());
        PrintApplicable(schema, view,
                        (*result)->derivation.applicability.applicable);
      } else {
        Result<DerivationResult> result = DeriveProjectionByName(
            schema, source, attrs, view, projection_options);
        if (!result.ok()) return Fail(result.status());
        PrintApplicable(schema, view, result->applicability.applicable);
      }
    } else if (flag == "--batch") {
      if (i + 1 >= ops.size()) return Usage();
      std::string path = ops[++i];
      Result<std::vector<BatchLine>> lines = ParseBatchFile(path);
      if (!lines.ok()) return Fail(lines.status());
      size_t failed = 0;
      if (db.has_value()) {
        failed = RunBatchDurable(*db, *lines, projection_options, jobs);
      } else {
        Result<size_t> in_memory = RunBatchInMemory(schema, *lines, path, jobs,
                                                    projection_options);
        if (!in_memory.ok()) return Fail(in_memory.status());
        failed = *in_memory;
      }
      if (failed > 0) {
        exit_code = db.has_value() && db->degraded() ? 3 : 1;
      }
    } else if (flag == "--drop") {
      if (i + 1 >= ops.size()) return Usage();
      std::string view = ops[++i];
      Status dropped =
          db.has_value() ? db->DropView(view) : catalog->DropView(view);
      if (!dropped.ok()) return FailDb(db, dropped);
      std::cout << "dropped " << view << "\n";
    } else if (flag == "--collapse") {
      Result<CollapseReport> report =
          db.has_value() ? db->Collapse() : catalog->Collapse();
      if (!report.ok()) return FailDb(db, report.status());
      std::cout << "collapsed " << report->collapsed.size()
                << " empty surrogates\n";
    } else if (flag == "--compact") {
      if (!db.has_value()) {
        std::cerr << "tyderc: --compact requires --db\n";
        return 2;
      }
      Status compacted = db->Compact();
      if (!compacted.ok()) return FailDb(db, compacted);
      std::cout << "compacted db at lsn " << db->last_lsn() << "\n";
    } else if (flag == "--health") {
      if (!db.has_value()) {
        std::cerr << "tyderc: --health requires --db\n";
        return 2;
      }
      const storage::RecoveryInfo& rec = db->recovery();
      std::cout << "health: db '" << db->dir() << "'\n"
                << "  state: "
                << (db->degraded() ? "DEGRADED (read-only)" : "healthy")
                << "\n";
      if (db->degraded()) {
        std::cout << "  cause: " << db->degraded_status().message() << "\n";
      }
      std::cout << "  last lsn: " << db->last_lsn() << "\n"
                << "  recovery: " << rec.replayed_records
                << " records replayed";
      if (rec.snapshot_loaded) {
        std::cout << " over snapshot lsn " << rec.snapshot_lsn;
      }
      std::cout << ", " << rec.warnings.size() << " warnings\n";
#if TYDER_OBS_ENABLED
      const obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      std::cout << "  io errors: "
                << registry.CounterValue("storage.io_errors") << "\n"
                << "  degraded entries: "
                << registry.CounterValue("storage.degraded_entries") << "\n";
#endif
      if (db->degraded()) exit_code = 3;
    } else if (flag == "--serialize") {
      std::cout << SerializeSchema(schema);
    } else if (flag == "--export") {
      Result<std::string> tdl = ExportTdl(*catalog);
      if (!tdl.ok()) return Fail(tdl.status());
      std::cout << *tdl;
    } else {
      return Usage();
    }
  }
  return exit_code;
}

// Operand count of each op flag; -1 for "not an op".
int OpArity(const std::string& flag) {
  if (flag == "--project") return 3;
  if (flag == "--batch" || flag == "--drop") return 1;
  if (flag == "--print" || flag == "--methods" || flag == "--dot" ||
      flag == "--lint" || flag == "--no-verify" || flag == "--collapse" ||
      flag == "--compact" || flag == "--health" || flag == "--serialize" ||
      flag == "--export" || flag == "--stats") {
    return 0;
  }
  return -1;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  // Peel off the observability/execution modifiers; everything else keeps
  // its left-to-right op semantics.
  bool want_trace = false;
  int jobs = 1;
  std::string trace_json_path;
  std::string schema_path;
  std::string db_dir;
  std::vector<std::string> ops;
#if TYDER_OBS_ENABLED
  bool want_metrics = false;
  std::string stats_jsonl_path;
  int stats_period_ms = 1000;
#endif
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--trace") {
      want_trace = true;
#if TYDER_OBS_ENABLED
    } else if (arg == "--metrics") {
      want_metrics = true;
    } else if (arg.rfind("--stats-jsonl=", 0) == 0) {
      stats_jsonl_path = arg.substr(std::string("--stats-jsonl=").size());
      if (stats_jsonl_path.empty()) return Usage();
    } else if (arg.rfind("--stats-period-ms=", 0) == 0) {
      stats_period_ms =
          std::atoi(arg.substr(std::string("--stats-period-ms=").size()).c_str());
      if (stats_period_ms < 1) return Usage();
#else
    } else if (arg == "--metrics" || arg.rfind("--stats-jsonl=", 0) == 0 ||
               arg.rfind("--stats-period-ms=", 0) == 0) {
      std::cerr << "tyderc: " << arg.substr(0, arg.find('='))
                << " requires the metrics layer, but this tyderc was built "
                   "with -DTYDER_OBS=OFF\n";
      return 2;
#endif
    } else if (arg == "--list-faults") {
      for (const std::string& name : failpoint::AllFaultPointNames()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) return Usage();
      jobs = std::atoi(argv[++i]);
      if (jobs < 1) return Usage();
    } else if (arg == "--db") {
      if (i + 1 >= argc) return Usage();
      db_dir = argv[++i];
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      trace_json_path = arg.substr(std::string("--trace-json=").size());
      if (trace_json_path.empty()) return Usage();
    } else if (int arity = OpArity(arg); arity >= 0) {
      ops.push_back(arg);
      for (int n = 0; n < arity; ++n) {
        if (i + 1 >= argc) return Usage();
        ops.push_back(argv[++i]);
      }
    } else if (schema_path.empty() && arg.rfind("--", 0) != 0) {
      schema_path = arg;
    } else {
      return Usage();
    }
  }
  if (schema_path.empty() && db_dir.empty()) return Usage();

  obs::Tracer tracer;
  std::optional<obs::ScopedTracer> install;
  if (want_trace || !trace_json_path.empty()) install.emplace(&tracer);

#if TYDER_OBS_ENABLED
  std::optional<obs::StatsSnapshotter> snapshotter;
  if (!stats_jsonl_path.empty()) {
    snapshotter.emplace(
        obs::SnapshotterOptions{stats_jsonl_path, stats_period_ms});
    if (!snapshotter->Start()) {
      std::cerr << "tyderc: cannot write '" << stats_jsonl_path << "'\n";
      return 1;
    }
  }
#endif

  int exit_code = RunOps(schema_path, db_dir, ops, jobs);

#if TYDER_OBS_ENABLED
  if (snapshotter.has_value()) snapshotter->Stop();
#endif

  if (want_trace) {
    std::cout << "=== trace ===\n" << obs::TraceToText(tracer.events());
  }
  if (!trace_json_path.empty()) {
    std::ofstream out(trace_json_path);
    if (!out) {
      std::cerr << "tyderc: cannot write '" << trace_json_path << "'\n";
      return 1;
    }
    out << obs::TraceToChromeJson(tracer.events()) << "\n";
  }
#if TYDER_OBS_ENABLED
  if (want_metrics) {
    std::cout << "=== metrics ===\n"
              << obs::MetricsToText(obs::MetricsRegistry::Global());
  }
#endif
  return exit_code;
}

}  // namespace
}  // namespace tyder

int main(int argc, char** argv) { return tyder::Run(argc, argv); }
