// tyderc — the tyder command-line driver. Loads a TDL schema (with its view
// definitions) and inspects or transforms it:
//
//   tyderc <schema.tdl>                      validate + summary
//   tyderc <schema.tdl> --print              type hierarchy
//   tyderc <schema.tdl> --methods            all method signatures/bodies
//   tyderc <schema.tdl> --dot                Graphviz of the hierarchy
//   tyderc <schema.tdl> --lint               multi-method consistency report
//   tyderc <schema.tdl> --project T a,b,c V  derive Π_{a,b,c}(T) as view V
//   tyderc <schema.tdl> --no-verify          skip the behavior-preservation
//                                            verifier in later --project ops
//                                            (failures still roll the schema
//                                            back — derivation is atomic)
//   tyderc <schema.tdl> --batch <file>       derive every projection listed
//                                            in <file> (one per line:
//                                            "<Type> <a,b,c> <ViewName>"; '#'
//                                            comments and blank lines are
//                                            skipped); analysis runs on the
//                                            --jobs worker pool, commits are
//                                            serial and per-item atomic
//   tyderc <schema.tdl> --collapse           collapse empty surrogates
//   tyderc <schema.tdl> --serialize          dump the (post-ops) schema
//   tyderc <schema.tdl> --export             re-emit the schema as TDL
//   tyderc <schema.tdl> --stats              hierarchy metrics
//
// Execution modifiers:
//
//   --jobs <N>           analysis threads for --batch (default 1)
//
// Observability modifiers (composable with everything above; see
// docs/OBSERVABILITY.md):
//
//   --trace              print the span/narration trace of the whole run
//   --trace-json=<file>  write the trace in Chrome trace_event format
//                        (load via chrome://tracing or ui.perfetto.dev)
//   --metrics            print process counters/histograms after the run
//
// Flags compose left to right; transforms apply before later inspections.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/export_tdl.h"
#include "catalog/serialize.h"
#include "common/string_util.h"
#include "core/collapse.h"
#include "core/derive_batch.h"
#include "core/projection.h"
#include "lang/analyzer.h"
#include "methods/consistency.h"
#include "mir/printer.h"
#include "objmodel/hierarchy_analysis.h"
#include "objmodel/schema_printer.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace tyder {
namespace {

int Fail(const Status& status) {
  std::cerr << "tyderc: " << status << "\n";
  return 1;
}

int Usage() {
  std::cerr << "usage: tyderc <schema.tdl> [--print] [--methods] [--dot] "
               "[--lint] [--no-verify] "
               "[--project <Type> <a,b,c> <ViewName>] [--batch <file>] "
               "[--collapse] "
               "[--serialize] [--export] [--stats] [--jobs <N>] "
               "[--trace] [--trace-json=<file>] [--metrics]\n";
  return 2;
}

// Parses a --batch file: one projection per line, "<Type> <a,b,c> <ViewName>"
// (the same three operands --project takes). '#' starts a comment; blank
// lines are skipped.
Result<std::vector<ProjectionSpec>> LoadBatchFile(const Schema& schema,
                                                  const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open batch file '" + path + "'");
  std::vector<ProjectionSpec> specs;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string source, attrs, view;
    if (!(fields >> source)) continue;  // blank / comment-only line
    std::string garbage;
    if (!(fields >> attrs >> view) || (fields >> garbage)) {
      return Status::ParseError(path + ":" + std::to_string(lineno) +
                                ": expected '<Type> <a,b,c> <ViewName>'");
    }
    Result<ProjectionSpec> spec = ResolveProjectionSpec(
        schema, source, SplitAndTrim(attrs, ','), view);
    if (!spec.ok()) {
      return spec.status().WithContext(path + ":" + std::to_string(lineno));
    }
    specs.push_back(std::move(*spec));
  }
  return specs;
}

int RunOps(const std::string& schema_path,
           const std::vector<std::string>& ops, int jobs) {
  std::ifstream in(schema_path);
  if (!in) {
    std::cerr << "tyderc: cannot open '" << schema_path << "'\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  Result<Catalog> catalog = [&] {
    obs::ScopedSpan span("LoadTdl");
    span.Attr("path", schema_path);
    return LoadTdl(buffer.str());
  }();
  if (!catalog.ok()) return Fail(catalog.status());
  Schema& schema = catalog->schema();

  if (ops.empty()) {
    std::cout << "OK: " << schema.types().NumTypes() << " types, "
              << schema.types().NumAttributes() << " attributes, "
              << schema.NumGenericFunctions() << " generic functions, "
              << schema.NumMethods() << " methods, "
              << catalog->views().size() << " views\n";
    return 0;
  }

  ProjectionOptions projection_options;
  for (size_t i = 0; i < ops.size(); ++i) {
    const std::string& flag = ops[i];
    obs::ScopedSpan span(flag);
    if (flag == "--no-verify") {
      // DeriveProjection stays transactional either way: a failed derivation
      // rolls the schema back whether or not the verifier runs.
      projection_options.verify = false;
    } else if (flag == "--print") {
      std::cout << PrintHierarchy(schema.types());
    } else if (flag == "--methods") {
      std::cout << PrintAllMethods(schema);
    } else if (flag == "--dot") {
      std::cout << ToDot(schema.types());
    } else if (flag == "--stats") {
      std::cout << HierarchyStatsToString(AnalyzeHierarchy(schema.types()));
      std::vector<TypeId> non_c3 = TypesWithoutC3Order(schema.types());
      if (!non_c3.empty()) {
        std::cout << "types without a C3 order:";
        for (TypeId t : non_c3) {
          std::cout << " " << schema.types().TypeName(t);
        }
        std::cout << "\n";
      }
    } else if (flag == "--lint") {
      std::vector<ConsistencyIssue> issues = CheckMethodConsistency(schema);
      if (issues.empty()) {
        std::cout << "lint: no multi-method consistency issues\n";
      } else {
        std::cout << ConsistencyReport(schema, issues);
      }
    } else if (flag == "--project") {
      if (i + 3 >= ops.size()) return Usage();
      std::string source = ops[++i];
      std::vector<std::string> attrs = SplitAndTrim(ops[++i], ',');
      std::string view = ops[++i];
      Result<DerivationResult> result =
          DeriveProjectionByName(schema, source, attrs, view,
                                 projection_options);
      if (!result.ok()) return Fail(result.status());
      std::cout << "derived " << view << "; applicable methods:";
      for (MethodId m : result->applicability.applicable) {
        std::cout << " " << schema.method(m).label.view();
      }
      std::cout << "\n";
    } else if (flag == "--batch") {
      if (i + 1 >= ops.size()) return Usage();
      std::string path = ops[++i];
      Result<std::vector<ProjectionSpec>> specs =
          LoadBatchFile(schema, path);
      if (!specs.ok()) return Fail(specs.status());
      BatchDeriveOptions batch_options;
      batch_options.jobs = jobs;
      batch_options.apply = true;
      batch_options.verify = projection_options.verify;
      BatchDeriveReport report = DeriveBatch(schema, *specs, batch_options);
      std::cout << "batch: " << report.items.size() << " projections, "
                << batch_options.jobs << " jobs\n";
      for (const BatchItemResult& item : report.items) {
        if (item.applied) {
          std::cout << "  derived " << item.spec.view_name
                    << "; applicable methods:";
          for (MethodId m : item.applicability.applicable) {
            std::cout << " " << schema.method(m).label.view();
          }
          std::cout << "\n";
        } else {
          std::cout << "  FAILED " << item.spec.view_name << ": "
                    << item.status << "\n";
        }
      }
      std::cout << "batch: " << report.applied << " applied, "
                << report.failed << " failed\n";
      if (report.failed > 0) return 1;
    } else if (flag == "--collapse") {
      Result<CollapseReport> report = catalog->Collapse();
      if (!report.ok()) return Fail(report.status());
      std::cout << "collapsed " << report->collapsed.size()
                << " empty surrogates\n";
    } else if (flag == "--serialize") {
      std::cout << SerializeSchema(schema);
    } else if (flag == "--export") {
      Result<std::string> tdl = ExportTdl(*catalog);
      if (!tdl.ok()) return Fail(tdl.status());
      std::cout << *tdl;
    } else {
      return Usage();
    }
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  // Peel off the observability modifiers; everything else keeps its
  // left-to-right op semantics.
  bool want_trace = false;
  bool want_metrics = false;
  int jobs = 1;
  std::string trace_json_path;
  std::string schema_path;
  std::vector<std::string> ops;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--trace") {
      want_trace = true;
    } else if (arg == "--metrics") {
      want_metrics = true;
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) return Usage();
      jobs = std::atoi(argv[++i]);
      if (jobs < 1) return Usage();
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      trace_json_path = arg.substr(std::string("--trace-json=").size());
      if (trace_json_path.empty()) return Usage();
    } else if (schema_path.empty()) {
      schema_path = arg;
    } else {
      ops.push_back(arg);
    }
  }
  if (schema_path.empty()) return Usage();

  obs::Tracer tracer;
  std::optional<obs::ScopedTracer> install;
  if (want_trace || !trace_json_path.empty()) install.emplace(&tracer);

  int exit_code = RunOps(schema_path, ops, jobs);

  if (want_trace) {
    std::cout << "=== trace ===\n" << obs::TraceToText(tracer.events());
  }
  if (!trace_json_path.empty()) {
    std::ofstream out(trace_json_path);
    if (!out) {
      std::cerr << "tyderc: cannot write '" << trace_json_path << "'\n";
      return 1;
    }
    out << obs::TraceToChromeJson(tracer.events()) << "\n";
  }
  if (want_metrics) {
    std::cout << "=== metrics ===\n"
              << obs::MetricsToText(obs::MetricsRegistry::Global());
  }
  return exit_code;
}

}  // namespace
}  // namespace tyder

int main(int argc, char** argv) { return tyder::Run(argc, argv); }
