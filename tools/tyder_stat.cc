// tyder-stat — summarize and diff tyder-stats-v1 JSONL time series (the
// files `tyderc --stats-jsonl=FILE` and obs::StatsSnapshotter append to).
//
//   tyder-stat <series.jsonl>             summary: counter deltas and rates
//                                         over the series, final histogram
//                                         quantiles, recorder depth
//   tyder-stat --tail <series.jsonl>      print the last snapshot, pretty
//   tyder-stat --diff <a.jsonl> <b.jsonl> compare the final snapshots of two
//                                         series (counter deltas b - a)
//
// The parser (tools/tyder_stat_parser.h) accepts exactly the JSON subset the
// snapshotter emits (objects, strings — including \uXXXX escapes, decoded to
// UTF-8 — and integer numbers); an unparseable *trailing* line is skipped —
// a snapshotter killed mid-write leaves one — but a file with no valid line
// at all is an error. Exit status: 0 ok, 1 bad input, 2 usage.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "tyder_stat_parser.h"

namespace {

using tyder_stat::Parser;
using tyder_stat::StatsLine;

// Reads every parseable line; reports (on stderr) lines that fail. Only the
// final line may fail silently — a crashed writer tears at most the tail.
std::optional<std::vector<StatsLine>> ReadSeries(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "tyder-stat: cannot open '%s'\n", path.c_str());
    return std::nullopt;
  }
  std::vector<StatsLine> lines;
  std::string line;
  int lineno = 0;
  int bad_interior = 0;
  int last_bad_lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    StatsLine parsed;
    if (Parser(line).Parse(&parsed)) {
      lines.push_back(std::move(parsed));
    } else {
      if (last_bad_lineno != 0) ++bad_interior;
      last_bad_lineno = lineno;
    }
  }
  if (last_bad_lineno != 0 && last_bad_lineno != lineno) ++bad_interior;
  if (bad_interior > 0) {
    std::fprintf(stderr,
                 "tyder-stat: %s: %d unparseable non-trailing line(s)\n",
                 path.c_str(), bad_interior);
    return std::nullopt;
  }
  if (lines.empty()) {
    std::fprintf(stderr, "tyder-stat: %s: no tyder-stats-v1 lines\n",
                 path.c_str());
    return std::nullopt;
  }
  return lines;
}

void PrintSnapshot(const StatsLine& snap) {
  std::printf("seq %" PRId64 " at ts_ms %" PRId64 "\n", snap.seq, snap.ts_ms);
  std::printf("counters:\n");
  for (const auto& [name, value] : snap.counters) {
    std::printf("  %-40s %12" PRId64 "\n", name.c_str(), value);
  }
  std::printf("histograms:\n");
  for (const auto& [name, h] : snap.histograms) {
    auto field = [&](const char* key) {
      auto it = h.find(key);
      return it == h.end() ? int64_t{0} : it->second;
    };
    std::printf("  %-40s count=%" PRId64 " min=%" PRId64 " max=%" PRId64
                " p50=%" PRId64 " p95=%" PRId64 " p99=%" PRId64 "\n",
                name.c_str(), field("count"), field("min"), field("max"),
                field("p50"), field("p95"), field("p99"));
  }
  std::printf("recorder: %" PRId64 " thread(s), %" PRId64 " event(s)\n",
              snap.recorder_threads, snap.recorder_events);
}

int Summarize(const std::string& path) {
  auto series = ReadSeries(path);
  if (!series) return 1;
  const StatsLine& first = series->front();
  const StatsLine& last = series->back();
  double span_s =
      static_cast<double>(last.ts_ms - first.ts_ms) / 1000.0;
  std::printf("%s: %zu snapshot(s) over %.3fs (seq %" PRId64 "..%" PRId64
              ")\n",
              path.c_str(), series->size(), span_s, first.seq, last.seq);
  std::printf("%-40s %12s %12s %12s\n", "counter", "first", "last", "rate/s");
  for (const auto& [name, end_value] : last.counters) {
    auto it = first.counters.find(name);
    int64_t start_value = it == first.counters.end() ? 0 : it->second;
    double rate = span_s > 0
                      ? static_cast<double>(end_value - start_value) / span_s
                      : 0.0;
    std::printf("%-40s %12" PRId64 " %12" PRId64 " %12.1f\n", name.c_str(),
                start_value, end_value, rate);
  }
  std::printf("--- final snapshot ---\n");
  PrintSnapshot(last);
  return 0;
}

int Tail(const std::string& path) {
  auto series = ReadSeries(path);
  if (!series) return 1;
  PrintSnapshot(series->back());
  return 0;
}

int Diff(const std::string& path_a, const std::string& path_b) {
  auto series_a = ReadSeries(path_a);
  auto series_b = ReadSeries(path_b);
  if (!series_a || !series_b) return 1;
  const StatsLine& a = series_a->back();
  const StatsLine& b = series_b->back();
  std::printf("%-40s %12s %12s %12s\n", "counter", path_a.c_str(),
              path_b.c_str(), "delta");
  std::map<std::string, int64_t> names = a.counters;
  names.insert(b.counters.begin(), b.counters.end());
  for (const auto& [name, ignored] : names) {
    auto find = [&](const StatsLine& line) {
      auto it = line.counters.find(name);
      return it == line.counters.end() ? int64_t{0} : it->second;
    };
    int64_t va = find(a);
    int64_t vb = find(b);
    std::printf("%-40s %12" PRId64 " %12" PRId64 " %+12" PRId64 "\n",
                name.c_str(), va, vb, vb - va);
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tyder-stat <series.jsonl>\n"
               "       tyder-stat --tail <series.jsonl>\n"
               "       tyder-stat --diff <a.jsonl> <b.jsonl>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 1 && args[0].rfind("--", 0) != 0) {
    return Summarize(args[0]);
  }
  if (args.size() == 2 && args[0] == "--tail") return Tail(args[1]);
  if (args.size() == 3 && args[0] == "--diff") return Diff(args[1], args[2]);
  return Usage();
}
