// The tyder-stats-v1 JSON-subset parser behind tyder-stat, extracted so the
// unit tests (tests/tools/tyder_stat_parser_test.cc) can drive it directly.
// Header-only and dependency-free on purpose: tyder-stat links no libtyder
// and must stay buildable against a -DTYDER_OBS=OFF tree.
//
// Accepted subset: objects, strings (with the JSON escapes \" \\ \/ \n \t
// \r and \uXXXX), and integer numbers — exactly what the snapshotter emits,
// plus \uXXXX so stats series that pass through standard JSON re-emitters
// (python -m json.tool, jq) still parse. \uXXXX decodes to UTF-8: BMP code
// points directly, surrogate pairs combined into their supplementary code
// point. A lone/unpaired surrogate or a malformed escape fails the line
// (the parser never guesses).

#ifndef TYDER_TOOLS_TYDER_STAT_PARSER_H_
#define TYDER_TOOLS_TYDER_STAT_PARSER_H_

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>

namespace tyder_stat {

struct StatsLine {
  int64_t ts_ms = 0;
  int64_t seq = 0;
  std::map<std::string, int64_t> counters;
  // histogram name -> {count,min,max,sum,p50,p95,p99}
  std::map<std::string, std::map<std::string, int64_t>> histograms;
  int64_t recorder_threads = 0;
  int64_t recorder_events = 0;
};

// Minimal recursive-descent parser over one line. Fails (returns false) on
// anything outside the emitted subset rather than guessing.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(StatsLine* out) {
    if (!Expect('{')) return false;
    bool saw_schema = false;
    if (!ParseMembers([&](const std::string& key) {
          if (key == "schema") {
            std::string schema;
            if (!ParseString(&schema)) return false;
            saw_schema = schema == "tyder-stats-v1";
            return saw_schema;
          }
          if (key == "ts_ms") return ParseInt(&out->ts_ms);
          if (key == "seq") return ParseInt(&out->seq);
          if (key == "counters") return ParseIntMap(&out->counters);
          if (key == "histograms") return ParseHistograms(&out->histograms);
          if (key == "recorder") {
            return ParseObject([&](const std::string& inner) {
              if (inner == "threads") return ParseInt(&out->recorder_threads);
              if (inner == "events") return ParseInt(&out->recorder_events);
              return SkipValue();
            });
          }
          return SkipValue();
        })) {
      return false;
    }
    SkipSpace();
    return saw_schema && pos_ == text_.size();
  }

  // Exposed for the unit tests: parses one JSON string at the cursor.
  bool ParseString(std::string* out) {
    if (!Expect('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'u': {
            if (!ParseUnicodeEscape(out)) return false;
            break;
          }
          default: return false;  // \b, \f etc.: not in the emitted subset
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  // The four hex digits following a consumed "\u"; false on anything that is
  // not exactly four hex digits.
  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
      else return false;
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  // Decodes one \uXXXX escape (the "\u" is already consumed) into UTF-8.
  // A high surrogate must be followed by "\uXXXX" holding the low half —
  // the pair combines into its supplementary code point; a lone or
  // out-of-order surrogate is an error, never silently emitted.
  bool ParseUnicodeEscape(std::string* out) {
    uint32_t code = 0;
    if (!ParseHex4(&code)) return false;
    if (code >= 0xDC00 && code <= 0xDFFF) return false;  // lone low surrogate
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        return false;  // high surrogate with no partner
      }
      pos_ += 2;
      uint32_t low = 0;
      if (!ParseHex4(&low)) return false;
      if (low < 0xDC00 || low > 0xDFFF) return false;
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    }
    AppendUtf8(code, out);
    return true;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseInt(int64_t* out) {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::strtoll(std::string(text_.substr(start, pos_ - start)).c_str(),
                        nullptr, 10);
    return true;
  }

  // { "key": <member(key)>, ... } — `member` consumes each value.
  template <typename Fn>
  bool ParseMembers(Fn member) {
    if (Peek('}')) return Expect('}');
    while (true) {
      std::string key;
      if (!ParseString(&key) || !Expect(':') || !member(key)) return false;
      if (Peek(',')) {
        if (!Expect(',')) return false;
        continue;
      }
      return Expect('}');
    }
  }

  template <typename Fn>
  bool ParseObject(Fn member) {
    return Expect('{') && ParseMembers(member);
  }

  bool ParseIntMap(std::map<std::string, int64_t>* out) {
    return ParseObject([&](const std::string& key) {
      return ParseInt(&(*out)[key]);
    });
  }

  bool ParseHistograms(
      std::map<std::string, std::map<std::string, int64_t>>* out) {
    return ParseObject([&](const std::string& name) {
      return ParseIntMap(&(*out)[name]);
    });
  }

  // Skips one value of the subset (string, integer, or nested object).
  bool SkipValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    if (text_[pos_] == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (text_[pos_] == '{') {
      return ParseObject([&](const std::string&) { return SkipValue(); });
    }
    int64_t ignored;
    return ParseInt(&ignored);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace tyder_stat

#endif  // TYDER_TOOLS_TYDER_STAT_PARSER_H_
