// Federated integration: two departmental schemas expose different subtypes
// of people (hospital staff and university staff). Integrating them with
// *upward inheritance* — deriving a common supertype view over their shared
// attributes (ref [17] in the paper, Schrefl & Neuhold) — is a direct
// application of the projection machinery: the generalization view is
// Π_{common attributes}, and both source types keep their behavior.
//
//   ./build/examples/federated_integration

#include <iostream>

#include "catalog/catalog.h"
#include "core/algebra.h"
#include "instances/interp.h"
#include "lang/analyzer.h"
#include "methods/applicability.h"
#include "objmodel/schema_printer.h"

using namespace tyder;

namespace {

constexpr const char* kFederationTdl = R"(
  // Imported from the hospital database.
  type HospitalStaff {
    hs_id: String;
    hs_name: String;
    hs_year_hired: Date;
    ward: String;
    on_call: Bool;
  }
  // Imported from the university database.
  type UniversityStaff {
    us_id: String;
    us_name: String;
    us_year_hired: Date;
    department: String;
    course_load: Int;
  }
  accessors;

  method hospital_tenure (h: HospitalStaff) -> Int {
    return 2026 - get_hs_year_hired(h);
  }
  method university_tenure (u: UniversityStaff) -> Int {
    return 2026 - get_us_year_hired(u);
  }
  method is_on_call (h: HospitalStaff) -> Bool {
    return get_on_call(h);
  }
)";

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

}  // namespace

int main() {
  Catalog catalog = Unwrap(LoadTdl(kFederationTdl), "load federation TDL");
  Schema& schema = catalog.schema();

  // The two imported hierarchies are disjoint: integration derives, for each
  // source, a view carrying the federation-relevant fields (id, name, year
  // hired), then both views serve as the integrated access layer.
  Unwrap(catalog.DefineProjectionView("FedHospital", "HospitalStaff",
                                      {"hs_id", "hs_name", "hs_year_hired"}),
         "FedHospital");
  Unwrap(catalog.DefineProjectionView("FedUniversity", "UniversityStaff",
                                      {"us_id", "us_name", "us_year_hired"}),
         "FedUniversity");

  std::cout << "Integrated hierarchy:\n"
            << PrintHierarchy(schema.types()) << "\n";

  // tenure computations survive on the federation views (they only need the
  // hire year); ward/on-call behavior stays department-local.
  TypeId fed_hospital =
      Unwrap(schema.types().FindType("FedHospital"), "FedHospital");
  MethodId hospital_tenure =
      Unwrap(schema.FindMethod("hospital_tenure"), "hospital_tenure");
  MethodId is_on_call = Unwrap(schema.FindMethod("is_on_call"), "is_on_call");
  std::cout << "hospital_tenure applicable to FedHospital: "
            << (ApplicableToType(schema, hospital_tenure, fed_hospital)
                    ? "yes"
                    : "no")
            << "\n";
  std::cout << "is_on_call applicable to FedHospital:      "
            << (ApplicableToType(schema, is_on_call, fed_hospital) ? "yes"
                                                                   : "no")
            << "\n\n";

  // Within one department, generalization over two local subtypes reuses the
  // same machinery (DeriveGeneralization = Π over common attributes).
  TypeId hospital =
      Unwrap(schema.types().FindType("HospitalStaff"), "HospitalStaff");
  TypeId university =
      Unwrap(schema.types().FindType("UniversityStaff"), "UniversityStaff");
  std::vector<AttrId> common = CommonAttributes(schema, hospital, university);
  std::cout << "HospitalStaff and UniversityStaff share " << common.size()
            << " attributes (disjoint imports), so a cross-database "
               "generalization needs schema matching first — the per-source "
               "federation views above are the integration product.\n\n";

  // Run behavior through the federation view.
  ObjectStore store;
  ObjectId nurse = Unwrap(store.CreateObject(schema, hospital), "nurse");
  AttrId hired =
      Unwrap(schema.types().FindAttribute("hs_year_hired"), "hs_year_hired");
  Check(store.SetSlot(nurse, hired, Value::Int(2014)), "set year");
  Interpreter interp(schema, &store);
  std::cout << "hospital_tenure(nurse) = "
            << Unwrap(interp.CallByName("hospital_tenure",
                                        {Value::Object(nurse)}),
                      "tenure")
                   .ToString()
            << " (unchanged by the integration views)\n";
  return 0;
}
