// A tour of TDL, tyder's schema definition language: multiple inheritance
// with precedence, explicit generic functions, multi-methods sharing a
// generic function, control flow in bodies, views — plus what good error
// reporting looks like when the input is wrong.
//
//   ./build/examples/dsl_tour

#include <iostream>

#include "instances/interp.h"
#include "lang/analyzer.h"
#include "mir/printer.h"
#include "objmodel/schema_printer.h"

using namespace tyder;

namespace {

constexpr const char* kTour = R"(
  // Types. Supertypes are listed in precedence order: Amphibian prefers
  // Swimmer behavior over Walker behavior.
  type Walker  { legs: Int; }
  type Swimmer { fins: Int; }
  type Amphibian : Swimmer, Walker { wetness: Int; }

  // Explicit generic function declaration (arity-checked), then
  // multi-methods implementing it for different argument types.
  generic locomotion/1;
  accessors;

  method walk for locomotion (w: Walker) -> Int {
    return get_legs(w) * 2;
  }
  method swim for locomotion (s: Swimmer) -> Int {
    return get_fins(s) * 10;
  }

  // Control flow, locals, arithmetic and calls in bodies.
  method fitness (a: Amphibian) -> Int {
    score: Int = 0;
    if (get_wetness(a) < 5) {
      score = locomotion(a) + get_legs(a);
    } else {
      score = locomotion(a) - 1;
    }
    return score;
  }

  // Views run the full derivation machinery at load time.
  view DryView = project Amphibian on (legs, wetness);
)";

}  // namespace

int main() {
  auto catalog = LoadTdl(kTour);
  if (!catalog.ok()) {
    std::cerr << "unexpected: " << catalog.status() << "\n";
    return 1;
  }
  Schema& schema = catalog->schema();

  std::cout << "Hierarchy (with DryView already derived):\n"
            << PrintHierarchy(schema.types()) << "\n";
  std::cout << "Methods:\n" << PrintAllMethods(schema) << "\n";

  // Dispatch demo: locomotion on an Amphibian picks `swim` because Swimmer
  // has higher inheritance precedence.
  ObjectStore store;
  Interpreter interp(schema, &store);
  TypeId amphibian = *schema.types().FindType("Amphibian");
  ObjectId frog = *store.CreateObject(schema, amphibian);
  (void)store.SetSlot(frog, *schema.types().FindAttribute("legs"),
                      Value::Int(4));
  (void)store.SetSlot(frog, *schema.types().FindAttribute("fins"),
                      Value::Int(0));
  (void)store.SetSlot(frog, *schema.types().FindAttribute("wetness"),
                      Value::Int(9));
  auto loco = interp.CallByName("locomotion", {Value::Object(frog)});
  std::cout << "locomotion(frog) = " << loco->ToString()
            << "  (swim wins: Swimmer precedes Walker)\n";
  auto fitness = interp.CallByName("fitness", {Value::Object(frog)});
  std::cout << "fitness(frog)    = " << fitness->ToString() << "\n\n";

  // Error reporting: every problem is located and collected.
  constexpr const char* kBroken = R"(
    type Broken : Ghost {
      x: Int
      y Int;
    }
    method bad (b: Broken) -> Int {
      return unknown_fn(b);
    }
  )";
  std::cout << "Loading a broken schema reports:\n"
            << LoadTdl(kBroken).status().message() << "\n";
  return 0;
}
