// Updatable views: the two materialization semantics side by side.
//
// Object-generating views (the classic relational behavior) copy the
// projected slots — cheap to reason about, but stale after source updates
// until refreshed. Object-preserving views (cf. the paper's ref [16],
// updatable views in OODBs) *delegate* to the source object: reads always
// see the current state, and writes through the view update the source — yet
// the view's *interface* is still exactly the derived type's applicable
// methods.
//
//   ./build/examples/updatable_views

#include <iostream>

#include "core/projection.h"
#include "instances/interp.h"
#include "instances/view_materialize.h"
#include "lang/analyzer.h"

using namespace tyder;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

}  // namespace

int main() {
  Catalog catalog = Unwrap(LoadTdl(R"(
    type Account {
      owner: String;
      balance: Float;
      pin: String;
    }
    accessors;
    method is_overdrawn (a: Account) -> Bool {
      return get_balance(a) < 0.0;
    }
    view TellerView = project Account on (owner, balance);
  )"),
                           "load schema");
  Schema& schema = catalog.schema();
  ObjectStore store;

  TypeId account = Unwrap(schema.types().FindType("Account"), "Account");
  AttrId balance = Unwrap(schema.types().FindAttribute("balance"), "balance");
  ObjectId acct = Unwrap(store.CreateObject(schema, account), "account");
  Check(store.SetSlot(acct, balance, Value::Float(100)), "seed balance");

  TypeId teller = Unwrap(schema.types().FindType("TellerView"), "TellerView");
  std::vector<ObjectId> sources = store.Extent(schema, account);

  // Generating semantics: snapshot copies.
  std::vector<ObjectId> copies =
      Unwrap(MaterializeProjection(schema, store, teller), "copies");
  // Preserving semantics: live delegates.
  std::vector<ObjectId> live = Unwrap(
      MaterializeProjectionPreserving(schema, store, teller), "delegates");

  Check(store.SetSlot(acct, balance, Value::Float(-25)), "withdraw");

  Interpreter interp(schema, &store);
  auto read = [&](ObjectId obj) {
    return Unwrap(interp.CallByName("get_balance", {Value::Object(obj)}),
                  "get_balance")
        .ToString();
  };
  std::cout << "after the withdrawal:\n"
            << "  source balance     = " << read(acct) << "\n"
            << "  generated copy     = " << read(copies[0]) << "   (stale)\n"
            << "  preserving view    = " << read(live[0]) << "  (live)\n";

  // is_overdrawn survives the projection (it reads only balance) and agrees
  // with the live view immediately.
  auto overdrawn =
      Unwrap(interp.CallByName("is_overdrawn", {Value::Object(live[0])}),
             "is_overdrawn");
  std::cout << "  is_overdrawn(live view) = " << overdrawn.ToString() << "\n";

  // Refresh brings the generated copies up to date.
  Check(RefreshProjection(schema, store, teller, sources, copies), "refresh");
  std::cout << "  generated copy, after refresh = " << read(copies[0]) << "\n";

  // Writes through the preserving view hit the source (updatable view) —
  // and the pin stays unreachable through the view's interface.
  Check(interp
            .CallByName("set_balance", {Value::Object(live[0]),
                                        Value::Float(500)})
            .status(),
        "deposit via view");
  std::cout << "  source after deposit via view = " << read(acct) << "\n";
  std::cout << "  get_pin on the view fails as intended: "
            << interp.CallByName("get_pin", {Value::Object(live[0])}).status()
            << "\n";
  return 0;
}
