// Quickstart: build the paper's Person/Employee schema with the programmatic
// API, derive a projection view type, and watch methods survive or drop —
// then run the surviving behavior on actual instances, before and after.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/projection.h"
#include "instances/interp.h"
#include "instances/view_materialize.h"
#include "methods/accessor_gen.h"
#include "mir/builder.h"
#include "objmodel/schema_printer.h"

using namespace tyder;

namespace {

// Any failed Status in an example is a bug; fail fast with a message.
void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

}  // namespace

int main() {
  // 1. Schema: Person with SSN/name/date_of_birth, Employee adding
  //    pay_rate/hrs_worked (Figure 1 of the paper).
  Schema schema = Unwrap(Schema::Create(), "create schema");
  TypeGraph& types = schema.types();
  const BuiltinTypes& b = schema.builtins();

  TypeId person = Unwrap(types.DeclareType("Person", TypeKind::kUser), "Person");
  TypeId employee =
      Unwrap(types.DeclareType("Employee", TypeKind::kUser), "Employee");
  Check(types.AddSupertype(employee, person), "Employee : Person");

  Unwrap(types.DeclareAttribute(person, "SSN", b.string_type), "SSN");
  Unwrap(types.DeclareAttribute(person, "name", b.string_type), "name");
  AttrId dob = Unwrap(types.DeclareAttribute(person, "date_of_birth", b.date_type),
                      "date_of_birth");
  AttrId pay = Unwrap(types.DeclareAttribute(employee, "pay_rate", b.float_type),
                      "pay_rate");
  AttrId hrs = Unwrap(
      types.DeclareAttribute(employee, "hrs_worked", b.float_type), "hrs");
  Check(GenerateAllAccessors(schema), "accessors");

  // 2. Methods. age uses date_of_birth; income uses pay_rate+hrs_worked.
  GfId get_dob = Unwrap(schema.FindGenericFunction("get_date_of_birth"), "gf");
  GfId get_pay = Unwrap(schema.FindGenericFunction("get_pay_rate"), "gf");
  GfId get_hrs = Unwrap(schema.FindGenericFunction("get_hrs_worked"), "gf");

  Method age;
  age.label = Symbol::Intern("age");
  age.gf = Unwrap(schema.DeclareGenericFunction("age", 1), "age gf");
  age.sig = Signature{{person}, b.int_type};
  age.param_names = {Symbol::Intern("p")};
  age.body = mir::Seq({mir::Return(mir::BinOp(
      BinOpKind::kSub, mir::IntLit(2026), mir::Call(get_dob, {mir::Param(0)})))});
  Unwrap(schema.AddMethod(std::move(age)), "age");

  Method income;
  income.label = Symbol::Intern("income");
  income.gf = Unwrap(schema.DeclareGenericFunction("income", 1), "income gf");
  income.sig = Signature{{employee}, b.float_type};
  income.param_names = {Symbol::Intern("e")};
  income.body = mir::Seq({mir::Return(
      mir::BinOp(BinOpKind::kMul, mir::Call(get_pay, {mir::Param(0)}),
                 mir::Call(get_hrs, {mir::Param(0)})))});
  Unwrap(schema.AddMethod(std::move(income)), "income");

  std::cout << "Original hierarchy:\n"
            << PrintHierarchy(types) << "\n";

  // 3. An employee instance, and its behavior before the derivation.
  ObjectStore store;
  ObjectId alice = Unwrap(store.CreateObject(schema, employee), "alice");
  Check(store.SetSlot(alice, dob, Value::Int(1988)), "set dob");
  Check(store.SetSlot(alice, pay, Value::Float(72.0)), "set pay");
  Check(store.SetSlot(alice, hrs, Value::Float(38.0)), "set hrs");

  Interpreter interp(schema, &store);
  std::cout << "age(alice)    = "
            << Unwrap(interp.CallByName("age", {Value::Object(alice)}), "age")
                   .ToString()
            << "\nincome(alice) = "
            << Unwrap(interp.CallByName("income", {Value::Object(alice)}),
                      "income")
                   .ToString()
            << "\n\n";

  // 4. The projection: keep SSN, date_of_birth, pay_rate.
  DerivationResult derivation = Unwrap(
      DeriveProjectionByName(schema, "Employee",
                             {"SSN", "date_of_birth", "pay_rate"},
                             "EmployeeView"),
      "derive EmployeeView");

  std::cout << "Refactored hierarchy (paper Figure 2):\n"
            << PrintHierarchy(types) << "\n";
  std::cout << "Methods applicable to EmployeeView: ";
  for (MethodId m : derivation.applicability.applicable) {
    std::cout << schema.method(m).label.view() << " ";
  }
  std::cout << "\nMethods dropped: ";
  for (MethodId m : derivation.applicability.not_applicable) {
    std::cout << schema.method(m).label.view() << " ";
  }
  std::cout << "\n\n";

  // 5. Existing behavior is untouched...
  Interpreter after(schema, &store);
  std::cout << "after derivation, age(alice)    = "
            << Unwrap(after.CallByName("age", {Value::Object(alice)}), "age")
                   .ToString()
            << "\nafter derivation, income(alice) = "
            << Unwrap(after.CallByName("income", {Value::Object(alice)}),
                      "income")
                   .ToString()
            << "\n";

  // 6. ...and the view materializes instances that answer `age` but not
  //    `income` (hrs_worked was projected away).
  std::vector<ObjectId> views =
      Unwrap(MaterializeProjection(schema, store, derivation.derived),
             "materialize");
  std::cout << "view instance age = "
            << Unwrap(after.CallByName("age", {Value::Object(views[0])}),
                      "view age")
                   .ToString()
            << "\nincome on the view instance fails as expected: "
            << after.CallByName("income", {Value::Object(views[0])}).status()
            << "\n";
  return 0;
}
