// Payroll views: a realistic schema written in TDL, with a catalog of views
// over views — the abstraction/encapsulation scenario that motivates views
// in the paper's introduction. A payroll clerk gets a view without salary
// history; an auditor gets a narrower one still; the directory view keeps
// only public fields. Ends with the Section 7 collapse pass.
//
//   ./build/examples/payroll_views

#include <iostream>

#include "catalog/catalog.h"
#include "instances/interp.h"
#include "instances/view_materialize.h"
#include "lang/analyzer.h"
#include "objmodel/schema_printer.h"

using namespace tyder;

namespace {

constexpr const char* kPayrollTdl = R"(
  // Human-resources core schema.
  type Person {
    ssn: String;
    full_name: String;
    birth_year: Date;
  }
  type Employee : Person {
    salary: Float;
    bonus: Float;
    office: String;
  }
  type Manager : Employee {
    report_count: Int;
  }
  accessors;

  method age (p: Person) -> Int {
    return 2026 - get_birth_year(p);
  }
  method total_comp (e: Employee) -> Float {
    return get_salary(e) + get_bonus(e);
  }
  method span_of_control (m: Manager) -> Int {
    return get_report_count(m);
  }
  method comp_per_report (m: Manager) -> Float {
    return total_comp(m) / get_report_count(m);
  }
)";

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

void ReportApplicability(const Catalog& catalog, const char* view_name) {
  const Schema& s = catalog.schema();
  TypeId view = Unwrap(s.types().FindType(view_name), view_name);
  std::cout << view_name << " supports:";
  for (MethodId m = 0; m < s.NumMethods(); ++m) {
    if (s.method(m).kind != MethodKind::kGeneral) continue;
    for (TypeId formal : s.method(m).sig.params) {
      if (s.types().IsSubtype(view, formal)) {
        std::cout << " " << s.method(m).label.view();
        break;
      }
    }
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  Catalog catalog = Unwrap(LoadTdl(kPayrollTdl), "load payroll TDL");

  // Clerk view: everything needed for age + total_comp, but no office.
  Unwrap(catalog.DefineProjectionView(
             "ClerkView", "Employee",
             {"ssn", "full_name", "birth_year", "salary", "bonus"}),
         "ClerkView");
  // Auditor view over the clerk view: compensation only.
  Unwrap(catalog.DefineProjectionView("AuditView", "ClerkView",
                                      {"ssn", "salary", "bonus"}),
         "AuditView");
  // Public directory over the clerk view: names only.
  Unwrap(catalog.DefineProjectionView("DirectoryView", "ClerkView",
                                      {"full_name"}),
         "DirectoryView");
  // Managers-as-employees generalization is already subsumption; a selection
  // view restricts the extent instead.
  Unwrap(catalog.DefineSelectionView("HighlyPaid", "Employee"), "HighlyPaid");

  std::cout << "Catalog hierarchy after view definitions:\n"
            << PrintHierarchy(catalog.schema().types()) << "\n";

  ReportApplicability(catalog, "ClerkView");
  ReportApplicability(catalog, "AuditView");
  ReportApplicability(catalog, "DirectoryView");
  ReportApplicability(catalog, "HighlyPaid");

  // Populate some employees and materialize the audit view.
  Schema& schema = catalog.schema();
  ObjectStore store;
  TypeId employee = Unwrap(schema.types().FindType("Employee"), "Employee");
  AttrId salary = Unwrap(schema.types().FindAttribute("salary"), "salary");
  AttrId bonus = Unwrap(schema.types().FindAttribute("bonus"), "bonus");
  for (double base : {80.0, 120.0, 95.0}) {
    ObjectId e = Unwrap(store.CreateObject(schema, employee), "employee");
    Check(store.SetSlot(e, salary, Value::Float(base)), "salary");
    Check(store.SetSlot(e, bonus, Value::Float(base / 10)), "bonus");
  }
  TypeId audit = Unwrap(schema.types().FindType("AuditView"), "AuditView");
  std::vector<ObjectId> audit_rows =
      Unwrap(MaterializeProjection(schema, store, audit), "materialize");
  Interpreter interp(schema, &store);
  std::cout << "\nAudit view total_comp per row:";
  for (ObjectId row : audit_rows) {
    std::cout << " "
              << Unwrap(interp.CallByName("total_comp", {Value::Object(row)}),
                        "total_comp")
                     .ToString();
  }
  std::cout << "\n";

  // Section 7: collapse the empty surrogates the chain accumulated.
  size_t before = catalog.LiveSurrogateCount();
  CollapseReport collapsed = Unwrap(catalog.Collapse(), "collapse");
  std::cout << "\nSurrogates: " << before << " live before collapse, "
            << catalog.LiveSurrogateCount() << " after ("
            << collapsed.collapsed.size() << " removed)\n";
  return 0;
}
