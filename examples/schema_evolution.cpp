// Schema evolution workflow: snapshot a schema, derive a view, inspect the
// exact structural delta with the diff tool, persist the evolved schema with
// the serializer, and reload it — ids, surrogates and rewritten methods all
// round-trip.
//
//   ./build/examples/schema_evolution

#include <iostream>

#include "catalog/diff.h"
#include "catalog/serialize.h"
#include "core/projection.h"
#include "lang/analyzer.h"
#include "mir/printer.h"
#include "objmodel/schema_printer.h"

using namespace tyder;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

constexpr const char* kTdl = R"(
  type Document {
    doc_id: String;
    title: String;
    body: String;
    owner: String;
    created: Date;
  }
  accessors;
  method summary_age (d: Document) -> Int {
    return 2026 - get_created(d);
  }
  method is_mine (d: Document) -> Bool {
    return get_owner(d) == "me";
  }
)";

}  // namespace

int main() {
  Catalog catalog = Unwrap(LoadTdl(kTdl), "load TDL");
  Schema& schema = catalog.schema();

  // Snapshot for diffing (cheap: bodies are shared immutable trees).
  Schema snapshot = schema;

  DerivationResult derivation = Unwrap(
      DeriveProjectionByName(schema, "Document",
                             {"doc_id", "title", "created"}, "CardView"),
      "derive CardView");

  std::cout << "What the derivation changed (structural diff):\n"
            << DiffToString(DiffSchemas(snapshot, schema)) << "\n";

  std::cout << "Rewritten methods:\n";
  for (const MethodRewrite& rw : derivation.rewrites) {
    if (rw.old_sig == rw.new_sig) continue;
    std::cout << "  " << PrintMethod(schema, rw.method) << "\n";
  }

  // Persist and reload.
  std::string text = SerializeSchema(schema);
  std::cout << "\nSerialized schema is " << text.size() << " bytes; head:\n";
  std::cout << text.substr(0, text.find('\n', 200)) << "\n...\n";

  Schema restored = Unwrap(DeserializeSchema(text), "reload");
  bool stable = SerializeSchema(restored) == text;
  std::cout << "\nRound trip stable: " << (stable ? "yes" : "NO") << "\n";
  std::cout << "Restored hierarchy:\n" << PrintHierarchy(restored.types());
  return stable ? 0 : 1;
}
