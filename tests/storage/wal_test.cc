// WAL format contract: round trips, torn-tail tolerance at every truncation
// length, and precise rejection of mid-log corruption (storage/wal.h).

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/failpoint.h"

namespace tyder::storage {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("tyder_wal_test_" + name))
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(WalTest, MissingFileIsAnEmptyLog) {
  std::string dir = FreshDir("missing");
  auto result = ReadWal(dir + "/wal.log");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->records.empty());
  EXPECT_EQ(result->valid_bytes, 0u);
  EXPECT_TRUE(result->torn_tail_warning.empty());
}

TEST(WalTest, AppendReadRoundTrip) {
  std::string dir = FreshDir("roundtrip");
  std::string path = dir + "/wal.log";
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(1, "project V Emp a,b verify").ok());
    ASSERT_TRUE(writer->Append(2, "").ok());  // empty payload is legal
    ASSERT_TRUE(writer->Append(7, "drop V").ok());  // lsn gaps are legal
  }
  auto result = ReadWal(path);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->records.size(), 3u);
  EXPECT_EQ(result->records[0].lsn, 1u);
  EXPECT_EQ(result->records[0].payload, "project V Emp a,b verify");
  EXPECT_EQ(result->records[1].lsn, 2u);
  EXPECT_EQ(result->records[1].payload, "");
  EXPECT_EQ(result->records[2].lsn, 7u);
  EXPECT_EQ(result->records[2].payload, "drop V");
  EXPECT_EQ(result->valid_bytes, ReadAll(path).size());
  EXPECT_TRUE(result->torn_tail_warning.empty());
}

// The core torn-tail guarantee: a crash can cut the file at ANY byte; every
// truncation length must recover the longest valid record prefix with a
// warning — never an error, never a crash.
TEST(WalTest, EveryTruncationLengthIsAValidTornTail) {
  std::string dir = FreshDir("torn");
  std::string path = dir + "/wal.log";
  std::vector<std::string> payloads = {"project V1 T a verify", "drop V1",
                                       "collapse"};
  std::vector<uint64_t> boundaries;  // cumulative record end offsets
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (size_t i = 0; i < payloads.size(); ++i) {
      ASSERT_TRUE(writer->Append(i + 1, payloads[i]).ok());
      boundaries.push_back(ReadAll(path).size());
    }
  }
  std::string full = ReadAll(path);
  for (size_t len = 0; len < full.size(); ++len) {
    auto result = ParseWal(std::string_view(full).substr(0, len));
    ASSERT_TRUE(result.ok())
        << "prefix of " << len << " bytes was rejected: " << result.status();
    size_t complete = 0;
    while (complete < boundaries.size() && boundaries[complete] <= len) {
      ++complete;
    }
    EXPECT_EQ(result->records.size(), complete) << "at length " << len;
    EXPECT_EQ(result->valid_bytes, complete == 0 ? 0 : boundaries[complete - 1])
        << "at length " << len;
    bool at_boundary = len == 0 || (complete > 0 && boundaries[complete - 1] == len);
    EXPECT_EQ(result->torn_tail_warning.empty(), at_boundary)
        << "at length " << len;
  }
}

TEST(WalTest, ChecksumMismatchOnFinalRecordIsATornTail) {
  std::string dir = FreshDir("finalflip");
  std::string path = dir + "/wal.log";
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(1, "project V T a verify").ok());
    ASSERT_TRUE(writer->Append(2, "drop V").ok());
  }
  std::string bytes = ReadAll(path);
  bytes.back() ^= 0x40;  // corrupt the last record's payload
  auto result = ParseWal(bytes);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->records.size(), 1u);
  EXPECT_NE(result->torn_tail_warning.find("checksum mismatch"),
            std::string::npos);
}

TEST(WalTest, MidLogCorruptionIsRejectedWithOffset) {
  std::string dir = FreshDir("midflip");
  std::string path = dir + "/wal.log";
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(1, "project V T a verify").ok());
    ASSERT_TRUE(writer->Append(2, "drop V").ok());
  }
  std::string bytes = ReadAll(path);
  bytes[20] ^= 0x01;  // inside the first record's payload
  auto result = ParseWal(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("offset 0"), std::string::npos)
      << result.status();
  EXPECT_NE(result.status().message().find("refusing to replay"),
            std::string::npos)
      << result.status();
}

TEST(WalTest, NonAdvancingLsnIsRejected) {
  std::string dir = FreshDir("lsn");
  std::string path = dir + "/wal.log";
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(5, "a").ok());
    ASSERT_TRUE(writer->Append(5, "b").ok());  // writer does not police lsns
  }
  auto result = ReadWal(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("does not advance"),
            std::string::npos)
      << result.status();
}

TEST(WalTest, RepairTornTailMakesTheLogAppendableAgain) {
  std::string dir = FreshDir("repair");
  std::string path = dir + "/wal.log";
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(1, "project V T a verify").ok());
  }
  std::string intact = ReadAll(path);
  WriteAll(path, intact + "partial garbage");
  auto torn = ReadWal(path);
  ASSERT_TRUE(torn.ok()) << torn.status();
  ASSERT_FALSE(torn->torn_tail_warning.empty());
  ASSERT_TRUE(RepairTornTail(path, torn->valid_bytes).ok());
  EXPECT_EQ(ReadAll(path), intact);

  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE(writer->Append(2, "drop V").ok());
  auto result = ReadWal(path);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->records.size(), 2u);
  EXPECT_TRUE(result->torn_tail_warning.empty());
}

// A failed append (here: an injected torn write) must leave the file exactly
// as it was — the undo keeps the tail clean so the very next append works.
TEST(WalTest, FailedAppendUndoesItsPartialWrite) {
  std::string dir = FreshDir("undo");
  std::string path = dir + "/wal.log";
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE(writer->Append(1, "project V T a verify").ok());
  std::string before = ReadAll(path);

  failpoint::Activate("storage.wal.torn_write", 1);
  Status failed = writer->Append(2, "drop V");
  failpoint::DeactivateAll();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(ReadAll(path), before);

  ASSERT_TRUE(writer->Append(2, "drop V").ok());
  auto result = ReadWal(path);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->records.size(), 2u);
}

TEST(WalTest, TruncateAllEmptiesTheLog) {
  std::string dir = FreshDir("truncate");
  std::string path = dir + "/wal.log";
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE(writer->Append(1, "project V T a verify").ok());
  ASSERT_TRUE(writer->TruncateAll().ok());
  auto result = ReadWal(path);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->records.empty());
  // The next append after a truncate parses cleanly.
  ASSERT_TRUE(writer->Append(2, "drop V").ok());
  result = ReadWal(path);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->records.size(), 1u);
  EXPECT_EQ(result->records[0].lsn, 2u);
}

}  // namespace
}  // namespace tyder::storage
