// Degraded-mode semantics (durable_catalog.h): a failed fsync — of the WAL,
// of a failed append's truncation undo, or of a snapshot temp file — drops
// the DurableCatalog into read-only degraded mode: mutations refuse with a
// clear Status, reads keep serving, metrics/flight recorder log the
// transition, and Reopen() re-validates on-disk state before leaving it.
// Plain write errors whose undo holds must NOT degrade.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "obs/obs.h"
#include "storage/catalog_snapshot.h"
#include "storage/durable_catalog.h"
#include "storage/faulty_env.h"
#include "testing/fixtures.h"

namespace tyder::storage {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir =
      (fs::temp_directory_path() / ("tyder_degraded_test_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

Result<DurableCatalog> OpenSeeded(const std::string& dir, Env* env = nullptr) {
  auto fx = testing::BuildPersonEmployee();
  if (!fx.ok()) return fx.status();
  TYDER_ASSIGN_OR_RETURN(DurableCatalog db, DurableCatalog::Open(dir, env));
  TYDER_RETURN_IF_ERROR(db.Seed(Catalog(std::move(fx->schema))));
  TYDER_ASSIGN_OR_RETURN(
      const ViewDef* view,
      db.DefineProjectionView("BaseView", "Employee",
                              {"SSN", "date_of_birth", "pay_rate"}));
  (void)view;
  return db;
}

uint64_t Counter(const char* name) {
#if TYDER_OBS_ENABLED
  return obs::MetricsRegistry::Global().CounterValue(name);
#else
  (void)name;
  return 0;
#endif
}

class DegradedModeTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DeactivateAll(); }
};

TEST_F(DegradedModeTest, WalFsyncFailureEntersReadOnlyDegradedMode) {
  std::string dir = FreshDir("wal_fsync");
  auto db = OpenSeeded(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  std::string pre = SerializeCatalog(db->catalog());
  uint64_t entries_before = Counter("storage.degraded_entries");
  uint64_t io_errors_before = Counter("storage.io_errors");

  failpoint::Activate("storage.env.sync", 1);
  auto faulted = db->DefineProjectionView("V", "Person", {"SSN"});
  failpoint::DeactivateAll();
  ASSERT_FALSE(faulted.ok());
  ASSERT_TRUE(db->degraded());

  // The transition is observable.
#if TYDER_OBS_ENABLED
  EXPECT_EQ(Counter("storage.degraded_entries"), entries_before + 1);
  EXPECT_GT(Counter("storage.io_errors"), io_errors_before);
#else
  (void)entries_before;
  (void)io_errors_before;
#endif

  // Mutations refuse with a clear, actionable status...
  auto refused = db->DefineProjectionView("V", "Person", {"SSN"});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.status().message().find("degraded"), std::string::npos);
  EXPECT_NE(refused.status().message().find("Reopen"), std::string::npos);
  EXPECT_EQ(db->DropView("BaseView").code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(db->Collapse().ok());
  EXPECT_EQ(db->Compact().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db->degraded_status().code(), StatusCode::kFailedPrecondition);

  // ...while reads keep serving the last consistent state.
  EXPECT_EQ(SerializeCatalog(db->catalog()), pre);
  EXPECT_TRUE(db->catalog().FindView("BaseView").ok());

  // Reopen re-validates from disk and lifts degraded mode.
  ASSERT_TRUE(db->Reopen().ok());
  EXPECT_FALSE(db->degraded());
  auto retried = db->DefineProjectionView("V2", "Person", {"SSN"});
  EXPECT_TRUE(retried.ok()) << retried.status();
}

// Satellite fix for the swallowed fsync at the old wal.cc:181: when a failed
// append's ftruncate undo cannot run, the tail may be torn and the store
// must degrade instead of pretending the undo held.
TEST_F(DegradedModeTest, FailedAppendUndoTruncateFailureDegrades) {
  std::string dir = FreshDir("undo_truncate");
  auto db = OpenSeeded(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  std::string pre = SerializeCatalog(db->catalog());

  failpoint::Activate("storage.env.short_write", 1);  // the append tears
  failpoint::Activate("storage.env.truncate", 1);     // the undo fails
  auto faulted = db->DefineProjectionView("V", "Person", {"SSN"});
  failpoint::DeactivateAll();
  ASSERT_FALSE(faulted.ok());
  EXPECT_TRUE(db->degraded());
  EXPECT_EQ(SerializeCatalog(db->catalog()), pre);

  // Reopen repairs the torn tail and recovers the pre-state.
  ASSERT_TRUE(db->Reopen().ok());
  EXPECT_FALSE(db->degraded());
  EXPECT_EQ(SerializeCatalog(db->catalog()), pre);
  EXPECT_FALSE(db->recovery().warnings.empty());
  EXPECT_NE(db->recovery().warnings[0].find("torn WAL tail"),
            std::string::npos);
  EXPECT_TRUE(db->DefineProjectionView("V", "Person", {"SSN"}).ok());
}

// ...and when the undo's ftruncate succeeds but its fsync fails, the
// truncation is not durably known either: degrade.
TEST_F(DegradedModeTest, FailedAppendUndoFsyncFailureDegrades) {
  std::string dir = FreshDir("undo_fsync");
  auto db = OpenSeeded(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  std::string pre = SerializeCatalog(db->catalog());

  failpoint::Activate("storage.env.append", 1);  // the append fails outright
  failpoint::Activate("storage.env.sync", 1);    // the undo's fsync fails
  auto faulted = db->DefineProjectionView("V", "Person", {"SSN"});
  failpoint::DeactivateAll();
  ASSERT_FALSE(faulted.ok());
  EXPECT_TRUE(db->degraded());

  ASSERT_TRUE(db->Reopen().ok());
  EXPECT_EQ(SerializeCatalog(db->catalog()), pre);
  EXPECT_TRUE(db->DefineProjectionView("V", "Person", {"SSN"}).ok());
}

// A plain write error whose undo holds must NOT degrade: the op fails,
// state is unchanged, and a retry succeeds once the disk recovers.
TEST_F(DegradedModeTest, WriteErrorWithDurableUndoStaysLive) {
  std::string dir = FreshDir("live_retry");
  auto db = OpenSeeded(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  std::string pre = SerializeCatalog(db->catalog());

  failpoint::Activate("storage.env.append", 1);
  auto faulted = db->DefineProjectionView("V", "Person", {"SSN"});
  failpoint::DeactivateAll();
  ASSERT_FALSE(faulted.ok());
  EXPECT_FALSE(db->degraded());
  EXPECT_EQ(SerializeCatalog(db->catalog()), pre);
  EXPECT_TRUE(db->DefineProjectionView("V", "Person", {"SSN"}).ok());
}

TEST_F(DegradedModeTest, SnapshotFsyncFailureDegradesCompaction) {
  std::string dir = FreshDir("snapshot_fsync");
  auto db = OpenSeeded(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  std::string pre = SerializeCatalog(db->catalog());

  failpoint::Activate("storage.env.sync", 1);  // the snapshot temp file fsync
  Status compacted = db->Compact();
  failpoint::DeactivateAll();
  ASSERT_FALSE(compacted.ok());
  EXPECT_TRUE(db->degraded());
  EXPECT_EQ(SerializeCatalog(db->catalog()), pre);

  // The half-written temp snapshot was cleaned up.
  auto names = Env::Posix().ListDir(dir);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }

  ASSERT_TRUE(db->Reopen().ok());
  EXPECT_EQ(SerializeCatalog(db->catalog()), pre);
  EXPECT_TRUE(db->Compact().ok());
}

// Satellite: disk-full compaction. A byte quota that exhausts mid-snapshot
// fails Compact with ENOSPC; the old snapshot remains the recovery source,
// the temp file is cleaned up, the catalog keeps serving reads, and the
// database is NOT degraded (no fsync lied) — lifting the quota lets a
// retry succeed.
TEST_F(DegradedModeTest, DiskFullCompactionKeepsServingReads) {
  std::string dir = FreshDir("disk_full");
  FaultyEnv env;
  auto db = OpenSeeded(dir, &env);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->DefineProjectionView("V", "Person", {"SSN"}).ok());
  std::string pre = SerializeCatalog(db->catalog());

  env.SetByteQuota(64);  // a snapshot is far bigger: exhausts mid-write
  Status full = db->Compact();
  ASSERT_FALSE(full.ok());
  EXPECT_TRUE(env.fault_fired());
  EXPECT_NE(full.message().find("ENOSPC"), std::string::npos);
  EXPECT_FALSE(db->degraded());

  // Temp file cleaned up; the old snapshot + WAL stay the recovery source.
  auto names = Env::Posix().ListDir(dir);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }

  // Reads keep serving...
  EXPECT_EQ(SerializeCatalog(db->catalog()), pre);

  // ...recovery from the old snapshot + WAL reproduces the same state...
  {
    auto reopened = DurableCatalog::Open(dir);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_EQ(SerializeCatalog(reopened->catalog()), pre);
  }

  // ...and once space frees up, compaction succeeds.
  env.ClearFaults();
  EXPECT_TRUE(db->Compact().ok());
  EXPECT_EQ(SerializeCatalog(db->catalog()), pre);
}

TEST_F(DegradedModeTest, ReopenWhileHealthyIsANoOpRecovery) {
  std::string dir = FreshDir("healthy_reopen");
  auto db = OpenSeeded(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  std::string pre = SerializeCatalog(db->catalog());
  uint64_t lsn = db->last_lsn();
  ASSERT_TRUE(db->Reopen().ok());
  EXPECT_FALSE(db->degraded());
  EXPECT_EQ(SerializeCatalog(db->catalog()), pre);
  EXPECT_EQ(db->last_lsn(), lsn);
}

TEST_F(DegradedModeTest, ReopenFailureStaysDegraded) {
  std::string dir = FreshDir("reopen_fails");
  FaultyEnv env;
  auto db = OpenSeeded(dir, &env);
  ASSERT_TRUE(db.ok()) << db.status();

  env.ResetCounters();
  env.InjectAt(FaultyEnv::FaultKind::kSyncFail, 0);
  auto faulted = db->DefineProjectionView("V", "Person", {"SSN"});
  ASSERT_FALSE(faulted.ok());
  ASSERT_TRUE(db->degraded());

  // The disk is still broken: Reopen must fail and stay degraded.
  env.ResetCounters();
  env.InjectAt(FaultyEnv::FaultKind::kError, 0);
  Status reopened = db->Reopen();
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.message().find("staying in degraded"), std::string::npos);
  EXPECT_TRUE(db->degraded());
  EXPECT_FALSE(db->DefineProjectionView("V", "Person", {"SSN"}).ok());

  // Disk recovers: now Reopen lifts degraded mode.
  env.ClearFaults();
  ASSERT_TRUE(db->Reopen().ok());
  EXPECT_FALSE(db->degraded());
}

// Regression for the degraded-mode × group-commit seam: Reopen() racing
// committers that are queued in the GroupWal. The old Reopen move-assigned
// *this, destroying the CommitState (writer lock, queue, epochs) under any
// waiter still parked in GroupWal::Wait — a use-after-free the sanitizer
// runs would catch. The in-place-adoption Reopen must instead guarantee:
// every waiter gets a definitive ack or nack, Reopen itself serializes
// cleanly behind them, and recovery yields exactly the acked mutations —
// none lost, none duplicated.
TEST_F(DegradedModeTest, ReopenWithQueuedCommittersAcksOrNacksEveryWaiter) {
  std::string dir = FreshDir("reopen_seam");
  auto db = OpenSeeded(dir);
  ASSERT_TRUE(db.ok()) << db.status();

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 32;
  std::atomic<int> workers_left{kThreads};
  std::mutex ledger_mu;
  // Each unique view name gets a verdict the final state must honor:
  //   kAcked          fsync'd and published — must survive recovery
  //   kNacked         definitively never written (refused while degraded or
  //                   stalled, or drain-failed behind a failed batch) —
  //                   must be absent
  //   kIndeterminate  its own batch's fsync failed; the bytes may or may
  //                   not be durable (fsyncgate forbids undoing them), and
  //                   recovery is the arbiter — either outcome is legal
  enum class Verdict { kAcked, kNacked, kIndeterminate };
  std::map<std::string, Verdict> ledger;

  auto classify = [](const Status& s) {
    if (s.ok()) return Verdict::kAcked;
    const std::string& m = s.message();
    if (m.find("degraded") != std::string::npos ||
        m.find("stalled") != std::string::npos ||
        m.find("never written") != std::string::npos)
      return Verdict::kNacked;
    return Verdict::kIndeterminate;
  };

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int j = 0; j < kOpsPerThread; ++j) {
        std::string name = "Seam_" + std::to_string(t) + "_" +
                           std::to_string(j);
        auto r = db->DefineProjectionView(name, "Person", {"SSN"});
        std::lock_guard<std::mutex> lock(ledger_mu);
        ledger.emplace(name, classify(r.status()));
      }
      workers_left.fetch_sub(1);
    });
  }

  // Repeatedly break the disk under the racing committers, then Reopen()
  // with the rest of them still in flight — some queued in the GroupWal,
  // some blocked on the writer lock behind the recovery itself.
  int degrade_cycles = 0;
  while (workers_left.load() > 0) {
    failpoint::Activate("storage.env.sync", 1);
    while (!db->degraded() && workers_left.load() > 0)
      std::this_thread::yield();
    if (db->degraded()) {
      ++degrade_cycles;
      // The one-shot fault may already be consumed, but Reopen's own
      // recovery I/O can still fail for other reasons; retry until clean.
      while (!db->Reopen().ok()) std::this_thread::yield();
    }
  }
  for (auto& w : workers) w.join();
  failpoint::DeactivateAll();
  // The fault actually exercised the seam (each one-shot sync failure
  // degrades, and every committer then queued is drain-failed).
  EXPECT_GT(degrade_cycles, 0);
  ASSERT_EQ(ledger.size(),
            static_cast<size_t>(kThreads) * kOpsPerThread);

  // Leave the store healthy, then prove recovery from disk honors every
  // verdict: every definitive ack present, every definitive nack absent,
  // indeterminate ops free to go either way. (A lost record would drop an
  // acked view; a duplicated record would make replay re-define a view and
  // fail the Open outright.)
  if (db->degraded()) {
    ASSERT_TRUE(db->Reopen().ok());
  }
  auto recovered = DurableCatalog::Open(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  for (const auto& [name, verdict] : ledger) {
    bool present = recovered->catalog().FindView(name).ok();
    if (verdict == Verdict::kAcked) {
      EXPECT_TRUE(present) << name << " was acked but lost";
    } else if (verdict == Verdict::kNacked) {
      EXPECT_FALSE(present) << name << " was definitively nacked but kept";
    }
  }
  // And the in-place-reopened instance serves the same state.
  EXPECT_EQ(SerializeCatalog(db->catalog()),
            SerializeCatalog(recovered->catalog()));
}

}  // namespace
}  // namespace tyder::storage
