// Contract tests for storage::Env (env.h): PosixEnv file-system semantics,
// the partial-write retry loop (forced through real short writes), the
// fsync-failure poison rule, and the FaultyEnv injection/durability model
// that powers io_fault_matrix_test.cc.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "storage/env.h"
#include "storage/faulty_env.h"
#include "storage/wal.h"

namespace tyder::storage {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir =
      (fs::temp_directory_path() / ("tyder_env_test_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string Contents(Env& env, const std::string& path) {
  Result<std::string> bytes = env.ReadFile(path);
  return bytes.ok() ? *bytes : "<" + bytes.status().ToString() + ">";
}

TEST(PosixEnvTest, AppendReadRoundTrip) {
  std::string dir = FreshDir("round_trip");
  std::string path = dir + "/file";
  Env& env = Env::Posix();
  {
    auto file = env.OpenAppendable(path);
    ASSERT_TRUE(file.ok()) << file.status();
    ASSERT_TRUE((*file)->Append("hello ").ok());
    ASSERT_TRUE((*file)->Append("world").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    auto size = (*file)->Size();
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, 11u);
  }
  EXPECT_EQ(Contents(env, path), "hello world");
}

TEST(PosixEnvTest, ReadMissingFileIsNotFound) {
  std::string dir = FreshDir("missing");
  Result<std::string> bytes = Env::Posix().ReadFile(dir + "/absent");
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kNotFound);
}

TEST(PosixEnvTest, RemoveIsOkWhenAbsentListIsSorted) {
  std::string dir = FreshDir("list");
  Env& env = Env::Posix();
  EXPECT_TRUE(env.RemoveFile(dir + "/nothing_here").ok());
  for (const char* name : {"c", "a", "b"}) {
    auto file = env.OpenTruncated(dir + "/" + std::string(name));
    ASSERT_TRUE(file.ok());
  }
  auto names = env.ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(PosixEnvTest, RenameReplacesAtomically) {
  std::string dir = FreshDir("rename");
  Env& env = Env::Posix();
  {
    auto file = env.OpenTruncated(dir + "/new");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("new bytes").ok());
  }
  {
    auto file = env.OpenTruncated(dir + "/old");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("old bytes").ok());
  }
  ASSERT_TRUE(env.RenameFile(dir + "/new", dir + "/old").ok());
  EXPECT_EQ(Contents(env, dir + "/old"), "new bytes");
  EXPECT_EQ(env.ReadFile(dir + "/new").status().code(), StatusCode::kNotFound);
}

TEST(PosixEnvTest, TruncateFileCutsToSize) {
  std::string dir = FreshDir("truncate");
  Env& env = Env::Posix();
  {
    auto file = env.OpenTruncated(dir + "/f");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("0123456789").ok());
  }
  ASSERT_TRUE(env.TruncateFile(dir + "/f", 4).ok());
  EXPECT_EQ(Contents(env, dir + "/f"), "0123");
}

// Pins the partial-write fix: write(2) may persist fewer bytes than asked
// without error. Capping every write(2) at 3 bytes forces the retry loop on
// a real file — a single-shot ::write would tear every record.
TEST(PosixEnvTest, ShortWriteLoopKeepsWalRecordsIntact) {
  std::string dir = FreshDir("short_write_loop");
  PosixEnv env;
  env.set_max_write_bytes_for_testing(3);
  std::string path = dir + "/wal.log";
  auto wal = WalWriter::Open(path, &env);
  ASSERT_TRUE(wal.ok()) << wal.status();
  std::string payload(100, 'x');
  ASSERT_TRUE(wal->Append(1, payload).ok());
  ASSERT_TRUE(wal->Append(2, "project V T a verify").ok());

  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE(read->torn_tail_warning.empty()) << read->torn_tail_warning;
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0].payload, payload);
  EXPECT_EQ(read->records[1].payload, "project V T a verify");
}

TEST(WritableFileTest, FailedSyncPoisonsTheHandleForever) {
  std::string dir = FreshDir("poison");
  FaultyEnv env;
  auto file = env.OpenAppendable(dir + "/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("bytes").ok());

  env.InjectAt(FaultyEnv::FaultKind::kSyncFail, 0);
  Status failed = (*file)->Sync();
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE((*file)->poisoned());
  env.ClearFaults();

  // Never re-fsync and claim durability: everything but Size refuses, even
  // though the underlying file is healthy again.
  Status append = (*file)->Append("more");
  EXPECT_EQ(append.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(append.message().find("poisoned"), std::string::npos);
  EXPECT_EQ((*file)->Sync().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*file)->Truncate(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE((*file)->Size().ok());
}

TEST(FaultyEnvTest, ShortWritePersistsExactlyHalf) {
  std::string dir = FreshDir("faulty_short");
  FaultyEnv env;
  auto file = env.OpenAppendable(dir + "/f");
  ASSERT_TRUE(file.ok());
  env.InjectAt(FaultyEnv::FaultKind::kShortWrite, 0);
  Status failed = (*file)->Append("0123456789");
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(env.fault_fired());
  EXPECT_EQ(Contents(env, dir + "/f"), "01234");
}

TEST(FaultyEnvTest, ByteQuotaExhaustsMidWrite) {
  std::string dir = FreshDir("faulty_quota");
  FaultyEnv env;
  auto file = env.OpenAppendable(dir + "/f");
  ASSERT_TRUE(file.ok());
  env.SetByteQuota(10);
  ASSERT_TRUE((*file)->Append("123456").ok());  // 6 of 10
  Status full = (*file)->Append("78901234");    // would need 14
  ASSERT_FALSE(full.ok());
  EXPECT_NE(full.message().find("ENOSPC"), std::string::npos);
  // Exactly the bytes that fit reached the file: disk-full mid-write.
  EXPECT_EQ(Contents(env, dir + "/f"), "1234567890");
  // The disk stays full until the quota is lifted.
  EXPECT_FALSE((*file)->Append("x").ok());
  env.ClearFaults();
  EXPECT_TRUE((*file)->Append("x").ok());
}

TEST(FaultyEnvTest, PowerLossDropsUnsyncedBytes) {
  std::string dir = FreshDir("faulty_power");
  FaultyEnv env;
  {
    auto file = env.OpenAppendable(dir + "/f");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("durable").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Append(" volatile").ok());  // never fsync'd
  }
  env.PowerLoss();
  EXPECT_EQ(Contents(env, dir + "/f"), "durable");
}

TEST(FaultyEnvTest, PowerLossRemovesNeverSyncedFile) {
  std::string dir = FreshDir("faulty_power_new");
  FaultyEnv env;
  {
    auto file = env.OpenTruncated(dir + "/never_synced");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("gone after crash").ok());
  }
  env.PowerLoss();
  EXPECT_EQ(env.ReadFile(dir + "/never_synced").status().code(),
            StatusCode::kNotFound);
}

TEST(FaultyEnvTest, PowerLossUndoesRenameUntilDirSync) {
  std::string dir = FreshDir("faulty_rename");
  FaultyEnv env;
  {
    auto file = env.OpenTruncated(dir + "/tmp");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("snapshot").ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  ASSERT_TRUE(env.RenameFile(dir + "/tmp", dir + "/final").ok());
  EXPECT_EQ(Contents(env, dir + "/final"), "snapshot");  // real effect now

  env.PowerLoss();  // ...but not durable without the directory fsync
  EXPECT_EQ(env.ReadFile(dir + "/final").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Contents(env, dir + "/tmp"), "snapshot");

  // With the directory fsync the rename survives power loss.
  ASSERT_TRUE(env.RenameFile(dir + "/tmp", dir + "/final").ok());
  ASSERT_TRUE(env.SyncDir(dir).ok());
  env.PowerLoss();
  EXPECT_EQ(Contents(env, dir + "/final"), "snapshot");
  EXPECT_EQ(env.ReadFile(dir + "/tmp").status().code(), StatusCode::kNotFound);
}

TEST(FaultyEnvTest, InjectedErrorFiresAtTheRequestedCall) {
  std::string dir = FreshDir("faulty_nth");
  FaultyEnv env;
  auto file = env.OpenAppendable(dir + "/f");
  ASSERT_TRUE(file.ok());
  env.ResetCounters();
  env.InjectAt(FaultyEnv::FaultKind::kError, 2);
  EXPECT_TRUE((*file)->Append("a").ok());   // call 0
  EXPECT_TRUE((*file)->Sync().ok());        // call 1
  EXPECT_FALSE((*file)->Append("b").ok());  // call 2: the armed one
  EXPECT_TRUE(env.fault_fired());
  EXPECT_TRUE((*file)->Append("c").ok());   // one-shot: disarmed
}

}  // namespace
}  // namespace tyder::storage
