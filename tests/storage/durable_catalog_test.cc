// DurableCatalog lifecycle: seed, logged mutations, recovery byte-equality,
// compaction, snapshot fallback, and torn-tail repair
// (storage/durable_catalog.h).

#include "storage/durable_catalog.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "catalog/serialize.h"
#include "common/failpoint.h"
#include "storage/catalog_snapshot.h"
#include "testing/fixtures.h"

namespace tyder::storage {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir =
      (fs::temp_directory_path() / ("tyder_db_test_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

Result<DurableCatalog> OpenSeeded(const std::string& dir) {
  auto fx = testing::BuildPersonEmployee();
  if (!fx.ok()) return fx.status();
  TYDER_ASSIGN_OR_RETURN(DurableCatalog db, DurableCatalog::Open(dir));
  TYDER_RETURN_IF_ERROR(db.Seed(Catalog(std::move(fx->schema))));
  return db;
}

size_t CountSnapshots(const std::string& dir) {
  size_t n = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".tysnap") ++n;
  }
  return n;
}

TEST(DurableCatalogTest, OpenCreatesAFreshEmptyDatabase) {
  std::string dir = FreshDir("fresh");
  auto db = DurableCatalog::Open(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->last_lsn(), 0u);
  EXPECT_FALSE(db->recovery().snapshot_loaded);
  EXPECT_TRUE(db->recovery().warnings.empty());
  EXPECT_TRUE(db->catalog().views().empty());
}

TEST(DurableCatalogTest, MutationsSurviveReopenByteIdentically) {
  std::string dir = FreshDir("reopen");
  std::string expected;
  {
    auto db = OpenSeeded(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    auto view = db->DefineProjectionView("EmployeeView", "Employee",
                                         {"SSN", "date_of_birth", "pay_rate"});
    ASSERT_TRUE(view.ok()) << view.status();
    ASSERT_TRUE(db->DefineSelectionView("Sel", "Person").ok());
    expected = SerializeCatalog(db->catalog());
  }
  auto reopened = DurableCatalog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(SerializeCatalog(reopened->catalog()), expected);
  EXPECT_EQ(reopened->recovery().replayed_records, 2u);
  EXPECT_TRUE(reopened->recovery().snapshot_loaded);  // the seed snapshot
  ASSERT_EQ(reopened->catalog().views().size(), 2u);
  // The replayed derivation record is complete enough to revert: drop works.
  EXPECT_TRUE(reopened->DropView("EmployeeView").ok());
}

TEST(DurableCatalogTest, DropAndCollapseAreLoggedAndReplayed) {
  std::string dir = FreshDir("dropcollapse");
  std::string expected;
  {
    auto db = OpenSeeded(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->DefineProjectionView("V1", "Employee", {"SSN"}).ok());
    ASSERT_TRUE(db
                    ->DefineProjectionView("V2", "Person",
                                           {"SSN", "date_of_birth"})
                    .ok());
    // Stacked derivations revert LIFO: the newest view is the droppable one.
    ASSERT_TRUE(db->DropView("V2").ok());
    ASSERT_TRUE(db->Collapse().ok());
    expected = SerializeCatalog(db->catalog());
  }
  auto reopened = DurableCatalog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(SerializeCatalog(reopened->catalog()), expected);
}

TEST(DurableCatalogTest, NoVerifyDerivationsReplayWithVerificationOff) {
  std::string dir = FreshDir("noverify");
  std::string expected;
  {
    auto db = OpenSeeded(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    ProjectionOptions options;
    options.verify = false;
    ASSERT_TRUE(
        db->DefineProjectionView("V", "Employee", {"SSN"}, options).ok());
    expected = SerializeCatalog(db->catalog());
  }
  // If the verify flag were not logged, replay under the default
  // (verify-on) options could diverge from the original derivation.
  auto reopened = DurableCatalog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(SerializeCatalog(reopened->catalog()), expected);
}

TEST(DurableCatalogTest, CompactTruncatesTheLogAndDropsOldSnapshots) {
  std::string dir = FreshDir("compact");
  auto db = OpenSeeded(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->DefineProjectionView("V", "Employee", {"SSN"}).ok());
  std::string before = SerializeCatalog(db->catalog());
  ASSERT_TRUE(db->Compact().ok());
  EXPECT_EQ(CountSnapshots(dir), 1u);
  EXPECT_EQ(fs::file_size(dir + "/wal.log"), 0u);
  EXPECT_EQ(SerializeCatalog(db->catalog()), before);

  auto reopened = DurableCatalog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(SerializeCatalog(reopened->catalog()), before);
  EXPECT_EQ(reopened->recovery().replayed_records, 0u);
  EXPECT_EQ(reopened->last_lsn(), 1u);
  // New mutations after a compaction land in the (now empty) log.
  ASSERT_TRUE(reopened->DropView("V").ok());
  auto again = DurableCatalog::Open(dir);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->recovery().replayed_records, 1u);
}

TEST(DurableCatalogTest, ReplaySkipsRecordsTheSnapshotAlreadyCovers) {
  std::string dir = FreshDir("skipreplay");
  std::string expected;
  {
    auto db = OpenSeeded(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->DefineProjectionView("V", "Employee", {"SSN"}).ok());
    // Crash between the snapshot rename and the WAL truncate: the snapshot
    // covers lsn 1 but the log still holds the record.
    failpoint::Activate("storage.compact.after_rename", 1);
    Status compacted = db->Compact();
    failpoint::DeactivateAll();
    ASSERT_FALSE(compacted.ok());
    expected = SerializeCatalog(db->catalog());
  }
  ASSERT_GT(fs::file_size(dir + "/wal.log"), 0u);  // record still in the log
  auto reopened = DurableCatalog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  // Replaying the covered record would re-derive 'V' onto a catalog that
  // already has it and fail; the lsn filter must skip it.
  EXPECT_EQ(reopened->recovery().replayed_records, 0u);
  EXPECT_EQ(SerializeCatalog(reopened->catalog()), expected);
}

TEST(DurableCatalogTest, CorruptNewestSnapshotFallsBackToOlderPlusLog) {
  std::string dir = FreshDir("fallback");
  std::string expected;
  std::string newest;
  {
    auto db = OpenSeeded(dir);  // snapshot at lsn 0
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->DefineProjectionView("V", "Employee", {"SSN"}).ok());
    // A compaction that crashes before truncating the WAL leaves: the old
    // snapshot, the new snapshot, and the full log.
    failpoint::Activate("storage.compact.after_rename", 1);
    ASSERT_FALSE(db->Compact().ok());
    failpoint::DeactivateAll();
    expected = SerializeCatalog(db->catalog());
  }
  ASSERT_EQ(CountSnapshots(dir), 2u);
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.find("00001.tysnap") != std::string::npos) {
      newest = entry.path().string();
    }
  }
  ASSERT_FALSE(newest.empty());
  {
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out << "not a snapshot";
  }
  auto reopened = DurableCatalog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ASSERT_FALSE(reopened->recovery().warnings.empty());
  EXPECT_NE(reopened->recovery().warnings[0].find("falling back"),
            std::string::npos);
  EXPECT_EQ(reopened->recovery().replayed_records, 1u);
  EXPECT_EQ(SerializeCatalog(reopened->catalog()), expected);
}

TEST(DurableCatalogTest, RefusesWhenNoSnapshotDecodes) {
  std::string dir = FreshDir("allcorrupt");
  {
    auto db = OpenSeeded(dir);
    ASSERT_TRUE(db.ok()) << db.status();
  }
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".tysnap") {
      std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
      out << "garbage";
    }
  }
  auto reopened = DurableCatalog::Open(dir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().message().find("no snapshot"), std::string::npos)
      << reopened.status();
}

TEST(DurableCatalogTest, TornWalTailIsRepairedWithAWarning) {
  std::string dir = FreshDir("torntail");
  std::string expected;
  {
    auto db = OpenSeeded(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->DefineProjectionView("V", "Employee", {"SSN"}).ok());
    expected = SerializeCatalog(db->catalog());
  }
  // Simulate a crash mid-append: partial bytes after the last valid record.
  {
    std::ofstream out(dir + "/wal.log",
                      std::ios::binary | std::ios::app);
    out << "abc";  // 3 bytes of a 16-byte header
  }
  auto reopened = DurableCatalog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ASSERT_FALSE(reopened->recovery().warnings.empty());
  EXPECT_NE(reopened->recovery().warnings[0].find("torn WAL tail"),
            std::string::npos);
  EXPECT_EQ(SerializeCatalog(reopened->catalog()), expected);
  // The repair truncated the junk: a further mutation + reopen is clean.
  ASSERT_TRUE(reopened->DropView("V").ok());
  auto again = DurableCatalog::Open(dir);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->recovery().warnings.empty());
}

TEST(DurableCatalogTest, MidLogCorruptionRefusesRecovery) {
  std::string dir = FreshDir("midlog");
  {
    auto db = OpenSeeded(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->DefineProjectionView("V1", "Employee", {"SSN"}).ok());
    ASSERT_TRUE(db->DefineProjectionView("V2", "Person", {"SSN"}).ok());
  }
  // Flip a byte inside the FIRST record — not a torn tail.
  std::string path = dir + "/wal.log";
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  bytes[20] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto reopened = DurableCatalog::Open(dir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().message().find("refusing to replay"),
            std::string::npos)
      << reopened.status();
}

TEST(DurableCatalogTest, SeedRefusesADatabaseWithState) {
  std::string dir = FreshDir("reseed");
  {
    auto db = OpenSeeded(dir);
    ASSERT_TRUE(db.ok()) << db.status();
  }
  auto db = DurableCatalog::Open(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  Status reseeded = db->Seed(Catalog(std::move(fx->schema)));
  ASSERT_FALSE(reseeded.ok());
  EXPECT_EQ(reseeded.code(), StatusCode::kFailedPrecondition);
}

TEST(DurableCatalogTest, FailedMutationRollsBackAndDoesNotPoison) {
  std::string dir = FreshDir("rollback");
  auto db = OpenSeeded(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  std::string pre = SerializeCatalog(db->catalog());
  // A semantic failure (bad attribute), not an injected one: nothing may be
  // logged for it.
  ASSERT_FALSE(db->DefineProjectionView("V", "Employee", {"nope"}).ok());
  EXPECT_EQ(SerializeCatalog(db->catalog()), pre);
  EXPECT_EQ(db->last_lsn(), 0u);
  ASSERT_TRUE(db->DefineProjectionView("V", "Employee", {"SSN"}).ok());
  auto reopened = DurableCatalog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->recovery().replayed_records, 1u);
  EXPECT_EQ(SerializeCatalog(reopened->catalog()),
            SerializeCatalog(db->catalog()));
}

}  // namespace
}  // namespace tyder::storage
