// The I/O fault matrix: for EVERY Env call a durable operation makes, fail
// that call with every fault kind FaultyEnv can inject — EIO at any call,
// ENOSPC and short writes at appends, fsync failure at file and directory
// syncs — each with and without a simulated power loss afterwards, and
// prove:
//
//   - the in-memory catalog is byte-identical to the pre- or post-state of
//     the interrupted operation, or the database is provably read-only
//     (degraded mode: mutations refuse, reads serve the pre-state);
//   - recovery from the surviving directory is byte-identical to pre or
//     post — never anything in between;
//   - an operation that reported OK is durable: after a power loss the
//     recovered state is exactly its post-state.
//
// The sweep space is not hard-coded: a clean instrumented run of each
// operation counts its Env calls per category, then the matrix re-runs the
// operation once per (kind, call index, power-loss) cell. A new Env call
// site in the storage layer automatically widens the matrix.
//
// Complements crash_matrix_test.cc (failpoint-driven, one representative
// scenario per registered point) with exhaustive call-site coverage.

#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "storage/catalog_snapshot.h"
#include "storage/durable_catalog.h"
#include "storage/faulty_env.h"
#include "storage/wal.h"
#include "testing/fixtures.h"

namespace tyder::storage {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir =
      (fs::temp_directory_path() / ("tyder_iofault_test_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

Result<DurableCatalog> OpenSeeded(const std::string& dir, Env* env = nullptr) {
  auto fx = testing::BuildPersonEmployee();
  if (!fx.ok()) return fx.status();
  TYDER_ASSIGN_OR_RETURN(DurableCatalog db, DurableCatalog::Open(dir, env));
  TYDER_RETURN_IF_ERROR(db.Seed(Catalog(std::move(fx->schema))));
  TYDER_ASSIGN_OR_RETURN(
      const ViewDef* view,
      db.DefineProjectionView("BaseView", "Employee",
                              {"SSN", "date_of_birth", "pay_rate"}));
  (void)view;
  return db;
}

using OpFn = std::function<Status(DurableCatalog&)>;

struct OpCase {
  std::string name;
  OpFn run;
};

Status RunProject(DurableCatalog& db) {
  auto r = db.DefineProjectionView("MatrixView", "Person", {"SSN"});
  return r.ok() ? Status::OK() : r.status();
}
Status RunDrop(DurableCatalog& db) { return db.DropView("BaseView"); }
Status RunCollapse(DurableCatalog& db) {
  auto r = db.Collapse();
  return r.ok() ? Status::OK() : r.status();
}
Status RunCompact(DurableCatalog& db) { return db.Compact(); }

struct FaultCell {
  FaultyEnv::FaultKind kind;
  const char* kind_name;
  int index;
  bool power_loss;
};

// One matrix cell: seed, arm the fault, run the op, check in-memory
// consistency, crash (drop the instance, optionally power-loss), recover,
// check byte-identity against the references.
void RunCell(const OpCase& op, const FaultCell& cell, const std::string& pre,
             const std::string& post) {
  SCOPED_TRACE(std::string(cell.kind_name) + "@" +
               std::to_string(cell.index) +
               (cell.power_loss ? "+powerloss" : ""));
  std::string dir =
      FreshDir(op.name + "_" + cell.kind_name + "_" +
               std::to_string(cell.index) + (cell.power_loss ? "_pl" : ""));
  FaultyEnv env;
  Status status;
  {
    auto db = OpenSeeded(dir, &env);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_EQ(SerializeCatalog(db->catalog()), pre);
    env.ResetCounters();
    env.InjectAt(cell.kind, cell.index);
    status = op.run(*db);
    env.ClearFaults();
    // Calls before the armed index replay the clean run, so the armed call
    // is always reached.
    EXPECT_TRUE(env.fault_fired());

    if (status.ok()) {
      // The fault hit a call whose failure is absorbed (e.g. stale-snapshot
      // cleanup): the operation committed.
      EXPECT_EQ(SerializeCatalog(db->catalog()), post);
      EXPECT_FALSE(db->degraded());
    } else if (db->degraded()) {
      // Provably read-only: reads serve the pre-state, mutations refuse.
      EXPECT_EQ(SerializeCatalog(db->catalog()), pre);
      auto refused = db->DefineProjectionView("Probe", "Person", {"SSN"});
      ASSERT_FALSE(refused.ok());
      EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
      EXPECT_NE(refused.status().message().find("degraded"),
                std::string::npos);
    } else {
      // Failed but live: rolled back, nothing in between.
      EXPECT_EQ(SerializeCatalog(db->catalog()), pre);
    }
  }  // crash: instance abandoned with the fault's damage on disk

  if (cell.power_loss) env.PowerLoss();

  auto recovered = DurableCatalog::Open(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  std::string rec = SerializeCatalog(recovered->catalog());
  EXPECT_TRUE(rec == pre || rec == post)
      << "recovered state is neither the pre- nor the post-operation "
         "catalog";
  if (status.ok() && cell.power_loss) {
    // Durability: an acknowledged operation survives power loss.
    EXPECT_EQ(rec, post);
  }
}

void RunMatrix(const OpCase& op) {
  // Reference pre/post states (catalog construction is deterministic).
  std::string pre, post;
  {
    std::string dir = FreshDir(op.name + "_ref");
    auto db = OpenSeeded(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    pre = SerializeCatalog(db->catalog());
    Status applied = op.run(*db);
    ASSERT_TRUE(applied.ok()) << applied;
    post = SerializeCatalog(db->catalog());
  }

  // Clean instrumented run: size the sweep space per fault category.
  int total_calls = 0, append_calls = 0, sync_calls = 0;
  {
    std::string dir = FreshDir(op.name + "_count");
    FaultyEnv env;
    auto db = OpenSeeded(dir, &env);
    ASSERT_TRUE(db.ok()) << db.status();
    env.ResetCounters();
    Status applied = op.run(*db);
    ASSERT_TRUE(applied.ok()) << applied;
    EXPECT_EQ(SerializeCatalog(db->catalog()), post);
    total_calls = env.total_calls();
    append_calls = env.append_calls();
    sync_calls = env.sync_calls();
  }
  ASSERT_GT(total_calls, 0) << op.name << " makes no Env calls to fault";
  ASSERT_GT(append_calls, 0);
  ASSERT_GT(sync_calls, 0);

  for (bool power_loss : {false, true}) {
    for (int i = 0; i < total_calls; ++i) {
      RunCell(op, {FaultyEnv::FaultKind::kError, "eio", i, power_loss}, pre,
              post);
    }
    for (int i = 0; i < append_calls; ++i) {
      RunCell(op, {FaultyEnv::FaultKind::kEnospc, "enospc", i, power_loss},
              pre, post);
      RunCell(op,
              {FaultyEnv::FaultKind::kShortWrite, "short_write", i,
               power_loss},
              pre, post);
    }
    for (int i = 0; i < sync_calls; ++i) {
      RunCell(op, {FaultyEnv::FaultKind::kSyncFail, "sync_fail", i,
                   power_loss},
              pre, post);
    }
  }
}

TEST(IoFaultMatrixTest, ProjectionSurvivesEveryEnvFault) {
  RunMatrix({"project", RunProject});
}

TEST(IoFaultMatrixTest, DropViewSurvivesEveryEnvFault) {
  RunMatrix({"drop", RunDrop});
}

TEST(IoFaultMatrixTest, CollapseSurvivesEveryEnvFault) {
  RunMatrix({"collapse", RunCollapse});
}

TEST(IoFaultMatrixTest, CompactionSurvivesEveryEnvFault) {
  RunMatrix({"compact", RunCompact});
}

// --- Group-commit batch append ---------------------------------------------
//
// The same exhaustive per-Env-call sweep for WalWriter::AppendBatch, the
// group-commit primitive. The batch must be all-or-nothing at every fault:
// a live writer after a failed batch holds exactly the pre-batch records
// and retries cleanly; a poisoned writer refuses further mutation; and
// power-loss recovery sees either no batch record or the whole batch —
// never a partial one.

std::vector<WalRecord> BatchRecords() {
  return {{2, "project V1 Employee SSN verify"},
          {3, "project V2 Employee pay_rate verify"},
          {4, "drop V1"}};
}

void RunBatchCell(const FaultCell& cell) {
  SCOPED_TRACE(std::string(cell.kind_name) + "@" +
               std::to_string(cell.index) +
               (cell.power_loss ? "+powerloss" : ""));
  std::string dir =
      FreshDir(std::string("batch_") + cell.kind_name + "_" +
               std::to_string(cell.index) + (cell.power_loss ? "_pl" : ""));
  fs::create_directories(dir);
  std::string path = dir + "/wal.log";
  FaultyEnv env;
  std::optional<WalWriter> writer;
  {
    auto opened = WalWriter::Open(path, &env);
    ASSERT_TRUE(opened.ok()) << opened.status();
    writer.emplace(std::move(*opened));
  }
  ASSERT_TRUE(writer->Append(1, "seed").ok());

  env.ResetCounters();
  env.InjectAt(cell.kind, cell.index);
  Status status = writer->AppendBatch(BatchRecords());
  env.ClearFaults();
  EXPECT_TRUE(env.fault_fired());

  bool acked = status.ok();
  if (status.ok()) {
    EXPECT_FALSE(writer->poisoned());
    auto live = ReadWal(path, &env);
    ASSERT_TRUE(live.ok()) << live.status();
    EXPECT_EQ(live->records.size(), 4u);
  } else if (!writer->poisoned()) {
    // Durable undo held: the live file is exactly the pre-batch log and the
    // whole batch lands on retry — no committer is half-acknowledged.
    auto live = ReadWal(path, &env);
    ASSERT_TRUE(live.ok()) << live.status();
    EXPECT_EQ(live->records.size(), 1u);
    Status retried = writer->AppendBatch(BatchRecords());
    ASSERT_TRUE(retried.ok()) << retried;
    acked = true;
  } else {
    // Poisoned (the batch fsync or its undo failed): the writer can no
    // longer vouch for durability and must refuse every further mutation.
    EXPECT_FALSE(writer->Append(9, "probe").ok());
    EXPECT_FALSE(writer->AppendBatch(BatchRecords()).ok());
  }

  if (cell.power_loss) {
    writer.reset();  // drop the file handle before rewinding
    env.PowerLoss();
    auto recovered = ReadWal(path);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    ASSERT_TRUE(recovered->records.size() == 1u ||
                recovered->records.size() == 4u)
        << "power loss exposed a partial batch ("
        << recovered->records.size() << " records)";
    if (acked) {
      // An acknowledged batch is durable as a unit.
      EXPECT_EQ(recovered->records.size(), 4u);
      EXPECT_EQ(recovered->records.back().lsn, 4u);
    }
  }
}

TEST(IoFaultMatrixTest, GroupCommitBatchSurvivesEveryEnvFault) {
  // Size the sweep from a clean instrumented batch append.
  int total_calls = 0, append_calls = 0, sync_calls = 0;
  {
    std::string dir = FreshDir("batch_count");
    fs::create_directories(dir);
    FaultyEnv env;
    auto writer = WalWriter::Open(dir + "/wal.log", &env);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(1, "seed").ok());
    env.ResetCounters();
    Status clean = writer->AppendBatch(BatchRecords());
    ASSERT_TRUE(clean.ok()) << clean;
    total_calls = env.total_calls();
    append_calls = env.append_calls();
    sync_calls = env.sync_calls();
  }
  ASSERT_GT(total_calls, 0);
  ASSERT_GT(append_calls, 0);
  ASSERT_GT(sync_calls, 0);
  // One contiguous write, one fsync: the whole point of the batch path.
  EXPECT_EQ(append_calls, 1);
  EXPECT_EQ(sync_calls, 1);

  for (bool power_loss : {false, true}) {
    for (int i = 0; i < total_calls; ++i) {
      RunBatchCell({FaultyEnv::FaultKind::kError, "eio", i, power_loss});
    }
    for (int i = 0; i < append_calls; ++i) {
      RunBatchCell({FaultyEnv::FaultKind::kEnospc, "enospc", i, power_loss});
      RunBatchCell(
          {FaultyEnv::FaultKind::kShortWrite, "short_write", i, power_loss});
    }
    for (int i = 0; i < sync_calls; ++i) {
      RunBatchCell(
          {FaultyEnv::FaultKind::kSyncFail, "sync_fail", i, power_loss});
    }
  }
}

}  // namespace
}  // namespace tyder::storage
