// The crash matrix: for EVERY registered storage fault point, inject the
// failure mid-operation, abandon the DurableCatalog instance (the in-process
// stand-in for a crash), re-open the directory, and prove recovery yields a
// catalog byte-identical to the state either before or after the interrupted
// mutation — never anything in between. Complements the in-memory rollback
// matrix in tests/core/transaction_test.cc, which intentionally skips the
// storage.* points, and the FaultyEnv-driven per-call-site sweep in
// io_fault_matrix_test.cc.
//
// Each point maps to a scenario:
//   kWalLive      fires during a WAL append whose durable undo holds — the
//                 op fails, state is unchanged, a retry succeeds.
//   kWalDegraded  a (simulated) fsync failure — the op fails AND the
//                 database drops into read-only degraded mode until
//                 Reopen() re-validates the on-disk state.
//   kCompact      fires during Compact() — compaction fails, the old
//                 snapshot + WAL remain the recovery source, retry works.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "storage/catalog_snapshot.h"
#include "storage/durable_catalog.h"
#include "storage/wal.h"
#include "testing/fixtures.h"

namespace tyder::storage {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir =
      (fs::temp_directory_path() / ("tyder_crash_test_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

Result<DurableCatalog> OpenSeeded(const std::string& dir) {
  auto fx = testing::BuildPersonEmployee();
  if (!fx.ok()) return fx.status();
  TYDER_ASSIGN_OR_RETURN(DurableCatalog db, DurableCatalog::Open(dir));
  TYDER_RETURN_IF_ERROR(db.Seed(Catalog(std::move(fx->schema))));
  TYDER_ASSIGN_OR_RETURN(
      const ViewDef* view,
      db.DefineProjectionView("BaseView", "Employee",
                              {"SSN", "date_of_birth", "pay_rate"}));
  (void)view;
  return db;
}

// Every storage.* fault point in the registry, so this test fails loudly
// when a new point is added without crash-matrix coverage.
std::set<std::string> StoragePoints() {
  std::set<std::string> points;
  for (const std::string& name : failpoint::AllFaultPointNames()) {
    if (name.rfind("storage.", 0) == 0) points.insert(name);
  }
  return points;
}

struct CrashOutcome {
  std::string pre;   // catalog bytes before the faulted operation
  std::string post;  // catalog bytes had the operation succeeded
  std::string recovered;
};

enum class Scenario { kWalLive, kWalDegraded, kCompact };

// Every storage point must pick a scenario here; a new registry entry that
// is missing from this map fails the matrix loudly.
Result<Scenario> ScenarioFor(const std::string& point) {
  if (point == "storage.wal.torn_write" ||
      point == "storage.wal.after_append" ||
      point == "storage.wal.mid_fsync" ||    // crash DURING fsync, no error
      point == "storage.wal.after_sync" ||
      point == "storage.env.append" ||       // undo holds -> live
      point == "storage.env.short_write") {
    return Scenario::kWalLive;
  }
  if (point == "storage.env.sync") {         // fsync returns failure
    return Scenario::kWalDegraded;
  }
  if (point == "storage.compact.before_rename" ||
      point == "storage.compact.after_rename" ||
      point == "storage.env.rename" ||       // fires in Compact's publish
      point == "storage.env.sync_dir" ||     // fires in Compact's dir fsync
      point == "storage.env.truncate") {     // fires in Compact's WAL trunc
    return Scenario::kCompact;
  }
  return Status::Internal(
      "new storage fault point '" + point +
      "'? add it to ScenarioFor, io_fault_matrix_test.cc and the "
      "run_all.sh crash/iofault modes");
}

// Arms `point`, runs a WAL-logged mutation that must fail, "crashes" (drops
// the instance), recovers, and returns the three states. Catalog
// construction is deterministic, so the pre/post reference states can be
// built in their own fresh directories and compared byte-for-byte.
CrashOutcome RunWalCrash(const std::string& point) {
  CrashOutcome outcome;
  {
    // Reference: what the state would be had the mutation committed.
    std::string dir = FreshDir(point + ".post");
    auto db = OpenSeeded(dir);
    EXPECT_TRUE(db.ok()) << db.status();
    auto applied = db->DefineProjectionView("CrashView", "Person", {"SSN"});
    EXPECT_TRUE(applied.ok()) << point << ": " << applied.status();
    outcome.post = SerializeCatalog(db->catalog());
  }
  {
    // Liveness: the failed commit rolls back and does not poison retries.
    std::string dir = FreshDir(point + ".live");
    auto db = OpenSeeded(dir);
    EXPECT_TRUE(db.ok()) << db.status();
    outcome.pre = SerializeCatalog(db->catalog());

    failpoint::Activate(point, 1);
    auto faulted = db->DefineProjectionView("CrashView", "Person", {"SSN"});
    failpoint::DeactivateAll();
    EXPECT_FALSE(faulted.ok()) << "fault '" << point << "' did not fire";
    EXPECT_EQ(SerializeCatalog(db->catalog()), outcome.pre) << point;
    auto retried = db->DefineProjectionView("CrashView", "Person", {"SSN"});
    EXPECT_TRUE(retried.ok()) << point << ": " << retried.status();
    EXPECT_EQ(SerializeCatalog(db->catalog()), outcome.post) << point;
  }

  // Crash: on-disk state is exactly "faulted append right after BaseView".
  std::string dir = FreshDir(point);
  {
    auto db = OpenSeeded(dir);
    EXPECT_TRUE(db.ok()) << db.status();
    failpoint::Activate(point, 1);
    (void)db->DefineProjectionView("CrashView", "Person", {"SSN"});
    failpoint::DeactivateAll();
  }  // crash: instance abandoned

  auto recovered = DurableCatalog::Open(dir);
  EXPECT_TRUE(recovered.ok()) << point << ": " << recovered.status();
  if (recovered.ok()) {
    outcome.recovered = SerializeCatalog(recovered->catalog());
  }
  return outcome;
}

// A simulated fsync failure: the op fails, the database degrades to
// read-only, and Reopen() re-validates the on-disk state before mutations
// are allowed again.
CrashOutcome RunWalCrashDegraded(const std::string& point) {
  CrashOutcome outcome;
  {
    // Reference: what the state would be had the mutation committed.
    std::string dir = FreshDir(point + ".post");
    auto db = OpenSeeded(dir);
    EXPECT_TRUE(db.ok()) << db.status();
    auto applied = db->DefineProjectionView("CrashView", "Person", {"SSN"});
    EXPECT_TRUE(applied.ok()) << point << ": " << applied.status();
    outcome.post = SerializeCatalog(db->catalog());
  }
  {
    std::string dir = FreshDir(point + ".live");
    auto db = OpenSeeded(dir);
    EXPECT_TRUE(db.ok()) << db.status();
    outcome.pre = SerializeCatalog(db->catalog());

    failpoint::Activate(point, 1);
    auto faulted = db->DefineProjectionView("CrashView", "Person", {"SSN"});
    failpoint::DeactivateAll();
    EXPECT_FALSE(faulted.ok()) << "fault '" << point << "' did not fire";

    // The store can no longer prove durability: read-only degraded mode.
    EXPECT_TRUE(db->degraded()) << point;
    EXPECT_EQ(SerializeCatalog(db->catalog()), outcome.pre) << point;
    auto refused = db->DefineProjectionView("CrashView", "Person", {"SSN"});
    EXPECT_FALSE(refused.ok()) << point;
    EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(refused.status().message().find("degraded"), std::string::npos);
    EXPECT_FALSE(db->Compact().ok()) << point;
    EXPECT_EQ(SerializeCatalog(db->catalog()), outcome.pre) << point;

    // Reopen re-validates from disk. The record's bytes landed before the
    // injected fsync failure, so the re-validated state may be pre or post.
    Status reopened = db->Reopen();
    EXPECT_TRUE(reopened.ok()) << point << ": " << reopened;
    EXPECT_FALSE(db->degraded()) << point;
    std::string revalidated = SerializeCatalog(db->catalog());
    EXPECT_TRUE(revalidated == outcome.pre || revalidated == outcome.post)
        << point;
    if (revalidated == outcome.pre) {
      auto retried = db->DefineProjectionView("CrashView", "Person", {"SSN"});
      EXPECT_TRUE(retried.ok()) << point << ": " << retried.status();
    }
    EXPECT_EQ(SerializeCatalog(db->catalog()), outcome.post) << point;
  }

  // Crash: instance abandoned while degraded.
  std::string dir = FreshDir(point);
  {
    auto db = OpenSeeded(dir);
    EXPECT_TRUE(db.ok()) << db.status();
    failpoint::Activate(point, 1);
    (void)db->DefineProjectionView("CrashView", "Person", {"SSN"});
    failpoint::DeactivateAll();
  }  // crash

  auto recovered = DurableCatalog::Open(dir);
  EXPECT_TRUE(recovered.ok()) << point << ": " << recovered.status();
  if (recovered.ok()) {
    outcome.recovered = SerializeCatalog(recovered->catalog());
  }
  return outcome;
}

CrashOutcome RunCompactCrash(const std::string& point) {
  CrashOutcome outcome;
  std::string dir = FreshDir(point);
  {
    auto db = OpenSeeded(dir);
    EXPECT_TRUE(db.ok()) << db.status();
    // Compaction does not change the catalog: pre == post by definition.
    outcome.pre = outcome.post = SerializeCatalog(db->catalog());

    failpoint::Activate(point, 1);
    Status compacted = db->Compact();
    failpoint::DeactivateAll();
    EXPECT_FALSE(compacted.ok()) << "fault '" << point << "' did not fire";
    EXPECT_EQ(SerializeCatalog(db->catalog()), outcome.pre) << point;
    // Not poisoned: compaction succeeds on retry.
    EXPECT_TRUE(db->Compact().ok()) << point;
    EXPECT_EQ(SerializeCatalog(db->catalog()), outcome.pre) << point;
  }

  // Rebuild so the on-disk state is exactly "crashed during compaction".
  fs::remove_all(dir);
  {
    auto db = OpenSeeded(dir);
    EXPECT_TRUE(db.ok()) << db.status();
    failpoint::Activate(point, 1);
    (void)db->Compact();
    failpoint::DeactivateAll();
  }  // crash

  auto recovered = DurableCatalog::Open(dir);
  EXPECT_TRUE(recovered.ok()) << point << ": " << recovered.status();
  if (recovered.ok()) {
    outcome.recovered = SerializeCatalog(recovered->catalog());
  }
  return outcome;
}

TEST(CrashMatrixTest, EveryStorageFaultPointRecoversToPreOrPost) {
  std::set<std::string> covered;
  for (const std::string& point : StoragePoints()) {
    SCOPED_TRACE(point);
    Result<Scenario> scenario = ScenarioFor(point);
    ASSERT_TRUE(scenario.ok()) << scenario.status();
    CrashOutcome outcome;
    switch (*scenario) {
      case Scenario::kWalLive:
        outcome = RunWalCrash(point);
        break;
      case Scenario::kWalDegraded:
        outcome = RunWalCrashDegraded(point);
        break;
      case Scenario::kCompact:
        outcome = RunCompactCrash(point);
        break;
    }
    ASSERT_FALSE(outcome.pre.empty());
    EXPECT_TRUE(outcome.recovered == outcome.pre ||
                outcome.recovered == outcome.post)
        << "recovered state is neither the pre- nor the post-mutation "
           "catalog";
    covered.insert(point);
  }
  // The matrix must cover exactly the storage points the registry declares.
  EXPECT_EQ(covered, StoragePoints());
  EXPECT_EQ(covered.size(), 12u) << "new storage fault point? extend "
                                    "ScenarioFor above and run_all.sh "
                                    "crash/iofault modes";
}

// The crash matrix extended to the group-commit path: four concurrent
// committers share fsync batches while storage.env.sync is armed to fail
// once. The faulted batch must nack EVERY committer it carried (no partial
// acks inside a batch), the database degrades, and after the crash every
// acknowledged commit — from batches durable before the fault — is
// recovered. Which committers land in the faulted batch is scheduling-
// dependent, so the assertions are the ack-set contract rather than a fixed
// pre/post pair.
TEST(CrashMatrixTest, GroupCommitFsyncFailureNacksTheWholeBatch) {
  std::string dir = FreshDir("group_sync_fail");
  constexpr int kCommitters = 4;
  std::vector<char> acked(kCommitters, 0);
  {
    auto fx = testing::BuildPersonEmployee();
    ASSERT_TRUE(fx.ok()) << fx.status();
    GroupCommitOptions group;
    group.max_batch = kCommitters;
    group.max_wait_us = 200;
    auto db = DurableCatalog::Open(dir, nullptr, group);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->Seed(Catalog(std::move(fx->schema))).ok());

    failpoint::Activate("storage.env.sync", 1);
    std::vector<std::thread> committers;
    for (int t = 0; t < kCommitters; ++t) {
      committers.emplace_back([&, t] {
        auto r = db->DefineProjectionView("Grp" + std::to_string(t),
                                          "Employee", {"SSN"});
        acked[t] = r.ok() ? 1 : 0;
      });
    }
    for (auto& th : committers) th.join();
    failpoint::DeactivateAll();

    // The armed fsync failure hit some batch: its committers all failed and
    // the store degraded to read-only.
    int acks = 0;
    for (char a : acked) acks += a;
    EXPECT_LT(acks, kCommitters) << "the fsync fault nacked no committer";
    EXPECT_TRUE(db->degraded());

    // Ack and visibility agree per committer, even mid-degradation.
    for (int t = 0; t < kCommitters; ++t) {
      auto found = db->catalog().FindView("Grp" + std::to_string(t));
      EXPECT_EQ(found.ok(), acked[t] != 0) << "committer " << t;
    }
    auto refused = db->DefineProjectionView("Probe", "Person", {"SSN"});
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  }  // crash: instance abandoned while degraded

  auto recovered = DurableCatalog::Open(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  for (int t = 0; t < kCommitters; ++t) {
    if (acked[t] == 0) continue;
    auto found = recovered->catalog().FindView("Grp" + std::to_string(t));
    EXPECT_TRUE(found.ok())
        << "acknowledged commit Grp" << t << " lost across the crash";
  }
}

// A doubly-injected crash: the append tears AND the process dies before the
// undo completes. Simulated by tearing the file manually after a successful
// append — recovery must warn, truncate, and land on the pre-state.
TEST(CrashMatrixTest, TornTailAfterCrashRecoversToPreState) {
  std::string dir = FreshDir("torn_after_crash");
  std::string pre;
  uint64_t intact_size = 0;
  {
    auto db = OpenSeeded(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    pre = SerializeCatalog(db->catalog());
    intact_size = fs::file_size(dir + "/wal.log");
    ASSERT_TRUE(db->DefineProjectionView("CrashView", "Person", {"SSN"}).ok());
  }
  // Cut the last record in half: the on-disk signature of a torn append.
  uint64_t full_size = fs::file_size(dir + "/wal.log");
  ASSERT_GT(full_size, intact_size);
  fs::resize_file(dir + "/wal.log", intact_size + (full_size - intact_size) / 2);

  auto recovered = DurableCatalog::Open(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_FALSE(recovered->recovery().warnings.empty());
  EXPECT_NE(recovered->recovery().warnings[0].find("torn WAL tail"),
            std::string::npos);
  EXPECT_EQ(SerializeCatalog(recovered->catalog()), pre);
  EXPECT_EQ(fs::file_size(dir + "/wal.log"), intact_size);
}

}  // namespace
}  // namespace tyder::storage
