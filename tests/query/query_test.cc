#include "query/query.h"

#include <gtest/gtest.h>

#include "core/projection.h"
#include "instances/view_materialize.h"
#include "mir/builder.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildPersonEmployee();
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
    struct Row {
      const char* ssn;
      int dob;
      double pay;
      double hrs;
    };
    for (const Row& row : std::initializer_list<Row>{
             {"A1", 1990, 40.0, 35.0},
             {"B2", 1960, 90.0, 40.0},
             {"C3", 1985, 120.0, 20.0}}) {
      auto obj = store_.CreateObject(fx_.schema, fx_.employee);
      ASSERT_TRUE(obj.ok());
      ASSERT_TRUE(
          store_.SetSlot(*obj, fx_.ssn, Value::String(row.ssn)).ok());
      ASSERT_TRUE(
          store_.SetSlot(*obj, fx_.date_of_birth, Value::Int(row.dob)).ok());
      ASSERT_TRUE(
          store_.SetSlot(*obj, fx_.pay_rate, Value::Float(row.pay)).ok());
      ASSERT_TRUE(
          store_.SetSlot(*obj, fx_.hrs_worked, Value::Float(row.hrs)).ok());
      employees_.push_back(*obj);
    }
  }

  testing::PersonEmployeeFixture fx_;
  ObjectStore store_;
  std::vector<ObjectId> employees_;
};

TEST_F(QueryTest, UnfilteredScanReturnsExtent) {
  Query query(fx_.schema, "Employee");
  auto result = query.Execute(store_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->objects.size(), 3u);
  EXPECT_TRUE(result->columns.empty());
}

TEST_F(QueryTest, TdlPredicateFilters) {
  Query query(fx_.schema, "Employee");
  query.WhereTdl("get_pay_rate(self) < 100.0");
  auto result = query.Execute(store_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->objects.size(), 2u);  // 40 and 90
}

TEST_F(QueryTest, PredicatesConjoin) {
  Query query(fx_.schema, "Employee");
  query.WhereTdl("get_pay_rate(self) < 100.0")
      .WhereTdl("age(self) < 40");  // only the 1990 hire
  auto result = query.Execute(store_);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->objects.size(), 1u);
  EXPECT_EQ(*store_.GetSlot(result->objects[0], fx_.ssn),
            Value::String("A1"));
}

TEST_F(QueryTest, ColumnsProjectMethodResults) {
  Query query(fx_.schema, "Employee");
  query.WhereTdl("get_hrs_worked(self) <= 35.0")
      .Column("get_SSN")
      .Column("income");
  auto result = query.Execute(store_);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);  // 35h and 20h employees
  EXPECT_EQ(result->columns, (std::vector<std::string>{"get_SSN", "income"}));
  EXPECT_EQ(result->rows[0][0], Value::String("A1"));
  EXPECT_EQ(result->rows[0][1], Value::Float(1400.0));
  EXPECT_EQ(result->rows[1][0], Value::String("C3"));
  EXPECT_EQ(result->rows[1][1], Value::Float(2400.0));
}

TEST_F(QueryTest, MirPredicateWorksDirectly) {
  auto promote = fx_.schema.FindGenericFunction("promote");
  ASSERT_TRUE(promote.ok());
  Query query(fx_.schema, "Employee");
  query.Where(mir::Call(*promote, {mir::Param(0)}));
  auto result = query.Execute(store_);
  ASSERT_TRUE(result.ok()) << result.status();
  // promote = age < 65 and pay < 100: A1 (36y, 40) yes; B2 (66y) no;
  // C3 (pay 120) no.
  ASSERT_EQ(result->objects.size(), 1u);
  EXPECT_EQ(*store_.GetSlot(result->objects[0], fx_.ssn),
            Value::String("A1"));
}

TEST_F(QueryTest, QueryOverDerivedViewUsesSurvivingBehaviorOnly) {
  auto derivation = DeriveProjectionByName(
      fx_.schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(derivation.ok()) << derivation.status();
  auto views =
      MaterializeProjectionPreserving(fx_.schema, store_, derivation->derived);
  ASSERT_TRUE(views.ok());

  // age survived the projection: usable in predicates over the view extent.
  // The extent of EmployeeView covers its subtypes too — the base Employee
  // objects as well as the delegating view instances — so A1 matches twice.
  Query ok_query(fx_.schema, "EmployeeView");
  ok_query.WhereTdl("age(self) < 40").Column("get_SSN");
  auto result = ok_query.Execute(store_);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0][0], Value::String("A1"));
  EXPECT_EQ(result->rows[1][0], Value::String("A1"));

  // income did not survive. The column is *dynamically plausible* (Employee
  // instances in the extent can still answer it), so construction passes,
  // but evaluating it on a pure view instance fails — surfaced by Execute.
  Query bad_query(fx_.schema, "EmployeeView");
  bad_query.Column("income");
  auto rejected = bad_query.Execute(store_);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("income"), std::string::npos);
}

TEST_F(QueryTest, IllTypedPredicateRejected) {
  Query query(fx_.schema, "Employee");
  query.WhereTdl("get_pay_rate(self)");  // Float, not Bool
  EXPECT_FALSE(query.Execute(store_).ok());
}

TEST_F(QueryTest, MalformedPredicateRejected) {
  Query query(fx_.schema, "Employee");
  query.WhereTdl("get_pay_rate(self) <");
  auto result = query.Execute(store_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST_F(QueryTest, UnknownTypeAndColumnRejected) {
  Query unknown_type(fx_.schema, "Ghost");
  EXPECT_EQ(unknown_type.Execute(store_).status().code(),
            StatusCode::kNotFound);

  Query unknown_column(fx_.schema, "Employee");
  unknown_column.Column("ghost_fn");
  EXPECT_FALSE(unknown_column.Execute(store_).ok());

  Query binary_column(fx_.schema, "Employee");
  binary_column.Column("set_SSN");  // arity 2
  EXPECT_FALSE(binary_column.Execute(store_).ok());
}

TEST_F(QueryTest, SingleErrorKeepsItsCodeAcrossChaining) {
  Query query(fx_.schema, "Ghost");
  query.WhereTdl("true").Column("age");  // chained after the type error
  EXPECT_EQ(query.Execute(store_).status().code(), StatusCode::kNotFound);
}

TEST_F(QueryTest, AllConstructionErrorsAreReportedTogether) {
  Query query(fx_.schema, "Employee");
  query.WhereTdl("get_pay_rate(self) <")  // parse error
      .Column("ghost_fn")                 // unknown column
      .Column("get_SSN");                 // fine; must not mask the errors
  auto result = query.Execute(store_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  const std::string& message = result.status().message();
  EXPECT_NE(message.find("2 errors"), std::string::npos) << message;
  EXPECT_NE(message.find("query predicate"), std::string::npos) << message;
  EXPECT_NE(message.find("ghost_fn"), std::string::npos) << message;
}

}  // namespace
}  // namespace tyder
