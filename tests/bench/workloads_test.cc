// Unit tests for the synthetic bench schema generators (ISSUE 10 satellite).
//
// The scalability benches and the macro-workload scenario baselines are only
// comparable across runs if these generators are deterministic in their
// parameters and produce the documented shapes; this pins both.

#include "workloads.h"

#include <string>

#include "gtest/gtest.h"
#include "methods/dispatch.h"
#include "objmodel/schema_printer.h"

namespace tyder::bench {
namespace {

TEST(BenchWorkloads, ChainSchemaShape) {
  const int depth = 8;
  Result<Schema> schema = BuildChainSchema(depth);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  const TypeGraph& graph = schema->types();
  // T0 is the deepest subtype: it must see every attribute along the chain.
  Result<TypeId> t0 = graph.FindType("T0");
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(graph.CumulativeAttributes(*t0).size(), static_cast<size_t>(depth));
  // The top of the chain owns exactly its own attribute.
  Result<TypeId> top = graph.FindType("T" + std::to_string(depth - 1));
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(graph.CumulativeAttributes(*top).size(), 1u);
  EXPECT_TRUE(graph.IsSubtype(*t0, *top));
  EXPECT_FALSE(graph.IsSubtype(*top, *t0));
  // One chained gf + one reader gf per level.
  EXPECT_EQ(schema->NumGenericFunctions(), static_cast<size_t>(2 * depth));
  // The method chain dispatches end to end on T0.
  Result<GfId> m0 = schema->FindGenericFunction("m0");
  ASSERT_TRUE(m0.ok());
  EXPECT_TRUE(Dispatch(*schema, *m0, {*t0}).ok());
}

TEST(BenchWorkloads, WideSchemaShape) {
  const int width = 12;
  Result<Schema> schema = BuildWideSchema(width);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  const TypeGraph& graph = schema->types();
  Result<TypeId> src = graph.FindType("Src");
  ASSERT_TRUE(src.ok());
  // Src inherits one attribute from each of its `width` unrelated supers.
  EXPECT_EQ(graph.CumulativeAttributes(*src).size(),
            static_cast<size_t>(width));
  for (int i = 0; i < width; ++i) {
    Result<TypeId> s = graph.FindType("S" + std::to_string(i));
    ASSERT_TRUE(s.ok());
    EXPECT_TRUE(graph.IsSubtype(*src, *s));
    EXPECT_EQ(graph.CumulativeAttributes(*s).size(), 1u);
  }
}

TEST(BenchWorkloads, CyclicSchemaRingDispatches) {
  const int n = 6;
  Result<Schema> schema = BuildCyclicSchema(n);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  Result<TypeId> t = schema->types().FindType("T");
  ASSERT_TRUE(t.ok());
  // Every ring gf has an applicable method on T despite the call cycle.
  for (int i = 0; i < n; ++i) {
    Result<GfId> gf = schema->FindGenericFunction("c" + std::to_string(i));
    ASSERT_TRUE(gf.ok()) << i;
    EXPECT_TRUE(Dispatch(*schema, *gf, {*t}).ok()) << i;
  }
}

TEST(BenchWorkloads, TreeSchemaShape) {
  const int depth = 5;
  Result<Schema> schema = BuildTreeSchema(depth);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  const TypeGraph& graph = schema->types();
  Result<TypeId> root = graph.FindType("N0_0");
  ASSERT_TRUE(root.ok());
  // The root reaches every leaf attribute: 2^(depth-1) of them.
  EXPECT_EQ(graph.CumulativeAttributes(*root).size(),
            static_cast<size_t>(1 << (depth - 1)));
  // Both leftmost and rightmost leaves are supertypes of the root.
  std::string last_level = std::to_string(depth - 1);
  Result<TypeId> left = graph.FindType("N" + last_level + "_0");
  Result<TypeId> right = graph.FindType(
      "N" + last_level + "_" + std::to_string((1 << (depth - 1)) - 1));
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  EXPECT_TRUE(graph.IsSubtype(*root, *left));
  EXPECT_TRUE(graph.IsSubtype(*root, *right));
  EXPECT_FALSE(graph.IsSubtype(*left, *right));
}

TEST(BenchWorkloads, GeneratorsAreDeterministic) {
  auto fingerprint = [](const Result<Schema>& schema) {
    EXPECT_TRUE(schema.ok());
    return PrintHierarchy(schema->types()) + "|gfs=" +
           std::to_string(schema->NumGenericFunctions());
  };
  EXPECT_EQ(fingerprint(BuildChainSchema(6)), fingerprint(BuildChainSchema(6)));
  EXPECT_EQ(fingerprint(BuildWideSchema(9)), fingerprint(BuildWideSchema(9)));
  EXPECT_EQ(fingerprint(BuildCyclicSchema(5)),
            fingerprint(BuildCyclicSchema(5)));
  EXPECT_EQ(fingerprint(BuildTreeSchema(4)), fingerprint(BuildTreeSchema(4)));
  // And parameter changes actually change the shape.
  EXPECT_NE(fingerprint(BuildChainSchema(6)), fingerprint(BuildChainSchema(7)));
}

TEST(BenchWorkloads, FirstAttributesClampsToCumulativeSet) {
  Result<Schema> schema = BuildWideSchema(5);
  ASSERT_TRUE(schema.ok());
  Result<TypeId> src = schema->types().FindType("Src");
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(FirstAttributes(*schema, *src, 3).size(), 3u);
  EXPECT_EQ(FirstAttributes(*schema, *src, 5).size(), 5u);
  // Asking for more than exist returns them all, no padding.
  EXPECT_EQ(FirstAttributes(*schema, *src, 99).size(), 5u);
  // A prefix really is a prefix of the full cumulative list.
  std::vector<AttrId> all = FirstAttributes(*schema, *src, 99);
  std::vector<AttrId> three = FirstAttributes(*schema, *src, 3);
  for (size_t i = 0; i < three.size(); ++i) EXPECT_EQ(three[i], all[i]);
}

}  // namespace
}  // namespace tyder::bench
